//! # brainshift
//!
//! A full Rust reproduction of *"Real-Time Biomechanical Simulation of
//! Volumetric Brain Deformation for Image Guided Neurosurgery"*
//! (Warfield, Ferrant, Gallez, Nabavi, Jolesz, Kikinis — SC 2000).
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! * [`imaging`] — volumes, the synthetic intraoperative-MRI phantom,
//!   distance transforms, resampling, similarity metrics;
//! * [`segment`] — k-NN tissue classification over multichannel features;
//! * [`register`] — MI rigid registration;
//! * [`mesh`] — the labeled-volume tetrahedral mesher;
//! * [`surface`] — the active-surface correspondence stage;
//! * [`sparse`] — CSR + GMRES/CG + block-Jacobi/ILU(0) (the PETSc slice);
//! * [`cluster`] — machine models of the paper's three computers and the
//!   simulated-time cost accounting;
//! * [`fem`] — the linear-elastic tetrahedral FEM and the instrumented
//!   parallel assembly/solve;
//! * [`core`] — the intraoperative pipeline itself;
//! * [`conformance`] — the correctness oracles: analytic patch tests,
//!   manufactured-solution convergence, the differential solver harness,
//!   and golden-field regression (DESIGN.md §10);
//! * [`bench`] — the figure/table regeneration harness.
//!
//! Start with `examples/quickstart.rs`.

#![warn(missing_docs)]

pub use brainshift_bench as bench;
pub use brainshift_cluster as cluster;
pub use brainshift_conformance as conformance;
pub use brainshift_core as core;
pub use brainshift_fem as fem;
pub use brainshift_imaging as imaging;
pub use brainshift_mesh as mesh;
pub use brainshift_register as register;
pub use brainshift_segment as segment;
pub use brainshift_sparse as sparse;
pub use brainshift_surface as surface;
