//! MI rigid registration driver.
//!
//! Multi-resolution maximization of mutual information over the 6 rigid
//! parameters with an adaptive coordinate-descent search (a compact stand-in
//! for the Powell-style optimizers of Wells/Viola): at each pyramid level,
//! each parameter is perturbed ±step; improving moves are kept and steps
//! shrink until convergence.

use crate::mi_metric::{mutual_information, MiConfig};
use crate::powell::{powell_minimize, PowellOptions};
use crate::transform::RigidTransform;
use brainshift_imaging::interp::downsample;
use brainshift_imaging::{Vec3, Volume};

/// Which parameter optimizer drives the registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptimizerKind {
    /// Adaptive coordinate descent (fast, robust default).
    CoordinateDescent,
    /// Powell's direction-set method with golden-section line search (the
    /// classic choice of the MI-registration literature; more metric
    /// evaluations, finer convergence).
    Powell,
}

/// Registration configuration.
#[derive(Debug, Clone)]
pub struct RigidRegConfig {
    /// Parameter-search strategy.
    pub optimizer: OptimizerKind,
    /// Pyramid downsampling factors, coarse → fine (e.g. `[4, 2, 1]`).
    pub pyramid: Vec<usize>,
    /// Initial step for rotations (radians) at the coarsest level.
    pub rot_step: f64,
    /// Initial step for translations (voxels of the current level).
    pub trans_step: f64,
    /// Stop when the step shrinks below this factor of its initial value.
    pub min_step_factor: f64,
    /// Max coordinate-descent sweeps per level.
    pub max_sweeps: usize,
    /// Mutual-information metric settings.
    pub mi: MiConfig,
}

impl Default for RigidRegConfig {
    fn default() -> Self {
        RigidRegConfig {
            optimizer: OptimizerKind::CoordinateDescent,
            pyramid: vec![4, 2, 1],
            rot_step: 0.05,
            trans_step: 2.0,
            min_step_factor: 0.05,
            max_sweeps: 30,
            mi: MiConfig::default(),
        }
    }
}

/// Result of a rigid registration.
#[derive(Debug, Clone)]
pub struct RigidRegResult {
    /// Maps fixed-volume voxel coordinates to moving-volume voxel
    /// coordinates (at full resolution).
    pub transform: RigidTransform,
    /// Final MI value.
    pub mi: f64,
    /// Total metric evaluations (cost proxy).
    pub evaluations: usize,
}

/// Register `moving` onto `fixed`: find `T` maximizing
/// `MI(fixed(x), moving(T x))`.
pub fn register_rigid(fixed: &Volume<f32>, moving: &Volume<f32>, cfg: &RigidRegConfig) -> RigidRegResult {
    let d = fixed.dims();
    let full_center = Vec3::new(d.nx as f64 / 2.0, d.ny as f64 / 2.0, d.nz as f64 / 2.0);
    // params: [rx, ry, rz, tx, ty, tz] at FULL resolution (voxels).
    let mut params = [0.0f64; 6];
    let mut evaluations = 0usize;
    let mut last_mi = 0.0;

    let mut levels = cfg.pyramid.clone();
    if levels.is_empty() {
        levels.push(1);
    }
    for &factor in &levels {
        let (f_lvl, m_lvl);
        let (f_ref, m_ref) = if factor > 1 {
            f_lvl = downsample(fixed, factor);
            m_lvl = downsample(moving, factor);
            (&f_lvl, &m_lvl)
        } else {
            (fixed, moving)
        };
        let scale = 1.0 / factor as f64;
        let center = full_center * scale;
        // Adapt the sampling stride to the level size: coarse levels must
        // not starve the joint histogram (aim for ≥ ~30k samples when the
        // level has them).
        let mut mi_cfg = cfg.mi.clone();
        while mi_cfg.stride > 1 && f_ref.dims().len() / mi_cfg.stride.pow(3) < 30_000 {
            mi_cfg.stride -= 1;
        }
        // Convert current full-res params to this level.
        let eval = |p: &[f64; 6], evals: &mut usize| -> f64 {
            *evals += 1;
            let t = RigidTransform::from_params(
                [p[0], p[1], p[2], p[3] * scale, p[4] * scale, p[5] * scale],
                center,
            );
            mutual_information(f_ref, m_ref, &t, &mi_cfg)
        };
        if cfg.optimizer == OptimizerKind::Powell {
            // Powell minimizes; negate the MI objective.
            let mut evals_cell = 0usize;
            let mut obj = (6usize, |p: &[f64]| {
                let arr = [p[0], p[1], p[2], p[3], p[4], p[5]];
                -eval(&arr, &mut evals_cell)
            });
            let res = powell_minimize(
                &mut obj,
                &params,
                &PowellOptions {
                    initial_step: vec![
                        cfg.rot_step,
                        cfg.rot_step,
                        cfg.rot_step,
                        cfg.trans_step * factor as f64,
                        cfg.trans_step * factor as f64,
                        cfg.trans_step * factor as f64,
                    ],
                    tolerance: 1e-7,
                    max_iterations: cfg.max_sweeps,
                    line_tolerance: cfg.min_step_factor,
                },
            );
            params.copy_from_slice(&res.x);
            evaluations += evals_cell;
            last_mi = -res.value;
            continue;
        }
        let mut best = eval(&params, &mut evaluations);
        let mut rot_step = cfg.rot_step;
        let mut trans_step = cfg.trans_step * factor as f64;
        let min_rot = cfg.rot_step * cfg.min_step_factor;
        let min_trans = cfg.trans_step * cfg.min_step_factor * factor as f64;
        for _sweep in 0..cfg.max_sweeps {
            let mut improved = false;
            for i in 0..6 {
                let step = if i < 3 { rot_step } else { trans_step };
                for dir in [1.0, -1.0] {
                    let mut trial = params;
                    trial[i] += dir * step;
                    let v = eval(&trial, &mut evaluations);
                    if v > best + 1e-9 {
                        best = v;
                        params = trial;
                        improved = true;
                        break;
                    }
                }
            }
            if !improved {
                rot_step *= 0.5;
                trans_step *= 0.5;
                if rot_step < min_rot && trans_step < min_trans {
                    break;
                }
            }
        }
        last_mi = best;
    }
    RigidRegResult {
        transform: RigidTransform::from_params(params, full_center),
        mi: last_mi,
        evaluations,
    }
}

/// Resample `moving` into the fixed grid through the recovered transform:
/// `out(x) = moving(T x)`.
pub fn apply_registration(fixed: &Volume<f32>, moving: &Volume<f32>, t: &RigidTransform) -> Volume<f32> {
    brainshift_imaging::interp::resample_with(moving, fixed, 0.0, |p| t.apply(p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::phantom::{apply_rigid_misalignment, generate_preop, PhantomConfig};
    use brainshift_imaging::similarity::ncc;
    use brainshift_imaging::volume::{Dims, Spacing};
    use brainshift_imaging::Mat3;

    fn phantom_scan() -> brainshift_imaging::phantom::PhantomScan {
        generate_preop(&PhantomConfig {
            dims: Dims::new(40, 40, 32),
            spacing: Spacing::iso(4.0),
            ..Default::default()
        })
    }

    #[test]
    fn recovers_translation() {
        let scan = phantom_scan();
        let true_shift = Vec3::new(3.0, -2.0, 1.0);
        let moved = apply_rigid_misalignment(&scan, Mat3::IDENTITY, true_shift);
        // moved(x) = scan(x + shift) → registering `scan` (fixed) onto
        // `moved` (moving) should find T(x) ≈ x − shift ... and
        // MI(fixed(x), moved(T x)) maximal when T x + shift = x.
        let res = register_rigid(&scan.intensity, &moved.intensity, &RigidRegConfig::default());
        let rec = res.transform.apply(Vec3::new(20.0, 20.0, 16.0)) - Vec3::new(20.0, 20.0, 16.0);
        assert!(
            (rec + true_shift).norm() < 1.0,
            "recovered offset {rec:?}, want {:?}",
            -true_shift
        );
    }

    #[test]
    fn recovers_small_rotation() {
        let scan = phantom_scan();
        let angle = 0.08f64; // ~4.6°
        let moved = apply_rigid_misalignment(&scan, Mat3::rot_z(angle), Vec3::ZERO);
        let res = register_rigid(&scan.intensity, &moved.intensity, &RigidRegConfig::default());
        let (rec_angle, rec_trans) = res.transform.magnitude();
        assert!((rec_angle - angle).abs() < 0.03, "angle {rec_angle} vs {angle}");
        assert!(rec_trans < 2.0, "spurious translation {rec_trans}");
    }

    #[test]
    fn registration_improves_alignment() {
        let scan = phantom_scan();
        let moved = apply_rigid_misalignment(&scan, Mat3::rot_z(0.06), Vec3::new(2.0, 1.0, 0.0));
        let res = register_rigid(&scan.intensity, &moved.intensity, &RigidRegConfig::default());
        let before = ncc(&scan.intensity, &moved.intensity);
        let aligned = apply_registration(&scan.intensity, &moved.intensity, &res.transform);
        let after = ncc(&scan.intensity, &aligned);
        assert!(after > before, "ncc {before} → {after}");
        assert!(after > 0.9, "alignment too poor: {after}");
    }

    #[test]
    fn powell_recovers_translation_at_least_as_well() {
        let scan = phantom_scan();
        let true_shift = Vec3::new(3.0, -2.0, 1.0);
        let moved = apply_rigid_misalignment(&scan, Mat3::IDENTITY, true_shift);
        let cfg = RigidRegConfig { optimizer: OptimizerKind::Powell, ..Default::default() };
        let res = register_rigid(&scan.intensity, &moved.intensity, &cfg);
        let rec = res.transform.apply(Vec3::new(20.0, 20.0, 16.0)) - Vec3::new(20.0, 20.0, 16.0);
        assert!((rec + true_shift).norm() < 1.0, "recovered {rec:?}");
    }

    #[test]
    fn powell_recovers_rotation() {
        let scan = phantom_scan();
        let angle = 0.08f64;
        let moved = apply_rigid_misalignment(&scan, Mat3::rot_z(angle), Vec3::ZERO);
        let cfg = RigidRegConfig { optimizer: OptimizerKind::Powell, ..Default::default() };
        let res = register_rigid(&scan.intensity, &moved.intensity, &cfg);
        let (rec_angle, rec_trans) = res.transform.magnitude();
        assert!((rec_angle - angle).abs() < 0.03, "angle {rec_angle} vs {angle}");
        assert!(rec_trans < 2.0);
    }

    #[test]
    fn identity_input_yields_near_identity() {
        let scan = phantom_scan();
        let res = register_rigid(&scan.intensity, &scan.intensity, &RigidRegConfig::default());
        let (ang, tr) = res.transform.magnitude();
        assert!(ang < 0.02, "angle {ang}");
        assert!(tr < 1.0, "translation {tr}");
        assert!(res.evaluations > 0);
    }
}
