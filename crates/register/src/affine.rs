//! Affine registration.
//!
//! Rigid alignment (the paper's choice) assumes both scans share voxel
//! geometry; gradient-coil miscalibration or different scanners introduce
//! scale/shear that only an affine model can absorb. This module extends
//! the transform family to 12 DOF — rotation · shear · scale + translation
//! — optimized with Powell over the same (N)MI metric.

use crate::mi_metric::MiConfig;
use crate::powell::{powell_minimize, PowellOptions};
use brainshift_imaging::interp::downsample;
use brainshift_imaging::{Mat3, Vec3, Volume};

/// A 12-DOF affine transform `T(x) = A (x − c) + c + t`.
#[derive(Debug, Clone, Copy)]
pub struct AffineTransform {
    /// The linear part `A = R · H · S` (rotation, shear, scale).
    pub matrix: Mat3,
    /// Translation `t`.
    pub translation: Vec3,
    /// Fixed centre `c`.
    pub center: Vec3,
}

impl AffineTransform {
    /// Identity about a centre.
    pub fn identity(center: Vec3) -> Self {
        AffineTransform { matrix: Mat3::IDENTITY, translation: Vec3::ZERO, center }
    }

    /// From the 12 parameters
    /// `[rx, ry, rz, sx, sy, sz, kxy, kxz, kyz, tx, ty, tz]`:
    /// Euler rotation, per-axis log-scales (so 0 = unit scale), three
    /// shear coefficients, translation.
    pub fn from_params(p: &[f64; 12], center: Vec3) -> Self {
        let r = Mat3::from_euler(p[0], p[1], p[2]);
        let scale = Mat3::from_rows(
            [p[3].exp(), 0.0, 0.0],
            [0.0, p[4].exp(), 0.0],
            [0.0, 0.0, p[5].exp()],
        );
        let shear = Mat3::from_rows([1.0, p[6], p[7]], [0.0, 1.0, p[8]], [0.0, 0.0, 1.0]);
        AffineTransform {
            matrix: r * shear * scale,
            translation: Vec3::new(p[9], p[10], p[11]),
            center,
        }
    }

    /// Apply to a point.
    #[inline]
    pub fn apply(&self, p: Vec3) -> Vec3 {
        self.matrix * (p - self.center) + self.center + self.translation
    }

    /// Inverse transform (None if the linear part is singular).
    pub fn inverse(&self) -> Option<AffineTransform> {
        let inv = self.matrix.inverse()?;
        Some(AffineTransform {
            matrix: inv,
            translation: -(inv * self.translation),
            center: self.center,
        })
    }

    /// Determinant of the linear part (volume-change factor).
    pub fn volume_factor(&self) -> f64 {
        self.matrix.determinant()
    }
}

/// Configuration of the affine registration.
#[derive(Debug, Clone)]
pub struct AffineRegConfig {
    /// Pyramid factors, coarse → fine.
    pub pyramid: Vec<usize>,
    /// Initial steps: rotations (rad), log-scales, shears, translations
    /// (voxels).
    pub rot_step: f64,
    /// Initial log-scale step.
    pub scale_step: f64,
    /// Initial shear step.
    pub shear_step: f64,
    /// Initial translation step (voxels).
    pub trans_step: f64,
    /// Powell sweeps per level.
    pub max_sweeps: usize,
    /// Metric settings.
    pub mi: MiConfig,
}

impl Default for AffineRegConfig {
    fn default() -> Self {
        AffineRegConfig {
            pyramid: vec![4, 2, 1],
            rot_step: 0.04,
            scale_step: 0.03,
            shear_step: 0.02,
            trans_step: 2.0,
            max_sweeps: 25,
            mi: MiConfig::default(),
        }
    }
}

/// Result of the affine registration.
#[derive(Debug, Clone)]
pub struct AffineRegResult {
    /// Maps fixed voxel coordinates to moving voxel coordinates.
    pub transform: AffineTransform,
    /// Final metric value.
    pub mi: f64,
    /// Metric evaluations performed.
    pub evaluations: usize,
}

/// Register `moving` onto `fixed` with a 12-DOF affine transform
/// maximizing (normalized) mutual information.
pub fn register_affine(fixed: &Volume<f32>, moving: &Volume<f32>, cfg: &AffineRegConfig) -> AffineRegResult {
    let d = fixed.dims();
    let full_center = Vec3::new(d.nx as f64 / 2.0, d.ny as f64 / 2.0, d.nz as f64 / 2.0);
    let mut params = [0.0f64; 12];
    let mut evaluations = 0usize;
    let mut last_mi = 0.0;

    let mut levels = cfg.pyramid.clone();
    if levels.is_empty() {
        levels.push(1);
    }
    for &factor in &levels {
        let (f_lvl, m_lvl);
        let (f_ref, m_ref) = if factor > 1 {
            f_lvl = downsample(fixed, factor);
            m_lvl = downsample(moving, factor);
            (&f_lvl, &m_lvl)
        } else {
            (fixed, moving)
        };
        let scale = 1.0 / factor as f64;
        let center = full_center * scale;
        let mut mi_cfg = cfg.mi.clone();
        while mi_cfg.stride > 1 && f_ref.dims().len() / mi_cfg.stride.pow(3) < 30_000 {
            mi_cfg.stride -= 1;
        }
        let mut evals = 0usize;
        let mut obj = (12usize, |p: &[f64]| {
            evals += 1;
            let mut arr = [0.0f64; 12];
            arr.copy_from_slice(p);
            // Translations live at full resolution; scale to this level.
            arr[9] *= scale;
            arr[10] *= scale;
            arr[11] *= scale;
            let t = AffineTransform::from_params(&arr, center);
            // Plausibility wall: intra-patient scanner distortions are a
            // few percent. Without it, MI's degenerate optima (collapse
            // the moving image onto a uniform region) can capture the
            // optimizer.
            let mut penalty = 0.0;
            for &v in &arr[3..9] {
                let excess = (v.abs() - 0.2).max(0.0);
                penalty += (10.0 * excess).powi(2);
            }
            penalty - affine_mutual_information(f_ref, m_ref, &t, &mi_cfg)
        });
        let res = powell_minimize(
            &mut obj,
            &params,
            &PowellOptions {
                initial_step: vec![
                    cfg.rot_step,
                    cfg.rot_step,
                    cfg.rot_step,
                    cfg.scale_step,
                    cfg.scale_step,
                    cfg.scale_step,
                    cfg.shear_step,
                    cfg.shear_step,
                    cfg.shear_step,
                    cfg.trans_step * factor as f64,
                    cfg.trans_step * factor as f64,
                    cfg.trans_step * factor as f64,
                ],
                tolerance: 1e-7,
                max_iterations: cfg.max_sweeps,
                line_tolerance: 0.05,
            },
        );
        params.copy_from_slice(&res.x);
        last_mi = -res.value;
        evaluations += evals;
    }
    AffineRegResult {
        transform: AffineTransform::from_params(&params, full_center),
        mi: last_mi,
        evaluations,
    }
}

/// MI between `fixed(x)` and `moving(T x)` for an affine `T` (same
/// implementation as the rigid metric, different transform type).
pub fn affine_mutual_information(
    fixed: &Volume<f32>,
    moving: &Volume<f32>,
    t: &AffineTransform,
    cfg: &MiConfig,
) -> f64 {
    use brainshift_imaging::interp::sample_trilinear;
    use brainshift_imaging::similarity::JointHistogram;
    let d = fixed.dims();
    let mut hist = JointHistogram::new(cfg.bins, fixed.min_max(), moving.min_max());
    let stride = cfg.stride.max(1);
    let dm = moving.dims();
    for z in (0..d.nz).step_by(stride) {
        for y in (0..d.ny).step_by(stride) {
            for x in (0..d.nx).step_by(stride) {
                let q = t.apply(Vec3::new(x as f64, y as f64, z as f64));
                if q.x < 0.0
                    || q.y < 0.0
                    || q.z < 0.0
                    || q.x > dm.nx as f64 - 1.0
                    || q.y > dm.ny as f64 - 1.0
                    || q.z > dm.nz as f64 - 1.0
                {
                    continue;
                }
                hist.add(*fixed.get(x, y, z), sample_trilinear(moving, q, 0.0));
            }
        }
    }
    if hist.total() < 100.0 {
        return 0.0;
    }
    if cfg.normalized {
        hist.normalized_mutual_information()
    } else {
        hist.mutual_information()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::interp::resample_with;
    use brainshift_imaging::phantom::{generate_preop, PhantomConfig};
    use brainshift_imaging::similarity::ncc;
    use brainshift_imaging::volume::{Dims, Spacing};

    #[test]
    fn affine_transform_roundtrip() {
        let t = AffineTransform::from_params(
            &[0.1, -0.05, 0.2, 0.05, -0.03, 0.02, 0.01, 0.0, -0.02, 1.0, 2.0, -1.0],
            Vec3::new(3.0, 3.0, 3.0),
        );
        let inv = t.inverse().unwrap();
        for p in [Vec3::ZERO, Vec3::new(5.0, -2.0, 7.0)] {
            assert!((inv.apply(t.apply(p)) - p).norm() < 1e-10);
        }
        // Volume factor = exp(Σ log-scales) (shear is unimodular).
        let expect = (0.05f64 - 0.03 + 0.02).exp();
        assert!((t.volume_factor() - expect).abs() < 1e-9);
    }

    #[test]
    fn identity_params_give_identity() {
        let t = AffineTransform::from_params(&[0.0; 12], Vec3::new(1.0, 1.0, 1.0));
        let p = Vec3::new(4.0, 5.0, 6.0);
        assert!((t.apply(p) - p).norm() < 1e-12);
        assert!((t.volume_factor() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn recovers_anisotropic_scale() {
        // The moving scan is the phantom with 6% scale error along z —
        // invisible to a rigid model, recoverable by the affine one.
        let scan = generate_preop(&PhantomConfig {
            dims: Dims::new(40, 40, 32),
            spacing: Spacing::iso(4.0),
            ..Default::default()
        });
        let d = scan.intensity.dims();
        let c = Vec3::new(d.nx as f64 / 2.0, d.ny as f64 / 2.0, d.nz as f64 / 2.0);
        // moving(x) = fixed(A_true x) with A_true scaling z by 1.06.
        let a_true = AffineTransform::from_params(
            &[0.0, 0.0, 0.0, 0.0, 0.0, 0.06, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            c,
        );
        let moving = resample_with(&scan.intensity, &scan.intensity, 0.0, |p| a_true.apply(p));
        let res = register_affine(&scan.intensity, &moving, &AffineRegConfig::default());
        // Recovered T maps fixed → moving with moving(T x) ≈ fixed(x):
        // so T ≈ A_true⁻¹. Its volume factor ≈ exp(−0.06).
        let vf = res.transform.volume_factor();
        assert!(
            (vf.ln() + 0.06).abs() < 0.03,
            "volume factor {vf} (log {})",
            vf.ln()
        );
        // And the realignment quality:
        let aligned = resample_with(&moving, &scan.intensity, 0.0, |p| res.transform.apply(p));
        let q = ncc(&scan.intensity, &aligned);
        assert!(q > 0.97, "ncc {q}");
    }
}
