//! # brainshift-register
//!
//! Rigid registration by maximization of mutual information (Wells et
//! al.), used in the paper to bring each intraoperative scan into the
//! preoperative coordinate frame before nonrigid correction: 6-DOF rigid
//! transforms, a transform-aware MI metric, and a multi-resolution
//! coordinate-descent optimizer.

#![warn(missing_docs)]

pub mod affine;
pub mod mi_metric;
pub mod powell;
pub mod rigid;
pub mod transform;

pub use mi_metric::{mutual_information, MiConfig};
pub use affine::{register_affine, AffineRegConfig, AffineRegResult, AffineTransform};
pub use powell::{powell_minimize, PowellOptions, PowellResult};
pub use rigid::{apply_registration, register_rigid, OptimizerKind, RigidRegConfig, RigidRegResult};
pub use transform::RigidTransform;
