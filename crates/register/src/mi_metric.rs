//! Transform-aware mutual-information metric.
//!
//! Evaluates MI between a fixed volume and a moving volume pulled through
//! a candidate rigid transform (Wells et al., the paper's ref [20]).

use crate::transform::RigidTransform;
use brainshift_imaging::interp::sample_trilinear;
use brainshift_imaging::similarity::JointHistogram;
use brainshift_imaging::{Vec3, Volume};
use rayon::prelude::*;

/// Metric configuration.
#[derive(Debug, Clone)]
pub struct MiConfig {
    /// Histogram bins per axis.
    pub bins: usize,
    /// Sample every `stride`-th voxel in each axis (≥1); MI is robust to
    /// sparse sampling and this keeps each evaluation cheap.
    pub stride: usize,
    /// Use Studholme's normalized MI instead of plain MI. Plain MI can
    /// *increase* as the overlap region shrinks (the optimizer drifts to
    /// large spurious transforms); NMI is invariant to overlap size and
    /// is the robust default.
    pub normalized: bool,
}

impl Default for MiConfig {
    fn default() -> Self {
        MiConfig { bins: 32, stride: 2, normalized: true }
    }
}

/// Mutual information (nats) between `fixed(x)` and `moving(T(x))`,
/// sampled on the fixed grid. Voxel pairs mapping outside the moving
/// volume are skipped; returns 0 if fewer than a minimal count remain.
pub fn mutual_information(
    fixed: &Volume<f32>,
    moving: &Volume<f32>,
    transform: &RigidTransform,
    cfg: &MiConfig,
) -> f64 {
    let d = fixed.dims();
    let f_range = fixed.min_max();
    let m_range = moving.min_max();
    let stride = cfg.stride.max(1);
    // One private histogram per z-slab, merged afterwards — the metric
    // sits in the inner loop of the rigid optimizer, so the accumulation
    // runs slab-parallel with no shared bins to contend on.
    let zs: Vec<usize> = (0..d.nz).step_by(stride).collect();
    let partials: Vec<JointHistogram> = zs
        .par_iter()
        .map(|&z| {
            let mut h = JointHistogram::new(cfg.bins, f_range, m_range);
            let dm = moving.dims();
            for y in (0..d.ny).step_by(stride) {
                for x in (0..d.nx).step_by(stride) {
                    let p = Vec3::new(x as f64, y as f64, z as f64);
                    let q = transform.apply(p);
                    if q.x < 0.0
                        || q.y < 0.0
                        || q.z < 0.0
                        || q.x > dm.nx as f64 - 1.0
                        || q.y > dm.ny as f64 - 1.0
                        || q.z > dm.nz as f64 - 1.0
                    {
                        continue;
                    }
                    let mv = sample_trilinear(moving, q, 0.0);
                    h.add(*fixed.get(x, y, z), mv);
                }
            }
            h
        })
        .collect();
    let mut hist = JointHistogram::new(cfg.bins, f_range, m_range);
    for p in &partials {
        hist.merge(p);
    }
    if hist.total() < 100.0 {
        return 0.0;
    }
    if cfg.normalized {
        hist.normalized_mutual_information()
    } else {
        hist.mutual_information()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::phantom::{generate_preop, PhantomConfig};
    use brainshift_imaging::volume::{Dims, Spacing};

    fn phantom() -> Volume<f32> {
        let cfg = PhantomConfig {
            dims: Dims::new(32, 32, 24),
            spacing: Spacing::iso(4.0),
            ..Default::default()
        };
        generate_preop(&cfg).intensity
    }

    fn center(v: &Volume<f32>) -> Vec3 {
        let d = v.dims();
        Vec3::new(d.nx as f64 / 2.0, d.ny as f64 / 2.0, d.nz as f64 / 2.0)
    }

    #[test]
    fn identity_beats_shifted() {
        let v = phantom();
        let c = center(&v);
        let cfg = MiConfig::default();
        let id = mutual_information(&v, &v, &RigidTransform::identity(c), &cfg);
        let shifted = mutual_information(
            &v,
            &v,
            &RigidTransform::from_params([0.0, 0.0, 0.0, 4.0, 0.0, 0.0], c),
            &cfg,
        );
        assert!(id > shifted, "{id} vs {shifted}");
    }

    #[test]
    fn identity_beats_rotated() {
        let v = phantom();
        let c = center(&v);
        let cfg = MiConfig::default();
        let id = mutual_information(&v, &v, &RigidTransform::identity(c), &cfg);
        let rot = mutual_information(
            &v,
            &v,
            &RigidTransform::from_params([0.0, 0.0, 0.2, 0.0, 0.0, 0.0], c),
            &cfg,
        );
        assert!(id > rot, "{id} vs {rot}");
    }

    #[test]
    fn mi_smooth_near_optimum() {
        // MI must decrease monotonically-ish as misalignment grows.
        let v = phantom();
        let c = center(&v);
        let cfg = MiConfig::default();
        let mi_at = |dx: f64| {
            mutual_information(
                &v,
                &v,
                &RigidTransform::from_params([0.0, 0.0, 0.0, dx, 0.0, 0.0], c),
                &cfg,
            )
        };
        let m0 = mi_at(0.0);
        let m2 = mi_at(2.0);
        let m6 = mi_at(6.0);
        assert!(m0 > m2 && m2 > m6, "{m0} {m2} {m6}");
    }

    #[test]
    fn completely_outside_returns_zero() {
        let v = phantom();
        let c = center(&v);
        let t = RigidTransform::from_params([0.0, 0.0, 0.0, 1000.0, 0.0, 0.0], c);
        assert_eq!(mutual_information(&v, &v, &t, &MiConfig::default()), 0.0);
    }
}
