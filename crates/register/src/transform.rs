//! Rigid 3-D transforms.
//!
//! "the preoperative data ... is aligned with the intraoperative data
//! using an MI based rigid registration method" — this module provides
//! the 6-DOF transform (Euler rotations about a centre + translation)
//! that the optimizer searches over.

use brainshift_imaging::{Mat3, Vec3};

/// A rigid transform `T(x) = R (x − c) + c + t`, with rotation `R`
/// parameterized by Euler angles and a fixed rotation centre `c` (usually
/// the volume centre, which decorrelates rotation and translation
/// parameters during optimization).
/// ```
/// use brainshift_register::RigidTransform;
/// use brainshift_imaging::Vec3;
/// let t = RigidTransform::from_params([0.0, 0.0, 0.1, 1.0, 0.0, 0.0], Vec3::ZERO);
/// let p = Vec3::new(2.0, 3.0, 4.0);
/// let back = t.inverse().apply(t.apply(p));
/// assert!((back - p).norm() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct RigidTransform {
    /// Rotation matrix `R`.
    pub rotation: Mat3,
    /// Translation `t`.
    pub translation: Vec3,
    /// Rotation centre `c`.
    pub center: Vec3,
}

impl RigidTransform {
    /// The identity transform about a centre.
    pub fn identity(center: Vec3) -> Self {
        RigidTransform { rotation: Mat3::IDENTITY, translation: Vec3::ZERO, center }
    }

    /// From the 6-parameter vector `[rx, ry, rz, tx, ty, tz]` (radians,
    /// then the same length unit as the images).
    pub fn from_params(params: [f64; 6], center: Vec3) -> Self {
        RigidTransform {
            rotation: Mat3::from_euler(params[0], params[1], params[2]),
            translation: Vec3::new(params[3], params[4], params[5]),
            center,
        }
    }

    /// Apply to a point.
    #[inline]
    pub fn apply(&self, p: Vec3) -> Vec3 {
        self.rotation * (p - self.center) + self.center + self.translation
    }

    /// The inverse rigid transform (same centre).
    pub fn inverse(&self) -> RigidTransform {
        let rt = self.rotation.transpose();
        RigidTransform {
            rotation: rt,
            translation: -(rt * self.translation),
            center: self.center,
        }
    }

    /// Composition: `(a ∘ b)(x) = a(b(x))`, expressed about `a.center`.
    pub fn compose(&self, b: &RigidTransform) -> RigidTransform {
        // a(b(x)) = Ra (Rb (x − cb) + cb + tb − ca) + ca + ta
        //         = Ra Rb (x − ca) + [Ra Rb (ca − cb) + Ra (cb + tb − ca)] + ca + ta
        let r = self.rotation * b.rotation;
        let t = self.rotation * (b.rotation * (self.center - b.center))
            + self.rotation * (b.center + b.translation - self.center)
            + self.translation;
        RigidTransform { rotation: r, translation: t, center: self.center }
    }

    /// Magnitude of the transform: (rotation angle in radians, translation
    /// norm). Useful for convergence reporting and accuracy metrics.
    pub fn magnitude(&self) -> (f64, f64) {
        let trace = self.rotation.m[0][0] + self.rotation.m[1][1] + self.rotation.m[2][2];
        let angle = ((trace - 1.0) / 2.0).clamp(-1.0, 1.0).acos();
        (angle, self.translation.norm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Vec3, b: Vec3, tol: f64) {
        assert!((a - b).norm() < tol, "{a:?} vs {b:?}");
    }

    #[test]
    fn identity_fixes_points() {
        let t = RigidTransform::identity(Vec3::new(5.0, 5.0, 5.0));
        close(t.apply(Vec3::new(1.0, 2.0, 3.0)), Vec3::new(1.0, 2.0, 3.0), 1e-15);
        let (ang, tr) = t.magnitude();
        assert!(ang.abs() < 1e-12 && tr == 0.0);
    }

    #[test]
    fn pure_translation() {
        let t = RigidTransform::from_params([0.0, 0.0, 0.0, 1.0, -2.0, 3.0], Vec3::ZERO);
        close(t.apply(Vec3::ZERO), Vec3::new(1.0, -2.0, 3.0), 1e-15);
    }

    #[test]
    fn rotation_about_center_fixes_center() {
        let c = Vec3::new(4.0, 4.0, 4.0);
        let t = RigidTransform::from_params([0.3, -0.2, 0.5, 0.0, 0.0, 0.0], c);
        close(t.apply(c), c, 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let t = RigidTransform::from_params([0.2, 0.1, -0.3, 1.0, 2.0, 3.0], Vec3::new(2.0, 2.0, 2.0));
        let inv = t.inverse();
        for p in [Vec3::ZERO, Vec3::new(1.0, -2.0, 5.0), Vec3::new(10.0, 0.0, 3.0)] {
            close(inv.apply(t.apply(p)), p, 1e-12);
            close(t.apply(inv.apply(p)), p, 1e-12);
        }
    }

    #[test]
    fn compose_matches_sequential_application() {
        let a = RigidTransform::from_params([0.1, 0.0, 0.2, 1.0, 0.0, -1.0], Vec3::new(1.0, 1.0, 1.0));
        let b = RigidTransform::from_params([0.0, -0.3, 0.1, 0.5, 2.0, 0.0], Vec3::new(3.0, 0.0, 2.0));
        let ab = a.compose(&b);
        for p in [Vec3::ZERO, Vec3::new(2.0, 3.0, -1.0)] {
            close(ab.apply(p), a.apply(b.apply(p)), 1e-12);
        }
    }

    #[test]
    fn magnitude_recovers_angle() {
        let t = RigidTransform::from_params([0.0, 0.0, 0.4, 0.0, 0.0, 0.0], Vec3::ZERO);
        let (ang, _) = t.magnitude();
        assert!((ang - 0.4).abs() < 1e-12);
    }
}
