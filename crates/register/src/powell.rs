//! Powell's direction-set method with golden-section line search.
//!
//! The MI registration literature the paper builds on (Wells/Viola; Maes)
//! optimizes the rigid parameters with Powell's method. The default driver
//! in [`crate::rigid`] uses a simpler adaptive coordinate descent; this
//! module provides the classic algorithm — conjugate direction updates and
//! a derivative-free bracketed line minimization — as a higher-accuracy
//! alternative (`RigidRegConfig` selects it via `optimizer`).

/// A scalar objective over ℝⁿ (maximized by the registration driver after
/// negation — Powell minimizes).
pub trait Objective {
    /// Number of parameters.
    fn dim(&self) -> usize;
    /// Evaluate the objective at `x` (lower is better).
    fn eval(&mut self, x: &[f64]) -> f64;
}

impl<F: FnMut(&[f64]) -> f64> Objective for (usize, F) {
    fn dim(&self) -> usize {
        self.0
    }
    fn eval(&mut self, x: &[f64]) -> f64 {
        (self.1)(x)
    }
}

/// Result of a Powell minimization.
#[derive(Debug, Clone)]
pub struct PowellResult {
    /// The minimizing parameter vector found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub value: f64,
    /// Outer Powell iterations performed.
    pub iterations: usize,
    /// Total objective evaluations.
    pub evaluations: usize,
}

/// Options for [`powell_minimize`].
#[derive(Debug, Clone)]
pub struct PowellOptions {
    /// Initial line-search bracket half-width per coordinate.
    pub initial_step: Vec<f64>,
    /// Stop when one full iteration improves the value by less than this.
    pub tolerance: f64,
    /// Maximum outer iterations.
    pub max_iterations: usize,
    /// Line-search interval-shrink tolerance (fraction of initial step).
    pub line_tolerance: f64,
}

const GOLD: f64 = 0.618_033_988_749_894_8;

/// Golden-section minimization of `g` on `[a, b]`; returns (t, g(t)).
fn golden_section(
    g: &mut impl FnMut(f64) -> f64,
    mut a: f64,
    mut b: f64,
    tol: f64,
    evals: &mut usize,
) -> (f64, f64) {
    let mut c = b - GOLD * (b - a);
    let mut d = a + GOLD * (b - a);
    let mut fc = g(c);
    let mut fd = g(d);
    *evals += 2;
    while (b - a).abs() > tol {
        if fc < fd {
            b = d;
            d = c;
            fd = fc;
            c = b - GOLD * (b - a);
            fc = g(c);
        } else {
            a = c;
            c = d;
            fc = fd;
            d = a + GOLD * (b - a);
            fd = g(d);
        }
        *evals += 1;
    }
    let t = 0.5 * (a + b);
    let ft = g(t);
    *evals += 1;
    (t, ft)
}

/// Line minimization of `obj` from `x` along `dir`, with an expanding
/// bracket when the minimum lies outside the initial interval.
fn line_minimize(
    obj: &mut dyn Objective,
    x: &mut [f64],
    dir: &[f64],
    step: f64,
    line_tol: f64,
    evals: &mut usize,
) -> f64 {
    let n = x.len();
    let x0 = x.to_vec();
    let mut g = |t: f64| -> f64 {
        let trial: Vec<f64> = (0..n).map(|i| x0[i] + t * dir[i]).collect();
        obj.eval(&trial)
    };
    // Expand the bracket while the edge keeps improving.
    let mut a = -step;
    let mut b = step;
    let f0 = g(0.0);
    *evals += 1;
    for _ in 0..8 {
        let fa = g(a);
        let fb = g(b);
        *evals += 2;
        if fa < f0 && fa <= fb {
            a *= 2.0;
        } else if fb < f0 && fb < fa {
            b *= 2.0;
        } else {
            break;
        }
    }
    let (t, ft) = golden_section(&mut g, a, b, line_tol * step, evals);
    if ft < f0 {
        for i in 0..n {
            x[i] = x0[i] + t * dir[i];
        }
        ft
    } else {
        f0
    }
}

/// Minimize `obj` starting from `x0` with Powell's direction-set method.
pub fn powell_minimize(obj: &mut dyn Objective, x0: &[f64], opts: &PowellOptions) -> PowellResult {
    let n = obj.dim();
    assert_eq!(x0.len(), n);
    assert_eq!(opts.initial_step.len(), n);
    let mut x = x0.to_vec();
    let mut evals = 0usize;
    let mut f = obj.eval(&x);
    evals += 1;
    // Direction set starts as the coordinate axes.
    let mut dirs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut d = vec![0.0; n];
            d[i] = 1.0;
            d
        })
        .collect();

    let mut iterations = 0;
    for _ in 0..opts.max_iterations {
        iterations += 1;
        let f_start = f;
        let x_start = x.clone();
        let mut biggest_drop = 0.0;
        let mut biggest_idx = 0;
        for (i, d) in dirs.iter().enumerate() {
            // Scale the step by the direction's dominant coordinate step.
            let step: f64 = d
                .iter()
                .zip(&opts.initial_step)
                .map(|(di, si)| di.abs() * si)
                .sum::<f64>()
                .max(1e-12);
            let f_new = line_minimize(obj, &mut x, d, step, opts.line_tolerance, &mut evals);
            if f_start.is_finite() && (f - f_new) > biggest_drop {
                biggest_drop = f - f_new;
                biggest_idx = i;
            }
            f = f_new.min(f);
        }
        // Powell update: replace the direction of largest decrease with the
        // net displacement direction.
        let net: Vec<f64> = x.iter().zip(&x_start).map(|(a, b)| a - b).collect();
        let net_norm: f64 = net.iter().map(|v| v * v).sum::<f64>().sqrt();
        if net_norm > 1e-12 {
            dirs.remove(biggest_idx);
            dirs.push(net.iter().map(|v| v / net_norm).collect());
            // One extra minimization along the new direction.
            let step: f64 = opts.initial_step.iter().cloned().fold(0.0, f64::max);
            f = line_minimize(obj, &mut x, dirs.last().unwrap().clone().as_slice(), step, opts.line_tolerance, &mut evals)
                .min(f);
        }
        if f_start - f < opts.tolerance {
            break;
        }
    }
    PowellResult { x, value: f, iterations, evaluations: evals }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimize(f: impl FnMut(&[f64]) -> f64 + 'static, n: usize, x0: &[f64], step: f64) -> PowellResult {
        let mut obj = (n, f);
        powell_minimize(
            &mut obj,
            x0,
            &PowellOptions {
                initial_step: vec![step; n],
                tolerance: 1e-12,
                max_iterations: 100,
                line_tolerance: 1e-6,
            },
        )
    }

    #[test]
    fn quadratic_bowl() {
        let r = minimize(|x| (x[0] - 2.0).powi(2) + (x[1] + 1.0).powi(2), 2, &[0.0, 0.0], 1.0);
        assert!((r.x[0] - 2.0).abs() < 1e-4, "{:?}", r.x);
        assert!((r.x[1] + 1.0).abs() < 1e-4);
        assert!(r.value < 1e-8);
    }

    #[test]
    fn correlated_quadratic_needs_conjugate_directions() {
        // Strongly coupled quadratic: f = (x+y)² + 0.01 (x−y)².
        let r = minimize(
            |x| (x[0] + x[1] - 3.0).powi(2) + 0.01 * (x[0] - x[1] - 1.0).powi(2),
            2,
            &[5.0, -5.0],
            1.0,
        );
        assert!(r.value < 1e-6, "{:?} value {}", r.x, r.value);
        assert!((r.x[0] + r.x[1] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn rosenbrock_reaches_valley() {
        let r = minimize(
            |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            2,
            &[-1.2, 1.0],
            0.5,
        );
        // Full convergence on Rosenbrock is slow; reaching the valley
        // floor (f < 1e-2 from f0 ≈ 24) is the expected behavior here.
        assert!(r.value < 1e-2, "value {}", r.value);
    }

    #[test]
    fn already_at_minimum_is_stable() {
        let r = minimize(|x| x[0] * x[0] + x[1] * x[1], 2, &[0.0, 0.0], 1.0);
        assert!(r.value < 1e-10);
        assert!(r.x[0].abs() < 1e-4 && r.x[1].abs() < 1e-4);
    }

    #[test]
    fn six_dimensional_sphere() {
        let r = minimize(
            |x| x.iter().enumerate().map(|(i, v)| (v - i as f64 * 0.1).powi(2)).sum(),
            6,
            &[1.0; 6],
            0.5,
        );
        for (i, v) in r.x.iter().enumerate() {
            assert!((v - i as f64 * 0.1).abs() < 1e-3, "x[{i}] = {v}");
        }
    }
}
