//! Property tests of active-surface determinism: evolution is a pure
//! function of (surface, force, config) — bit-identical across repeated
//! runs and across the cached-adjacency fast path `evolve_surface_with`.
//! The per-vertex update is chunked for the thread pool, so running this
//! suite under different `RAYON_NUM_THREADS` (the verify script does)
//! extends the equality across worker counts.

use brainshift_imaging::volume::{Dims, Spacing, Volume};
use brainshift_imaging::Vec3;
use brainshift_mesh::TriSurface;
use brainshift_surface::{
    evolve_surface, evolve_surface_with, ActiveSurfaceConfig, DistanceForce, NeighborTable,
};
use proptest::prelude::*;

fn sphere_mask(center: Vec3, r: f64, n: usize) -> Volume<bool> {
    Volume::from_fn(Dims::new(n, n, n), Spacing::iso(1.0), move |x, y, z| {
        (Vec3::new(x as f64, y as f64, z as f64) - center).norm() < r
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Two runs from the same inputs produce bit-identical vertex
    /// positions and displacements, whatever target the surface chases.
    #[test]
    fn evolution_is_deterministic(
        target_r in 4.0f64..9.0,
        start_r in 4.0f64..9.0,
        dx in -2.0f64..2.0,
        dz in -2.0f64..2.0,
        step in 0.4f64..1.0,
    ) {
        let c = Vec3::new(16.0, 16.0, 16.0);
        let force =
            DistanceForce::from_mask(&sphere_mask(c + Vec3::new(dx, 0.0, dz), target_r, 32), 1.0);
        let start = TriSurface::sphere(c, start_r, 3);
        let cfg = ActiveSurfaceConfig { step, max_iterations: 60, ..Default::default() };
        let a = evolve_surface(&start, &force, &cfg);
        let b = evolve_surface(&start, &force, &cfg);
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(&a.positions, &b.positions);
        prop_assert_eq!(&a.displacements, &b.displacements);
        prop_assert!(a.final_distance.to_bits() == b.final_distance.to_bits());
    }

    /// The per-surgery cached adjacency (`NeighborTable` +
    /// `evolve_surface_with`) is bit-identical to the self-building entry
    /// point — reusing the table across scans cannot change the result.
    #[test]
    fn cached_adjacency_matches_internal_build(
        target_r in 4.0f64..9.0,
        start_r in 4.0f64..9.0,
        subdivisions in 2usize..4,
    ) {
        let c = Vec3::new(16.0, 16.0, 16.0);
        let force = DistanceForce::from_mask(&sphere_mask(c, target_r, 32), 1.0);
        let start = TriSurface::sphere(c, start_r, subdivisions);
        let cfg = ActiveSurfaceConfig { max_iterations: 40, ..Default::default() };
        let table = NeighborTable::build(&start);
        let a = evolve_surface(&start, &force, &cfg);
        let b = evolve_surface_with(&start, &table, &force, &cfg);
        prop_assert_eq!(a.iterations, b.iterations);
        prop_assert_eq!(&a.positions, &b.positions);
    }
}
