//! # brainshift-surface
//!
//! The paper's active-surface correspondence stage: an elastic membrane
//! (triangulated brain surface) iteratively deformed by image-derived
//! forces — a decreasing function of the data gradients with gray-level
//! priors — until it matches the target scan's brain surface. The
//! per-vertex displacements become the Dirichlet data of the biomechanical
//! volumetric simulation.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod evolve;
pub mod forces;

pub use evolve::{
    evolve_surface, evolve_surface_with, ActiveSurfaceConfig, ActiveSurfaceResult, NeighborTable,
};
pub use forces::{DistanceForce, EdgeForce, ExternalForce};
