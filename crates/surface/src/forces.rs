//! External force fields driving the active surface.
//!
//! "This is done iteratively by applying forces derived from the
//! volumetric data to an elastic membrane model of the surface. The
//! derived forces are a decreasing function of the data gradients, so as
//! to be minimized at the edges of objects in the volume. To increase
//! robustness and the convergence rate of the process, we have included
//! prior knowledge about the expected gray level and gradients of the
//! objects being matched." (paper §2.1.1, citing Ferrant et al.)

use brainshift_imaging::dtransform::signed_distance_transform;
use brainshift_imaging::filter::{gaussian_smooth, gradient};
use brainshift_imaging::{DisplacementField, Vec3, Volume};

/// Provides the external force pulling a surface vertex toward the target
/// object boundary, evaluated at a world-coordinate point.
pub trait ExternalForce: Sync {
    /// Force vector (arbitrary units, saturating near the boundary) at
    /// world point `p`.
    fn force(&self, p: Vec3) -> Vec3;

    /// Scalar "how far from the boundary" measure at `p` (0 on the
    /// boundary), used for convergence checks.
    fn boundary_distance(&self, p: Vec3) -> f64;
}

/// Force derived from the signed distance transform of a target mask: the
/// steepest descent of `½ φ²`, pointing toward the zero level set from
/// both sides. This is the robust potential used for the brain surface,
/// where the segmentation already identifies the target region.
///
/// The gradient field is precomputed once at construction and stored as
/// three flat `f32` arrays; the interior fast path samples φ and ∇φ in
/// one fused trilinear pass (the eight corner weights are shared), which
/// is the dominant operation of the active-surface iteration.
pub struct DistanceForce {
    /// Signed distance (mm).
    phi: Volume<f32>,
    /// Gradient components of φ, voxel-index aligned with `phi`.
    gx: Vec<f32>,
    gy: Vec<f32>,
    gz: Vec<f32>,
    /// Gain limiting the per-step pull (mm).
    pub max_step: f64,
}

impl DistanceForce {
    /// Build from a binary target mask (true = inside target object).
    pub fn from_mask(mask: &Volume<bool>, max_step: f64) -> DistanceForce {
        // The distance transform is already in millimetres (anisotropic
        // spacing honored).
        let phi = signed_distance_transform(mask);
        let g = gradient(&phi);
        let mut gx = Vec::with_capacity(g.len());
        let mut gy = Vec::with_capacity(g.len());
        let mut gz = Vec::with_capacity(g.len());
        for v in &g {
            gx.push(v.x as f32);
            gy.push(v.y as f32);
            gz.push(v.z as f32);
        }
        DistanceForce { phi, gx, gy, gz, max_step }
    }

    /// φ and ∇φ at continuous voxel coordinates, trilinearly interpolated
    /// with shared corner weights on the interior fast path. Boundary and
    /// outside samples fall back to the per-field rules: φ uses per-corner
    /// clamping (fully outside ⇒ 1e3), ∇φ clamps the sample point.
    fn sample_phi_grad(&self, p_vox: Vec3) -> (f64, Vec3) {
        let d = self.phi.dims();
        let x0 = p_vox.x.floor();
        let y0 = p_vox.y.floor();
        let z0 = p_vox.z.floor();
        let interior = x0 >= 0.0
            && y0 >= 0.0
            && z0 >= 0.0
            && x0 + 1.0 <= d.nx as f64 - 1.0
            && y0 + 1.0 <= d.ny as f64 - 1.0
            && z0 + 1.0 <= d.nz as f64 - 1.0;
        if interior {
            let (xi, yi, zi) = (x0 as usize, y0 as usize, z0 as usize);
            let fx = p_vox.x - x0;
            let fy = p_vox.y - y0;
            let fz = p_vox.z - z0;
            let base = d.index(xi, yi, zi);
            let sx = 1usize;
            let sy = d.nx;
            let sz = d.nx * d.ny;
            let phi = self.phi.data();
            let mut acc_p = 0.0f64;
            let mut acc_g = Vec3::ZERO;
            for (oz, wz) in [(0usize, 1.0 - fz), (sz, fz)] {
                for (oy, wy) in [(0usize, 1.0 - fy), (sy, fy)] {
                    let wzy = wz * wy;
                    for (ox, wx) in [(0usize, 1.0 - fx), (sx, fx)] {
                        let w = wzy * wx;
                        if w == 0.0 {
                            continue;
                        }
                        let i = base + oz + oy + ox;
                        acc_p += w * phi[i] as f64;
                        acc_g.x += w * self.gx[i] as f64;
                        acc_g.y += w * self.gy[i] as f64;
                        acc_g.z += w * self.gz[i] as f64;
                    }
                }
            }
            return (acc_p, acc_g);
        }
        let phi = brainshift_imaging::interp::sample_trilinear(&self.phi, p_vox, 1e3) as f64;
        (phi, self.sample_grad_clamped(p_vox))
    }

    /// ∇φ with the sample point clamped into the grid (the behaviour of
    /// `DisplacementField::sample`, kept for boundary/outside points).
    fn sample_grad_clamped(&self, p_vox: Vec3) -> Vec3 {
        let d = self.phi.dims();
        let cx = p_vox.x.clamp(0.0, d.nx as f64 - 1.0);
        let cy = p_vox.y.clamp(0.0, d.ny as f64 - 1.0);
        let cz = p_vox.z.clamp(0.0, d.nz as f64 - 1.0);
        let x0 = cx.floor() as usize;
        let y0 = cy.floor() as usize;
        let z0 = cz.floor() as usize;
        let x1 = (x0 + 1).min(d.nx - 1);
        let y1 = (y0 + 1).min(d.ny - 1);
        let z1 = (z0 + 1).min(d.nz - 1);
        let fx = cx - x0 as f64;
        let fy = cy - y0 as f64;
        let fz = cz - z0 as f64;
        let mut acc = Vec3::ZERO;
        for (iz, wz) in [(z0, 1.0 - fz), (z1, fz)] {
            for (iy, wy) in [(y0, 1.0 - fy), (y1, fy)] {
                for (ix, wx) in [(x0, 1.0 - fx), (x1, fx)] {
                    let w = wx * wy * wz;
                    if w != 0.0 {
                        let i = d.index(ix, iy, iz);
                        acc.x += w * self.gx[i] as f64;
                        acc.y += w * self.gy[i] as f64;
                        acc.z += w * self.gz[i] as f64;
                    }
                }
            }
        }
        acc
    }

    fn sample_phi(&self, p_vox: Vec3) -> f64 {
        brainshift_imaging::interp::sample_trilinear(&self.phi, p_vox, 1e3) as f64
    }
}

impl ExternalForce for DistanceForce {
    fn force(&self, p: Vec3) -> Vec3 {
        let sp = self.phi.spacing();
        let p_vox = Vec3::new(p.x / sp.dx, p.y / sp.dy, p.z / sp.dz);
        let (phi, g) = self.sample_phi_grad(p_vox);
        // Descend ½φ²: step = −φ ∇φ, saturated to max_step.
        let raw = -(g * phi);
        let n = raw.norm();
        if n > self.max_step {
            raw * (self.max_step / n)
        } else {
            raw
        }
    }

    fn boundary_distance(&self, p: Vec3) -> f64 {
        let sp = self.phi.spacing();
        let p_vox = Vec3::new(p.x / sp.dx, p.y / sp.dy, p.z / sp.dz);
        self.sample_phi(p_vox).abs()
    }
}

/// Edge-seeking force from image gradients with a gray-level prior (the
/// paper's formulation): the potential is low where the gradient magnitude
/// is high *and* the local intensity matches the expected gray level of
/// the object boundary.
pub struct EdgeForce {
    potential: Volume<f32>,
    grad: DisplacementField,
    /// Saturation of the force magnitude (mm per step).
    pub max_step: f64,
}

impl EdgeForce {
    /// Build from an intensity image. `expected_gray` and `gray_tolerance`
    /// encode the prior: edges at implausible intensities are penalized.
    pub fn from_image(
        image: &Volume<f32>,
        smoothing_sigma: f64,
        expected_gray: f32,
        gray_tolerance: f32,
        max_step: f64,
    ) -> EdgeForce {
        let smoothed = gaussian_smooth(image, smoothing_sigma);
        let g = gradient(&smoothed);
        let gmax = g.iter().map(|v| v.norm()).fold(1e-12, f64::max);
        // Potential in [0,1]: decreasing in |∇I| (paper), increasing with
        // gray-level mismatch (prior).
        let d = smoothed.dims();
        let mut pot = Volume::zeros(d, smoothed.spacing());
        for idx in 0..d.len() {
            let gm = g[idx].norm() / gmax;
            let gray = smoothed.data()[idx];
            let mismatch = ((gray - expected_gray) / gray_tolerance).powi(2).min(4.0) as f64;
            pot.data_mut()[idx] = ((1.0 - gm) + 0.25 * mismatch) as f32;
        }
        let pot = gaussian_smooth(&pot, 1.0);
        let pg = gradient(&pot);
        let mut grad = DisplacementField::zeros(d, pot.spacing());
        grad.data_mut().copy_from_slice(&pg);
        EdgeForce { potential: pot, grad, max_step }
    }
}

impl ExternalForce for EdgeForce {
    fn force(&self, p: Vec3) -> Vec3 {
        let sp = self.potential.spacing();
        let p_vox = Vec3::new(p.x / sp.dx, p.y / sp.dy, p.z / sp.dz);
        let g = self.grad.sample(p_vox);
        let raw = -g * 50.0; // descend the potential
        let n = raw.norm();
        if n > self.max_step {
            raw * (self.max_step / n)
        } else {
            raw
        }
    }

    fn boundary_distance(&self, p: Vec3) -> f64 {
        let sp = self.potential.spacing();
        let p_vox = Vec3::new(p.x / sp.dx, p.y / sp.dy, p.z / sp.dz);
        brainshift_imaging::interp::sample_trilinear(&self.potential, p_vox, 1.0) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::volume::{Dims, Spacing};

    fn sphere_mask(r: f64) -> Volume<bool> {
        Volume::from_fn(Dims::new(24, 24, 24), Spacing::iso(1.0), move |x, y, z| {
            let p = Vec3::new(x as f64 - 12.0, y as f64 - 12.0, z as f64 - 12.0);
            p.norm() < r
        })
    }

    #[test]
    fn distance_force_points_toward_boundary() {
        let f = DistanceForce::from_mask(&sphere_mask(6.0), 2.0);
        let c = Vec3::new(12.0, 12.0, 12.0);
        // Outside: force points inward (toward the sphere).
        let p_out = c + Vec3::new(10.0, 0.0, 0.0);
        let fo = f.force(p_out);
        assert!(fo.x < 0.0, "outside force should point inward: {fo:?}");
        // Inside near centre: force points outward.
        let p_in = c + Vec3::new(2.0, 0.0, 0.0);
        let fi = f.force(p_in);
        assert!(fi.x > 0.0, "inside force should point outward: {fi:?}");
    }

    #[test]
    fn distance_force_small_on_boundary() {
        let f = DistanceForce::from_mask(&sphere_mask(6.0), 2.0);
        let on = Vec3::new(12.0 + 6.0, 12.0, 12.0);
        let far = Vec3::new(12.0 + 11.0, 12.0, 12.0);
        assert!(f.boundary_distance(on) < 1.3);
        assert!(f.boundary_distance(far) > 3.0);
    }

    #[test]
    fn fused_sample_matches_separate_paths_inside_grid() {
        let f = DistanceForce::from_mask(&sphere_mask(6.0), 100.0);
        for p in [
            Vec3::new(12.3, 11.7, 12.9),
            Vec3::new(4.5, 18.2, 9.1),
            Vec3::new(0.25, 0.75, 0.5),
            Vec3::new(22.0, 22.0, 22.0),
        ] {
            // The scalar path rounds through f32; the fused path keeps
            // its f64 accumulator, so compare at f32 precision.
            let (phi, g) = f.sample_phi_grad(p);
            assert!((phi - f.sample_phi(p)).abs() < 1e-4, "phi mismatch at {p:?}");
            let gs = f.sample_grad_clamped(p);
            assert!((g - gs).norm() < 1e-9, "grad mismatch at {p:?}");
        }
    }

    #[test]
    fn force_finite_outside_grid() {
        let f = DistanceForce::from_mask(&sphere_mask(6.0), 1.5);
        for p in [Vec3::new(-10.0, 12.0, 12.0), Vec3::new(12.0, 12.0, 200.0)] {
            let v = f.force(p);
            assert!(v.x.is_finite() && v.y.is_finite() && v.z.is_finite());
            assert!(v.norm() <= 1.5 + 1e-9);
        }
    }

    #[test]
    fn force_saturates_at_max_step() {
        let f = DistanceForce::from_mask(&sphere_mask(4.0), 1.5);
        for r in [9.0, 10.0, 11.0] {
            let p = Vec3::new(12.0 + r, 12.0, 12.0);
            assert!(f.force(p).norm() <= 1.5 + 1e-9);
        }
    }

    #[test]
    fn edge_force_descends_toward_edge() {
        // Step edge at x = 12 with known gray levels.
        let img = Volume::from_fn(Dims::new(24, 24, 24), Spacing::iso(1.0), |x, _, _| {
            if x < 12 {
                100.0
            } else {
                0.0
            }
        });
        let f = EdgeForce::from_image(&img, 1.0, 50.0, 50.0, 1.0);
        // The potential at the edge must be below the potential away from
        // it, so the boundary_distance proxy decreases toward x=12.
        let at_edge = f.boundary_distance(Vec3::new(12.0, 12.0, 12.0));
        let off_edge = f.boundary_distance(Vec3::new(4.0, 12.0, 12.0));
        assert!(at_edge < off_edge, "{at_edge} vs {off_edge}");
    }
}
