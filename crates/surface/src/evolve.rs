//! Elastic-membrane evolution of the active surface.
//!
//! "The active surface algorithm iteratively deforms the surface of the
//! first brain volume to match that of the second volume" — each vertex
//! feels the external image force plus internal membrane (tension +
//! rigidity-lite) forces; explicit iteration runs until the surface sits
//! on the target boundary. The resulting per-vertex displacements are the
//! correspondences handed to the FEM as Dirichlet data.
//!
//! The iteration is the per-scan hot loop, so it is written around reuse:
//! vertex adjacency is a flat CSR-style [`NeighborTable`] built once per
//! surgery, positions double-buffer between two preallocated arrays, and
//! the convergence residual is reduced deterministically (parallel fill
//! of a distance buffer, serial sum) so the result is independent of the
//! worker thread count.

use crate::forces::ExternalForce;
use brainshift_imaging::Vec3;
use brainshift_mesh::TriSurface;
use rayon::prelude::*;

/// Vertices per parallel chunk of the update loop. Fixed (rather than
/// derived from the thread count) so the work decomposition is stable.
const VERTEX_CHUNK: usize = 512;

/// Flat vertex→vertex adjacency (CSR layout): `indices[offsets[i]..
/// offsets[i+1]]` are the neighbours of vertex `i`, sorted. One build per
/// surgery replaces the per-call `Vec<Vec<usize>>` of
/// `TriSurface::vertex_neighbors`, and the evolution loop walks a single
/// contiguous array instead of chasing per-vertex heap allocations.
#[derive(Debug, Clone)]
pub struct NeighborTable {
    offsets: Vec<u32>,
    indices: Vec<u32>,
}

impl NeighborTable {
    /// Build the adjacency of `surface`'s triangle edges.
    pub fn build(surface: &TriSurface) -> NeighborTable {
        let nested = surface.vertex_neighbors();
        let mut offsets = Vec::with_capacity(nested.len() + 1);
        let mut indices = Vec::with_capacity(nested.iter().map(Vec::len).sum());
        offsets.push(0u32);
        for adj in &nested {
            for &j in adj {
                indices.push(j as u32);
            }
            offsets.push(indices.len() as u32);
        }
        NeighborTable { offsets, indices }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Neighbours of vertex `i`, sorted ascending.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.indices[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// Evolution parameters.
#[derive(Debug, Clone)]
pub struct ActiveSurfaceConfig {
    /// Step size multiplying the total force (mm per unit force).
    pub step: f64,
    /// Membrane tension weight (pull toward neighbor centroid).
    pub tension: f64,
    /// Maximum iterations.
    pub max_iterations: usize,
    /// Converged when the mean absolute boundary distance falls below
    /// this (mm). Discrete distance maps put the zero level ~half a voxel
    /// off the true surface, so sub-voxel tolerances cannot be reached.
    pub tolerance: f64,
    /// Check convergence every `check_every` iterations.
    pub check_every: usize,
}

impl Default for ActiveSurfaceConfig {
    fn default() -> Self {
        ActiveSurfaceConfig {
            step: 0.8,
            tension: 0.1,
            max_iterations: 400,
            tolerance: 1.0,
            check_every: 10,
        }
    }
}

/// Result of an active-surface run.
#[derive(Debug, Clone)]
pub struct ActiveSurfaceResult {
    /// Final vertex positions.
    pub positions: Vec<Vec3>,
    /// Displacement of each vertex from its initial position (mm) — the
    /// surface correspondences for the biomechanical simulation.
    pub displacements: Vec<Vec3>,
    /// Iterations executed.
    pub iterations: usize,
    /// Mean |boundary distance| at the end (mm).
    pub final_distance: f64,
    /// Whether the convergence criterion was met.
    pub converged: bool,
}

/// Evolve `surface` under `force` until its vertices sit on the target
/// boundary. Builds the adjacency table internally; per-scan callers
/// should build a [`NeighborTable`] once and use [`evolve_surface_with`].
pub fn evolve_surface(
    surface: &TriSurface,
    force: &dyn ExternalForce,
    cfg: &ActiveSurfaceConfig,
) -> ActiveSurfaceResult {
    evolve_surface_with(surface, &NeighborTable::build(surface), force, cfg)
}

/// [`evolve_surface`] with a caller-provided adjacency table (must belong
/// to `surface`'s triangulation).
pub fn evolve_surface_with(
    surface: &TriSurface,
    neighbors: &NeighborTable,
    force: &dyn ExternalForce,
    cfg: &ActiveSurfaceConfig,
) -> ActiveSurfaceResult {
    assert_eq!(neighbors.num_vertices(), surface.vertices.len(), "adjacency table mismatch");
    let initial = &surface.vertices;
    let n = initial.len();
    let mut pos = initial.clone();
    let mut next = vec![Vec3::ZERO; n];
    let mut dist = vec![0.0f64; n];
    let mut iterations = 0;
    let mut converged = false;
    let mut final_distance = f64::INFINITY;

    // Deterministic mean residual: parallel per-vertex fill, serial sum
    // (a parallel float `.sum()` would depend on chunk boundaries).
    let mean_distance = |pos: &[Vec3], dist: &mut [f64]| -> f64 {
        dist.par_chunks_mut(VERTEX_CHUNK).enumerate().for_each(|(c, chunk)| {
            let base = c * VERTEX_CHUNK;
            for (i, d) in chunk.iter_mut().enumerate() {
                *d = force.boundary_distance(pos[base + i]);
            }
        });
        dist.iter().sum::<f64>() / dist.len().max(1) as f64
    };

    let mut prev_dist = f64::INFINITY;
    let mut stalled_checks = 0u32;
    while iterations < cfg.max_iterations {
        iterations += 1;
        next.par_chunks_mut(VERTEX_CHUNK).enumerate().for_each(|(c, chunk)| {
            let base = c * VERTEX_CHUNK;
            for (k, out) in chunk.iter_mut().enumerate() {
                let i = base + k;
                let p = pos[i];
                let f_ext = force.force(p);
                // Membrane tension: pull toward the neighbor centroid
                // (umbrella-operator Laplacian).
                let adj = neighbors.neighbors(i);
                let f_int = if adj.is_empty() {
                    Vec3::ZERO
                } else {
                    let mut c = Vec3::ZERO;
                    for &j in adj {
                        c += pos[j as usize];
                    }
                    c = c / adj.len() as f64;
                    (c - p) * cfg.tension
                };
                *out = p + (f_ext + f_int) * cfg.step;
            }
        });
        std::mem::swap(&mut pos, &mut next);
        if cfg.check_every > 0 && iterations % cfg.check_every == 0 {
            let mean_dist = mean_distance(&pos, &mut dist);
            final_distance = mean_dist;
            let improvement = prev_dist - mean_dist;
            // Converged only when the residual is small AND has stopped
            // improving — a lagging minority of vertices (e.g. the sunken
            // cap under a craniotomy) must not be cut off by an early
            // mean-level pass.
            let still_improving = improvement > 0.02 * cfg.tolerance;
            if mean_dist < cfg.tolerance && !still_improving {
                converged = true;
                break;
            }
            // Early exit on a stalled residual above tolerance: two
            // consecutive checks without meaningful improvement mean the
            // surface is stuck (force balance reached away from the
            // target) and further iterations only burn the scan budget.
            if mean_dist >= cfg.tolerance && improvement <= 0.02 * cfg.tolerance.abs() {
                stalled_checks += 1;
                if stalled_checks >= 2 {
                    break;
                }
            } else {
                stalled_checks = 0;
            }
            prev_dist = mean_dist;
        }
    }
    if final_distance.is_infinite() {
        final_distance = mean_distance(&pos, &mut dist);
        converged = final_distance < cfg.tolerance;
    }
    let displacements = pos.iter().zip(initial).map(|(a, b)| *a - *b).collect();
    ActiveSurfaceResult {
        positions: pos,
        displacements,
        iterations,
        final_distance,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forces::DistanceForce;
    use brainshift_imaging::volume::{Dims, Spacing, Volume};

    fn sphere_mask(center: Vec3, r: f64, n: usize) -> Volume<bool> {
        Volume::from_fn(Dims::new(n, n, n), Spacing::iso(1.0), move |x, y, z| {
            (Vec3::new(x as f64, y as f64, z as f64) - center).norm() < r
        })
    }

    #[test]
    fn sphere_shrinks_onto_smaller_target() {
        let c = Vec3::new(16.0, 16.0, 16.0);
        let target = DistanceForce::from_mask(&sphere_mask(c, 6.0, 32), 1.0);
        let start = TriSurface::sphere(c, 11.0, 3);
        let res = evolve_surface(&start, &target, &ActiveSurfaceConfig::default());
        assert!(res.converged, "not converged: dist {}", res.final_distance);
        // All vertices near radius 6.
        for p in &res.positions {
            let r = (*p - c).norm();
            assert!((r - 6.0).abs() < 1.5, "vertex at radius {r}");
        }
        // Displacements point inward with magnitude ≈ 5.
        let mean_mag: f64 =
            res.displacements.iter().map(|d| d.norm()).sum::<f64>() / res.displacements.len() as f64;
        assert!((mean_mag - 5.0).abs() < 1.5, "mean displacement {mean_mag}");
    }

    #[test]
    fn sphere_grows_onto_larger_target() {
        let c = Vec3::new(16.0, 16.0, 16.0);
        let target = DistanceForce::from_mask(&sphere_mask(c, 10.0, 32), 1.0);
        let start = TriSurface::sphere(c, 5.0, 3);
        let res = evolve_surface(&start, &target, &ActiveSurfaceConfig::default());
        assert!(res.converged);
        for p in &res.positions {
            let r = (*p - c).norm();
            assert!((r - 10.0).abs() < 1.5, "vertex at radius {r}");
        }
    }

    #[test]
    fn tracks_translated_target() {
        // Target sphere shifted by 3 mm: recovered displacements should
        // average ≈ the shift on the near side; total correspondence error
        // small.
        let c = Vec3::new(16.0, 16.0, 16.0);
        let shift = Vec3::new(0.0, 0.0, -3.0);
        let target = DistanceForce::from_mask(&sphere_mask(c + shift, 8.0, 32), 1.0);
        let start = TriSurface::sphere(c, 8.0, 3);
        let res = evolve_surface(&start, &target, &ActiveSurfaceConfig::default());
        assert!(res.converged, "dist {}", res.final_distance);
        for p in &res.positions {
            let r = (*p - (c + shift)).norm();
            assert!((r - 8.0).abs() < 1.6, "vertex at radius {r}");
        }
    }

    #[test]
    fn already_on_target_barely_moves() {
        let c = Vec3::new(16.0, 16.0, 16.0);
        let target = DistanceForce::from_mask(&sphere_mask(c, 8.0, 32), 1.0);
        let start = TriSurface::sphere(c, 8.0, 3);
        let res = evolve_surface(&start, &target, &ActiveSurfaceConfig::default());
        assert!(res.converged);
        let max_disp = res.displacements.iter().map(|d| d.norm()).fold(0.0, f64::max);
        assert!(max_disp < 2.0, "moved {max_disp} despite starting on target");
    }

    #[test]
    fn iteration_budget_respected() {
        let c = Vec3::new(16.0, 16.0, 16.0);
        let target = DistanceForce::from_mask(&sphere_mask(c, 6.0, 32), 1.0);
        let start = TriSurface::sphere(c, 12.0, 2);
        let cfg = ActiveSurfaceConfig { max_iterations: 3, ..Default::default() };
        let res = evolve_surface(&start, &target, &cfg);
        assert_eq!(res.iterations, 3);
        assert!(!res.converged);
    }

    #[test]
    fn neighbor_table_matches_nested_adjacency() {
        let s = TriSurface::sphere(Vec3::new(0.0, 0.0, 0.0), 5.0, 3);
        let nested = s.vertex_neighbors();
        let table = NeighborTable::build(&s);
        assert_eq!(table.num_vertices(), nested.len());
        for (i, adj) in nested.iter().enumerate() {
            let flat: Vec<usize> = table.neighbors(i).iter().map(|&j| j as usize).collect();
            assert_eq!(&flat, adj);
        }
    }

    #[test]
    fn reused_table_matches_internal_build() {
        let c = Vec3::new(16.0, 16.0, 16.0);
        let target = DistanceForce::from_mask(&sphere_mask(c, 6.0, 32), 1.0);
        let start = TriSurface::sphere(c, 10.0, 3);
        let table = NeighborTable::build(&start);
        let a = evolve_surface(&start, &target, &ActiveSurfaceConfig::default());
        let b = evolve_surface_with(&start, &table, &target, &ActiveSurfaceConfig::default());
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.positions, b.positions);
    }

    #[test]
    fn stalled_evolution_exits_early() {
        // A force balance the surface cannot escape: zero external force
        // with a residual held far above tolerance. Without the stall
        // exit this would burn all 400 iterations.
        struct StuckForce;
        impl crate::forces::ExternalForce for StuckForce {
            fn force(&self, _p: Vec3) -> Vec3 {
                Vec3::ZERO
            }
            fn boundary_distance(&self, _p: Vec3) -> f64 {
                10.0
            }
        }
        let start = TriSurface::sphere(Vec3::new(0.0, 0.0, 0.0), 8.0, 2);
        let cfg = ActiveSurfaceConfig::default();
        let res = evolve_surface(&start, &StuckForce, &cfg);
        assert!(!res.converged);
        // First check just seeds prev_dist; the next two stall and break.
        assert_eq!(res.iterations, 3 * cfg.check_every, "should stop after two stalled checks");
        assert!((res.final_distance - 10.0).abs() < 1e-12);
    }

    #[test]
    fn membrane_tension_smooths_noise() {
        // Give one vertex a spike by starting from a perturbed sphere; the
        // membrane term should pull it back toward its neighbors even with
        // zero external force.
        struct NullForce;
        impl crate::forces::ExternalForce for NullForce {
            fn force(&self, _p: Vec3) -> Vec3 {
                Vec3::ZERO
            }
            fn boundary_distance(&self, _p: Vec3) -> f64 {
                0.0
            }
        }
        let c = Vec3::new(16.0, 16.0, 16.0);
        let mut start = TriSurface::sphere(c, 8.0, 2);
        let spike_idx = 0;
        let before_spike = start.vertices[spike_idx];
        start.vertices[spike_idx] = c + (before_spike - c) * 1.5;
        let cfg = ActiveSurfaceConfig { max_iterations: 20, tolerance: -1.0, ..Default::default() };
        let res = evolve_surface(&start, &NullForce, &cfg);
        let r_after = (res.positions[spike_idx] - c).norm();
        let r_spiked = (start.vertices[spike_idx] - c).norm();
        assert!(r_after < r_spiked - 0.5, "spike not smoothed: {r_after} vs {r_spiked}");
    }
}
