//! Property tests: scenario generation is a pure function of
//! `(ScenarioKind, seed)`.
//!
//! Two invocations with the same pair must agree **bitwise** — node
//! fields, intraoperative intensities, stats — regardless of thread
//! count (`scripts/verify.sh` runs this file at `RAYON_NUM_THREADS=1`
//! and `=4`); distinct seeds must produce genuinely different cases.
//! Case counts are kept small: each proptest case is a full FEM ground
//! truth, so six per property is already ~50 generator runs.

use brainshift_scenario::{generate_scenario, ScenarioKind};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    #[test]
    fn same_seed_same_kind_is_bitwise_identical(
        seed in 0u64..48,
        kind_idx in 0usize..4,
    ) {
        let kind = ScenarioKind::ALL[kind_idx];
        let a = generate_scenario(kind, seed);
        let b = generate_scenario(kind, seed);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.name, &b.name);
                prop_assert_eq!(a.keypoint_order, b.keypoint_order);
                prop_assert_eq!(a.stats.carve_retries, b.stats.carve_retries);
                prop_assert_eq!(a.stats.contact_clamped_nodes, b.stats.contact_clamped_nodes);
                prop_assert_eq!(
                    a.stats.peak_displacement_mm.to_bits(),
                    b.stats.peak_displacement_mm.to_bits()
                );
                prop_assert_eq!(a.gt_displacements.len(), b.gt_displacements.len());
                for (u, v) in a.gt_displacements.iter().zip(&b.gt_displacements) {
                    prop_assert_eq!(u.x.to_bits(), v.x.to_bits());
                    prop_assert_eq!(u.y.to_bits(), v.y.to_bits());
                    prop_assert_eq!(u.z.to_bits(), v.z.to_bits());
                }
                for (x, y) in
                    a.intraop_intensity.data().iter().zip(b.intraop_intensity.data())
                {
                    prop_assert_eq!(x.to_bits(), y.to_bits());
                }
            }
            // A failing seed must at least fail identically.
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => {
                return Err(TestCaseError::fail(format!(
                    "same (kind, seed) disagreed on success: {:?} vs {:?}",
                    a.map(|c| c.name),
                    b.map(|c| c.name)
                )))
            }
        }
    }

    #[test]
    fn distinct_seeds_give_distinct_cases(
        seed in 0u64..32,
        kind_idx in 0usize..4,
    ) {
        let kind = ScenarioKind::ALL[kind_idx];
        let a = generate_scenario(kind, seed);
        let b = generate_scenario(kind, seed + 1);
        if let (Ok(a), Ok(b)) = (a, b) {
            prop_assert!(a.name != b.name, "names collided: {}", a.name);
            // The seeded direction/magnitude draws must actually move the
            // physics, not just the label.
            prop_assert!(
                a.stats.peak_displacement_mm.to_bits()
                    != b.stats.peak_displacement_mm.to_bits(),
                "seeds {} and {} produced identical peak displacement",
                seed,
                seed + 1
            );
        }
    }
}
