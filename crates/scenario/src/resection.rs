//! Tumor-resection cavity collapse: carve, re-mesh, snap, release.
//!
//! A seeded ellipsoidal cavity is carved out of the phantom label volume
//! ([`brainshift_imaging::phantom::carve_cavity`]); the carved anatomy is
//! re-meshed (the cavity becomes a hole — `RESECTION` is not brain
//! tissue), and mesh nodes left inside the cavity by straddling elements
//! are snapped radially onto the cavity surface. Snapping can flatten
//! elements into slivers or invert them outright — exactly the degeneracy
//! `TetMesh::validate_quality` must catch — so the generator validates
//! after every carve and retries with a jittered cavity seed instead of
//! ever emitting an invalid mesh (Bucki et al., arXiv 0709.0686 models
//! the same cavity-collapse mechanics).

use crate::common::{finish_case, gt_solve_cfg, phantom_config, STREAM_CAVITY, STREAM_MAGNITUDE};
use crate::rng::draw_range;
use crate::{ScenarioCase, ScenarioError, ScenarioKind, ScenarioStats, SCENARIO_MIN_RADIUS_RATIO};
use brainshift_fem::{assemble_directed_gravity, solve_with_loads, DirichletBcs, MaterialTable};
use brainshift_imaging::phantom::{
    carve_cavity, generate_from_model, render_intensity, Ellipsoid, HeadModel, PhantomScan,
};
use brainshift_imaging::{labels, Vec3};
use brainshift_mesh::{boundary_nodes, mesh_labeled_volume, MesherConfig, TetMesh};

/// Jittered cavities attempted before giving up.
pub const MAX_CARVE_ATTEMPTS: usize = 8;

/// Boundary nodes within this distance of the cavity surface (after
/// snapping) count as the cavity wall — the release surface that
/// receives the collapse displacement. Sized well below the ~10 mm
/// element edge so the wall stays a thin shell around the hole.
const WALL_INCLUDE_MM: f64 = 4.0;

/// The seeded cavity of attempt `attempt`: centred near the tumor with a
/// per-attempt jitter that grows with each retry. The semi-axis floor of
/// 9 mm guarantees the cavity swallows at least one element centroid on
/// the 10 mm node grid (covering radius ≈ 8.7 mm), so carving always
/// opens a hole.
fn cavity_for_attempt(seed: u64, model: &HeadModel, attempt: usize) -> Ellipsoid {
    let base = (attempt as u64) * 8;
    let jitter_mm = 1.5 + attempt as f64;
    let center = model.tumor.center
        + Vec3::new(
            draw_range(seed, STREAM_CAVITY, base, -jitter_mm, jitter_mm),
            draw_range(seed, STREAM_CAVITY, base + 1, -jitter_mm, jitter_mm),
            draw_range(seed, STREAM_CAVITY, base + 2, -jitter_mm, jitter_mm),
        );
    let radii = Vec3::new(
        draw_range(seed, STREAM_CAVITY, base + 3, 9.0, 14.0),
        draw_range(seed, STREAM_CAVITY, base + 4, 9.0, 14.0),
        draw_range(seed, STREAM_CAVITY, base + 5, 9.0, 14.0),
    );
    Ellipsoid::axis_aligned(center, radii)
}

/// Approximate signed distance (mm) from `p` to the cavity surface along
/// the radial ray: negative inside, positive outside. `(level - 1)`
/// rescaled by the local radius `|p - center| / level`.
fn signed_wall_distance(cavity: &Ellipsoid, p: Vec3) -> f64 {
    let lvl = cavity.level(p).max(1e-9);
    (lvl - 1.0) * (p - cavity.center).norm() / lvl
}

/// Carve the cavity, re-mesh, and snap the hole's rim onto the cavity
/// surface. Returns the carved labels, the conformed mesh, and the wall
/// node set (the snapped boundary nodes — the release surface), or a
/// description of why this attempt is unusable.
fn carve_and_mesh(
    reference: &brainshift_imaging::Volume<u8>,
    cavity: &Ellipsoid,
) -> Result<(brainshift_imaging::Volume<u8>, TetMesh, Vec<usize>), String> {
    let carved = carve_cavity(reference, cavity, labels::RESECTION);
    // Resection meshes at step 1 (5 mm cells, finer than the other
    // scenario classes): the mesher keeps any cell with a surviving
    // corner voxel, so a cell only drops out when the cavity swallows it
    // whole — on the coarse 10 mm grid a clinically-sized cavity never
    // does, and no hole would open.
    let mut mesh = mesh_labeled_volume(
        &carved,
        &MesherConfig { step: 1, include: labels::is_brain_tissue },
    );
    if mesh.num_tets() == 0 {
        return Err("carved anatomy meshed to zero tetrahedra".to_string());
    }
    // Removing the elements whose centroid fell inside the cavity leaves
    // a stair-stepped hole with some straddling-element nodes still
    // strictly inside it. Snap those outward onto the implicit surface,
    // but guard each move: a node whose projection would invert an
    // incident element stays put (an unconditional snap flattens every
    // tet whose other three nodes already sit near the wall). The guard
    // rules out inversions; near-flat slivers can still slip through —
    // the exact degeneracy the quality gate below exists to catch.
    let mut incident: Vec<Vec<usize>> = vec![Vec::new(); mesh.nodes.len()];
    for (t, tet) in mesh.tets.iter().enumerate() {
        for &n in tet {
            incident[n].push(t);
        }
    }
    for n in 0..mesh.nodes.len() {
        let p = mesh.nodes[n];
        if signed_wall_distance(cavity, p) < 0.0 {
            mesh.nodes[n] = cavity.project_surface(p);
            if incident[n].iter().any(|&t| mesh.tet_volume(t) <= 1e-9) {
                mesh.nodes[n] = p;
            }
        }
    }
    mesh.validate_quality(SCENARIO_MIN_RADIUS_RATIO).map_err(|e| e.to_string())?;
    // The wall: boundary nodes on or near the (now conformed) surface.
    let mut wall = Vec::new();
    for &n in boundary_nodes(&mesh).iter() {
        if signed_wall_distance(cavity, mesh.nodes[n]) <= WALL_INCLUDE_MM {
            wall.push(n);
        }
    }
    if wall.len() < 4 {
        return Err(format!(
            "cavity intersects too little meshed tissue ({} wall nodes)",
            wall.len()
        ));
    }
    Ok((carved, mesh, wall))
}

/// Generate a resection-collapse case. Pure function of `seed`.
pub fn generate(seed: u64) -> Result<ScenarioCase, ScenarioError> {
    let pcfg = phantom_config(seed);
    let model = HeadModel::fit(pcfg.dims, pcfg.spacing, &pcfg);
    let preop = generate_from_model(&pcfg, &model);

    let mut last_err = String::new();
    let mut found = None;
    for attempt in 0..MAX_CARVE_ATTEMPTS {
        let cavity = cavity_for_attempt(seed, &model, attempt);
        match carve_and_mesh(&preop.labels, &cavity) {
            Ok((carved, mesh, wall)) => {
                found = Some((cavity, carved, mesh, wall, attempt));
                break;
            }
            Err(e) => last_err = e,
        }
    }
    let Some((cavity, carved, mesh, wall, retries)) = found else {
        return Err(ScenarioError::CavityRetriesExhausted {
            seed,
            attempts: MAX_CARVE_ATTEMPTS,
            last: last_err,
        });
    };

    // Reference scan of the carved anatomy (the surgery is prepared from
    // the post-resection state; the collapse then deforms it).
    let preop = PhantomScan { intensity: render_intensity(&carved, &pcfg), labels: carved };

    // Cavity-surface release: wall nodes collapse radially inward by a
    // seeded fraction of the local cavity radius; the outer boundary
    // stays skull-supported; gravity loads the remaining tissue.
    let collapse_frac = draw_range(seed, STREAM_MAGNITUDE, 0, 0.15, 0.35);
    let mut bcs = DirichletBcs::new();
    for &n in boundary_nodes(&mesh).iter() {
        bcs.set(n, Vec3::ZERO);
    }
    for &n in &wall {
        let p = mesh.nodes[n];
        let inward = (cavity.center - p).normalized();
        let local_radius = (p - cavity.center).norm();
        bcs.set(n, inward * (collapse_frac * local_radius));
    }
    let f = assemble_directed_gravity(&mesh, Vec3::new(0.0, 0.0, -1.0));
    let sol = solve_with_loads(&mesh, &MaterialTable::homogeneous(), &bcs, &f, &gt_solve_cfg())?;
    if !sol.stats.converged() {
        return Err(ScenarioError::GroundTruthDiverged {
            relative_residual: sol.stats.relative_residual,
        });
    }
    let stats = ScenarioStats {
        carve_retries: retries,
        fem_iterations: sol.stats.iterations,
        ..Default::default()
    };
    finish_case(
        ScenarioKind::ResectionCollapse,
        seed,
        &pcfg,
        preop,
        mesh,
        sol.displacements,
        Vec::new(),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn carved_mesh_always_passes_the_quality_gate() {
        // The satellite regression: carve-then-validate across seeds. The
        // generator must never emit a mesh the sliver gate rejects — it
        // retries with a jittered cavity instead.
        for seed in 0..6u64 {
            let case = generate(seed).expect("generation failed");
            assert!(case.mesh.validate_quality(SCENARIO_MIN_RADIUS_RATIO).is_ok());
            assert!(case.preop.labels.count_label(labels::RESECTION) > 0);
            assert!(case.stats.peak_displacement_mm > 0.1, "no collapse happened");
        }
    }

    #[test]
    fn snapping_conforms_nodes_to_the_cavity_surface() {
        let case = generate(0).expect("generation failed");
        // Re-derive the accepted cavity: with stats.carve_retries known,
        // the cavity is a pure function of (seed, attempt).
        let model = {
            let pcfg = crate::common::phantom_config(0);
            HeadModel::fit(pcfg.dims, pcfg.spacing, &pcfg)
        };
        let cavity = cavity_for_attempt(0, &model, case.stats.carve_retries);
        // Snapping conformed part of the rim exactly onto the implicit
        // surface (level 1 to projection precision)...
        let on_wall = case
            .mesh
            .nodes
            .iter()
            .filter(|p| (cavity.level(**p) - 1.0).abs() <= 1e-9)
            .count();
        assert!(on_wall >= 4, "only {on_wall} nodes conformed to the cavity surface");
        // ...and the inversion guard means every element stays positively
        // oriented even where deep nodes had to stay put.
        for t in 0..case.mesh.num_tets() {
            assert!(case.mesh.tet_volume(t) > 0.0, "tet {t} inverted by snapping");
        }
    }
}
