//! # brainshift-scenario
//!
//! A deterministic, seeded **scenario factory**: the paper validates its
//! pipeline on a single intraoperative sequence, but the serving system
//! this repo grows toward must handle every deformation regime a
//! neurosurgery can produce. This crate generates complete pipeline
//! cases — reference scan, intraoperative scan, ground-truth mesh and
//! displacement field — for four workload classes the phantom brain-shift
//! sequence never exercises:
//!
//! 1. **Gravity-driven sag** ([`ScenarioKind::GravitySag`]) — the brain
//!    sinks under its own weight once CSF drains, loaded through the
//!    consistent body-force path in [`brainshift_fem::loads`], supported
//!    by the skull everywhere except a seeded craniotomy opening (the
//!    actual physics of brain shift; Miller et al., arXiv 1904.01192).
//! 2. **Resection cavity collapse** ([`ScenarioKind::ResectionCollapse`])
//!    — a seeded ellipsoidal cavity is carved from the label volume, the
//!    carved anatomy is re-meshed with cavity-adjacent nodes snapped onto
//!    the cavity surface, and the freed cavity wall collapses inward
//!    while gravity loads the rest (Bucki et al., arXiv 0709.0686).
//! 3. **Skull contact** ([`ScenarioKind::SkullContact`]) — gravity
//!    presses the brain against the rigid inner skull table; penetrating
//!    boundary nodes are found by an active-set iteration and clamped as
//!    Dirichlet data on their radial projection onto the skull surface
//!    (inequality constraints approximated by iterated equality clamps).
//! 4. **Sparse keypoints** ([`ScenarioKind::SparseKeypoints`]) — a dense
//!    ground-truth field is solved, then re-solved from only K matched
//!    keypoints; the dense-field recovery error vs K mirrors the Deep
//!    Biomechanical Interpolator evaluation (arXiv 2508.13762).
//!
//! **Determinism contract.** Every case is a *pure function* of
//! `(ScenarioKind, seed)`: all randomness flows through the same
//! stateless SplitMix64 discipline as `imaging::phantom` (hash of seed,
//! stream tag, and draw index — no RNG state threaded between draws), so
//! generation is bitwise identical across runs, thread counts, and
//! traversal orders. The conformance crate pins one canonical seed per
//! class as a golden-field hash.
//!
//! Cases batch through the production serving path ([`suite`]): each
//! case becomes a [`brainshift_core::PreparedSurgery`] session on a real
//! [`brainshift_service::Service`], so thousands of seeded scenarios
//! exercise the queue, warm-context cache, and worker-affinity machinery
//! under workload shapes the phantom sequence never produced.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

mod common;
pub mod contact;
pub mod error;
pub mod gravity;
pub mod keypoints;
pub mod resection;
pub mod rng;
pub mod suite;

use brainshift_imaging::phantom::PhantomScan;
use brainshift_imaging::volume::{Dims, Spacing};
use brainshift_imaging::{DisplacementField, Vec3, Volume};
use brainshift_mesh::TetMesh;

pub use error::ScenarioError;
pub use keypoints::{keypoint_recovery_curve, RecoveryPoint};
pub use suite::{run_scenario_suite, suite_cases, SuiteCaseRecord, SuiteConfig, SuiteReport};

/// The four scenario classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioKind {
    /// Gravity-driven sag through a craniotomy opening (body-force load).
    GravitySag,
    /// Tumor-resection cavity carved, re-meshed, and collapsing inward.
    ResectionCollapse,
    /// Brain pressed against the rigid inner skull table (active-set
    /// clamped contact).
    SkullContact,
    /// Dense ground truth re-solved from K sparse keypoint constraints.
    SparseKeypoints,
}

impl ScenarioKind {
    /// All kinds, in canonical order (round-robin order of the suite).
    pub const ALL: [ScenarioKind; 4] = [
        ScenarioKind::GravitySag,
        ScenarioKind::ResectionCollapse,
        ScenarioKind::SkullContact,
        ScenarioKind::SparseKeypoints,
    ];

    /// Stable kebab-case name (used in case names and golden keys).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::GravitySag => "gravity-sag",
            ScenarioKind::ResectionCollapse => "resection-collapse",
            ScenarioKind::SkullContact => "skull-contact",
            ScenarioKind::SparseKeypoints => "sparse-keypoints",
        }
    }
}

/// Generation diagnostics of one case.
#[derive(Debug, Clone, Default)]
pub struct ScenarioStats {
    /// Cavity-seed jitter retries the resection mesher needed before
    /// producing a sliver-free mesh (0 for other kinds).
    pub carve_retries: usize,
    /// Active-set iterations of the contact solve (0 for other kinds).
    pub contact_iterations: usize,
    /// Boundary nodes clamped onto the skull surface (0 for other kinds).
    pub contact_clamped_nodes: usize,
    /// Keypoint candidates — boundary nodes of the dense solve (0 for
    /// other kinds).
    pub keypoint_candidates: usize,
    /// Peak ground-truth displacement magnitude, mm.
    pub peak_displacement_mm: f64,
    /// Krylov iterations of the ground-truth solve (final solve for the
    /// contact iteration).
    pub fem_iterations: usize,
}

/// One complete scenario case: everything the pipeline (and the serving
/// layer) needs, plus the ground truth the pipeline is scored against.
pub struct ScenarioCase {
    /// Which class generated this case.
    pub kind: ScenarioKind,
    /// The generation seed (with `kind`, fully determines the case).
    pub seed: u64,
    /// Stable case name, `"<kind>-<seed:08x>"`.
    pub name: String,
    /// Reference scan: labels the surgery is prepared from (post-carve
    /// for resection cases) and the matching rendered intensity.
    pub preop: PhantomScan,
    /// Intraoperative intensity volume — the reference anatomy warped
    /// through the ground-truth field and re-rendered with fresh noise.
    pub intraop_intensity: Volume<f32>,
    /// Ground-truth tetrahedral mesh (of the reference anatomy).
    pub mesh: TetMesh,
    /// Ground-truth per-node displacements on `mesh`, mm.
    pub gt_displacements: Vec<Vec3>,
    /// Ground-truth forward field rasterized on the scan grid.
    pub gt_forward: DisplacementField,
    /// Seeded permutation of the mesh boundary nodes — the keypoint
    /// sampling order (non-empty only for [`ScenarioKind::SparseKeypoints`];
    /// prefixes of this order are the nested keypoint sets).
    pub keypoint_order: Vec<usize>,
    /// Generation diagnostics.
    pub stats: ScenarioStats,
}

/// Scan-grid geometry shared by every generated case: a scaled-down
/// analogue of the paper's 256×256×60 acquisitions, sized so a suite of
/// hundreds of cases (each with its own ground-truth FEM solve) stays
/// fast enough for CI.
pub fn scenario_dims() -> (Dims, Spacing) {
    (Dims::new(24, 24, 20), Spacing::iso(5.0))
}

/// Mesher step (voxels) of the ground-truth mesh.
pub const SCENARIO_MESH_STEP: usize = 2;

/// Minimum element radius ratio every generated mesh must satisfy — the
/// quality gate that forces the resection generator to retry a jittered
/// cavity instead of emitting a sliver-poisoned mesh.
pub const SCENARIO_MIN_RADIUS_RATIO: f64 = 5e-3;

/// Generate one scenario case. Pure function of `(kind, seed)`.
pub fn generate_scenario(kind: ScenarioKind, seed: u64) -> Result<ScenarioCase, ScenarioError> {
    match kind {
        ScenarioKind::GravitySag => gravity::generate(seed),
        ScenarioKind::ResectionCollapse => resection::generate(seed),
        ScenarioKind::SkullContact => contact::generate(seed),
        ScenarioKind::SparseKeypoints => keypoints::generate(seed),
    }
}
