//! Shared case-assembly machinery for the four generators.

use crate::rng::{draw_range, draw_u64};
use crate::{ScenarioCase, ScenarioError, ScenarioKind, ScenarioStats, SCENARIO_MESH_STEP};
use brainshift_fem::{displacement_field_from_mesh, FemSolveConfig};
use brainshift_imaging::phantom::{
    forward_warp_labels, render_intensity, HeadModel, PhantomConfig, PhantomScan,
};
use brainshift_imaging::{labels, Vec3};
use brainshift_mesh::{mesh_labeled_volume, MesherConfig, TetMesh};
use brainshift_sparse::SolverOptions;

/// Stream tags for the per-stage SplitMix64 sub-sequences.
pub(crate) const STREAM_PHANTOM: u64 = 1;
pub(crate) const STREAM_DIRECTION: u64 = 2;
pub(crate) const STREAM_MAGNITUDE: u64 = 3;
pub(crate) const STREAM_CAVITY: u64 = 4;
pub(crate) const STREAM_KEYPOINTS: u64 = 5;

/// The seeded phantom underlying a scenario case: fixed scan geometry
/// (see [`crate::scenario_dims`]), jittered tumor placement so distinct
/// seeds produce distinct anatomy.
pub(crate) fn phantom_config(seed: u64) -> PhantomConfig {
    let (dims, spacing) = crate::scenario_dims();
    PhantomConfig {
        dims,
        spacing,
        seed: draw_u64(seed, STREAM_PHANTOM, 0),
        tumor_center_frac: Vec3::new(
            draw_range(seed, STREAM_PHANTOM, 1, -0.45, 0.45),
            draw_range(seed, STREAM_PHANTOM, 2, -0.35, 0.35),
            draw_range(seed, STREAM_PHANTOM, 3, -0.35, 0.35),
        ),
        tumor_radius: draw_range(seed, STREAM_PHANTOM, 4, 7.0, 11.0),
        ..Default::default()
    }
}

/// Ground-truth solver settings: tight tolerance so golden hashes are
/// insensitive to run-to-run Krylov noise, generous iteration cap.
pub(crate) fn gt_solve_cfg() -> FemSolveConfig {
    FemSolveConfig {
        options: SolverOptions { tolerance: 1e-10, max_iterations: 20_000, ..Default::default() },
        ..Default::default()
    }
}

/// Mesh the brain tissue of a label volume at the scenario step.
pub(crate) fn scenario_mesh(seg: &brainshift_imaging::Volume<u8>) -> TetMesh {
    mesh_labeled_volume(
        seg,
        &MesherConfig { step: SCENARIO_MESH_STEP, include: labels::is_brain_tissue },
    )
}

/// Assemble the final [`ScenarioCase`] from a solved ground truth:
/// rasterize the node field onto the scan grid, forward-warp the
/// reference labels through it, and render the intraoperative intensity
/// with fresh (seeded) noise — the same synthesis chain as
/// `core::case::generate_elastic_case`, minus the texture map (scenario
/// volumes are small; classification only needs per-tissue appearance).
#[allow(clippy::too_many_arguments)]
pub(crate) fn finish_case(
    kind: ScenarioKind,
    seed: u64,
    pcfg: &PhantomConfig,
    preop: PhantomScan,
    mesh: TetMesh,
    gt_displacements: Vec<Vec3>,
    keypoint_order: Vec<usize>,
    mut stats: ScenarioStats,
) -> Result<ScenarioCase, ScenarioError> {
    let gt_forward =
        displacement_field_from_mesh(&mesh, &gt_displacements, pcfg.dims, pcfg.spacing);
    let warped = forward_warp_labels(&preop.labels, &gt_forward, labels::CSF);
    let intra_cfg = PhantomConfig { seed: pcfg.seed.wrapping_add(1), ..pcfg.clone() };
    let intraop_intensity = render_intensity(&warped, &intra_cfg);
    stats.peak_displacement_mm = gt_displacements.iter().fold(0.0f64, |m, u| m.max(u.norm()));
    Ok(ScenarioCase {
        kind,
        seed,
        name: format!("{}-{seed:08x}", kind.name()),
        preop,
        intraop_intensity,
        mesh,
        gt_displacements,
        gt_forward,
        keypoint_order,
        stats,
    })
}

/// World point where the brain surface crosses the axis `dir` from its
/// centre — the craniotomy site for a direction draw.
pub(crate) fn brain_pole(model: &HeadModel, dir: Vec3) -> Vec3 {
    let b = &model.brain;
    b.center + Vec3::new(dir.x * b.radii.x, dir.y * b.radii.y, dir.z * b.radii.z)
}
