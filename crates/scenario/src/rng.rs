//! Stateless seeded randomness for scenario generation.
//!
//! Same discipline as `imaging::phantom::voxel_gaussian`: every draw is a
//! pure function of `(seed, stream tag, draw index)` hashed through
//! SplitMix64 — no generator state is threaded between draws, so
//! generation cannot depend on traversal order, thread count, or how many
//! draws an earlier stage consumed. Stream tags keep the per-stage
//! sub-sequences independent (adding a draw to one stage cannot shift
//! another stage's values).

use brainshift_imaging::Vec3;

/// SplitMix64 finalizer.
#[inline]
fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A 64-bit word from `(seed, stream, index)`.
pub fn draw_u64(seed: u64, stream: u64, index: u64) -> u64 {
    splitmix(
        seed ^ stream.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ index.wrapping_mul(0x1656_67B1_9E37_79F9),
    )
}

/// Uniform draw in `[0, 1)`.
pub fn draw_unit(seed: u64, stream: u64, index: u64) -> f64 {
    (draw_u64(seed, stream, index) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw in `[lo, hi)`.
pub fn draw_range(seed: u64, stream: u64, index: u64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * draw_unit(seed, stream, index)
}

/// A seeded unit direction on the upper hemisphere (z component in
/// `[min_z, 1]`) — craniotomy axes point "up-ish" in patient coordinates.
pub fn draw_up_direction(seed: u64, stream: u64, min_z: f64) -> Vec3 {
    let z = draw_range(seed, stream, 0, min_z, 1.0);
    let phi = draw_range(seed, stream, 1, 0.0, std::f64::consts::TAU);
    let r = (1.0 - z * z).max(0.0).sqrt();
    Vec3::new(r * phi.cos(), r * phi.sin(), z)
}

/// Seeded Fisher–Yates permutation of `0..n`. The shuffle itself is
/// sequential, but every swap partner is a pure `(seed, stream, i)` draw,
/// so the permutation is a deterministic function of its inputs.
pub fn draw_permutation(seed: u64, stream: u64, n: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = (draw_u64(seed, stream, i as u64) % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_reproducible_and_stream_separated() {
        assert_eq!(draw_u64(7, 1, 0), draw_u64(7, 1, 0));
        assert_ne!(draw_u64(7, 1, 0), draw_u64(7, 2, 0));
        assert_ne!(draw_u64(7, 1, 0), draw_u64(8, 1, 0));
        let u = draw_unit(42, 3, 9);
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn up_direction_is_unit_and_upward() {
        for s in 0..50u64 {
            let d = draw_up_direction(s, 5, 0.4);
            assert!((d.norm() - 1.0).abs() < 1e-12);
            assert!(d.z >= 0.4 - 1e-12);
        }
    }

    #[test]
    fn permutation_is_a_bijection_and_seed_sensitive() {
        let p = draw_permutation(11, 9, 100);
        let mut seen = vec![false; 100];
        for &i in &p {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert_eq!(p, draw_permutation(11, 9, 100));
        assert_ne!(p, draw_permutation(12, 9, 100));
    }
}
