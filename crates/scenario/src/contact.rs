//! Skull-contact constraints via an active-set iteration.
//!
//! The brain is not glued to the skull: it sags under gravity until the
//! rigid inner skull table stops it. True contact is an inequality
//! constraint (no penetration, free separation); this generator uses the
//! standard active-set approximation — solve unconstrained, find
//! boundary nodes whose deformed position has crossed the inner skull
//! surface, clamp them as Dirichlet data on their radial projection back
//! onto it, and re-solve until no new node penetrates. The iteration is
//! deterministic (the active set grows monotonically and each step is a
//! pure solve), so the final field is still a pure function of the seed.

use crate::common::{
    brain_pole, finish_case, gt_solve_cfg, phantom_config, scenario_mesh, STREAM_DIRECTION,
    STREAM_MAGNITUDE,
};
use crate::rng::{draw_range, draw_up_direction};
use crate::{ScenarioCase, ScenarioError, ScenarioKind, ScenarioStats, SCENARIO_MIN_RADIUS_RATIO};
use brainshift_fem::{assemble_directed_gravity, solve_with_loads, DirichletBcs, MaterialTable};
use brainshift_imaging::phantom::{generate_from_model, HeadModel};
use brainshift_imaging::Vec3;
use brainshift_mesh::boundary_nodes;
use std::collections::BTreeMap;

/// Active-set iterations before declaring non-convergence. Each pass
/// clamps every currently-penetrating node, so the set grows by at least
/// one node per pass and settles long before the boundary is exhausted.
pub const MAX_CONTACT_ITERATIONS: usize = 24;

/// Generate a skull-contact case. Pure function of `seed`.
pub fn generate(seed: u64) -> Result<ScenarioCase, ScenarioError> {
    let pcfg = phantom_config(seed);
    let model = HeadModel::fit(pcfg.dims, pcfg.spacing, &pcfg);
    let preop = generate_from_model(&pcfg, &model);
    let mesh = scenario_mesh(&preop.labels);
    mesh.validate_quality(SCENARIO_MIN_RADIUS_RATIO)?;

    // Tilted gravity (the patient's head is positioned for the approach)
    // scaled up by CSF drainage — strong enough that the sagging brain
    // actually reaches the inner table.
    let g_dir = -draw_up_direction(seed, STREAM_DIRECTION, 0.2);
    let g_scale = draw_range(seed, STREAM_MAGNITUDE, 0, 2.0, 5.0);
    let anchor_mm = draw_range(seed, STREAM_MAGNITUDE, 1, 25.0, 40.0);

    // Anchor patch around the anti-gravity pole (the tethered craniotomy
    // rim) — keeps the operator non-singular before any contact engages.
    let anchor_site = brain_pole(&model, -g_dir);
    let boundary = boundary_nodes(&mesh);
    let mut anchors = DirichletBcs::new();
    for &n in &boundary {
        if mesh.nodes[n].distance(anchor_site) <= anchor_mm {
            anchors.set(n, Vec3::ZERO);
        }
    }
    let mut f = assemble_directed_gravity(&mesh, g_dir);
    for v in &mut f {
        *v *= g_scale;
    }

    // Active set: node → clamped displacement. BTreeMap keeps the clamp
    // order (and so the assembled BC set) independent of discovery order.
    let mut clamped: BTreeMap<usize, Vec3> = BTreeMap::new();
    let materials = MaterialTable::homogeneous();
    let cfg = gt_solve_cfg();
    let mut iterations = 0usize;
    let mut solution = None;
    let mut settled = false;
    while iterations < MAX_CONTACT_ITERATIONS && !settled {
        iterations += 1;
        let mut bcs = anchors.clone();
        for (&n, &u) in &clamped {
            bcs.set(n, u);
        }
        let sol = solve_with_loads(&mesh, &materials, &bcs, &f, &cfg)?;
        if !sol.stats.converged() {
            return Err(ScenarioError::GroundTruthDiverged {
                relative_residual: sol.stats.relative_residual,
            });
        }
        let mut fresh = 0usize;
        for &n in &boundary {
            if bcs.get(n).is_some() {
                continue;
            }
            let p = mesh.nodes[n];
            let x = p + sol.displacements[n];
            if model.skull_inner.level(x) > 1.0 {
                clamped.insert(n, model.skull_inner.project_surface(x) - p);
                fresh += 1;
            }
        }
        settled = fresh == 0;
        solution = Some(sol);
    }
    let sol = match solution {
        Some(sol) if settled => sol,
        _ => return Err(ScenarioError::ContactNotConverged { iterations }),
    };
    let stats = ScenarioStats {
        contact_iterations: iterations,
        contact_clamped_nodes: clamped.len(),
        fem_iterations: sol.stats.iterations,
        ..Default::default()
    };
    finish_case(
        ScenarioKind::SkullContact,
        seed,
        &pcfg,
        preop,
        mesh,
        sol.displacements,
        Vec::new(),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contact_clamps_penetrating_nodes_and_settles() {
        let case = generate(1).expect("generation failed");
        assert!(case.stats.contact_iterations >= 1);
        assert!(case.stats.contact_iterations < MAX_CONTACT_ITERATIONS);
        // The regime is interesting only if contact actually engaged.
        assert!(case.stats.contact_clamped_nodes > 0, "no contact engaged");
        assert!(case.stats.peak_displacement_mm > 0.1);
    }

    #[test]
    fn contact_case_is_bitwise_deterministic() {
        let a = generate(5).expect("generation failed");
        let b = generate(5).expect("generation failed");
        assert_eq!(a.stats.contact_clamped_nodes, b.stats.contact_clamped_nodes);
        for (u, v) in a.gt_displacements.iter().zip(&b.gt_displacements) {
            assert_eq!(u.x.to_bits(), v.x.to_bits());
            assert_eq!(u.z.to_bits(), v.z.to_bits());
        }
    }
}
