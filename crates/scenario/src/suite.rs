//! Batch seeded scenario cases through the production serving path.
//!
//! Each case becomes a real [`PreparedSurgery`] session on a running
//! [`Service`]: the reference labels are prepared (mesh, snapped surface,
//! prototype model), the session is opened, and the case's intraoperative
//! scan is submitted as a [`ScanJob`] — exercising admission, the
//! deadline queue, the warm-context cache, and sticky worker placement
//! under four workload shapes the phantom sequence never produced.
//!
//! Submission is **serialized** (each ticket is awaited before the next
//! submit) so the service's timestamp-free [`event
//! script`](Service::script) is a deterministic function of the seed
//! set — the byte-identical-across-runs oracle the bench binary checks.

use crate::{generate_scenario, ScenarioError, ScenarioKind};
use brainshift_core::{PipelineConfig, PreparedSurgery, ScanStatus};
use brainshift_service::{ScanJob, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

/// Suite parameters.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Base seed; case `i` uses seed `base_seed + i`.
    pub base_seed: u64,
    /// Number of cases (round-robin over [`ScenarioKind::ALL`]).
    pub cases: usize,
    /// Service worker threads.
    pub workers: usize,
    /// Per-job deadline (generous: the suite measures correctness and
    /// determinism, not deadline pressure).
    pub deadline: Duration,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            base_seed: 0x5CE7_A210,
            cases: 200,
            workers: 2,
            deadline: Duration::from_secs(120),
        }
    }
}

/// What happened to one case.
#[derive(Debug, Clone)]
pub struct SuiteCaseRecord {
    /// Case name (`<kind>-<seed:08x>`).
    pub name: String,
    /// Scenario class.
    pub kind: ScenarioKind,
    /// Generation seed.
    pub seed: u64,
    /// Session id the service assigned.
    pub session: u64,
    /// Worker that executed the scan.
    pub worker: usize,
    /// Whether the solver context came warm from the cache.
    pub warm: bool,
    /// How the scan's solve concluded.
    pub status: ScanStatus,
    /// Krylov iterations of the served solve.
    pub fem_iterations: usize,
    /// Ground-truth peak displacement, mm.
    pub gt_peak_mm: f64,
    /// Peak of the recovered field, mm.
    pub recovered_peak_mm: f64,
    /// Submission-to-completion latency, seconds (wall clock — varies
    /// between runs; excluded from the determinism oracle).
    pub latency_s: f64,
}

/// Aggregate result of one suite run.
pub struct SuiteReport {
    /// Per-case records, in submission order.
    pub records: Vec<SuiteCaseRecord>,
    /// Cases whose generation failed mesh validation even after retries.
    pub invalid_meshes: usize,
    /// Cases whose generation failed for any other reason.
    pub generation_failures: usize,
    /// Jobs the service refused at admission.
    pub shed_jobs: usize,
    /// Jobs that degraded to carry-forward instead of converging.
    pub degraded: usize,
    /// Total cavity-carve retries across all resection cases.
    pub carve_retries: usize,
    /// The service's timestamp-free event script — the determinism
    /// oracle: two runs of the same seed set must produce byte-identical
    /// scripts.
    pub script: String,
}

/// The `(kind, seed)` list of a suite: kinds round-robin in canonical
/// order, seeds increment from `base_seed`.
pub fn suite_cases(base_seed: u64, cases: usize) -> Vec<(ScenarioKind, u64)> {
    (0..cases)
        .map(|i| (ScenarioKind::ALL[i % ScenarioKind::ALL.len()], base_seed + i as u64))
        .collect()
}

/// Pipeline configuration the suite prepares every surgery with: the
/// default intraoperative pipeline minus rigid registration (scenario
/// scans share the reference frame by construction).
pub fn suite_pipeline_config() -> PipelineConfig {
    PipelineConfig { skip_rigid: true, ..Default::default() }
}

/// Run the suite: generate every case, serve every case's intraoperative
/// scan through a fresh service, and return the aggregate report.
pub fn run_scenario_suite(cfg: &SuiteConfig) -> SuiteReport {
    let service = Service::start(ServiceConfig {
        workers: cfg.workers.max(1),
        ..Default::default()
    });
    let mut report = SuiteReport {
        records: Vec::with_capacity(cfg.cases),
        invalid_meshes: 0,
        generation_failures: 0,
        shed_jobs: 0,
        degraded: 0,
        carve_retries: 0,
        script: String::new(),
    };
    for (kind, seed) in suite_cases(cfg.base_seed, cfg.cases) {
        let case = match generate_scenario(kind, seed) {
            Ok(case) => case,
            Err(
                ScenarioError::MeshInvalid(_) | ScenarioError::CavityRetriesExhausted { .. },
            ) => {
                report.invalid_meshes += 1;
                continue;
            }
            Err(_) => {
                report.generation_failures += 1;
                continue;
            }
        };
        report.carve_retries += case.stats.carve_retries;
        let prepared = match PreparedSurgery::new(&case.preop.labels, suite_pipeline_config()) {
            Ok(p) => p,
            Err(_) => {
                report.generation_failures += 1;
                continue;
            }
        };
        let session = service.open_session(Arc::new(prepared));
        let ticket = match service.submit(ScanJob {
            session,
            intensity: case.intraop_intensity.clone(),
            priority: 0,
            deadline: cfg.deadline,
        }) {
            Ok(t) => t,
            Err(_) => {
                report.shed_jobs += 1;
                continue;
            }
        };
        // Serialized: wait before the next submit, keeping the event
        // script a pure function of the seed set.
        let outcome = match ticket.wait() {
            Ok(o) => o,
            Err(_) => {
                report.shed_jobs += 1;
                continue;
            }
        };
        if outcome.status == ScanStatus::Degraded {
            report.degraded += 1;
        }
        report.records.push(SuiteCaseRecord {
            name: case.name,
            kind,
            seed,
            session,
            worker: outcome.worker,
            warm: outcome.warm,
            status: outcome.status,
            fem_iterations: outcome.fem_iterations,
            gt_peak_mm: case.stats.peak_displacement_mm,
            recovered_peak_mm: outcome.field.max_magnitude(),
            latency_s: outcome.latency.as_secs_f64(),
        });
    }
    report.script = service.script();
    service.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_serves_all_four_kinds() {
        let cfg = SuiteConfig { cases: 4, ..Default::default() };
        let report = run_scenario_suite(&cfg);
        assert_eq!(report.invalid_meshes, 0, "invalid meshes in suite");
        assert_eq!(report.generation_failures, 0);
        assert_eq!(report.shed_jobs, 0);
        assert_eq!(report.records.len(), 4);
        let kinds: Vec<_> = report.records.iter().map(|r| r.kind).collect();
        assert_eq!(kinds, ScenarioKind::ALL.to_vec());
        for r in &report.records {
            assert_ne!(r.status, ScanStatus::Degraded, "{} degraded", r.name);
            assert!(r.recovered_peak_mm > 0.0, "{} recovered nothing", r.name);
        }
        assert!(!report.script.is_empty());
    }

    #[test]
    fn suite_script_is_deterministic_across_runs() {
        let cfg = SuiteConfig { cases: 4, ..Default::default() };
        let a = run_scenario_suite(&cfg);
        let b = run_scenario_suite(&cfg);
        assert_eq!(a.script, b.script, "event script must be a pure function of the seed set");
    }
}
