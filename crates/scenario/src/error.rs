//! Typed errors for scenario generation.

use brainshift_fem::FemError;
use brainshift_mesh::MeshError;
use std::fmt;

/// Errors raised while generating a scenario case.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The (possibly carved) anatomy produced a mesh that failed
    /// structural or quality validation even after all retry attempts.
    MeshInvalid(MeshError),
    /// The ground-truth FEM solve rejected its inputs.
    Fem(FemError),
    /// The ground-truth solve did not converge.
    GroundTruthDiverged {
        /// Relative residual at the iteration cap.
        relative_residual: f64,
    },
    /// Cavity carving exhausted its jitter retries without producing a
    /// usable carved mesh (a sliver-free mesh with a non-empty cavity
    /// wall to release).
    CavityRetriesExhausted {
        /// The generation seed.
        seed: u64,
        /// Jittered cavities attempted.
        attempts: usize,
        /// Why the last attempt was rejected.
        last: String,
    },
    /// The contact active-set iteration failed to reach a fixpoint.
    ContactNotConverged {
        /// Iterations attempted.
        iterations: usize,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::MeshInvalid(e) => write!(f, "scenario mesh invalid: {e}"),
            ScenarioError::Fem(e) => write!(f, "scenario FEM error: {e}"),
            ScenarioError::GroundTruthDiverged { relative_residual } => {
                write!(f, "ground-truth solve diverged (rel. residual {relative_residual:.3e})")
            }
            ScenarioError::CavityRetriesExhausted { seed, attempts, last } => write!(
                f,
                "cavity carving for seed {seed:#x} found no usable carved mesh after \
                 {attempts} jittered attempts: {last}"
            ),
            ScenarioError::ContactNotConverged { iterations } => {
                write!(f, "contact active set did not settle within {iterations} iterations")
            }
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::MeshInvalid(e) => Some(e),
            ScenarioError::Fem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MeshError> for ScenarioError {
    fn from(e: MeshError) -> Self {
        ScenarioError::MeshInvalid(e)
    }
}

impl From<FemError> for ScenarioError {
    fn from(e: FemError) -> Self {
        ScenarioError::Fem(e)
    }
}
