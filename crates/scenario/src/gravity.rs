//! Gravity-driven sag: the brain sinks under its own weight through a
//! craniotomy opening.
//!
//! The paper drives its model purely by surface displacements; the
//! *physics* of brain shift is gravity acting on the parenchyma once CSF
//! drains (Miller et al., arXiv 1904.01192). This generator loads the
//! whole mesh with a seeded, tilted gravity body force through
//! [`brainshift_fem::assemble_directed_gravity`], fixes the boundary
//! where the skull supports it, and frees a seeded opening around the
//! craniotomy pole — the sag magnitude follows from tissue weight and
//! stiffness, not from a prescribed profile.

use crate::common::{
    brain_pole, finish_case, gt_solve_cfg, phantom_config, scenario_mesh, STREAM_DIRECTION,
    STREAM_MAGNITUDE,
};
use crate::rng::{draw_range, draw_up_direction};
use crate::{ScenarioCase, ScenarioError, ScenarioKind, ScenarioStats, SCENARIO_MIN_RADIUS_RATIO};
use brainshift_fem::{assemble_directed_gravity, solve_with_loads, DirichletBcs, MaterialTable};
use brainshift_imaging::phantom::{generate_from_model, HeadModel};
use brainshift_imaging::Vec3;
use brainshift_mesh::boundary_nodes;

/// Generate a gravity-sag case. Pure function of `seed`.
pub fn generate(seed: u64) -> Result<ScenarioCase, ScenarioError> {
    let pcfg = phantom_config(seed);
    let model = HeadModel::fit(pcfg.dims, pcfg.spacing, &pcfg);
    let preop = generate_from_model(&pcfg, &model);
    let mesh = scenario_mesh(&preop.labels);
    mesh.validate_quality(SCENARIO_MIN_RADIUS_RATIO)?;

    // Craniotomy axis (up-ish in patient coordinates), opening size, and
    // the effective gravity multiplier (CSF drainage unloads buoyancy, so
    // the net load on the parenchyma is a seeded multiple of its weight).
    let dir = draw_up_direction(seed, STREAM_DIRECTION, 0.35);
    let opening_mm = draw_range(seed, STREAM_MAGNITUDE, 0, 25.0, 45.0);
    let g_scale = draw_range(seed, STREAM_MAGNITUDE, 1, 1.0, 3.0);

    let site = brain_pole(&model, dir);
    let mut bcs = DirichletBcs::new();
    for &n in boundary_nodes(&mesh).iter() {
        if mesh.nodes[n].distance(site) > opening_mm {
            bcs.set(n, Vec3::ZERO);
        }
    }
    let mut f = assemble_directed_gravity(&mesh, -dir);
    for v in &mut f {
        *v *= g_scale;
    }
    let sol = solve_with_loads(&mesh, &MaterialTable::homogeneous(), &bcs, &f, &gt_solve_cfg())?;
    if !sol.stats.converged() {
        return Err(ScenarioError::GroundTruthDiverged {
            relative_residual: sol.stats.relative_residual,
        });
    }
    let stats = ScenarioStats { fem_iterations: sol.stats.iterations, ..Default::default() };
    finish_case(
        ScenarioKind::GravitySag,
        seed,
        &pcfg,
        preop,
        mesh,
        sol.displacements,
        Vec::new(),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gravity_sag_is_physical_and_deterministic() {
        let a = generate(3).expect("generation failed");
        let b = generate(3).expect("generation failed");
        assert_eq!(a.name, b.name);
        // Bitwise identical fields.
        for (u, v) in a.gt_displacements.iter().zip(&b.gt_displacements) {
            assert_eq!(u.x.to_bits(), v.x.to_bits());
            assert_eq!(u.y.to_bits(), v.y.to_bits());
            assert_eq!(u.z.to_bits(), v.z.to_bits());
        }
        // Millimetre-scale sag, no runaway.
        let peak = a.stats.peak_displacement_mm;
        assert!(peak > 0.05 && peak < 25.0, "peak sag {peak}");
        assert!(a.mesh.validate_quality(SCENARIO_MIN_RADIUS_RATIO).is_ok());
    }

    #[test]
    fn distinct_seeds_differ() {
        let a = generate(1).expect("generation failed");
        let b = generate(2).expect("generation failed");
        assert_ne!(
            a.stats.peak_displacement_mm.to_bits(),
            b.stats.peak_displacement_mm.to_bits()
        );
    }
}
