//! Swappable time source: wall clock in production, a shared logical
//! microsecond counter under the deterministic simulator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A time source with two implementations behind one interface.
///
/// * [`Clock::wall`] reads the OS monotonic clock relative to an epoch
///   captured at construction. [`Clock::now_s`] keeps full nanosecond
///   precision on this path (sub-microsecond stages must not round to
///   zero), while [`Clock::now_us`] truncates to whole microseconds for
///   event timestamps.
/// * [`Clock::logical`] reads a shared atomic microsecond counter that
///   only moves when [`Clock::advance_to_us`] is called — the
///   discrete-event simulator drives it, so every duration measured
///   through the clock is a pure function of the submission script and
///   metric snapshots are bit-deterministic.
///
/// Clones share the same epoch/counter, so a clock can be handed to
/// many components and their measurements stay on one timeline.
#[derive(Clone, Debug)]
pub struct Clock(Inner);

#[derive(Clone, Debug)]
enum Inner {
    Wall(Instant),
    Logical(Arc<AtomicU64>),
}

impl Clock {
    /// Wall clock with its epoch at the moment of construction.
    pub fn wall() -> Self {
        Clock(Inner::Wall(Instant::now()))
    }

    /// Logical clock starting at 0 µs; advances only via
    /// [`Clock::advance_to_us`].
    pub fn logical() -> Self {
        Clock(Inner::Logical(Arc::new(AtomicU64::new(0))))
    }

    /// True for clocks created by [`Clock::logical`].
    pub fn is_logical(&self) -> bool {
        matches!(self.0, Inner::Logical(_))
    }

    /// Microseconds since the epoch (wall) or the counter value
    /// (logical).
    pub fn now_us(&self) -> u64 {
        match &self.0 {
            Inner::Wall(epoch) => u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX),
            Inner::Logical(t) => t.load(Ordering::Acquire),
        }
    }

    /// Seconds since the epoch. The wall path keeps nanosecond
    /// precision; the logical path is the counter divided by 10⁶.
    pub fn now_s(&self) -> f64 {
        match &self.0 {
            Inner::Wall(epoch) => epoch.elapsed().as_secs_f64(),
            Inner::Logical(t) => t.load(Ordering::Acquire) as f64 / 1e6,
        }
    }

    /// Advance a logical clock to `t_us` (monotone: the counter never
    /// moves backwards). No-op on a wall clock.
    pub fn advance_to_us(&self, t_us: u64) {
        if let Inner::Logical(t) = &self.0 {
            t.fetch_max(t_us, Ordering::AcqRel);
        }
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::wall()
    }
}

/// Elapsed-time helper over a [`Clock`].
///
/// Replaces the `let t = Instant::now(); ... t.elapsed()` idiom so the
/// same call site works under either clock.
#[derive(Clone, Debug)]
pub struct Stopwatch {
    clock: Clock,
    start_s: f64,
    lap_s: f64,
}

impl Stopwatch {
    /// Start timing against `clock` (shares its timeline).
    pub fn start(clock: &Clock) -> Self {
        let now = clock.now_s();
        Stopwatch { clock: clock.clone(), start_s: now, lap_s: now }
    }

    /// Convenience constructor: a fresh wall clock starting now.
    pub fn wall() -> Self {
        Stopwatch::start(&Clock::wall())
    }

    /// Seconds since [`Stopwatch::start`].
    pub fn elapsed_s(&self) -> f64 {
        self.clock.now_s() - self.start_s
    }

    /// Seconds since the last `lap_s` call (or since start), and reset
    /// the lap point. Lets one stopwatch time consecutive stages.
    pub fn lap_s(&mut self) -> f64 {
        let now = self.clock.now_s();
        let dt = now - self.lap_s;
        self.lap_s = now;
        dt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone_and_subsecond_precise() {
        let c = Clock::wall();
        let a = c.now_s();
        // Burn a little time so the reading must move.
        let mut x = 0u64;
        for i in 0..10_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        let b = c.now_s();
        assert!(b >= a);
        // Nanosecond-precision reading: even a trivial amount of work is
        // visible, so sub-µs stages never round to exactly zero.
        assert!(b > 0.0);
    }

    #[test]
    fn logical_clock_only_moves_when_advanced() {
        let c = Clock::logical();
        assert!(c.is_logical());
        assert_eq!(c.now_us(), 0);
        c.advance_to_us(1500);
        assert_eq!(c.now_us(), 1500);
        assert!((c.now_s() - 0.0015).abs() < 1e-12);
        // Monotone: going "backwards" is ignored.
        c.advance_to_us(100);
        assert_eq!(c.now_us(), 1500);
    }

    #[test]
    fn clones_share_the_timeline() {
        let c = Clock::logical();
        let d = c.clone();
        c.advance_to_us(42);
        assert_eq!(d.now_us(), 42);
    }

    #[test]
    fn stopwatch_laps_partition_the_total() {
        let c = Clock::logical();
        let mut sw = Stopwatch::start(&c);
        c.advance_to_us(1_000_000);
        let l1 = sw.lap_s();
        c.advance_to_us(3_000_000);
        let l2 = sw.lap_s();
        assert!((l1 - 1.0).abs() < 1e-12);
        assert!((l2 - 2.0).abs() < 1e-12);
        assert!((sw.elapsed_s() - 3.0).abs() < 1e-12);
    }
}
