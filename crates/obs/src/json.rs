//! Minimal JSON tree, writer, and parser.
//!
//! The build environment is offline with no serde; every report binary
//! previously hand-rolled its own `writeln!`-JSON. This module is the
//! one shared implementation. It is deliberately small: objects keep
//! insertion order (the callers emit sorted keys themselves), numbers
//! are `f64`, and non-finite numbers serialize as `null` (documented —
//! JSON has no NaN/Inf).

use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number. Integers up to 2⁵³ round-trip exactly; non-finite
    /// values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object. Key order is preserved as inserted.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// An empty object, for builder-style construction with
    /// [`JsonValue::with`].
    pub fn obj() -> Self {
        JsonValue::Obj(Vec::new())
    }

    /// Insert (or replace) `key` in an object and return `self`.
    /// No-op on non-objects.
    #[must_use]
    pub fn with(mut self, key: &str, value: JsonValue) -> Self {
        self.set(key, value);
        self
    }

    /// Insert (or replace) `key` in an object. No-op on non-objects.
    pub fn set(&mut self, key: &str, value: JsonValue) {
        if let JsonValue::Obj(entries) = self {
            if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
                e.1 = value;
            } else {
                entries.push((key.to_string(), value));
            }
        }
    }

    /// Look up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= 2f64.powi(53) => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array elements, if this is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Render as pretty-printed JSON (two-space indent, `\n` line
    /// endings, trailing newline). Deterministic for a given tree.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(x) => write_number(out, *x),
            JsonValue::Str(s) => write_string(out, s),
            JsonValue::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    v.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Obj(entries) => {
                if entries.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < entries.len() {
                        out.push(',');
                    }
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}
impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Num(x)
    }
}
impl From<u64> for JsonValue {
    fn from(x: u64) -> Self {
        JsonValue::Num(x as f64)
    }
}
impl From<usize> for JsonValue {
    fn from(x: usize) -> Self {
        JsonValue::Num(x as f64)
    }
}
impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}
impl FromIterator<JsonValue> for JsonValue {
    fn from_iter<T: IntoIterator<Item = JsonValue>>(iter: T) -> Self {
        JsonValue::Arr(iter.into_iter().collect())
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/Infinity; `null` is the documented rendering.
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() <= 2f64.powi(53) && !(x == 0.0 && x.is_sign_negative()) {
        let _ = write!(out, "{}", x as i64);
    } else {
        // Rust's `{}` for f64 is the shortest decimal that round-trips.
        let _ = write!(out, "{x}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}
impl std::error::Error for JsonError {}

/// Parse a JSON document. Accepts exactly one value plus surrounding
/// whitespace.
pub fn parse_json(input: &str) -> Result<JsonValue, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing data after document"));
    }
    Ok(value)
}

fn err(at: usize, msg: &str) -> JsonError {
    JsonError { at, msg: msg.to_string() }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if b.len() - *pos >= lit.len() && &b[*pos..*pos + lit.len()] == lit.as_bytes() {
        *pos += lit.len();
        Ok(())
    } else {
        Err(err(*pos, "unexpected token"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') => expect(b, pos, "null").map(|()| JsonValue::Null),
        Some(b't') => expect(b, pos, "true").map(|()| JsonValue::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| JsonValue::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(JsonValue::Str),
        Some(b'[') => parse_array(b, pos),
        Some(b'{') => parse_object(b, pos),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    *pos += 1; // '{'
    let mut entries = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(entries));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected string key in object"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':' after object key"));
        }
        *pos += 1;
        skip_ws(b, pos);
        let value = parse_value(b, pos)?;
        entries.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(entries));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(b, *pos + 1).ok_or_else(|| err(*pos, "bad \\u escape"))?;
                        *pos += 4;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if b.get(*pos + 1) == Some(&b'\\') && b.get(*pos + 2) == Some(&b'u') {
                                let lo = parse_hex4(b, *pos + 3)
                                    .ok_or_else(|| err(*pos, "bad low surrogate"))?;
                                *pos += 6;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                return Err(err(*pos, "lone high surrogate"));
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code).ok_or_else(|| err(*pos, "invalid code point"))?,
                        );
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance over one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| err(*pos, "invalid utf-8 in string"))?;
                let c = rest.chars().next().ok_or_else(|| err(*pos, "unterminated string"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(b: &[u8], at: usize) -> Option<u32> {
    if b.len() < at + 4 {
        return None;
    }
    let s = std::str::from_utf8(&b[at..at + 4]).ok()?;
    u32::from_str_radix(s, 16).ok()
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<JsonValue, JsonError> {
    let start = *pos;
    while *pos < b.len()
        && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err(start, "bad number"))?;
    text.parse::<f64>().map(JsonValue::Num).map_err(|_| err(start, "bad number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let doc = JsonValue::obj()
            .with("name", "brain shift \"demo\"\n".into())
            .with("count", 42u64.into())
            .with("ratio", 0.1.into())
            .with("tiny", 1.0e-12.into())
            .with("ok", true.into())
            .with("nothing", JsonValue::Null)
            .with(
                "items",
                vec![JsonValue::Num(1.0), JsonValue::Num(-2.5), JsonValue::Str("x".into())]
                    .into_iter()
                    .collect(),
            )
            .with("empty_arr", JsonValue::Arr(vec![]))
            .with("empty_obj", JsonValue::obj());
        let text = doc.render();
        let back = parse_json(&text).expect("round trip");
        assert_eq!(back, doc);
    }

    #[test]
    fn floats_round_trip_exactly() {
        // `{}` prints the shortest decimal that parses back to the same
        // bits; verify on awkward values.
        for &x in &[0.1, 1.0 / 3.0, 6.02e23, 5e-324, f64::MAX, -0.0] {
            let text = JsonValue::Num(x).render();
            let back = parse_json(&text).expect("parse");
            assert_eq!(back.as_f64().expect("num").to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn non_finite_renders_as_null() {
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null\n");
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null\n");
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("1 2").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let v = parse_json("\"a\\u00e9\\ud83d\\ude00b\"").expect("parse");
        assert_eq!(v.as_str(), Some("aé😀b"));
    }

    #[test]
    fn get_and_accessors() {
        let v = parse_json("{\"a\": 3, \"b\": [true, null]}").expect("parse");
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(3));
        let arr = v.get("b").and_then(JsonValue::as_array).expect("arr");
        assert_eq!(arr[0].as_bool(), Some(true));
        assert_eq!(arr[1], JsonValue::Null);
        assert!(v.get("c").is_none());
    }
}
