//! The shared report schema every benchmark / report binary writes into
//! `bench_out/`.

use crate::json::{JsonError, JsonValue};
use crate::snapshot::Snapshot;
use std::io;
use std::path::Path;

/// Schema identifier stamped into every report document.
pub const SCHEMA: &str = "brainshift.obs.v1";

/// One report document:
///
/// ```json
/// {
///   "schema": "brainshift.obs.v1",
///   "name": "<report name>",
///   "params": { ... },       // inputs: sizes, sweep settings
///   "metrics": { ... },      // a Snapshot: counters/gauges/histograms/spans
///   "extra": { ... }         // report-specific detail payload
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Report name (e.g. `"warm_solve"`, `"service_throughput"`).
    pub name: String,
    /// Input parameters of the run.
    pub params: JsonValue,
    /// Metric snapshot of the run.
    pub metrics: Snapshot,
    /// Report-specific detail (per-scan arrays, sweep tables, …).
    pub extra: JsonValue,
}

impl BenchReport {
    /// A new empty report.
    pub fn new(name: &str) -> Self {
        BenchReport {
            name: name.to_string(),
            params: JsonValue::obj(),
            metrics: Snapshot::default(),
            extra: JsonValue::obj(),
        }
    }

    /// Encode the full document.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::obj()
            .with("schema", SCHEMA.into())
            .with("name", self.name.as_str().into())
            .with("params", self.params.clone())
            .with("metrics", self.metrics.to_json())
            .with("extra", self.extra.clone())
    }

    /// Decode a document produced by [`BenchReport::to_json`]. Rejects
    /// unknown schema identifiers.
    pub fn from_json(v: &JsonValue) -> Result<BenchReport, JsonError> {
        let fail = |msg: &str| JsonError { at: 0, msg: msg.to_string() };
        match v.get("schema").and_then(JsonValue::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(fail(&format!("unknown schema '{other}'"))),
            None => return Err(fail("missing 'schema'")),
        }
        Ok(BenchReport {
            name: v
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| fail("missing 'name'"))?
                .to_string(),
            params: v.get("params").cloned().unwrap_or_else(JsonValue::obj),
            metrics: Snapshot::from_json(v.get("metrics").unwrap_or(&JsonValue::Null))?,
            extra: v.get("extra").cloned().unwrap_or_else(JsonValue::obj),
        })
    }

    /// Render the document as pretty JSON text.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Write the rendered document to `path`, creating parent
    /// directories as needed.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn report_round_trips_through_json() {
        let r = Registry::with_wall_clock();
        r.counter_add("scans", 4);
        r.gauge_set("speedup", 2.5);
        r.observe("cold_s", 0.8);
        r.record_span_s("solve", 0.3);
        let mut report = BenchReport::new("warm_solve");
        report.params = JsonValue::obj().with("equations", 77_000u64.into());
        report.metrics = r.snapshot();
        report.extra = JsonValue::obj().with(
            "cold_scan_s",
            vec![JsonValue::Num(0.8), JsonValue::Num(0.7)].into_iter().collect(),
        );
        let text = report.render();
        let back =
            BenchReport::from_json(&crate::json::parse_json(&text).expect("parse")).expect("decode");
        assert_eq!(back, report);
        assert!(text.contains("\"schema\": \"brainshift.obs.v1\""));
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let doc = JsonValue::obj().with("schema", "something.else.v9".into()).with("name", "x".into());
        assert!(BenchReport::from_json(&doc).is_err());
    }
}
