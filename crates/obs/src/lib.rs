//! Dependency-free observability layer for the brainshift workspace.
//!
//! The paper's headline claim is a *time budget* — "less than 10 seconds
//! of elapsed time" for the 77k-equation intraoperative solve, broken
//! down per stage the way PETSc's `-log_summary` reports it. Measuring
//! that budget consistently needs one shared vocabulary instead of
//! ad-hoc `Instant::now()` pairs scattered across crates. This crate
//! provides it, with no dependencies beyond `std` (the build
//! environment is offline):
//!
//! - [`Clock`] — a swappable time source. Production code uses the
//!   wall clock; the service's discrete-event simulator injects its
//!   logical µs counter so property tests stay bit-deterministic.
//! - [`Registry`] — monotonic counters, gauges, log₂-bucketed
//!   histograms, and hierarchical span statistics (`'/'`-separated
//!   paths), all stored in sorted maps so snapshots are deterministic.
//! - [`Snapshot`] — a point-in-time copy of a registry with a JSON
//!   round-trip ([`Snapshot::to_json`] / [`Snapshot::from_json`]).
//! - [`BenchReport`] — the one schema (`brainshift.obs.v1`) every
//!   benchmark and report binary writes into `bench_out/`.
//! - [`JsonValue`] — a minimal JSON tree + writer + parser, because the
//!   environment has no serde.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod clock;
pub mod json;
pub mod registry;
pub mod report;
pub mod snapshot;

pub use clock::{Clock, Stopwatch};
pub use json::{parse_json, JsonError, JsonValue};
pub use registry::Registry;
pub use report::{BenchReport, SCHEMA};
pub use snapshot::{HistogramSummary, Snapshot, SpanSummary};
