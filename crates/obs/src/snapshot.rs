//! Point-in-time copies of a [`Registry`](crate::Registry) with a JSON
//! round-trip.

use crate::json::{parse_json, JsonError, JsonValue};

/// Number of log₂ buckets a histogram keeps (values 0‥1 land in bucket
/// 0, value `v ≥ 1` in bucket `⌊log₂ v⌋` clamped to the last).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// Summary of one histogram: count/sum/min/max plus log₂ buckets.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observation (`0.0` when empty).
    pub min: f64,
    /// Largest observation (`0.0` when empty).
    pub max: f64,
    /// `HISTOGRAM_BUCKETS` log₂ buckets; bucket `i` counts observations
    /// `v` with `⌊log₂ max(v, 1)⌋ = i` (negative values land in bucket
    /// 0).
    pub buckets: Vec<u64>,
}

impl HistogramSummary {
    /// An empty histogram.
    pub fn empty() -> Self {
        HistogramSummary { count: 0, sum: 0.0, min: 0.0, max: 0.0, buckets: vec![0; HISTOGRAM_BUCKETS] }
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Index of the bucket `value` falls into.
    pub fn bucket_index(value: f64) -> usize {
        if value.is_nan() || value < 1.0 {
            return 0;
        }
        (value.log2().floor() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanSummary {
    /// Number of completed spans on this path.
    pub count: u64,
    /// Total seconds across all spans.
    pub total_s: f64,
    /// Shortest single span.
    pub min_s: f64,
    /// Longest single span.
    pub max_s: f64,
}

/// A deterministic point-in-time copy of a registry: every vector is
/// sorted by name, so two snapshots of identical registries compare
/// (and render) identically.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: Vec<(String, u64)>,
    /// Last-write-wins gauges.
    pub gauges: Vec<(String, f64)>,
    /// Histograms.
    pub histograms: Vec<(String, HistogramSummary)>,
    /// Span statistics keyed by `'/'`-separated path.
    pub spans: Vec<(String, SpanSummary)>,
}

impl Snapshot {
    /// Counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Span summary by path.
    pub fn span(&self, path: &str) -> Option<&SpanSummary> {
        self.spans.iter().find(|(n, _)| n == path).map(|(_, s)| s)
    }

    /// Encode as a JSON object (`counters` / `gauges` / `histograms` /
    /// `spans`, each an object keyed by metric name in sorted order).
    pub fn to_json(&self) -> JsonValue {
        let counters = JsonValue::Obj(
            self.counters.iter().map(|(n, v)| (n.clone(), JsonValue::from(*v))).collect(),
        );
        let gauges = JsonValue::Obj(
            self.gauges.iter().map(|(n, v)| (n.clone(), JsonValue::Num(*v))).collect(),
        );
        let histograms = JsonValue::Obj(
            self.histograms
                .iter()
                .map(|(n, h)| {
                    // Only non-empty buckets are encoded, as [index, count]
                    // pairs — most of the 32 are zero.
                    let buckets: Vec<JsonValue> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| **c > 0)
                        .map(|(i, c)| {
                            JsonValue::Arr(vec![JsonValue::from(i), JsonValue::from(*c)])
                        })
                        .collect();
                    let obj = JsonValue::obj()
                        .with("count", h.count.into())
                        .with("sum", h.sum.into())
                        .with("min", h.min.into())
                        .with("max", h.max.into())
                        .with("mean", h.mean().into())
                        .with("log2_buckets", JsonValue::Arr(buckets));
                    (n.clone(), obj)
                })
                .collect(),
        );
        let spans = JsonValue::Obj(
            self.spans
                .iter()
                .map(|(n, s)| {
                    let obj = JsonValue::obj()
                        .with("count", s.count.into())
                        .with("total_s", s.total_s.into())
                        .with("min_s", s.min_s.into())
                        .with("max_s", s.max_s.into());
                    (n.clone(), obj)
                })
                .collect(),
        );
        JsonValue::obj()
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", histograms)
            .with("spans", spans)
    }

    /// Decode a snapshot previously produced by [`Snapshot::to_json`].
    pub fn from_json(v: &JsonValue) -> Result<Snapshot, JsonError> {
        let fail = |msg: &str| JsonError { at: 0, msg: msg.to_string() };
        let obj_entries = |key: &str| -> Result<Vec<(String, JsonValue)>, JsonError> {
            match v.get(key) {
                Some(JsonValue::Obj(entries)) => Ok(entries.clone()),
                None => Ok(Vec::new()),
                Some(_) => Err(fail(&format!("'{key}' is not an object"))),
            }
        };
        let mut snap = Snapshot::default();
        for (name, val) in obj_entries("counters")? {
            snap.counters.push((name, val.as_u64().ok_or_else(|| fail("bad counter"))?));
        }
        for (name, val) in obj_entries("gauges")? {
            // A non-finite gauge renders as null; decode it back as NaN.
            let x = val.as_f64().unwrap_or(f64::NAN);
            snap.gauges.push((name, x));
        }
        for (name, val) in obj_entries("histograms")? {
            let mut h = HistogramSummary::empty();
            h.count = val.get("count").and_then(JsonValue::as_u64).ok_or_else(|| fail("bad histogram count"))?;
            h.sum = val.get("sum").and_then(JsonValue::as_f64).unwrap_or(f64::NAN);
            h.min = val.get("min").and_then(JsonValue::as_f64).unwrap_or(f64::NAN);
            h.max = val.get("max").and_then(JsonValue::as_f64).unwrap_or(f64::NAN);
            if let Some(pairs) = val.get("log2_buckets").and_then(JsonValue::as_array) {
                for pair in pairs {
                    let pair = pair.as_array().ok_or_else(|| fail("bad bucket pair"))?;
                    let i = pair
                        .first()
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| fail("bad bucket index"))? as usize;
                    let c = pair
                        .get(1)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| fail("bad bucket count"))?;
                    if i < h.buckets.len() {
                        h.buckets[i] = c;
                    }
                }
            }
            snap.histograms.push((name, h));
        }
        for (name, val) in obj_entries("spans")? {
            snap.spans.push((
                name,
                SpanSummary {
                    count: val.get("count").and_then(JsonValue::as_u64).ok_or_else(|| fail("bad span count"))?,
                    total_s: val.get("total_s").and_then(JsonValue::as_f64).unwrap_or(f64::NAN),
                    min_s: val.get("min_s").and_then(JsonValue::as_f64).unwrap_or(f64::NAN),
                    max_s: val.get("max_s").and_then(JsonValue::as_f64).unwrap_or(f64::NAN),
                },
            ));
        }
        Ok(snap)
    }

    /// Parse a rendered snapshot document.
    pub fn from_json_str(text: &str) -> Result<Snapshot, JsonError> {
        Snapshot::from_json(&parse_json(text)?)
    }

    /// A copy with every metric name (and span path) prefixed with
    /// `"{prefix}."` — how a fleet namespaces its shards' registries
    /// (`shard0.service.jobs.completed`, …) before merging them into one
    /// document. Prefixing every name with the same string preserves the
    /// sorted order, so the result is still a valid deterministic
    /// snapshot.
    pub fn prefixed(&self, prefix: &str) -> Snapshot {
        let pre = |n: &String| format!("{prefix}.{n}");
        Snapshot {
            counters: self.counters.iter().map(|(n, v)| (pre(n), *v)).collect(),
            gauges: self.gauges.iter().map(|(n, v)| (pre(n), *v)).collect(),
            histograms: self.histograms.iter().map(|(n, h)| (pre(n), h.clone())).collect(),
            spans: self.spans.iter().map(|(n, s)| (pre(n), s.clone())).collect(),
        }
    }

    /// Merge several snapshots into one, re-sorted by name. Metric names
    /// are expected to be disjoint (the fleet guarantees this by
    /// [`Snapshot::prefixed`]-ing each shard); a name that does appear in
    /// several inputs keeps one entry: counters / histogram and span
    /// summaries are summed element-wise, gauges keep their maximum —
    /// the aggregations that stay truthful for the fleet's additive
    /// counters and peak-style gauges.
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a Snapshot>) -> Snapshot {
        let mut out = Snapshot::default();
        for part in parts {
            for (n, v) in &part.counters {
                match out.counters.iter_mut().find(|(m, _)| m == n) {
                    Some((_, acc)) => *acc += v,
                    None => out.counters.push((n.clone(), *v)),
                }
            }
            for (n, v) in &part.gauges {
                match out.gauges.iter_mut().find(|(m, _)| m == n) {
                    Some((_, acc)) => *acc = acc.max(*v),
                    None => out.gauges.push((n.clone(), *v)),
                }
            }
            for (n, h) in &part.histograms {
                match out.histograms.iter_mut().find(|(m, _)| m == n) {
                    // An empty side contributes nothing — and must not
                    // drag min/max toward their 0.0 placeholders.
                    Some((_, acc)) if h.count > 0 => {
                        acc.min = if acc.count == 0 { h.min } else { acc.min.min(h.min) };
                        acc.max = if acc.count == 0 { h.max } else { acc.max.max(h.max) };
                        acc.count += h.count;
                        acc.sum += h.sum;
                        for (b, c) in acc.buckets.iter_mut().zip(&h.buckets) {
                            *b += c;
                        }
                    }
                    Some(_) => {}
                    None => out.histograms.push((n.clone(), h.clone())),
                }
            }
            for (n, s) in &part.spans {
                match out.spans.iter_mut().find(|(m, _)| m == n) {
                    Some((_, acc)) if s.count > 0 => {
                        acc.min_s = if acc.count == 0 { s.min_s } else { acc.min_s.min(s.min_s) };
                        acc.max_s = if acc.count == 0 { s.max_s } else { acc.max_s.max(s.max_s) };
                        acc.count += s.count;
                        acc.total_s += s.total_s;
                    }
                    Some(_) => {}
                    None => out.spans.push((n.clone(), s.clone())),
                }
            }
        }
        out.counters.sort_by(|a, b| a.0.cmp(&b.0));
        out.gauges.sort_by(|a, b| a.0.cmp(&b.0));
        out.histograms.sort_by(|a, b| a.0.cmp(&b.0));
        out.spans.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip_preserves_everything() {
        let mut h = HistogramSummary::empty();
        h.count = 3;
        h.sum = 700.0;
        h.min = 100.0;
        h.max = 400.0;
        h.buckets[HistogramSummary::bucket_index(100.0)] += 1;
        h.buckets[HistogramSummary::bucket_index(200.0)] += 1;
        h.buckets[HistogramSummary::bucket_index(400.0)] += 1;
        let snap = Snapshot {
            counters: vec![("jobs.completed".into(), 7), ("jobs.rejected".into(), 1)],
            gauges: vec![("queue.depth".into(), 3.0)],
            histograms: vec![("latency_us".into(), h)],
            spans: vec![(
                "pipeline/solve".into(),
                SpanSummary { count: 2, total_s: 1.5, min_s: 0.5, max_s: 1.0 },
            )],
        };
        let text = snap.to_json().render();
        let back = Snapshot::from_json_str(&text).expect("round trip");
        assert_eq!(back, snap);
        // And the re-rendering is byte-identical (schema stability).
        assert_eq!(back.to_json().render(), text);
    }

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(HistogramSummary::bucket_index(-5.0), 0);
        assert_eq!(HistogramSummary::bucket_index(0.5), 0);
        assert_eq!(HistogramSummary::bucket_index(1.0), 0);
        assert_eq!(HistogramSummary::bucket_index(2.0), 1);
        assert_eq!(HistogramSummary::bucket_index(1023.0), 9);
        assert_eq!(HistogramSummary::bucket_index(1e30), HISTOGRAM_BUCKETS - 1);
    }

    #[test]
    fn prefixed_renames_everything_and_stays_sorted() {
        let snap = Snapshot {
            counters: vec![("jobs.completed".into(), 7)],
            gauges: vec![("queue.depth".into(), 3.0)],
            histograms: vec![("latency_us".into(), HistogramSummary::empty())],
            spans: vec![("scan/solve".into(), SpanSummary { count: 1, total_s: 0.1, min_s: 0.1, max_s: 0.1 })],
        };
        let p = snap.prefixed("shard2");
        assert_eq!(p.counter("shard2.jobs.completed"), Some(7));
        assert_eq!(p.gauge("shard2.queue.depth"), Some(3.0));
        assert!(p.histogram("shard2.latency_us").is_some());
        assert!(p.span("shard2.scan/solve").is_some());
        assert_eq!(p.counter("jobs.completed"), None, "old names are gone");
    }

    #[test]
    fn merged_sums_counters_and_keeps_disjoint_names_sorted() {
        let a = Snapshot {
            counters: vec![("shard0.done".into(), 3), ("total".into(), 3)],
            gauges: vec![("peak".into(), 2.0)],
            histograms: vec![],
            spans: vec![],
        };
        let mut h = HistogramSummary::empty();
        h.count = 2;
        h.sum = 30.0;
        h.min = 10.0;
        h.max = 20.0;
        h.buckets[HistogramSummary::bucket_index(10.0)] += 1;
        h.buckets[HistogramSummary::bucket_index(20.0)] += 1;
        let b = Snapshot {
            counters: vec![("shard1.done".into(), 4), ("total".into(), 4)],
            gauges: vec![("peak".into(), 5.0)],
            histograms: vec![("lat".into(), h.clone())],
            spans: vec![],
        };
        let m = Snapshot::merged([&a, &b]);
        assert_eq!(m.counter("shard0.done"), Some(3));
        assert_eq!(m.counter("shard1.done"), Some(4));
        assert_eq!(m.counter("total"), Some(7), "colliding counters sum");
        assert_eq!(m.gauge("peak"), Some(5.0), "colliding gauges keep the max");
        assert_eq!(m.histogram("lat"), Some(&h));
        let names: Vec<&str> = m.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "merged snapshot stays name-sorted");
    }

    #[test]
    fn merged_histograms_ignore_empty_placeholder_extremes() {
        let mut h = HistogramSummary::empty();
        h.count = 1;
        h.sum = 50.0;
        h.min = 50.0;
        h.max = 50.0;
        h.buckets[HistogramSummary::bucket_index(50.0)] += 1;
        let full = Snapshot { histograms: vec![("lat".into(), h)], ..Snapshot::default() };
        let empty =
            Snapshot { histograms: vec![("lat".into(), HistogramSummary::empty())], ..Snapshot::default() };
        let m = Snapshot::merged([&empty, &full]);
        let lat = m.histogram("lat").expect("merged");
        assert_eq!(lat.count, 1);
        assert_eq!(lat.min, 50.0, "empty side's 0.0 placeholder must not leak into min");
        assert_eq!(lat.max, 50.0);
    }

    #[test]
    fn accessors_find_by_name() {
        let snap = Snapshot {
            counters: vec![("a".into(), 1)],
            gauges: vec![("g".into(), 2.5)],
            histograms: vec![],
            spans: vec![],
        };
        assert_eq!(snap.counter("a"), Some(1));
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.gauge("g"), Some(2.5));
    }
}
