//! Metric registry: counters, gauges, histograms, and hierarchical span
//! statistics behind one lock, snapshotted deterministically.

use crate::clock::{Clock, Stopwatch};
use crate::snapshot::{HistogramSummary, Snapshot, SpanSummary, HISTOGRAM_BUCKETS};
use std::collections::BTreeMap;
use std::sync::Mutex;

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Hist>,
    spans: BTreeMap<String, SpanStat>,
}

struct Hist {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist { count: 0, sum: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY, buckets: [0; HISTOGRAM_BUCKETS] }
    }
}

#[derive(Default)]
struct SpanStat {
    count: u64,
    total_s: f64,
    min_s: f64,
    max_s: f64,
}

/// Thread-safe metric registry.
///
/// All maps are `BTreeMap`s, so [`Registry::snapshot`] is sorted by name
/// and deterministic; under a logical [`Clock`] (the simulator's), two
/// identical runs produce bit-identical snapshots. Metric names use a
/// `'.'`-separated convention (`service.jobs.completed`); span paths are
/// `'/'`-separated hierarchies (`pipeline/solve/gmres`) aggregated per
/// path.
pub struct Registry {
    clock: Clock,
    inner: Mutex<Inner>,
}

impl Registry {
    /// A registry timing spans against `clock`.
    pub fn new(clock: Clock) -> Self {
        Registry { clock, inner: Mutex::new(Inner::default()) }
    }

    /// Convenience constructor: wall clock epoch now.
    pub fn with_wall_clock() -> Self {
        Registry::new(Clock::wall())
    }

    /// The clock this registry times spans with (share it to put other
    /// measurements on the same timeline).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the metrics lock cannot corrupt the
        // aggregates in a way we care more about than continuing.
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Add `delta` to the named monotonic counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.locked();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Set the named gauge (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.locked();
        inner.gauges.insert(name.to_string(), value);
    }

    /// Raise the named gauge to `value` if larger (peak tracking).
    pub fn gauge_max(&self, name: &str, value: f64) {
        let mut inner = self.locked();
        let g = inner.gauges.entry(name.to_string()).or_insert(f64::NEG_INFINITY);
        if value > *g {
            *g = value;
        }
    }

    /// Record one observation into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.locked();
        let h = inner.histograms.entry(name.to_string()).or_default();
        h.count += 1;
        h.sum += value;
        h.min = h.min.min(value);
        h.max = h.max.max(value);
        h.buckets[HistogramSummary::bucket_index(value)] += 1;
    }

    /// Record a completed span of `seconds` on `path` directly (for
    /// durations measured elsewhere, e.g. a solver's own timer).
    pub fn record_span_s(&self, path: &str, seconds: f64) {
        let mut inner = self.locked();
        let s = inner.spans.entry(path.to_string()).or_default();
        if s.count == 0 {
            s.min_s = seconds;
            s.max_s = seconds;
        } else {
            s.min_s = s.min_s.min(seconds);
            s.max_s = s.max_s.max(seconds);
        }
        s.count += 1;
        s.total_s += seconds;
    }

    /// Time `f` against the registry clock and record it as a span on
    /// `path`. Returns `f`'s result.
    pub fn time<T>(&self, path: &str, f: impl FnOnce() -> T) -> T {
        let sw = Stopwatch::start(&self.clock);
        let out = f();
        self.record_span_s(path, sw.elapsed_s());
        out
    }

    /// Deterministic point-in-time copy (sorted by name).
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.locked();
        Snapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        HistogramSummary {
                            count: h.count,
                            sum: h.sum,
                            min: if h.count == 0 { 0.0 } else { h.min },
                            max: if h.count == 0 { 0.0 } else { h.max },
                            buckets: h.buckets.to_vec(),
                        },
                    )
                })
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|(k, s)| {
                    (
                        k.clone(),
                        SpanSummary { count: s.count, total_s: s.total_s, min_s: s.min_s, max_s: s.max_s },
                    )
                })
                .collect(),
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_wall_clock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let r = Registry::with_wall_clock();
        r.counter_add("z.last", 1);
        r.counter_add("a.first", 2);
        r.counter_add("a.first", 3);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a.first".to_string(), 5), ("z.last".to_string(), 1)]);
    }

    #[test]
    fn gauges_last_write_and_peak() {
        let r = Registry::with_wall_clock();
        r.gauge_set("depth", 3.0);
        r.gauge_set("depth", 1.0);
        r.gauge_max("peak", 2.0);
        r.gauge_max("peak", 5.0);
        r.gauge_max("peak", 4.0);
        let snap = r.snapshot();
        assert_eq!(snap.gauge("depth"), Some(1.0));
        assert_eq!(snap.gauge("peak"), Some(5.0));
    }

    #[test]
    fn histograms_track_count_sum_extremes_buckets() {
        let r = Registry::with_wall_clock();
        for v in [100.0, 200.0, 400.0] {
            r.observe("lat_us", v);
        }
        let snap = r.snapshot();
        let h = snap.histogram("lat_us").expect("histogram");
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 700.0);
        assert_eq!(h.min, 100.0);
        assert_eq!(h.max, 400.0);
        assert!((h.mean() - 700.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn spans_aggregate_per_path() {
        let r = Registry::with_wall_clock();
        r.record_span_s("pipeline/solve", 1.0);
        r.record_span_s("pipeline/solve", 0.5);
        r.record_span_s("pipeline/mesh", 0.25);
        let snap = r.snapshot();
        let s = snap.span("pipeline/solve").expect("span");
        assert_eq!(s.count, 2);
        assert!((s.total_s - 1.5).abs() < 1e-12);
        assert_eq!(s.min_s, 0.5);
        assert_eq!(s.max_s, 1.0);
        assert_eq!(snap.span("pipeline/mesh").expect("span").count, 1);
    }

    #[test]
    fn time_records_under_logical_clock_deterministically() {
        // With a logical clock that nobody advances, every span takes
        // exactly 0.0 s — two identical runs snapshot identically.
        let run = || {
            let r = Registry::new(Clock::logical());
            r.time("a/b", || ());
            r.clock().advance_to_us(1000);
            r.time("a/b", || r.clock().advance_to_us(3000));
            r.counter_add("n", 1);
            r.snapshot()
        };
        let (a, b) = (run(), run());
        assert_eq!(a, b);
        let s = a.span("a/b").expect("span");
        assert_eq!(s.count, 2);
        // Second span covered the 1000→3000 µs advance.
        assert!((s.total_s - 0.002).abs() < 1e-12);
        assert_eq!(a.to_json().render(), b.to_json().render());
    }
}
