//! Boundary-surface extraction from tetrahedral meshes.
//!
//! Faces belonging to exactly one tetrahedron (or separating differently
//! labeled regions) form the boundary. Each extracted vertex remembers its
//! volumetric node, which lets active-surface displacements be imposed as
//! FEM Dirichlet conditions — the paper's "key concept... apply forces to
//! the volumetric model that will produce the same displacement field at
//! the surfaces as was obtained with the active surface algorithm".

use crate::tetmesh::TetMesh;
use crate::trisurface::TriSurface;
use std::collections::HashMap;

/// The four faces of a tet, each ordered so its outward normal (away from
/// the opposite node) follows the right-hand rule when the tet is
/// positively oriented.
fn tet_faces(tet: &[usize; 4]) -> [([usize; 3], usize); 4] {
    let [a, b, c, d] = *tet;
    [
        // face opposite d, opposite a, opposite b, opposite c
        ([a, c, b], d),
        ([b, c, d], a),
        ([a, d, c], b),
        ([a, b, d], c),
    ]
}

/// Extract the outer boundary of the whole mesh.
pub fn extract_boundary(mesh: &TetMesh) -> TriSurface {
    extract_boundary_of(mesh, |_| true)
}

/// Extract the boundary of the sub-region whose tet labels satisfy
/// `select`: faces owned by exactly one selected tet (with respect to
/// other selected tets) form the surface.
pub fn extract_boundary_of(mesh: &TetMesh, select: impl Fn(u8) -> bool) -> TriSurface {
    // Count selected-region faces.
    let mut face_info: HashMap<[usize; 3], (usize, [usize; 3])> = HashMap::new();
    for (t, tet) in mesh.tets.iter().enumerate() {
        if !select(mesh.tet_labels[t]) {
            continue;
        }
        for (face, _opp) in tet_faces(tet) {
            let mut key = face;
            key.sort_unstable();
            face_info
                .entry(key)
                .and_modify(|e| e.0 += 1)
                .or_insert((1, face));
        }
    }
    let mut vertex_of_node: HashMap<usize, usize> = HashMap::new();
    let mut surf = TriSurface { vertices: Vec::new(), triangles: Vec::new(), mesh_node: Vec::new() };
    let mut boundary_faces: Vec<[usize; 3]> = face_info
        .into_iter()
        .filter(|&(_, (count, _))| count == 1)
        .map(|(_, (_, oriented))| oriented)
        .collect();
    // Deterministic output regardless of hash order.
    boundary_faces.sort_unstable();
    for face in boundary_faces {
        let mut tri = [0usize; 3];
        for (slot, &node) in tri.iter_mut().zip(&face) {
            *slot = *vertex_of_node.entry(node).or_insert_with(|| {
                surf.vertices.push(mesh.nodes[node]);
                surf.mesh_node.push(node);
                surf.vertices.len() - 1
            });
        }
        surf.triangles.push(tri);
    }
    surf
}

/// Indices of the volumetric mesh nodes that lie on the outer boundary.
pub fn boundary_nodes(mesh: &TetMesh) -> Vec<usize> {
    let surf = extract_boundary(mesh);
    let mut nodes: Vec<usize> = surf.mesh_node;
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{mesh_labeled_volume, MesherConfig};
    use brainshift_imaging::labels;
    use brainshift_imaging::volume::{Dims, Spacing, Volume};
    use brainshift_imaging::Vec3;

    fn block_mesh(n: usize) -> TetMesh {
        let seg = Volume::from_fn(Dims::new(n, n, n), Spacing::iso(1.0), |_, _, _| labels::BRAIN);
        mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable })
    }

    #[test]
    fn cube_boundary_area() {
        // Mesh of an s³ cube of cells: boundary area = 6 s².
        let mesh = block_mesh(4);
        let surf = extract_boundary(&mesh);
        assert!(surf.validate().is_ok());
        let s = 4.0;
        assert!((surf.area() - 6.0 * s * s).abs() < 1e-9, "area {}", surf.area());
    }

    #[test]
    fn boundary_is_closed() {
        let mesh = block_mesh(3);
        let surf = extract_boundary(&mesh);
        let mut edges: HashMap<(usize, usize), usize> = HashMap::new();
        for tri in &surf.triangles {
            for i in 0..3 {
                let a = tri[i];
                let b = tri[(i + 1) % 3];
                *edges.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
        assert!(edges.values().all(|&c| c == 2), "boundary surface not closed");
    }

    #[test]
    fn normals_point_outward_from_cube() {
        let mesh = block_mesh(3);
        let surf = extract_boundary(&mesh);
        let center = Vec3::splat(1.5);
        let mut outward = 0usize;
        for t in 0..surf.num_triangles() {
            let n = surf.triangle_normal(t);
            let tri = surf.triangles[t];
            let c = (surf.vertices[tri[0]] + surf.vertices[tri[1]] + surf.vertices[tri[2]]) / 3.0;
            if n.dot(c - center) > 0.0 {
                outward += 1;
            }
        }
        assert_eq!(outward, surf.num_triangles(), "some normals point inward");
    }

    #[test]
    fn mesh_node_mapping_valid() {
        let mesh = block_mesh(3);
        let surf = extract_boundary(&mesh);
        for (v, &node) in surf.mesh_node.iter().enumerate() {
            assert!(node < mesh.num_nodes());
            assert!((surf.vertices[v] - mesh.nodes[node]).norm() < 1e-12);
        }
    }

    #[test]
    fn boundary_nodes_of_cube() {
        // 4³ cells → 5³ grid nodes, boundary nodes = 5³ − 3³ interior.
        let mesh = block_mesh(4);
        let bn = boundary_nodes(&mesh);
        assert_eq!(bn.len(), 125 - 27);
    }

    #[test]
    fn labeled_subregion_boundary() {
        // A two-label volume: extract only the inner label's boundary.
        let seg = Volume::from_fn(Dims::new(6, 6, 6), Spacing::iso(1.0), |x, y, z| {
            if (2..4).contains(&x) && (2..4).contains(&y) && (2..4).contains(&z) {
                labels::TUMOR
            } else {
                labels::BRAIN
            }
        });
        let mesh = mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable });
        let tumor_surf = extract_boundary_of(&mesh, |l| l == labels::TUMOR);
        assert!(tumor_surf.num_triangles() > 0);
        assert!(tumor_surf.validate().is_ok());
        // Tumor sub-surface must be much smaller than the whole boundary.
        let whole = extract_boundary(&mesh);
        assert!(tumor_surf.area() < whole.area());
    }
}
