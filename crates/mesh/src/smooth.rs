//! Mesh smoothing.
//!
//! The paper's discussion: "A tetrahedral mesh with a more regular
//! connectivity pattern would allow better scaling in the matrix assembly
//! process" — and more regular *shapes* improve conditioning. This module
//! implements guarded Laplacian smoothing: interior nodes relax toward
//! their neighbor centroid, rejecting any move that would invert or
//! excessively shrink an incident tetrahedron.

use crate::surface_extract::boundary_nodes;
use crate::tetmesh::{signed_volume, TetMesh};
use brainshift_imaging::Vec3;

/// Smoothing parameters.
#[derive(Debug, Clone)]
pub struct SmoothConfig {
    /// Relaxation factor toward the neighbor centroid per sweep (0..1].
    pub relaxation: f64,
    /// Number of sweeps.
    pub sweeps: usize,
    /// A move is rejected if any incident tet volume falls below this
    /// fraction of its pre-move value.
    pub min_volume_ratio: f64,
}

impl Default for SmoothConfig {
    fn default() -> Self {
        SmoothConfig { relaxation: 0.5, sweeps: 5, min_volume_ratio: 0.2 }
    }
}

/// Statistics of a smoothing run.
#[derive(Debug, Clone, Default)]
pub struct SmoothStats {
    /// Vertex moves accepted.
    pub moves_applied: usize,
    /// Vertex moves rejected by the volume guard.
    pub moves_rejected: usize,
}

/// Smooth the interior nodes of `mesh` in place (boundary geometry is
/// preserved exactly — the mesh surface is the registration target and
/// must not drift).
pub fn smooth_interior(mesh: &mut TetMesh, cfg: &SmoothConfig) -> SmoothStats {
    let boundary: std::collections::HashSet<usize> = boundary_nodes(mesh).into_iter().collect();
    let adjacency = mesh.node_adjacency();
    let node_tets = mesh.node_to_tets();
    let mut stats = SmoothStats::default();

    for _ in 0..cfg.sweeps {
        for n in 0..mesh.num_nodes() {
            if boundary.contains(&n) || adjacency[n].is_empty() {
                continue;
            }
            let mut centroid = Vec3::ZERO;
            for &j in &adjacency[n] {
                centroid += mesh.nodes[j];
            }
            centroid = centroid / adjacency[n].len() as f64;
            let old = mesh.nodes[n];
            let candidate = old.lerp(centroid, cfg.relaxation);
            // Guard: no incident tet may invert or collapse.
            let mut ok = true;
            for &t in &node_tets[n] {
                let tet = mesh.tets[t];
                let before = signed_volume(
                    mesh.nodes[tet[0]],
                    mesh.nodes[tet[1]],
                    mesh.nodes[tet[2]],
                    mesh.nodes[tet[3]],
                );
                let pos = |i: usize| if tet[i] == n { candidate } else { mesh.nodes[tet[i]] };
                let after = signed_volume(pos(0), pos(1), pos(2), pos(3));
                if after <= cfg.min_volume_ratio * before {
                    ok = false;
                    break;
                }
            }
            if ok {
                mesh.nodes[n] = candidate;
                stats.moves_applied += 1;
            } else {
                stats.moves_rejected += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{mesh_labeled_volume, MesherConfig};
    use crate::quality::mesh_quality;
    use brainshift_imaging::labels;
    use brainshift_imaging::volume::{Dims, Spacing, Volume};
    use rand::{Rng, SeedableRng};

    fn block_mesh(n: usize) -> TetMesh {
        let seg = Volume::from_fn(Dims::new(n, n, n), Spacing::iso(1.0), |_, _, _| labels::BRAIN);
        mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable })
    }

    /// Jitter interior nodes to create bad elements.
    fn jittered(n: usize, amp: f64, seed: u64) -> TetMesh {
        let mut mesh = block_mesh(n);
        let boundary: std::collections::HashSet<usize> =
            boundary_nodes(&mesh).into_iter().collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for i in 0..mesh.num_nodes() {
            if !boundary.contains(&i) {
                mesh.nodes[i] += Vec3::new(
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                    rng.gen_range(-amp..amp),
                );
            }
        }
        mesh
    }

    #[test]
    fn smoothing_improves_jittered_quality() {
        let mut mesh = jittered(5, 0.25, 7);
        assert!(mesh.validate().is_ok(), "jitter too strong for the test setup");
        let before = mesh_quality(&mesh);
        let stats = smooth_interior(&mut mesh, &SmoothConfig::default());
        assert!(stats.moves_applied > 0);
        assert!(mesh.validate().is_ok());
        let after = mesh_quality(&mesh);
        assert!(
            after.min_radius_ratio > before.min_radius_ratio,
            "{} → {}",
            before.min_radius_ratio,
            after.min_radius_ratio
        );
        assert!(after.min_dihedral_deg >= before.min_dihedral_deg - 1e-9);
    }

    #[test]
    fn boundary_nodes_never_move() {
        let mut mesh = jittered(4, 0.2, 9);
        let boundary = boundary_nodes(&mesh);
        let before: Vec<Vec3> = boundary.iter().map(|&n| mesh.nodes[n]).collect();
        smooth_interior(&mut mesh, &SmoothConfig::default());
        for (&n, &p) in boundary.iter().zip(&before) {
            assert!((mesh.nodes[n] - p).norm() < 1e-15);
        }
    }

    #[test]
    fn volumes_stay_positive() {
        let mut mesh = jittered(5, 0.3, 11);
        smooth_interior(&mut mesh, &SmoothConfig { sweeps: 10, ..Default::default() });
        for t in 0..mesh.num_tets() {
            assert!(mesh.tet_volume(t) > 0.0, "tet {t} inverted");
        }
    }

    #[test]
    fn already_regular_mesh_barely_changes() {
        let mut mesh = block_mesh(4);
        let before = mesh.nodes.clone();
        smooth_interior(&mut mesh, &SmoothConfig { sweeps: 2, ..Default::default() });
        // A regular lattice is already at its neighbor centroid; max move
        // tiny (corner asymmetry of the 5-tet split notwithstanding).
        let max_move = mesh
            .nodes
            .iter()
            .zip(&before)
            .map(|(a, b)| (*a - *b).norm())
            .fold(0.0, f64::max);
        assert!(max_move < 0.35, "regular mesh moved {max_move}");
    }

    #[test]
    fn total_volume_approximately_conserved() {
        let mut mesh = jittered(5, 0.2, 13);
        let before = mesh.total_volume();
        smooth_interior(&mut mesh, &SmoothConfig::default());
        let after = mesh.total_volume();
        // Interior-only moves redistribute volume between tets but keep
        // the enclosed volume fixed (boundary unchanged).
        assert!((after - before).abs() < 1e-9 * before);
    }
}
