//! Tetrahedron quality metrics.
//!
//! The paper's discussion notes that "a tetrahedral mesh with a more
//! regular connectivity pattern would allow better scaling"; quality and
//! connectivity statistics let the benchmarks quantify what the mesher
//! produces.

use crate::tetmesh::TetMesh;
use brainshift_imaging::Vec3;

/// Quality measures of one tetrahedron.
#[derive(Debug, Clone, Copy)]
pub struct TetQuality {
    /// Volume, mm³ (positive for valid orientation).
    pub volume: f64,
    /// Longest edge / shortest edge.
    pub edge_ratio: f64,
    /// Radius ratio 3 r_in / r_circ in (0, 1]; 1 for the regular tet.
    pub radius_ratio: f64,
    /// Minimum dihedral angle, radians.
    pub min_dihedral: f64,
}

/// Compute quality of the tet with vertices (a, b, c, d).
pub fn tet_quality(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> TetQuality {
    let volume = crate::tetmesh::signed_volume(a, b, c, d);
    let edges = [
        (a, b),
        (a, c),
        (a, d),
        (b, c),
        (b, d),
        (c, d),
    ];
    let mut emin = f64::INFINITY;
    let mut emax: f64 = 0.0;
    for &(p, q) in &edges {
        let l = p.distance(q);
        emin = emin.min(l);
        emax = emax.max(l);
    }
    // Faces and their areas.
    let faces = [(a, b, c), (a, b, d), (a, c, d), (b, c, d)];
    let total_area: f64 = faces
        .iter()
        .map(|&(p, q, r)| (q - p).cross(r - p).norm() * 0.5)
        .sum();
    // Inradius r = 3V / total area.
    let r_in = if total_area > 0.0 { 3.0 * volume.abs() / total_area } else { 0.0 };
    // Circumradius via the standard determinant-free formula.
    let r_circ = circumradius(a, b, c, d).unwrap_or(f64::INFINITY);
    let radius_ratio = if r_circ.is_finite() && r_circ > 0.0 { 3.0 * r_in / r_circ } else { 0.0 };

    // Dihedral angles along the 6 edges: angle between the two faces
    // adjacent to each edge.
    let min_dihedral = min_dihedral_angle(a, b, c, d);

    TetQuality {
        volume,
        edge_ratio: if emin > 0.0 { emax / emin } else { f64::INFINITY },
        radius_ratio,
        min_dihedral,
    }
}

/// Circumradius of the tetrahedron, or `None` if degenerate.
pub fn circumradius(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> Option<f64> {
    // Solve for the circumcenter: |x - a| = |x - b| = |x - c| = |x - d|.
    let ab = b - a;
    let ac = c - a;
    let ad = d - a;
    let m = brainshift_imaging::Mat3::from_rows(
        [ab.x, ab.y, ab.z],
        [ac.x, ac.y, ac.z],
        [ad.x, ad.y, ad.z],
    );
    let rhs = Vec3::new(ab.norm_sq() * 0.5, ac.norm_sq() * 0.5, ad.norm_sq() * 0.5);
    let inv = m.inverse()?;
    let offset = inv * rhs;
    Some(offset.norm())
}

fn face_normal(p: Vec3, q: Vec3, r: Vec3) -> Vec3 {
    (q - p).cross(r - p).normalized()
}

/// Minimum dihedral angle of the tet (radians).
pub fn min_dihedral_angle(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> f64 {
    // For each of the 6 edges, the dihedral is the angle between the two
    // incident faces. Orient face normals consistently outward using the
    // opposite vertex.
    let vertices = [a, b, c, d];
    let mut min_angle = f64::INFINITY;
    // Edge (i, j); faces are (i, j, k) and (i, j, l) with {k, l} the others.
    for i in 0..4 {
        for j in (i + 1)..4 {
            let others: Vec<usize> = (0..4).filter(|&x| x != i && x != j).collect();
            let (k, l) = (others[0], others[1]);
            let mut n1 = face_normal(vertices[i], vertices[j], vertices[k]);
            // Point n1 away from l.
            if n1.dot(vertices[l] - vertices[i]) > 0.0 {
                n1 = -n1;
            }
            let mut n2 = face_normal(vertices[i], vertices[j], vertices[l]);
            if n2.dot(vertices[k] - vertices[i]) > 0.0 {
                n2 = -n2;
            }
            // Dihedral angle = π − angle between outward normals.
            let cosang = (-(n1.dot(n2))).clamp(-1.0, 1.0);
            let ang = cosang.acos();
            min_angle = min_angle.min(ang);
        }
    }
    min_angle
}

/// Aggregate quality statistics over a whole mesh.
#[derive(Debug, Clone)]
pub struct MeshQualityReport {
    /// Elements surveyed.
    pub num_tets: usize,
    /// Smallest signed element volume (mm³).
    pub min_volume: f64,
    /// Worst longest/shortest edge ratio.
    pub max_edge_ratio: f64,
    /// Worst radius ratio (1 = regular tet).
    pub min_radius_ratio: f64,
    /// Smallest dihedral angle, degrees.
    pub min_dihedral_deg: f64,
    /// Mean radius ratio over all elements.
    pub mean_radius_ratio: f64,
    /// Mean and max node connectivity degree (the paper's imbalance
    /// driver).
    pub mean_degree: f64,
    /// Largest node connectivity degree.
    pub max_degree: usize,
}

/// Survey quality over all tets of a mesh.
pub fn mesh_quality(mesh: &TetMesh) -> MeshQualityReport {
    let mut min_volume = f64::INFINITY;
    let mut max_edge_ratio: f64 = 0.0;
    let mut min_radius_ratio = f64::INFINITY;
    let mut min_dihedral = f64::INFINITY;
    let mut sum_radius_ratio = 0.0;
    for tet in &mesh.tets {
        let q = tet_quality(
            mesh.nodes[tet[0]],
            mesh.nodes[tet[1]],
            mesh.nodes[tet[2]],
            mesh.nodes[tet[3]],
        );
        min_volume = min_volume.min(q.volume);
        max_edge_ratio = max_edge_ratio.max(q.edge_ratio);
        min_radius_ratio = min_radius_ratio.min(q.radius_ratio);
        min_dihedral = min_dihedral.min(q.min_dihedral);
        sum_radius_ratio += q.radius_ratio;
    }
    let degrees = mesh.node_degrees();
    let mean_degree = if degrees.is_empty() {
        0.0
    } else {
        degrees.iter().sum::<usize>() as f64 / degrees.len() as f64
    };
    MeshQualityReport {
        num_tets: mesh.num_tets(),
        min_volume,
        max_edge_ratio,
        min_radius_ratio,
        min_dihedral_deg: min_dihedral.to_degrees(),
        mean_radius_ratio: if mesh.num_tets() > 0 { sum_radius_ratio / mesh.num_tets() as f64 } else { 0.0 },
        mean_degree,
        max_degree: degrees.into_iter().max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regular_tet() -> (Vec3, Vec3, Vec3, Vec3) {
        // Regular tetrahedron inscribed in a cube.
        (
            Vec3::new(1.0, 1.0, 1.0),
            Vec3::new(1.0, -1.0, -1.0),
            Vec3::new(-1.0, 1.0, -1.0),
            Vec3::new(-1.0, -1.0, 1.0),
        )
    }

    #[test]
    fn regular_tet_quality_is_ideal() {
        let (a, b, c, d) = regular_tet();
        let q = tet_quality(a, b, c, d);
        assert!((q.edge_ratio - 1.0).abs() < 1e-12);
        assert!((q.radius_ratio - 1.0).abs() < 1e-9, "radius ratio {}", q.radius_ratio);
        // Regular tet dihedral = arccos(1/3) ≈ 70.53°.
        let expected = (1.0f64 / 3.0).acos();
        assert!((q.min_dihedral - expected).abs() < 1e-9);
    }

    #[test]
    fn circumradius_of_regular_tet() {
        let (a, b, c, d) = regular_tet();
        // Vertices at distance sqrt(3) from origin.
        let r = circumradius(a, b, c, d).unwrap();
        assert!((r - 3.0f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn degenerate_tet_has_zero_ratio() {
        let a = Vec3::ZERO;
        let b = Vec3::new(1.0, 0.0, 0.0);
        let c = Vec3::new(2.0, 0.0, 0.0);
        let d = Vec3::new(3.0, 0.0, 0.0);
        let q = tet_quality(a, b, c, d);
        assert_eq!(q.volume, 0.0);
        assert!(q.radius_ratio == 0.0 || q.radius_ratio.is_nan());
    }

    #[test]
    fn sliver_quality_worse_than_regular() {
        let (a, b, c, d) = regular_tet();
        let sliver = tet_quality(a, b, c, Vec3::new(-1.0, -1.0, -0.9) * -1.0);
        let good = tet_quality(a, b, c, d);
        assert!(sliver.radius_ratio < good.radius_ratio);
    }

    #[test]
    fn report_over_generated_mesh() {
        use crate::generator::{mesh_labeled_volume, MesherConfig};
        use brainshift_imaging::labels;
        use brainshift_imaging::volume::{Dims, Spacing, Volume};
        let seg = Volume::from_fn(Dims::new(5, 5, 5), Spacing::iso(1.0), |_, _, _| labels::BRAIN);
        let mesh = mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable });
        let r = mesh_quality(&mesh);
        assert_eq!(r.num_tets, mesh.num_tets());
        assert!(r.min_volume > 0.0);
        assert!(r.min_dihedral_deg > 20.0, "5-tet split should have decent dihedrals: {}", r.min_dihedral_deg);
        assert!(r.max_degree >= r.mean_degree as usize);
    }
}
