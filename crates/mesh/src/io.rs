//! Mesh export.
//!
//! Wavefront OBJ for triangulated surfaces and legacy VTK unstructured
//! grids for tetrahedral meshes (with tissue labels and optional nodal
//! displacement vectors) — both load directly into ParaView / 3D Slicer,
//! the lineage of the paper's visualization system.

use crate::tetmesh::TetMesh;
use crate::trisurface::TriSurface;
use brainshift_imaging::Vec3;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Write a triangulated surface as Wavefront OBJ.
pub fn write_obj(surface: &TriSurface, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "# brainshift surface: {} vertices, {} triangles", surface.num_vertices(), surface.num_triangles())?;
    for v in &surface.vertices {
        writeln!(w, "v {} {} {}", v.x, v.y, v.z)?;
    }
    for t in &surface.triangles {
        // OBJ indices are 1-based.
        writeln!(w, "f {} {} {}", t[0] + 1, t[1] + 1, t[2] + 1)?;
    }
    w.flush()
}

/// Write a tetrahedral mesh as a legacy-format VTK unstructured grid,
/// with tissue labels as cell data and (optionally) nodal displacements
/// as point vectors.
pub fn write_vtk(mesh: &TetMesh, displacements: Option<&[Vec3]>, path: &Path) -> io::Result<()> {
    if let Some(d) = displacements {
        assert_eq!(d.len(), mesh.num_nodes(), "one displacement per node");
    }
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "# vtk DataFile Version 3.0")?;
    writeln!(w, "brainshift tetrahedral mesh")?;
    writeln!(w, "ASCII")?;
    writeln!(w, "DATASET UNSTRUCTURED_GRID")?;
    writeln!(w, "POINTS {} float", mesh.num_nodes())?;
    for p in &mesh.nodes {
        writeln!(w, "{} {} {}", p.x, p.y, p.z)?;
    }
    writeln!(w, "CELLS {} {}", mesh.num_tets(), mesh.num_tets() * 5)?;
    for t in &mesh.tets {
        writeln!(w, "4 {} {} {} {}", t[0], t[1], t[2], t[3])?;
    }
    writeln!(w, "CELL_TYPES {}", mesh.num_tets())?;
    for _ in 0..mesh.num_tets() {
        writeln!(w, "10")?; // VTK_TETRA
    }
    writeln!(w, "CELL_DATA {}", mesh.num_tets())?;
    writeln!(w, "SCALARS tissue_label int 1")?;
    writeln!(w, "LOOKUP_TABLE default")?;
    for &l in &mesh.tet_labels {
        writeln!(w, "{l}")?;
    }
    if let Some(disp) = displacements {
        writeln!(w, "POINT_DATA {}", mesh.num_nodes())?;
        writeln!(w, "VECTORS displacement float")?;
        for u in disp {
            writeln!(w, "{} {} {}", u.x, u.y, u.z)?;
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{mesh_labeled_volume, MesherConfig};
    use brainshift_imaging::labels;
    use brainshift_imaging::volume::{Dims, Spacing, Volume};

    fn small_mesh() -> TetMesh {
        let seg = Volume::from_fn(Dims::new(3, 3, 3), Spacing::iso(1.0), |_, _, _| labels::BRAIN);
        mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable })
    }

    #[test]
    fn obj_counts_match() {
        let mesh = small_mesh();
        let surf = crate::surface_extract::extract_boundary(&mesh);
        let path = std::env::temp_dir().join("brainshift_test.obj");
        write_obj(&surf, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let v_count = text.lines().filter(|l| l.starts_with("v ")).count();
        let f_count = text.lines().filter(|l| l.starts_with("f ")).count();
        assert_eq!(v_count, surf.num_vertices());
        assert_eq!(f_count, surf.num_triangles());
        // 1-based indices: no zero index may appear.
        for line in text.lines().filter(|l| l.starts_with("f ")) {
            for tok in line.split_whitespace().skip(1) {
                assert!(tok.parse::<usize>().unwrap() >= 1);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn vtk_structure_and_labels() {
        let mesh = small_mesh();
        let disp: Vec<Vec3> = mesh.nodes.iter().map(|p| *p * 0.01).collect();
        let path = std::env::temp_dir().join("brainshift_test.vtk");
        write_vtk(&mesh, Some(&disp), &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains(&format!("POINTS {} float", mesh.num_nodes())));
        assert!(text.contains(&format!("CELLS {} {}", mesh.num_tets(), mesh.num_tets() * 5)));
        assert!(text.contains("SCALARS tissue_label int 1"));
        assert!(text.contains("VECTORS displacement float"));
        // All cell types are tetrahedra.
        let types: Vec<&str> = text
            .lines()
            .skip_while(|l| !l.starts_with("CELL_TYPES"))
            .skip(1)
            .take(mesh.num_tets())
            .collect();
        assert!(types.iter().all(|&t| t == "10"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn vtk_without_displacements_omits_point_data() {
        let mesh = small_mesh();
        let path = std::env::temp_dir().join("brainshift_test_nodisp.vtk");
        write_vtk(&mesh, None, &path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(!text.contains("POINT_DATA"));
        std::fs::remove_file(&path).ok();
    }
}
