//! Typed errors for mesh validation.
//!
//! A malformed mesh — inverted elements, slivers, dangling node indices —
//! must be rejected when the FEM system is *built*, not discovered as a
//! singular stiffness matrix (or a panic) during the intraoperative
//! solve.

use std::fmt;

/// A structural or quality violation found in a [`TetMesh`](crate::TetMesh).
#[derive(Debug, Clone, PartialEq)]
pub enum MeshError {
    /// `tet_labels` and `tets` have different lengths.
    LabelCountMismatch {
        /// Number of labels present.
        labels: usize,
        /// Number of tetrahedra present.
        tets: usize,
    },
    /// A tetrahedron references a node index past the node array.
    NodeOutOfRange {
        /// Offending tetrahedron.
        tet: usize,
        /// Offending node index.
        node: usize,
        /// Number of nodes in the mesh.
        num_nodes: usize,
    },
    /// A tetrahedron lists the same node more than once.
    RepeatedNode {
        /// Offending tetrahedron.
        tet: usize,
    },
    /// A tetrahedron has non-positive signed volume (inverted or
    /// collapsed element).
    InvertedTet {
        /// Offending tetrahedron.
        tet: usize,
        /// Its signed volume (mm³).
        volume: f64,
    },
    /// A tetrahedron's radius ratio is below the requested quality floor
    /// (a sliver: positive volume but numerically useless shape).
    SliverTet {
        /// Offending tetrahedron.
        tet: usize,
        /// Its radius ratio (3 · inradius / circumradius, 1 = regular).
        radius_ratio: f64,
        /// The floor it violated.
        min_radius_ratio: f64,
    },
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::LabelCountMismatch { labels, tets } => {
                write!(f, "label count {labels} != tet count {tets}")
            }
            MeshError::NodeOutOfRange { tet, node, num_nodes } => {
                write!(f, "tet {tet} references node {node} >= {num_nodes}")
            }
            MeshError::RepeatedNode { tet } => write!(f, "tet {tet} has repeated nodes"),
            MeshError::InvertedTet { tet, volume } => {
                write!(f, "tet {tet} has non-positive volume {volume}")
            }
            MeshError::SliverTet { tet, radius_ratio, min_radius_ratio } => {
                write!(
                    f,
                    "tet {tet} is a sliver: radius ratio {radius_ratio:.3e} < {min_radius_ratio:.3e}"
                )
            }
        }
    }
}

impl std::error::Error for MeshError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MeshError::InvertedTet { tet: 7, volume: -0.5 };
        assert!(e.to_string().contains("tet 7"));
        let e = MeshError::SliverTet { tet: 3, radius_ratio: 1e-4, min_radius_ratio: 1e-2 };
        assert!(e.to_string().contains("sliver"));
    }
}
