//! Unstructured tetrahedral meshes.
//!
//! "...the use of a finite element model with an unstructured grid can
//! allow a representation that faithfully models key characteristics in
//! important regions while reducing the number of equations to solve" —
//! the mesh is the FEM's discretization of the intracranial volume, with a
//! tissue label per element so "different biomechanical properties and
//! parameters can easily be assigned to the different cells".

use brainshift_imaging::Vec3;

/// A tetrahedral mesh with a tissue label per element.
#[derive(Debug, Clone)]
pub struct TetMesh {
    /// Node positions in world coordinates (mm).
    pub nodes: Vec<Vec3>,
    /// Tetrahedra as 4 node indices, positively oriented (signed volume
    /// > 0).
    pub tets: Vec<[usize; 4]>,
    /// Tissue label of each tetrahedron.
    pub tet_labels: Vec<u8>,
}

impl TetMesh {
    /// An empty mesh.
    pub fn empty() -> Self {
        TetMesh { nodes: Vec::new(), tets: Vec::new(), tet_labels: Vec::new() }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of tetrahedra.
    pub fn num_tets(&self) -> usize {
        self.tets.len()
    }

    /// Number of FEM equations: 3 displacement components per node.
    pub fn num_equations(&self) -> usize {
        3 * self.nodes.len()
    }

    /// Signed volume of tetrahedron `t` (positive for correct
    /// orientation).
    pub fn tet_volume(&self, t: usize) -> f64 {
        let [a, b, c, d] = self.tets[t];
        signed_volume(self.nodes[a], self.nodes[b], self.nodes[c], self.nodes[d])
    }

    /// Total mesh volume (mm³).
    pub fn total_volume(&self) -> f64 {
        (0..self.num_tets()).map(|t| self.tet_volume(t)).sum()
    }

    /// Centroid of tetrahedron `t`.
    pub fn tet_centroid(&self, t: usize) -> Vec3 {
        let [a, b, c, d] = self.tets[t];
        (self.nodes[a] + self.nodes[b] + self.nodes[c] + self.nodes[d]) * 0.25
    }

    /// For every node, the list of tetrahedra touching it.
    pub fn node_to_tets(&self) -> Vec<Vec<usize>> {
        let mut map = vec![Vec::new(); self.num_nodes()];
        for (t, tet) in self.tets.iter().enumerate() {
            for &n in tet {
                map[n].push(t);
            }
        }
        map
    }

    /// Node adjacency (nodes sharing a tet edge), sorted and deduplicated.
    pub fn node_adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.num_nodes()];
        for tet in &self.tets {
            for i in 0..4 {
                for j in 0..4 {
                    if i != j {
                        adj[tet[i]].push(tet[j]);
                    }
                }
            }
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        adj
    }

    /// Per-node connectivity degree — the quantity whose variance causes
    /// the paper's assembly load imbalance.
    pub fn node_degrees(&self) -> Vec<usize> {
        self.node_adjacency().into_iter().map(|a| a.len()).collect()
    }

    /// Validate structural invariants; returns the first violation, if
    /// any (label/tet count, node indices, repeated nodes, inverted
    /// elements).
    pub fn validate(&self) -> Result<(), crate::error::MeshError> {
        use crate::error::MeshError;
        if self.tets.len() != self.tet_labels.len() {
            return Err(MeshError::LabelCountMismatch {
                labels: self.tet_labels.len(),
                tets: self.tets.len(),
            });
        }
        for (t, tet) in self.tets.iter().enumerate() {
            for &n in tet {
                if n >= self.nodes.len() {
                    return Err(MeshError::NodeOutOfRange {
                        tet: t,
                        node: n,
                        num_nodes: self.nodes.len(),
                    });
                }
            }
            let mut s = *tet;
            s.sort_unstable();
            if s.windows(2).any(|w| w[0] == w[1]) {
                return Err(MeshError::RepeatedNode { tet: t });
            }
            let v = self.tet_volume(t);
            // `!(v > 0.0)` rather than `v <= 0.0`: NaN volumes (from
            // non-finite node coordinates) must fail this gate too, and
            // every comparison against NaN is false.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(v > 0.0) {
                return Err(MeshError::InvertedTet { tet: t, volume: v });
            }
        }
        Ok(())
    }

    /// [`validate`](Self::validate) plus an element-quality gate: reject
    /// slivers whose radius ratio (3 · inradius / circumradius, 1 for a
    /// regular tet) falls below `min_radius_ratio`. A sliver has positive
    /// volume — so plain validation passes — but its near-singular shape
    /// matrix poisons the assembled stiffness matrix.
    pub fn validate_quality(&self, min_radius_ratio: f64) -> Result<(), crate::error::MeshError> {
        self.validate()?;
        for (t, tet) in self.tets.iter().enumerate() {
            let [a, b, c, d] = *tet;
            let q = crate::quality::tet_quality(
                self.nodes[a],
                self.nodes[b],
                self.nodes[c],
                self.nodes[d],
            );
            // `!(ratio >= min)` so a NaN radius ratio — degenerate
            // geometry whose circumsphere solve broke down — is rejected
            // instead of slipping past a `<` comparison that is false for
            // NaN.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(q.radius_ratio >= min_radius_ratio) {
                return Err(crate::error::MeshError::SliverTet {
                    tet: t,
                    radius_ratio: q.radius_ratio,
                    min_radius_ratio,
                });
            }
        }
        Ok(())
    }

    /// Axis-aligned bounding box `(min, max)` of all nodes.
    pub fn bounding_box(&self) -> (Vec3, Vec3) {
        let mut lo = Vec3::splat(f64::INFINITY);
        let mut hi = Vec3::splat(f64::NEG_INFINITY);
        for &n in &self.nodes {
            lo = lo.min(n);
            hi = hi.max(n);
        }
        (lo, hi)
    }

    /// Drop nodes not referenced by any tet, remapping indices. Returns
    /// the old→new index map (`usize::MAX` for dropped nodes).
    pub fn compact(&mut self) -> Vec<usize> {
        let mut used = vec![false; self.nodes.len()];
        for tet in &self.tets {
            for &n in tet {
                used[n] = true;
            }
        }
        let mut remap = vec![usize::MAX; self.nodes.len()];
        let mut new_nodes = Vec::new();
        for (i, &u) in used.iter().enumerate() {
            if u {
                remap[i] = new_nodes.len();
                new_nodes.push(self.nodes[i]);
            }
        }
        for tet in &mut self.tets {
            for n in tet.iter_mut() {
                *n = remap[*n];
            }
        }
        self.nodes = new_nodes;
        remap
    }

    /// Barycentric coordinates of point `p` in tetrahedron `t`, or `None`
    /// if the tet is degenerate.
    pub fn barycentric(&self, t: usize, p: Vec3) -> Option<[f64; 4]> {
        let [a, b, c, d] = self.tets[t];
        barycentric_in(self.nodes[a], self.nodes[b], self.nodes[c], self.nodes[d], p)
    }

    /// FNV-1a content fingerprint over node coordinates (IEEE-754 bit
    /// patterns), tetrahedron indices, and tissue labels. Two meshes
    /// collide only if they are bit-identical in geometry, connectivity,
    /// and labeling — unlike count-based comparison, which cannot tell
    /// apart distinct meshes of the same size. Used to validate that a
    /// cached or restored `SolverContext` belongs to this exact mesh.
    pub fn fingerprint(&self) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(self.nodes.len() as u64);
        for n in &self.nodes {
            mix(n.x.to_bits());
            mix(n.y.to_bits());
            mix(n.z.to_bits());
        }
        mix(self.tets.len() as u64);
        for tet in &self.tets {
            for &i in tet {
                mix(i as u64);
            }
        }
        for &l in &self.tet_labels {
            mix(u64::from(l));
        }
        h
    }
}

/// Signed volume of the tetrahedron (a, b, c, d).
pub fn signed_volume(a: Vec3, b: Vec3, c: Vec3, d: Vec3) -> f64 {
    (b - a).cross(c - a).dot(d - a) / 6.0
}

/// Barycentric coordinates of `p` with respect to tet (a,b,c,d).
pub fn barycentric_in(a: Vec3, b: Vec3, c: Vec3, d: Vec3, p: Vec3) -> Option<[f64; 4]> {
    let v = signed_volume(a, b, c, d);
    if v.abs() < 1e-30 {
        return None;
    }
    let wa = signed_volume(p, b, c, d) / v;
    let wb = signed_volume(a, p, c, d) / v;
    let wc = signed_volume(a, b, p, d) / v;
    let wd = signed_volume(a, b, c, p) / v;
    Some([wa, wb, wc, wd])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A unit tetrahedron with positive orientation.
    pub(crate) fn unit_tet() -> TetMesh {
        TetMesh {
            nodes: vec![
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(1.0, 0.0, 0.0),
                Vec3::new(0.0, 1.0, 0.0),
                Vec3::new(0.0, 0.0, 1.0),
            ],
            tets: vec![[0, 1, 2, 3]],
            tet_labels: vec![4],
        }
    }

    #[test]
    fn unit_tet_volume() {
        let m = unit_tet();
        assert!((m.tet_volume(0) - 1.0 / 6.0).abs() < 1e-15);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn negative_volume_detected() {
        let mut m = unit_tet();
        m.tets[0] = [1, 0, 2, 3]; // swapped → negative
        assert!(matches!(m.validate(), Err(crate::error::MeshError::InvertedTet { tet: 0, .. })));
    }

    #[test]
    fn repeated_node_detected() {
        let mut m = unit_tet();
        m.tets[0] = [0, 0, 2, 3];
        assert!(matches!(m.validate(), Err(crate::error::MeshError::RepeatedNode { tet: 0 })));
    }

    #[test]
    fn out_of_range_node_detected() {
        let mut m = unit_tet();
        m.tets[0] = [0, 1, 2, 9];
        assert!(matches!(
            m.validate(),
            Err(crate::error::MeshError::NodeOutOfRange { tet: 0, node: 9, num_nodes: 4 })
        ));
    }

    #[test]
    fn sliver_detected_by_quality_gate() {
        // Flatten the apex nearly into the base plane: positive volume
        // (plain validate passes) but a terrible radius ratio.
        let mut m = unit_tet();
        m.nodes[3] = Vec3::new(0.33, 0.33, 1e-7);
        assert!(m.validate().is_ok());
        match m.validate_quality(1e-2) {
            Err(crate::error::MeshError::SliverTet { tet: 0, radius_ratio, .. }) => {
                assert!(radius_ratio < 1e-2);
            }
            other => panic!("expected SliverTet, got {other:?}"),
        }
        // A healthy tet passes the same gate.
        assert!(unit_tet().validate_quality(1e-2).is_ok());
    }

    #[test]
    fn nan_volume_rejected_by_validate() {
        // A NaN coordinate makes the signed volume NaN; `v <= 0.0` is
        // false for NaN, so the old gate silently passed poisoned meshes.
        let mut m = unit_tet();
        m.nodes[3] = Vec3::new(f64::NAN, 0.0, 1.0);
        assert!(matches!(m.validate(), Err(crate::error::MeshError::InvertedTet { tet: 0, .. })));
    }

    #[test]
    fn nan_radius_ratio_rejected_by_quality_gate() {
        // Four exactly-coplanar points can drive the circumsphere solve
        // to a NaN radius ratio while the (degenerate) volume check is
        // bypassed; the quality gate must still reject. Build a tet whose
        // quality is NaN but whose volume check we exercise through
        // validate_quality's full path by giving it a tiny positive
        // volume and a NaN-producing quality via infinite coordinates.
        let mut m = unit_tet();
        m.nodes[3] = Vec3::new(0.0, 0.0, f64::INFINITY);
        // volume is +inf > 0 (passes validate), quality arithmetic on
        // infinities yields NaN — the gate must reject, not pass.
        let q = crate::quality::tet_quality(m.nodes[0], m.nodes[1], m.nodes[2], m.nodes[3]);
        assert!(q.radius_ratio.is_nan() || q.radius_ratio == 0.0);
        assert!(m.validate_quality(1e-2).is_err());
    }

    #[test]
    fn adjacency_of_single_tet_is_complete() {
        let m = unit_tet();
        let adj = m.node_adjacency();
        for (i, a) in adj.iter().enumerate() {
            assert_eq!(a.len(), 3, "node {i}");
        }
        assert_eq!(m.node_degrees(), vec![3, 3, 3, 3]);
    }

    #[test]
    fn barycentric_at_vertices_and_centroid() {
        let m = unit_tet();
        let w = m.barycentric(0, Vec3::new(0.0, 0.0, 0.0)).unwrap();
        assert!((w[0] - 1.0).abs() < 1e-12);
        let c = m.tet_centroid(0);
        let wc = m.barycentric(0, c).unwrap();
        for &wi in &wc {
            assert!((wi - 0.25).abs() < 1e-12);
        }
        // Sum to 1 anywhere.
        let wp = m.barycentric(0, Vec3::new(0.3, 0.3, 0.2)).unwrap();
        assert!((wp.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compact_drops_unused_nodes() {
        let mut m = unit_tet();
        m.nodes.push(Vec3::new(9.0, 9.0, 9.0)); // orphan
        let remap = m.compact();
        assert_eq!(m.num_nodes(), 4);
        assert_eq!(remap[4], usize::MAX);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn equations_are_three_per_node() {
        assert_eq!(unit_tet().num_equations(), 12);
    }

    #[test]
    fn bounding_box() {
        let m = unit_tet();
        let (lo, hi) = m.bounding_box();
        assert_eq!(lo, Vec3::ZERO);
        assert_eq!(hi, Vec3::new(1.0, 1.0, 1.0));
    }

    #[test]
    fn fingerprint_separates_equal_sized_meshes() {
        let m = unit_tet();
        assert_eq!(m.fingerprint(), unit_tet().fingerprint(), "deterministic");
        // Same counts, different geometry.
        let mut moved = unit_tet();
        moved.nodes[3].z += 1e-9;
        assert_ne!(m.fingerprint(), moved.fingerprint());
        // Same counts and geometry, different connectivity order.
        let mut rewired = unit_tet();
        rewired.tets[0] = [0, 2, 3, 1];
        assert_ne!(m.fingerprint(), rewired.fingerprint());
        // Same everything but the tissue label.
        let mut relabeled = unit_tet();
        relabeled.tet_labels[0] = 5;
        assert_ne!(m.fingerprint(), relabeled.fingerprint());
    }
}
