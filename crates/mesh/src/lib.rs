//! # brainshift-mesh
//!
//! Tetrahedral meshing substrate: the paper's labeled-volume mesh
//! generator ("the volumetric counterpart of a marching tetrahedra surface
//! generation algorithm", Ferrant et al.), the unstructured tet mesh the
//! FEM runs on, boundary-surface extraction for the active-surface stage,
//! and element-quality / connectivity statistics.

#![warn(missing_docs)]

pub mod error;
pub mod generator;
pub mod io;
pub mod quality;
pub mod smooth;
pub mod surface_extract;
pub mod tetmesh;
pub mod trisurface;

pub use error::MeshError;
pub use generator::{mesh_labeled_volume, mesh_with_target_nodes, MesherConfig};
pub use io::{write_obj, write_vtk};
pub use smooth::{smooth_interior, SmoothConfig, SmoothStats};
pub use surface_extract::{boundary_nodes, extract_boundary, extract_boundary_of};
pub use tetmesh::TetMesh;
pub use trisurface::TriSurface;
