//! Tetrahedral mesh generation from labeled 3-D medical images.
//!
//! The paper: "we have implemented a tetrahedral mesh generator
//! specifically suited for labeled 3D medical images. The mesh generator
//! can be seen as the volumetric counterpart of a marching tetrahedra
//! surface generation algorithm... for images containing multiple objects,
//! a fully connected and consistent tetrahedral mesh is obtained for every
//! cell. A segmentation of the image indicates the type of anatomical
//! structure the cell belongs to."
//!
//! Implementation: the labeled volume is traversed on a coarsened grid
//! (`step` voxels per mesh cell — "mesh elements that cover several image
//! pixels"); every grid cell whose content passes the `include` predicate
//! is split into five tetrahedra with alternating parity so faces of
//! neighboring cells match, and each tetrahedron carries the tissue label
//! found at its centroid.

use crate::tetmesh::{signed_volume, TetMesh};
use brainshift_imaging::volume::Volume;
use brainshift_imaging::Vec3;
use std::collections::HashMap;

/// Mesher configuration.
#[derive(Debug, Clone)]
pub struct MesherConfig {
    /// Edge length of a mesh cell, in voxels (≥1). Larger steps produce
    /// coarser meshes ("reducing the number of equations to solve").
    pub step: usize,
    /// Labels to include in the mesh (a cell is meshed if the label at any
    /// of its 8 corners, or its centroid, is in this set).
    pub include: fn(u8) -> bool,
}

impl Default for MesherConfig {
    fn default() -> Self {
        MesherConfig { step: 2, include: brainshift_imaging::labels::is_deformable }
    }
}

/// The five-tetrahedra decomposition of a cube, by corner bit-code
/// (bit0 = x, bit1 = y, bit2 = z). Even-parity cells use one diagonal
/// family, odd-parity cells the mirrored one, so shared faces agree.
const TETS_EVEN: [[usize; 4]; 5] = [
    // central tet on even corners {0b000, 0b011, 0b101, 0b110}
    [0b000, 0b011, 0b101, 0b110],
    [0b001, 0b000, 0b011, 0b101],
    [0b010, 0b000, 0b110, 0b011],
    [0b100, 0b000, 0b101, 0b110],
    [0b111, 0b011, 0b110, 0b101],
];
const TETS_ODD: [[usize; 4]; 5] = [
    // central tet on odd corners {0b001, 0b010, 0b100, 0b111}
    [0b001, 0b010, 0b100, 0b111],
    [0b000, 0b001, 0b010, 0b100],
    [0b011, 0b001, 0b111, 0b010],
    [0b101, 0b001, 0b100, 0b111],
    [0b110, 0b010, 0b111, 0b100],
];

/// Generate a tetrahedral mesh from a labeled volume.
///
/// ```
/// use brainshift_imaging::{Volume, Dims, Spacing, labels};
/// use brainshift_mesh::{mesh_labeled_volume, MesherConfig};
/// let seg = Volume::from_fn(Dims::new(4, 4, 4), Spacing::iso(1.0), |_, _, _| labels::BRAIN);
/// let mesh = mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable });
/// assert!(mesh.validate().is_ok());
/// assert_eq!(mesh.num_tets(), 4 * 4 * 4 * 5); // five tets per cell
/// ```
pub fn mesh_labeled_volume(seg: &Volume<u8>, cfg: &MesherConfig) -> TetMesh {
    assert!(cfg.step >= 1);
    let d = seg.dims();
    let sp = seg.spacing();
    let step = cfg.step;
    // Grid of mesh vertices: every `step` voxels, inclusive of the end.
    let gx = d.nx / step;
    let gy = d.ny / step;
    let gz = d.nz / step;
    assert!(gx >= 1 && gy >= 1 && gz >= 1, "volume too small for step {step}");

    let mut node_of: HashMap<(usize, usize, usize), usize> = HashMap::new();
    let mut mesh = TetMesh::empty();

    let vertex_world = |i: usize, j: usize, k: usize| -> Vec3 {
        Vec3::new(
            (i * step) as f64 * sp.dx,
            (j * step) as f64 * sp.dy,
            (k * step) as f64 * sp.dz,
        )
    };

    // Label sampling with clamping to the volume.
    let label_at_voxel = |x: usize, y: usize, z: usize| -> u8 {
        *seg.get(x.min(d.nx - 1), y.min(d.ny - 1), z.min(d.nz - 1))
    };

    for k in 0..gz {
        for j in 0..gy {
            for i in 0..gx {
                // Cell occupancy: centroid label decides inclusion and the
                // element label; corners give a fallback so thin structures
                // at cell corners still get meshed.
                let cx = i * step + step / 2;
                let cy = j * step + step / 2;
                let cz = k * step + step / 2;
                let centroid_label = label_at_voxel(cx, cy, cz);
                let mut cell_label = centroid_label;
                let mut keep = (cfg.include)(centroid_label);
                if !keep {
                    for bits in 0..8usize {
                        let vx = (i + (bits & 1)) * step;
                        let vy = (j + ((bits >> 1) & 1)) * step;
                        let vz = (k + ((bits >> 2) & 1)) * step;
                        let l = label_at_voxel(vx, vy, vz);
                        if (cfg.include)(l) {
                            keep = true;
                            cell_label = l;
                            break;
                        }
                    }
                }
                if !keep {
                    continue;
                }

                // Node indices of the 8 corners, created on demand (shared
                // across cells → the "fully connected and consistent" mesh).
                let mut corner_nodes = [0usize; 8];
                for (bits, cn) in corner_nodes.iter_mut().enumerate() {
                    let key = (i + (bits & 1), j + ((bits >> 1) & 1), k + ((bits >> 2) & 1));
                    *cn = *node_of.entry(key).or_insert_with(|| {
                        mesh.nodes.push(vertex_world(key.0, key.1, key.2));
                        mesh.nodes.len() - 1
                    });
                }

                let parity = (i + j + k) % 2;
                let table = if parity == 0 { &TETS_EVEN } else { &TETS_ODD };
                for tet_bits in table {
                    let mut tet = [
                        corner_nodes[tet_bits[0]],
                        corner_nodes[tet_bits[1]],
                        corner_nodes[tet_bits[2]],
                        corner_nodes[tet_bits[3]],
                    ];
                    // Enforce positive orientation.
                    let v = signed_volume(
                        mesh.nodes[tet[0]],
                        mesh.nodes[tet[1]],
                        mesh.nodes[tet[2]],
                        mesh.nodes[tet[3]],
                    );
                    if v < 0.0 {
                        tet.swap(2, 3);
                    }
                    // Per-tet label from the tet centroid voxel.
                    let c = (mesh.nodes[tet[0]] + mesh.nodes[tet[1]] + mesh.nodes[tet[2]] + mesh.nodes[tet[3]]) * 0.25;
                    let lx = (c.x / sp.dx).round().max(0.0) as usize;
                    let ly = (c.y / sp.dy).round().max(0.0) as usize;
                    let lz = (c.z / sp.dz).round().max(0.0) as usize;
                    let mut l = label_at_voxel(lx, ly, lz);
                    if !(cfg.include)(l) {
                        l = cell_label;
                    }
                    mesh.tets.push(tet);
                    mesh.tet_labels.push(l);
                }
            }
        }
    }
    mesh
}

/// Pick the largest `step` (coarsest mesh) whose node count still reaches
/// `min_nodes`, searching downward from `max_step`; returns the mesh and
/// the chosen step. Used by the figure benchmarks to hit the paper's
/// system sizes (77 511 and 253 308 equations).
pub fn mesh_with_target_nodes(
    seg: &Volume<u8>,
    min_nodes: usize,
    max_step: usize,
    include: fn(u8) -> bool,
) -> (TetMesh, usize) {
    for step in (1..=max_step).rev() {
        let mesh = mesh_labeled_volume(seg, &MesherConfig { step, include });
        if mesh.num_nodes() >= min_nodes {
            return (mesh, step);
        }
    }
    let mesh = mesh_labeled_volume(seg, &MesherConfig { step: 1, include });
    (mesh, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::labels;
    use brainshift_imaging::phantom::{generate_preop, PhantomConfig};
    use brainshift_imaging::volume::{Dims, Spacing};

    fn block_volume() -> Volume<u8> {
        // A 8x8x8 volume with a 4³ block of BRAIN in the middle.
        Volume::from_fn(Dims::new(8, 8, 8), Spacing::iso(1.0), |x, y, z| {
            if (2..6).contains(&x) && (2..6).contains(&y) && (2..6).contains(&z) {
                labels::BRAIN
            } else {
                labels::BACKGROUND
            }
        })
    }

    #[test]
    fn meshes_block_with_valid_tets() {
        let seg = block_volume();
        let mesh = mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable });
        assert!(mesh.num_tets() > 0);
        assert!(mesh.validate().is_ok(), "{:?}", mesh.validate());
        // All labels should be BRAIN.
        assert!(mesh.tet_labels.iter().all(|&l| l == labels::BRAIN));
    }

    #[test]
    fn cell_volume_is_preserved() {
        // 5 tets of a cube tile it exactly: total mesh volume = number of
        // meshed cells × cell volume.
        let seg = block_volume();
        let mesh = mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable });
        // Interior cells: a 4³ block has cells whose centroid lies in the
        // block; with step 1, centroid of cell (i..i+1) is at i + 0.5 → use
        // the label at rounded coordinates. Rather than counting exactly,
        // check the volume is a positive multiple of the cell volume.
        let v = mesh.total_volume();
        assert!(v > 0.0);
        let cells = v / 1.0;
        assert!((cells - cells.round()).abs() < 1e-9, "volume {v} not integral");
    }

    #[test]
    fn faces_are_conforming() {
        // Every interior face must be shared by exactly 2 tets; boundary
        // faces by exactly 1. Any other count means non-conforming.
        let seg = block_volume();
        let mesh = mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable });
        let mut face_count: HashMap<[usize; 3], usize> = HashMap::new();
        for tet in &mesh.tets {
            for f in [[tet[0], tet[1], tet[2]], [tet[0], tet[1], tet[3]], [tet[0], tet[2], tet[3]], [tet[1], tet[2], tet[3]]] {
                let mut key = f;
                key.sort_unstable();
                *face_count.entry(key).or_insert(0) += 1;
            }
        }
        for (face, count) in face_count {
            assert!(count == 1 || count == 2, "face {face:?} shared by {count} tets");
        }
    }

    #[test]
    fn step_two_coarsens() {
        let seg = block_volume();
        let fine = mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable });
        let coarse = mesh_labeled_volume(&seg, &MesherConfig { step: 2, include: labels::is_deformable });
        assert!(coarse.num_nodes() < fine.num_nodes());
        assert!(coarse.num_tets() < fine.num_tets());
        assert!(coarse.validate().is_ok());
    }

    #[test]
    fn phantom_mesh_has_multiple_tissue_labels() {
        let cfg = PhantomConfig {
            dims: Dims::new(32, 32, 24),
            spacing: Spacing::iso(4.0),
            ..Default::default()
        };
        let scan = generate_preop(&cfg);
        let mesh = mesh_labeled_volume(&scan.labels, &MesherConfig { step: 2, include: labels::is_deformable });
        assert!(mesh.validate().is_ok(), "{:?}", mesh.validate());
        let mut distinct: Vec<u8> = mesh.tet_labels.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() >= 2, "only labels {distinct:?}");
        assert!(distinct.contains(&labels::BRAIN));
    }

    #[test]
    fn node_degrees_vary_on_unstructured_boundary() {
        // The paper attributes assembly imbalance to connectivity variance:
        // our mesher's boundary vs interior nodes indeed differ in degree.
        let seg = block_volume();
        let mesh = mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable });
        let degs = mesh.node_degrees();
        let min = degs.iter().min().unwrap();
        let max = degs.iter().max().unwrap();
        assert!(max > min, "degrees uniform: {min}..{max}");
    }

    #[test]
    fn target_node_search_reaches_minimum() {
        let seg = block_volume();
        let (mesh, step) = mesh_with_target_nodes(&seg, 50, 4, labels::is_deformable);
        assert!(mesh.num_nodes() >= 50, "{} nodes at step {step}", mesh.num_nodes());
    }

    #[test]
    fn empty_when_nothing_included() {
        let seg: Volume<u8> = Volume::zeros(Dims::new(8, 8, 8), Spacing::iso(1.0));
        let mesh = mesh_labeled_volume(&seg, &MesherConfig::default());
        assert_eq!(mesh.num_tets(), 0);
    }
}
