//! Triangulated surfaces.
//!
//! "Boundary surfaces of objects represented in the mesh can be extracted
//! from the mesh as triangulated surfaces, which is convenient for running
//! an active surface algorithm." This module is that surface
//! representation: vertices, oriented triangles, normals and neighbor
//! topology for the elastic-membrane evolution.

use brainshift_imaging::Vec3;

/// A triangulated surface. When extracted from a [`crate::TetMesh`],
/// `mesh_node` maps each surface vertex back to its volumetric node, which
/// is how active-surface displacements become FEM boundary conditions.
#[derive(Debug, Clone)]
pub struct TriSurface {
    /// Vertex positions, mm.
    pub vertices: Vec<Vec3>,
    /// Counter-clockwise (outward) oriented triangles.
    pub triangles: Vec<[usize; 3]>,
    /// Volumetric mesh node index of each vertex (`usize::MAX` when the
    /// surface did not come from a tet mesh).
    pub mesh_node: Vec<usize>,
}

impl TriSurface {
    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of triangles.
    pub fn num_triangles(&self) -> usize {
        self.triangles.len()
    }

    /// Area-weighted (unnormalized) triangle normal.
    pub fn triangle_normal(&self, t: usize) -> Vec3 {
        let [a, b, c] = self.triangles[t];
        (self.vertices[b] - self.vertices[a]).cross(self.vertices[c] - self.vertices[a]) * 0.5
    }

    /// Total surface area (mm²).
    pub fn area(&self) -> f64 {
        (0..self.num_triangles()).map(|t| self.triangle_normal(t).norm()).sum()
    }

    /// Per-vertex unit normals (area-weighted average of incident
    /// triangle normals).
    pub fn vertex_normals(&self) -> Vec<Vec3> {
        let mut normals = vec![Vec3::ZERO; self.num_vertices()];
        for t in 0..self.num_triangles() {
            let n = self.triangle_normal(t);
            for &v in &self.triangles[t] {
                normals[v] += n;
            }
        }
        normals.into_iter().map(|n| n.normalized()).collect()
    }

    /// Vertex→vertex adjacency along triangle edges, sorted, deduplicated.
    pub fn vertex_neighbors(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.num_vertices()];
        for tri in &self.triangles {
            for i in 0..3 {
                adj[tri[i]].push(tri[(i + 1) % 3]);
                adj[tri[i]].push(tri[(i + 2) % 3]);
            }
        }
        for a in &mut adj {
            a.sort_unstable();
            a.dedup();
        }
        adj
    }

    /// Surface centroid (unweighted vertex mean).
    pub fn centroid(&self) -> Vec3 {
        if self.vertices.is_empty() {
            return Vec3::ZERO;
        }
        let mut c = Vec3::ZERO;
        for &v in &self.vertices {
            c += v;
        }
        c / self.vertices.len() as f64
    }

    /// Structural validation: triangle indices in range, no degenerate
    /// (repeated-vertex) triangles.
    pub fn validate(&self) -> Result<(), String> {
        if self.mesh_node.len() != self.vertices.len() {
            return Err("mesh_node length mismatch".into());
        }
        for (t, tri) in self.triangles.iter().enumerate() {
            for &v in tri {
                if v >= self.vertices.len() {
                    return Err(format!("triangle {t} references vertex {v} out of range"));
                }
            }
            if tri[0] == tri[1] || tri[1] == tri[2] || tri[0] == tri[2] {
                return Err(format!("triangle {t} is degenerate: {tri:?}"));
            }
        }
        Ok(())
    }

    /// A closed icosphere-like approximation of a sphere (for tests and
    /// the surface-only ablation): recursively subdivided octahedron.
    pub fn sphere(center: Vec3, radius: f64, subdivisions: usize) -> TriSurface {
        // Octahedron.
        let mut vertices = vec![
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(-1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, -1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
            Vec3::new(0.0, 0.0, -1.0),
        ];
        let mut triangles: Vec<[usize; 3]> = vec![
            [0, 2, 4],
            [2, 1, 4],
            [1, 3, 4],
            [3, 0, 4],
            [2, 0, 5],
            [1, 2, 5],
            [3, 1, 5],
            [0, 3, 5],
        ];
        use std::collections::HashMap;
        for _ in 0..subdivisions {
            let mut midpoint: HashMap<(usize, usize), usize> = HashMap::new();
            let mut new_tris = Vec::with_capacity(triangles.len() * 4);
            for tri in &triangles {
                let mut mid = [0usize; 3];
                for i in 0..3 {
                    let a = tri[i];
                    let b = tri[(i + 1) % 3];
                    let key = (a.min(b), a.max(b));
                    mid[i] = *midpoint.entry(key).or_insert_with(|| {
                        let m = ((vertices[a] + vertices[b]) * 0.5).normalized();
                        vertices.push(m);
                        vertices.len() - 1
                    });
                }
                new_tris.push([tri[0], mid[0], mid[2]]);
                new_tris.push([tri[1], mid[1], mid[0]]);
                new_tris.push([tri[2], mid[2], mid[1]]);
                new_tris.push([mid[0], mid[1], mid[2]]);
            }
            triangles = new_tris;
        }
        let n = vertices.len();
        TriSurface {
            vertices: vertices.into_iter().map(|v| center + v * radius).collect(),
            triangles,
            mesh_node: vec![usize::MAX; n],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_area_approaches_analytic() {
        let s = TriSurface::sphere(Vec3::ZERO, 2.0, 3);
        assert!(s.validate().is_ok());
        let analytic = 4.0 * std::f64::consts::PI * 4.0;
        let rel = (s.area() - analytic).abs() / analytic;
        assert!(rel < 0.05, "area {} vs {analytic}", s.area());
    }

    #[test]
    fn sphere_normals_point_outward() {
        let s = TriSurface::sphere(Vec3::new(1.0, 2.0, 3.0), 1.5, 2);
        let normals = s.vertex_normals();
        for (v, n) in s.vertices.iter().zip(&normals) {
            let radial = (*v - Vec3::new(1.0, 2.0, 3.0)).normalized();
            assert!(n.dot(radial) > 0.9, "normal not outward");
        }
    }

    #[test]
    fn closed_surface_edges_shared_twice() {
        let s = TriSurface::sphere(Vec3::ZERO, 1.0, 2);
        use std::collections::HashMap;
        let mut edges: HashMap<(usize, usize), usize> = HashMap::new();
        for tri in &s.triangles {
            for i in 0..3 {
                let a = tri[i];
                let b = tri[(i + 1) % 3];
                *edges.entry((a.min(b), a.max(b))).or_insert(0) += 1;
            }
        }
        assert!(edges.values().all(|&c| c == 2), "open edges found");
    }

    #[test]
    fn neighbors_symmetric() {
        let s = TriSurface::sphere(Vec3::ZERO, 1.0, 1);
        let adj = s.vertex_neighbors();
        for (i, nbrs) in adj.iter().enumerate() {
            for &j in nbrs {
                assert!(adj[j].contains(&i));
            }
        }
    }

    #[test]
    fn centroid_of_centered_sphere_is_center() {
        let s = TriSurface::sphere(Vec3::new(5.0, 5.0, 5.0), 1.0, 2);
        assert!((s.centroid() - Vec3::new(5.0, 5.0, 5.0)).norm() < 1e-9);
    }

    #[test]
    fn degenerate_triangle_rejected() {
        let mut s = TriSurface::sphere(Vec3::ZERO, 1.0, 0);
        s.triangles.push([0, 0, 1]);
        assert!(s.validate().is_err());
    }
}
