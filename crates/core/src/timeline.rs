//! Stage timing for the intraoperative timeline (the paper's Figure 6).
//!
//! Each pipeline stage — rigid registration, tissue classification,
//! surface displacement, biomechanical simulation, visualization resample
//! — is timed so the Fig 6 reproduction can print when each action runs
//! relative to "surgical progress".

use brainshift_obs::{Clock, Stopwatch};

/// One completed stage.
#[derive(Debug, Clone)]
pub struct StageRecord {
    /// Stage name as shown in the rendered timeline.
    pub name: &'static str,
    /// Seconds measured against the timeline's clock (wall-clock on the
    /// default clock).
    pub seconds: f64,
    /// Whether the stage happens before surgery (preoperative) or during.
    pub intraoperative: bool,
}

/// Ordered record of pipeline stages.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    stages: Vec<StageRecord>,
    clock: Clock,
}

impl Timeline {
    /// An empty timeline on the wall clock.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// An empty timeline measuring against `clock` — inject a logical
    /// clock to make stage durations deterministic under test.
    pub fn with_clock(clock: Clock) -> Self {
        Timeline { stages: Vec::new(), clock }
    }

    /// Time a closure as a named stage.
    pub fn stage<T>(&mut self, name: &'static str, intraoperative: bool, f: impl FnOnce() -> T) -> T {
        let sw = Stopwatch::start(&self.clock);
        let out = f();
        self.stages.push(StageRecord { name, seconds: sw.elapsed_s(), intraoperative });
        out
    }

    /// Manually record a stage duration (e.g. modeled rather than
    /// measured).
    pub fn record(&mut self, name: &'static str, seconds: f64, intraoperative: bool) {
        self.stages.push(StageRecord { name, seconds, intraoperative });
    }

    /// All recorded stages, in order.
    pub fn stages(&self) -> &[StageRecord] {
        &self.stages
    }

    /// Total seconds spent in intraoperative stages.
    pub fn total_intraoperative(&self) -> f64 {
        self.stages.iter().filter(|s| s.intraoperative).map(|s| s.seconds).sum()
    }

    /// Total seconds spent in preoperative stages.
    pub fn total_preoperative(&self) -> f64 {
        self.stages.iter().filter(|s| !s.intraoperative).map(|s| s.seconds).sum()
    }

    /// Seconds of a named stage (sum over repeats), or 0.
    pub fn seconds_of(&self, name: &str) -> f64 {
        self.stages.iter().filter(|s| s.name == name).map(|s| s.seconds).sum()
    }

    /// Render the Figure 6-style timeline table.
    pub fn render(&self) -> String {
        let mut out = String::from("Timeline of image processing for image guided neurosurgery\n");
        out.push_str(&format!("{:<28} {:>10} {:>8}\n", "Action", "Time (s)", "Phase"));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<28} {:>10.3} {:>8}\n",
                s.name,
                s.seconds,
                if s.intraoperative { "intraop" } else { "preop" }
            ));
        }
        out.push_str(&format!(
            "{:<28} {:>10.3}\n",
            "TOTAL intraoperative",
            self.total_intraoperative()
        ));
        out
    }
}

/// Per-stage timing breakdown of one intraoperative registration, in the
/// paper's vocabulary (its Table-style breakdown of the < 10 s budget):
/// classifier → mesher → FEM assembly → Dirichlet reduction →
/// preconditioner build → GMRES solve → visualization resample.
///
/// Assembly/reduction/factorization are once-per-surgery costs; scans
/// served from a warm [`SolverContext`](brainshift_fem::SolverContext)
/// report `0.0` for them, which is the assemble-once contract made
/// visible.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageTimings {
    /// Intraoperative tissue classification (k-NN relabel). This is the
    /// stage *total*; the four `*_s` fields below it are its informational
    /// sub-stages and are excluded from [`StageTimings::total_s`] so the
    /// time is not double-counted.
    pub classification_s: f64,
    /// Sub-stage of classification: assembling the multichannel feature
    /// stack (intensity + shared distance channels).
    pub feature_s: f64,
    /// Sub-stage of classification: prototype extraction + kd-tree build.
    pub knn_build_s: f64,
    /// Sub-stage of classification: the whole-volume (or incremental)
    /// k-NN query pass.
    pub knn_query_s: f64,
    /// Sub-stage of classification: morphological cleanup of the brain
    /// mask (largest connected component).
    pub morphology_s: f64,
    /// Volumetric mesh generation.
    pub mesh_s: f64,
    /// Surface extraction + active-surface displacement.
    pub surface_s: f64,
    /// Global stiffness assembly (0 when served warm).
    pub assembly_s: f64,
    /// Dirichlet reduction to `K_ff`/`K_fc` (0 when served warm).
    pub reduction_s: f64,
    /// Preconditioner factorization (0 when served warm).
    pub factorization_s: f64,
    /// Krylov (GMRES ladder) solve.
    pub solve_s: f64,
    /// Resampling the mesh solution onto the voxel grid.
    pub resample_s: f64,
}

impl StageTimings {
    /// Sum of all stages. The classification sub-stages (`feature_s`,
    /// `knn_build_s`, `knn_query_s`, `morphology_s`) are already counted
    /// inside `classification_s` and do not enter the sum.
    pub fn total_s(&self) -> f64 {
        self.classification_s
            + self.mesh_s
            + self.surface_s
            + self.assembly_s
            + self.reduction_s
            + self.factorization_s
            + self.solve_s
            + self.resample_s
    }

    /// Accumulate another scan's breakdown into this one (for
    /// whole-sequence totals).
    pub fn accumulate(&mut self, other: &StageTimings) {
        self.classification_s += other.classification_s;
        self.feature_s += other.feature_s;
        self.knn_build_s += other.knn_build_s;
        self.knn_query_s += other.knn_query_s;
        self.morphology_s += other.morphology_s;
        self.mesh_s += other.mesh_s;
        self.surface_s += other.surface_s;
        self.assembly_s += other.assembly_s;
        self.reduction_s += other.reduction_s;
        self.factorization_s += other.factorization_s;
        self.solve_s += other.solve_s;
        self.resample_s += other.resample_s;
    }

    /// Render the paper-style stage table.
    pub fn render(&self) -> String {
        let mut out = String::from("Per-stage breakdown of the intraoperative solve\n");
        out.push_str(&format!("{:<34} {:>10}\n", "Stage", "Time (s)"));
        let rows: [(&str, f64); 12] = [
            ("tissue classification", self.classification_s),
            ("  feature stack", self.feature_s),
            ("  kd-tree build", self.knn_build_s),
            ("  k-NN query", self.knn_query_s),
            ("  morphology", self.morphology_s),
            ("mesh generation", self.mesh_s),
            ("surface displacement", self.surface_s),
            ("FEM assembly", self.assembly_s),
            ("Dirichlet reduction", self.reduction_s),
            ("preconditioner build", self.factorization_s),
            ("GMRES solve", self.solve_s),
            ("visualization resample", self.resample_s),
        ];
        for (name, seconds) in rows {
            // Indented rows are classification sub-stages; a path that
            // didn't measure one (exactly 0.0) omits the row rather than
            // print a misleading zero.
            if name.starts_with(' ') && seconds == 0.0 {
                continue;
            }
            out.push_str(&format!("{name:<34} {seconds:>10.3}\n"));
        }
        out.push_str(&format!("{:<34} {:>10.3}\n", "TOTAL", self.total_s()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_measures_and_returns() {
        let mut t = Timeline::new();
        let v = t.stage("work", true, || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            42
        });
        assert_eq!(v, 42);
        assert_eq!(t.stages().len(), 1);
        assert!(t.seconds_of("work") >= 0.009);
    }

    #[test]
    fn totals_split_by_phase() {
        let mut t = Timeline::new();
        t.record("preop seg", 100.0, false);
        t.record("rigid reg", 2.0, true);
        t.record("biomech", 8.0, true);
        assert_eq!(t.total_preoperative(), 100.0);
        assert_eq!(t.total_intraoperative(), 10.0);
    }

    #[test]
    fn render_contains_stages() {
        let mut t = Timeline::new();
        t.record("rigid reg", 1.5, true);
        let s = t.render();
        assert!(s.contains("rigid reg"));
        assert!(s.contains("TOTAL intraoperative"));
    }

    #[test]
    fn repeated_stage_sums() {
        let mut t = Timeline::new();
        t.record("solve", 1.0, true);
        t.record("solve", 2.0, true);
        assert_eq!(t.seconds_of("solve"), 3.0);
    }

    #[test]
    fn logical_clock_makes_stage_durations_deterministic() {
        let clock = Clock::logical();
        let mut t = Timeline::with_clock(clock.clone());
        t.stage("solve", true, || clock.advance_to_us(2_000_000));
        t.stage("idle", true, || ());
        assert_eq!(t.seconds_of("solve"), 2.0);
        assert_eq!(t.seconds_of("idle"), 0.0);
    }

    #[test]
    fn stage_timings_total_accumulate_render() {
        let mut a = StageTimings { solve_s: 3.0, mesh_s: 1.0, ..Default::default() };
        let b = StageTimings { solve_s: 0.5, resample_s: 0.25, ..Default::default() };
        a.accumulate(&b);
        assert!((a.solve_s - 3.5).abs() < 1e-12);
        assert!((a.total_s() - 4.75).abs() < 1e-12);
        let table = a.render();
        for row in ["tissue classification", "mesh generation", "FEM assembly", "Dirichlet reduction", "GMRES solve", "visualization resample", "TOTAL"] {
            assert!(table.contains(row), "missing row {row}:\n{table}");
        }
    }

    #[test]
    fn classification_substages_render_but_do_not_double_count() {
        let mut a = StageTimings {
            classification_s: 1.0,
            feature_s: 0.2,
            knn_build_s: 0.3,
            knn_query_s: 0.4,
            morphology_s: 0.1,
            solve_s: 2.0,
            ..Default::default()
        };
        // Sub-stages are part of classification_s, not extra time.
        assert!((a.total_s() - 3.0).abs() < 1e-12);
        let b = a;
        a.accumulate(&b);
        assert!((a.knn_query_s - 0.8).abs() < 1e-12);
        assert!((a.total_s() - 6.0).abs() < 1e-12);
        let table = a.render();
        for row in ["feature stack", "kd-tree build", "k-NN query", "morphology"] {
            assert!(table.contains(row), "missing sub-row {row}:\n{table}");
        }
    }
}
