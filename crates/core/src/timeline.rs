//! Stage timing for the intraoperative timeline (the paper's Figure 6).
//!
//! Each pipeline stage — rigid registration, tissue classification,
//! surface displacement, biomechanical simulation, visualization resample
//! — is timed so the Fig 6 reproduction can print when each action runs
//! relative to "surgical progress".

use std::time::Instant;

/// One completed stage.
#[derive(Debug, Clone)]
pub struct StageRecord {
    /// Stage name as shown in the rendered timeline.
    pub name: &'static str,
    /// Wall-clock seconds measured on the host.
    pub seconds: f64,
    /// Whether the stage happens before surgery (preoperative) or during.
    pub intraoperative: bool,
}

/// Ordered record of pipeline stages.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    stages: Vec<StageRecord>,
}

impl Timeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Time a closure as a named stage.
    pub fn stage<T>(&mut self, name: &'static str, intraoperative: bool, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.stages.push(StageRecord {
            name,
            seconds: t0.elapsed().as_secs_f64(),
            intraoperative,
        });
        out
    }

    /// Manually record a stage duration (e.g. modeled rather than
    /// measured).
    pub fn record(&mut self, name: &'static str, seconds: f64, intraoperative: bool) {
        self.stages.push(StageRecord { name, seconds, intraoperative });
    }

    /// All recorded stages, in order.
    pub fn stages(&self) -> &[StageRecord] {
        &self.stages
    }

    /// Total seconds spent in intraoperative stages.
    pub fn total_intraoperative(&self) -> f64 {
        self.stages.iter().filter(|s| s.intraoperative).map(|s| s.seconds).sum()
    }

    /// Total seconds spent in preoperative stages.
    pub fn total_preoperative(&self) -> f64 {
        self.stages.iter().filter(|s| !s.intraoperative).map(|s| s.seconds).sum()
    }

    /// Seconds of a named stage (sum over repeats), or 0.
    pub fn seconds_of(&self, name: &str) -> f64 {
        self.stages.iter().filter(|s| s.name == name).map(|s| s.seconds).sum()
    }

    /// Render the Figure 6-style timeline table.
    pub fn render(&self) -> String {
        let mut out = String::from("Timeline of image processing for image guided neurosurgery\n");
        out.push_str(&format!("{:<28} {:>10} {:>8}\n", "Action", "Time (s)", "Phase"));
        for s in &self.stages {
            out.push_str(&format!(
                "{:<28} {:>10.3} {:>8}\n",
                s.name,
                s.seconds,
                if s.intraoperative { "intraop" } else { "preop" }
            ));
        }
        out.push_str(&format!(
            "{:<28} {:>10.3}\n",
            "TOTAL intraoperative",
            self.total_intraoperative()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_measures_and_returns() {
        let mut t = Timeline::new();
        let v = t.stage("work", true, || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            42
        });
        assert_eq!(v, 42);
        assert_eq!(t.stages().len(), 1);
        assert!(t.seconds_of("work") >= 0.009);
    }

    #[test]
    fn totals_split_by_phase() {
        let mut t = Timeline::new();
        t.record("preop seg", 100.0, false);
        t.record("rigid reg", 2.0, true);
        t.record("biomech", 8.0, true);
        assert_eq!(t.total_preoperative(), 100.0);
        assert_eq!(t.total_intraoperative(), 10.0);
    }

    #[test]
    fn render_contains_stages() {
        let mut t = Timeline::new();
        t.record("rigid reg", 1.5, true);
        let s = t.render();
        assert!(s.contains("rigid reg"));
        assert!(s.contains("TOTAL intraoperative"));
    }

    #[test]
    fn repeated_stage_sums() {
        let mut t = Timeline::new();
        t.record("solve", 1.0, true);
        t.record("solve", 2.0, true);
        assert_eq!(t.seconds_of("solve"), 3.0);
    }
}
