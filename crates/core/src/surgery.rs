//! Job-ification of the intraoperative pipeline: the per-surgery /
//! per-scan split as an explicit API.
//!
//! [`run_pipeline_with_solver`](crate::pipeline::run_pipeline_with_solver)
//! and [`run_scan_sequence`](crate::sequence::run_scan_sequence) bundle a
//! whole surgery into one blocking call. A serving layer that multiplexes
//! many concurrent surgeries needs the two halves separately:
//!
//! * [`PreparedSurgery`] — everything built **once per surgery** from the
//!   reference scan: the tetrahedral mesh, its boundary surface snapped
//!   onto the reference brain boundary, and the prototype-voxel
//!   statistical model for intraoperative classification. Immutable and
//!   shareable across scans (and across worker threads).
//! * [`PreparedSurgery::register_scan`] — the **per-scan job**: classify
//!   the new scan, evolve the active surface onto it, and run one
//!   warm-started FEM solve against a caller-owned [`SolverContext`].
//!   The context is deliberately *not* stored inside `PreparedSurgery`:
//!   it is the mutable, memory-heavy half (assembled stiffness, factored
//!   preconditioner, warm-start seed) that a service keeps in a budgeted
//!   cache and may evict between scans.
//!
//! A scan whose solver fails to converge within its (possibly
//! deadline-derived) budget is *not* an error: it degrades to the
//! caller-provided carry-forward field, exactly as the sequence runner
//! does — see [`ScanStatus::Degraded`].

use crate::error::Error;
use crate::pipeline::PipelineConfig;
use crate::sequence::ScanStatus;
use crate::timeline::StageTimings;
use brainshift_obs::Stopwatch;
use brainshift_fem::{displacement_field_from_mesh, DirichletBcs, SolverContext};
use brainshift_imaging::dtransform::label_distance_map;
use brainshift_imaging::{labels, DisplacementField, Vec3, Volume};
use brainshift_mesh::{extract_boundary, mesh_labeled_volume, TetMesh, TriSurface};
use brainshift_segment::{
    classify_volume_incremental, largest_component, FeatureStack, IncrementalCache, KdTree,
    PrototypeModel,
};
use brainshift_sparse::{EscalationPolicy, SolverOptions, StopReason};
use brainshift_surface::{evolve_surface_with, DistanceForce, NeighborTable};
use std::sync::{Arc, Mutex};

/// The once-per-surgery state: everything derived from the reference
/// (first intraoperative) scan that later scans reuse unchanged.
pub struct PreparedSurgery {
    cfg: PipelineConfig,
    mesh: TetMesh,
    surface: TriSurface,
    /// Mesh boundary snapped onto the reference brain boundary (cancels
    /// voxel-discretization bias; per-scan displacements are measured
    /// from these positions).
    snap_positions: Vec<Vec3>,
    model: PrototypeModel,
    /// Saturated distance channels of the reference segmentation, one per
    /// model class — the per-surgery constant half of every scan's
    /// feature stack, computed once and shared by `Arc`.
    distance_channels: Vec<Arc<Volume<f32>>>,
    /// Vertex adjacency of the boundary surface, built once; every scan's
    /// active-surface evolution reuses it.
    neighbor_table: NeighborTable,
    /// Previous scan's classification state for incremental k-NN. `None`
    /// before the first scan and after a shape/model mismatch.
    seg_cache: Mutex<Option<IncrementalCache>>,
}

/// Outcome of registering one intraoperative scan via
/// [`PreparedSurgery::register_scan`].
pub struct ScanRegistration {
    /// How the biomechanical solve concluded.
    pub status: ScanStatus,
    /// Recovered forward deformation field on the scan grid. For a
    /// [`ScanStatus::Degraded`] scan this is the carry-forward field
    /// (zero when none was provided), not a solution for this scan.
    pub field: DisplacementField,
    /// Krylov iterations of the biomechanical solve.
    pub fem_iterations: usize,
    /// Solver attempts made (1 = primary configuration sufficed).
    pub attempts: usize,
    /// Why each escalation rung stopped, in ladder order — the record a
    /// serving layer's event log keeps per scan.
    pub rung_reasons: Vec<StopReason>,
    /// Mean active-surface residual distance to the target (mm).
    pub surface_residual: f64,
    /// Voxels actually pushed through k-NN this scan (< `total_voxels`
    /// when the incremental cache was used and parts of the head were
    /// static).
    pub reclassified_voxels: usize,
    /// Total voxels in the scan grid.
    pub total_voxels: usize,
    /// Whether the previous scan's classification cache was accepted.
    pub used_incremental: bool,
    /// kd-tree leaf blocks scanned by this scan's k-NN queries.
    pub knn_leaf_visits: u64,
    /// Per-stage wall-clock breakdown for this scan. Assembly, reduction
    /// and factorization are `0.0` on the warm path (they belong to
    /// [`PreparedSurgery::build_solver_context`]); the solve entry is the
    /// Krylov time of this scan only, not the context's cumulative total.
    /// The classification sub-stages (feature stack, kd-tree build, k-NN
    /// query, morphology) are filled in and sum to `classification_s`.
    pub timings: StageTimings,
}

impl PreparedSurgery {
    /// Build the per-surgery state from the reference segmentation: mesh
    /// the brain, extract and snap its boundary surface, and sample the
    /// prototype classification model. Fails with a typed [`Error`] when
    /// the segmentation produces an empty mesh.
    pub fn new(reference_labels: &Volume<u8>, cfg: PipelineConfig) -> Result<Self, Error> {
        let mesh = mesh_labeled_volume(reference_labels, &cfg.mesher);
        if mesh.num_tets() == 0 {
            return Err(Error::Pipeline("reference segmentation produced an empty mesh".into()));
        }
        let surface = extract_boundary(&mesh);
        let mut classes = reference_labels.labels();
        classes.retain(|&c| c != labels::RESECTION);
        let model = PrototypeModel::sample(
            reference_labels,
            &classes,
            cfg.segment.per_class,
            cfg.segment.seed,
        );
        let ref_mask = largest_component(&reference_labels.map(|&l| labels::is_brain_tissue(l)));
        let force_ref = DistanceForce::from_mask(&ref_mask, cfg.surface_force_step);
        let neighbor_table = NeighborTable::build(&surface);
        let snap = evolve_surface_with(&surface, &neighbor_table, &force_ref, &cfg.active_surface);
        // The distance channels of the feature stack depend only on the
        // reference segmentation: compute them once here, share them into
        // every scan's stack.
        let distance_channels = model
            .classes()
            .iter()
            .map(|&c| Arc::new(label_distance_map(reference_labels, c, cfg.segment.distance_cap)))
            .collect();
        Ok(PreparedSurgery {
            cfg,
            mesh,
            surface,
            snap_positions: snap.positions,
            model,
            distance_channels,
            neighbor_table,
            seg_cache: Mutex::new(None),
        })
    }

    /// Build a fresh solver context for this surgery: stiffness assembly,
    /// Dirichlet reduction along the brain surface, preconditioner
    /// factorization. This is the expensive, cacheable object a service
    /// owns per session — dropping it and calling this again is the
    /// "cold reassemble" path after a cache eviction.
    pub fn build_solver_context(&self) -> Result<SolverContext, Error> {
        Ok(SolverContext::new(
            &self.mesh,
            &self.cfg.materials,
            &self.surface.mesh_node,
            self.cfg.fem.clone(),
        )?)
    }

    /// The per-surgery tetrahedral mesh.
    pub fn mesh(&self) -> &TetMesh {
        &self.mesh
    }

    /// The pipeline configuration this surgery was prepared with.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Register one intraoperative scan: classification with the
    /// per-surgery statistical model, active-surface correspondence, and
    /// one warm-started FEM solve on `ctx` (which must have been built by
    /// [`Self::build_solver_context`] or match this surgery's mesh).
    ///
    /// `solver_override` / `escalation_override` tighten the solve for
    /// this scan only — a deadline-aware service derives the escalation
    /// policy's `time_budget` from the job's remaining deadline. When the
    /// solve fails to converge the scan degrades to `carry_forward`
    /// (cloned; zero field when `None`) and the context's warm-start seed
    /// rolls back, so one bad scan cannot poison the next.
    pub fn register_scan(
        &self,
        ctx: &mut SolverContext,
        intensity: &Volume<f32>,
        carry_forward: Option<&DisplacementField>,
        solver_override: Option<&SolverOptions>,
        escalation_override: Option<&EscalationPolicy>,
    ) -> Result<ScanRegistration, Error> {
        let mut sw = Stopwatch::wall();
        // Feature stack: fresh intensity channel + the per-surgery shared
        // distance channels (computed once in `new`).
        let mut fs = FeatureStack::from_intensity(intensity.clone());
        for chan in &self.distance_channels {
            fs.push_shared_channel(chan.clone(), self.cfg.segment.distance_weight);
        }
        let feature_s = sw.lap_s();
        // The paper's automatic model update: prototype features re-read
        // from the current scan at the recorded sites.
        let tree = KdTree::build(self.model.extract(&fs))?;
        let knn_build_s = sw.lap_s();
        // Incremental k-NN against the previous scan's cache. The cache is
        // taken out under the lock (a concurrent scan of the same surgery
        // simply misses) and the fresh state is stored back after the
        // pass; a poisoned lock only means a panicked scan, whose cache
        // state is still structurally sound.
        let prev = self
            .seg_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        let inc = classify_volume_incremental(
            &fs,
            &tree,
            self.cfg.segment.k,
            self.cfg.segment.incremental_threshold,
            prev,
        );
        let knn_query_s = sw.lap_s();
        let (seg, reclassified_voxels, total_voxels, used_incremental, knn_leaf_visits) =
            (inc.labels, inc.reclassified, inc.total, inc.used_cache, inc.leaf_visits);
        *self
            .seg_cache
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(inc.cache);
        let target = largest_component(&seg.map(|&l| labels::is_brain_tissue(l)));
        let morphology_s = sw.lap_s();
        let classification_s = feature_s + knn_build_s + knn_query_s + morphology_s;
        let force = DistanceForce::from_mask(&target, self.cfg.surface_force_step);
        let mut snapped = self.surface.clone();
        snapped.vertices = self.snap_positions.clone();
        let evolved =
            evolve_surface_with(&snapped, &self.neighbor_table, &force, &self.cfg.active_surface);
        let mut bcs = DirichletBcs::new();
        for (v, &node) in self.surface.mesh_node.iter().enumerate() {
            bcs.set(node, evolved.positions[v] - self.snap_positions[v]);
        }
        let surface_s = sw.lap_s();
        let sol = ctx.solve_with(&bcs, solver_override, escalation_override)?;
        sw.lap_s();
        let (status, field) = if sol.stats.converged() {
            let status = if sol.escalated {
                ScanStatus::Escalated { attempts: sol.attempts }
            } else {
                ScanStatus::Converged
            };
            let field = displacement_field_from_mesh(
                &self.mesh,
                &sol.displacements,
                intensity.dims(),
                intensity.spacing(),
            );
            (status, field)
        } else {
            // Graceful degradation: the navigation display keeps showing
            // the last trusted state rather than an unconverged iterate.
            let field = carry_forward.cloned().unwrap_or_else(|| {
                DisplacementField::zeros(intensity.dims(), intensity.spacing())
            });
            (ScanStatus::Degraded, field)
        };
        let timings = StageTimings {
            classification_s,
            feature_s,
            knn_build_s,
            knn_query_s,
            morphology_s,
            surface_s,
            solve_s: ctx.timings().last_solve_s,
            resample_s: sw.lap_s(),
            ..Default::default()
        };
        Ok(ScanRegistration {
            status,
            field,
            fem_iterations: sol.stats.iterations,
            attempts: sol.attempts,
            rung_reasons: sol.rung_reasons,
            surface_residual: evolved.final_distance,
            reclassified_voxels,
            total_voxels,
            used_incremental,
            knn_leaf_visits,
            timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::generate_scan_sequence;
    use brainshift_imaging::phantom::{BrainShiftConfig, PhantomConfig};
    use brainshift_imaging::volume::{Dims, Spacing};

    fn small_seq(n: usize) -> crate::sequence::ScanSequence {
        generate_scan_sequence(
            &PhantomConfig {
                dims: Dims::new(32, 32, 24),
                spacing: Spacing::iso(4.5),
                ..Default::default()
            },
            &BrainShiftConfig { peak_shift_mm: 8.0, ..Default::default() },
            n,
            n,
        )
    }

    #[test]
    fn prepared_surgery_serves_scans_like_the_sequence_runner() {
        let seq = small_seq(2);
        let cfg = PipelineConfig { skip_rigid: true, ..Default::default() };
        let prepared = PreparedSurgery::new(&seq.reference.labels, cfg.clone()).expect("prepare failed");
        let mut ctx = prepared.build_solver_context().expect("context build failed");
        let mut fields = Vec::new();
        let mut last: Option<DisplacementField> = None;
        for scan in &seq.scans {
            let reg = prepared
                .register_scan(&mut ctx, &scan.intensity, last.as_ref(), None, None)
                .expect("register failed");
            assert_ne!(reg.status, ScanStatus::Degraded);
            // Warm path: per-scan work is timed, once-per-surgery work is 0.
            assert!(reg.timings.classification_s > 0.0);
            assert!(reg.timings.solve_s > 0.0);
            assert_eq!(reg.timings.assembly_s, 0.0);
            assert_eq!(reg.timings.factorization_s, 0.0);
            last = Some(reg.field.clone());
            fields.push(reg.field);
        }
        // Bitwise-identical to the monolithic sequence runner: both paths
        // run the same stages in the same order on the same inputs.
        let res = crate::sequence::run_scan_sequence(&seq, &cfg).expect("sequence failed");
        assert_eq!(res.outcomes.len(), fields.len());
        for (o, f) in res.outcomes.iter().zip(&fields) {
            assert!((o.peak_recovered_mm - f.max_magnitude()).abs() < 1e-12);
        }
        let s = ctx.stats();
        assert_eq!(s.assemblies, 1);
        assert_eq!(s.factorizations, 1);
        assert_eq!(s.solves, 2);
    }

    #[test]
    fn repeated_scan_is_served_incrementally() {
        // Serving the *same* scan twice: the second pass re-extracts the
        // same prototypes (same tree fingerprint), the cache is accepted,
        // and every feature row is unchanged — zero k-NN work at
        // threshold 0, with an identical segmentation-driven surface.
        let seq = small_seq(1);
        let cfg = PipelineConfig { skip_rigid: true, ..Default::default() };
        let prepared = PreparedSurgery::new(&seq.reference.labels, cfg).expect("prepare failed");
        let mut ctx = prepared.build_solver_context().expect("context build failed");
        let first = prepared
            .register_scan(&mut ctx, &seq.scans[0].intensity, None, None, None)
            .expect("register failed");
        assert!(!first.used_incremental);
        assert_eq!(first.reclassified_voxels, first.total_voxels);
        assert!(first.knn_leaf_visits > 0);
        let second = prepared
            .register_scan(&mut ctx, &seq.scans[0].intensity, None, None, None)
            .expect("register failed");
        assert!(second.used_incremental, "identical rescan must hit the cache");
        assert_eq!(second.reclassified_voxels, 0);
        assert_eq!(second.total_voxels, seq.scans[0].intensity.dims().len());
        assert_eq!(second.surface_residual, first.surface_residual);
        // Sub-stage laps cover the whole classification stage.
        let t = second.timings;
        let sub = t.feature_s + t.knn_build_s + t.knn_query_s + t.morphology_s;
        assert!((sub - t.classification_s).abs() < 1e-9);
    }

    #[test]
    fn starved_scan_degrades_to_carry_forward() {
        let seq = small_seq(2);
        let cfg = PipelineConfig { skip_rigid: true, ..Default::default() };
        let prepared = PreparedSurgery::new(&seq.reference.labels, cfg.clone()).expect("prepare failed");
        let mut ctx = prepared.build_solver_context().expect("context build failed");
        let good = prepared
            .register_scan(&mut ctx, &seq.scans[0].intensity, None, None, None)
            .expect("register failed");
        assert_ne!(good.status, ScanStatus::Degraded);
        let starved = SolverOptions { max_iterations: 0, ..cfg.fem.options.clone() };
        let reg = prepared
            .register_scan(
                &mut ctx,
                &seq.scans[1].intensity,
                Some(&good.field),
                Some(&starved),
                Some(&EscalationPolicy::none()),
            )
            .expect("register failed");
        assert_eq!(reg.status, ScanStatus::Degraded);
        // Carry-forward: the degraded scan's field IS the previous field.
        for (a, b) in reg.field.data().iter().zip(good.field.data()) {
            assert_eq!(a, b);
        }
        assert_eq!(reg.rung_reasons.len(), reg.attempts);
    }
}
