//! # brainshift-core
//!
//! The paper's primary contribution as a library: the intraoperative
//! nonrigid registration pipeline that captures volumetric brain
//! deformation during neurosurgery by biomechanical simulation —
//! MI rigid registration → k-NN tissue classification → active-surface
//! correspondence → linear-elastic FEM → dense deformation + resampling —
//! with stage timing (Figure 6) and quantitative accuracy metrics
//! (the measurable versions of Figures 4 and 5).

#![warn(missing_docs)]
// The intraoperative pipeline returns typed `Error`s instead of
// panicking on bad input. Test modules are exempt; descriptive
// `.expect()` on established invariants remains allowed.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod case;
pub mod error;
pub mod metrics;
pub mod pipeline;
pub mod sequence;
pub mod surgery;
pub mod timeline;

pub use case::{generate_elastic_case, ElasticCase, ElasticCaseOptions};
pub use error::Error;
pub use metrics::{field_error, intensity_residual, structure_overlaps, FieldErrorReport, ResidualReport};
pub use sequence::{
    generate_scan_sequence, run_scan_sequence, run_scan_sequence_with_faults, FaultInjection,
    ScanOutcome, ScanSequence, ScanStatus, SequenceResult,
};
pub use pipeline::{
    composite_warped, run_pipeline, run_pipeline_with_solver, PipelineConfig, PipelineResult,
    SurfaceForceKind,
};
pub use surgery::{PreparedSurgery, ScanRegistration};
pub use timeline::{StageTimings, Timeline};
