//! Elastic-consistent synthetic neurosurgery cases.
//!
//! The `imaging` phantom's analytic brain-shift profile is convenient but
//! not mechanically consistent: no elastic body with those boundary
//! conditions would deform that way at depth, so a biomechanical pipeline
//! can never fully "recover" it. For quantitative evaluation we instead
//! generate the ground truth with an *independent, finer* FEM solve:
//! surface displacements are prescribed analytically (the craniotomy cap
//! profile), the interior follows from elasticity, and the intraoperative
//! scan is synthesized by forward-splatting the labels through that field
//! and re-rendering intensities with fresh noise. The pipeline under test
//! sees only the images — its mesh is coarser, its segmentation is k-NN,
//! its surface correspondences come from the active surface — so recovery
//! error measures the registration machinery, exactly what the paper's
//! Figure 4 assesses visually.

use brainshift_fem::{
    assemble_directed_gravity, displacement_field_from_mesh, solve_deformation, solve_with_loads,
    DirichletBcs, FemSolveConfig, MaterialTable,
};
use brainshift_imaging::field::invert_field;
use brainshift_imaging::phantom::{
    forward_warp_labels, generate_from_model, BrainShiftConfig, HeadModel,
    PhantomConfig, PhantomScan,
};
use brainshift_imaging::{labels, DisplacementField, Vec3};
use brainshift_mesh::{boundary_nodes, mesh_labeled_volume, MesherConfig};
use brainshift_sparse::SolverOptions;

/// A synthetic case whose ground-truth deformation is elastic-consistent.
pub struct ElasticCase {
    /// The preoperative (reference) scan.
    pub preop: PhantomScan,
    /// The later intraoperative scan after the ground-truth shift.
    pub intraop: PhantomScan,
    /// Ground-truth forward field on the preop grid (zero outside the
    /// ground-truth mesh).
    pub gt_forward: DisplacementField,
    /// Approximate inverse for resampling consumers.
    pub gt_backward: DisplacementField,
    /// The anatomical model underlying both scans.
    pub model: HeadModel,
    /// Equations in the ground-truth FEM (for reporting).
    pub gt_equations: usize,
}

/// How the ground-truth deformation is driven.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GroundTruthDrive {
    /// Prescribed craniotomy-cap surface displacements (default).
    PrescribedCap,
    /// Gravity loading with the brain surface freed inside an opening of
    /// the given radius (mm) and supported by the skull elsewhere — the
    /// actual physics of brain shift. `peak_shift_mm` is ignored; the sag
    /// magnitude follows from tissue weight and stiffness.
    GravityCraniotomy {
        /// Radius of the unsupported (freed) surface patch, mm.
        opening_radius_mm: f64,
    },
}

/// Options for ground-truth generation.
#[derive(Debug, Clone)]
pub struct ElasticCaseOptions {
    /// Mesh step (voxels) of the ground-truth FEM — keep finer than the
    /// pipeline's mesh.
    pub gt_mesh_step: usize,
    /// Materials used by the ground-truth solve (heterogeneous makes the
    /// homogeneous pipeline's model error measurable, reproducing the
    /// paper's ventricle discussion).
    pub materials: MaterialTable,
    /// What loads the ground-truth model.
    pub drive: GroundTruthDrive,
}

impl Default for ElasticCaseOptions {
    fn default() -> Self {
        ElasticCaseOptions {
            gt_mesh_step: 1,
            materials: MaterialTable::homogeneous(),
            drive: GroundTruthDrive::PrescribedCap,
        }
    }
}

/// Analytic surface-displacement profile of the craniotomy cap: full
/// `peak_shift_mm` at the point under the opening, Gaussian falloff along
/// the surface, zero far away (brain held by the skull). The displacement
/// is directed along the *inward surface normal* — the surface sinking
/// into the opening. (A gravity-directed field would be largely tangential
/// at mid-latitudes; tangential surface motion is invisible to any
/// shape-correspondence method — the aperture problem — and the paper's
/// active surface shares that limitation, see DESIGN.md.)
pub fn cap_surface_displacement(p: Vec3, model: &HeadModel, shift: &BrainShiftConfig) -> Vec3 {
    let dir = shift.craniotomy_dir.normalized();
    let brain = &model.brain;
    let surf_pt = brain.center
        + Vec3::new(dir.x * brain.radii.x, dir.y * brain.radii.y, dir.z * brain.radii.z);
    let dist = p.distance(surf_pt);
    let w = (-dist * dist / (2.0 * shift.surface_sigma_mm * shift.surface_sigma_mm)).exp();
    let inward = -brain.normal_at(p);
    inward * (shift.peak_shift_mm * w)
}

/// Generate an elastic-consistent case.
pub fn generate_elastic_case(
    cfg: &PhantomConfig,
    shift: &BrainShiftConfig,
    opts: &ElasticCaseOptions,
) -> ElasticCase {
    let model = HeadModel::fit(cfg.dims, cfg.spacing, cfg);
    let preop = generate_from_model(cfg, &model);

    // Ground-truth FEM on a fine mesh of the true labels.
    let gt_mesh = mesh_labeled_volume(
        &preop.labels,
        &MesherConfig { step: opts.gt_mesh_step, include: labels::is_brain_tissue },
    );
    let fem_cfg = FemSolveConfig {
        options: SolverOptions { tolerance: 1e-6, max_iterations: 10_000, ..Default::default() },
        ..Default::default()
    };
    let displacements = match opts.drive {
        GroundTruthDrive::PrescribedCap => {
            let mut bcs = DirichletBcs::new();
            for &n in boundary_nodes(&gt_mesh).iter() {
                bcs.set(n, cap_surface_displacement(gt_mesh.nodes[n], &model, shift));
            }
            let sol = solve_deformation(&gt_mesh, &opts.materials, &bcs, &fem_cfg)
                .expect("ground-truth FEM solve rejected its inputs");
            assert!(sol.stats.converged(), "ground-truth FEM failed to converge: {:?}", sol.stats.reason);
            sol.displacements
        }
        GroundTruthDrive::GravityCraniotomy { opening_radius_mm } => {
            // Fix the brain surface where the skull supports it; free it
            // under the opening; load everything with gravity directed
            // into the head along the craniotomy axis (patient oriented
            // opening-up).
            let dir = shift.craniotomy_dir.normalized();
            let brain = &model.brain;
            let surf_pt = brain.center
                + Vec3::new(dir.x * brain.radii.x, dir.y * brain.radii.y, dir.z * brain.radii.z);
            let mut bcs = DirichletBcs::new();
            for &n in boundary_nodes(&gt_mesh).iter() {
                if gt_mesh.nodes[n].distance(surf_pt) > opening_radius_mm {
                    bcs.set(n, Vec3::ZERO);
                }
            }
            let f = assemble_directed_gravity(&gt_mesh, -dir);
            let sol = solve_with_loads(&gt_mesh, &opts.materials, &bcs, &f, &fem_cfg)
                .expect("ground-truth gravity solve rejected its inputs");
            assert!(sol.stats.converged(), "gravity ground truth failed: {:?}", sol.stats.reason);
            sol.displacements
        }
    };
    let gt_forward =
        displacement_field_from_mesh(&gt_mesh, &displacements, cfg.dims, cfg.spacing);
    let gt_backward = invert_field(&gt_forward, 12);

    // Synthesize the intraoperative scan.
    let mut intraop_labels = forward_warp_labels(&preop.labels, &gt_forward, labels::CSF);
    if shift.resect_tumor {
        for v in intraop_labels.data_mut() {
            if *v == labels::TUMOR {
                *v = labels::RESECTION;
            }
        }
    }
    let intra_cfg = PhantomConfig { seed: cfg.seed.wrapping_add(1), ..cfg.clone() };
    // Texture travels with the tissue (material coordinates via the
    // approximate inverse — smooth inside the brain where texture lives).
    let intensity = brainshift_imaging::phantom::render_intensity_with_texture_map(
        &intraop_labels,
        &intra_cfg,
        Some(&gt_backward),
    );
    let intraop = PhantomScan { intensity, labels: intraop_labels };

    ElasticCase {
        preop,
        intraop,
        gt_forward,
        gt_backward,
        model,
        gt_equations: gt_mesh.num_equations(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::volume::{Dims, Spacing};

    fn small() -> (PhantomConfig, BrainShiftConfig) {
        (
            PhantomConfig {
                dims: Dims::new(32, 32, 24),
                spacing: Spacing::iso(4.5),
                ..Default::default()
            },
            BrainShiftConfig { peak_shift_mm: 8.0, resect_tumor: false, ..Default::default() },
        )
    }

    #[test]
    fn elastic_case_has_consistent_sinking() {
        let (cfg, shift) = small();
        let case = generate_elastic_case(&cfg, &shift, &ElasticCaseOptions::default());
        // Field max ≈ the prescribed peak.
        let max = case.gt_forward.max_magnitude();
        assert!(max > 0.6 * shift.peak_shift_mm && max <= shift.peak_shift_mm * 1.05, "max {max}");
        // The brain top actually sank in the generated labels.
        let d = cfg.dims;
        let top_of = |seg: &brainshift_imaging::Volume<u8>, x: usize| -> i64 {
            for z in (0..d.nz).rev() {
                if labels::is_brain_tissue(*seg.get(x, d.ny / 2, z)) {
                    return z as i64;
                }
            }
            -1
        };
        let x_off = d.nx / 2 + 3; // off the midline falx
        assert!(
            top_of(&case.intraop.labels, x_off) < top_of(&case.preop.labels, x_off),
            "brain did not sink in the generated intraop scan"
        );
    }

    #[test]
    fn gt_interior_decays_toward_fixed_side() {
        let (cfg, shift) = small();
        let case = generate_elastic_case(&cfg, &shift, &ElasticCaseOptions::default());
        let d = cfg.dims;
        let c = (d.nx / 2, d.ny / 2, d.nz / 2);
        let near_top = case.gt_forward.get(c.0, c.1, d.nz * 3 / 4);
        let near_bottom = case.gt_forward.get(c.0, c.1, d.nz / 4);
        assert!(near_top.norm() > near_bottom.norm(), "{near_top:?} vs {near_bottom:?}");
    }

    #[test]
    fn gravity_drive_produces_physical_sag() {
        let (cfg, shift) = small();
        let case = generate_elastic_case(
            &cfg,
            &shift,
            &ElasticCaseOptions {
                drive: GroundTruthDrive::GravityCraniotomy { opening_radius_mm: 40.0 },
                ..Default::default()
            },
        );
        let peak = case.gt_forward.max_magnitude();
        // Physics decides the magnitude: millimetre-scale sag, clinically
        // plausible, no runaway.
        assert!(peak > 0.5 && peak < 20.0, "peak sag {peak}");
        // Sag must concentrate near the opening (top of the head).
        let d = cfg.dims;
        let top = case.gt_forward.get(d.nx / 2 + 2, d.ny / 2, d.nz * 3 / 4).norm();
        let bottom = case.gt_forward.get(d.nx / 2 + 2, d.ny / 2, d.nz / 4).norm();
        assert!(top > bottom, "{top} vs {bottom}");
    }

    #[test]
    fn resection_honored() {
        let (cfg, mut shift) = small();
        shift.resect_tumor = true;
        let case = generate_elastic_case(&cfg, &shift, &ElasticCaseOptions::default());
        assert_eq!(case.intraop.labels.count_label(labels::TUMOR), 0);
        assert!(case.gt_equations > 1000);
    }
}
