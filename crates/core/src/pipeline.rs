//! The intraoperative nonrigid registration pipeline — the paper's
//! primary contribution (its Figure 1 schema):
//!
//! preop MRI + segmentation ──(MI rigid registration)──▶ intraop frame
//!     └▶ spatial localization model ──▶ k-NN tissue classification
//!             └▶ brain surface target ──▶ active surface displacements
//!                     └▶ biomechanical FEM ──▶ volumetric deformation
//!                             └▶ resampled ("warped") preoperative data

use crate::error::Error;
use crate::timeline::{StageTimings, Timeline};
use brainshift_fem::{
    displacement_field_from_mesh, ContextStats, ContextTimings, DirichletBcs, FemSolveConfig,
    FemSolution, MaterialTable, SolverContext,
};
use brainshift_imaging::field::{invert_field, warp_volume_backward};
use brainshift_imaging::{labels, DisplacementField, Vec3, Volume};
use brainshift_mesh::{extract_boundary, mesh_labeled_volume, MesherConfig, TetMesh, TriSurface};
use brainshift_register::{register_rigid, RigidRegConfig, RigidRegResult};
use brainshift_obs::Stopwatch;
use brainshift_segment::classify::build_feature_stack;
use brainshift_segment::{classify_volume, largest_component, KdTree, PrototypeModel, SegmentConfig};
use brainshift_surface::{evolve_surface, ActiveSurfaceConfig, DistanceForce, EdgeForce, ExternalForce};

/// Which external force drives the active surface toward the intraop
/// brain boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SurfaceForceKind {
    /// Potential from the signed distance transform of the segmented
    /// target mask — robust, the default.
    DistancePotential,
    /// The paper's formulation: forces derived from the image gradients
    /// ("a decreasing function of the data gradients") with a gray-level
    /// prior for the brain/CSF boundary.
    ImageGradient,
}

/// Pipeline configuration: one knob per stage.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// MI rigid-registration settings.
    pub rigid: RigidRegConfig,
    /// Skip rigid registration when scans are known to share a frame
    /// (saves time in tests; the OR always runs it).
    pub skip_rigid: bool,
    /// Intraoperative k-NN segmentation settings.
    pub segment: SegmentConfig,
    /// Tetrahedral mesher settings.
    pub mesher: MesherConfig,
    /// Active-surface evolution settings.
    pub active_surface: ActiveSurfaceConfig,
    /// Saturation of the active-surface pull per iteration (mm).
    pub surface_force_step: f64,
    /// External force formulation for the active surface.
    pub surface_force: SurfaceForceKind,
    /// Histogram-match the intraoperative scan to the reference before
    /// classification (corrects the paper's "intrinsic MR scanner
    /// intensity variability" when scanner drift between acquisitions is
    /// large; off by default).
    pub normalize_intensity: bool,
    /// Tissue material table for the FEM.
    pub materials: MaterialTable,
    /// Krylov solver / preconditioner settings.
    pub fem: FemSolveConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            rigid: RigidRegConfig::default(),
            skip_rigid: false,
            segment: SegmentConfig::default(),
            mesher: MesherConfig { step: 2, include: labels::is_brain_tissue },
            active_surface: ActiveSurfaceConfig::default(),
            surface_force_step: 2.0,
            surface_force: SurfaceForceKind::DistancePotential,
            normalize_intensity: false,
            materials: MaterialTable::homogeneous(),
            fem: FemSolveConfig::default(),
        }
    }
}

/// Everything the pipeline produces for one intraoperative scan.
pub struct PipelineResult {
    /// Recovered rigid transform (identity when `skip_rigid`).
    pub rigid: Option<RigidRegResult>,
    /// Intraoperative segmentation (k-NN over the multichannel stack).
    pub intraop_seg: Volume<u8>,
    /// Volumetric mesh of the (registered) reference brain.
    pub mesh: TetMesh,
    /// Brain boundary surface of the mesh.
    pub brain_surface: TriSurface,
    /// Mean residual distance of the active surface to the target (mm).
    pub surface_residual: f64,
    /// FEM solve outcome.
    pub fem: FemSolution,
    /// Forward volumetric deformation on the reference grid: reference
    /// point `p` maps to `p + forward(p)`.
    pub forward_field: DisplacementField,
    /// Backward field on the intraop grid for resampling.
    pub backward_field: DisplacementField,
    /// The reference (preop / first-scan) intensity warped onto the
    /// intraoperative configuration — the paper's Figure 4(c).
    pub warped_reference: Volume<f32>,
    /// Stage timings (Figure 6).
    pub timeline: Timeline,
    /// Cumulative FEM solver-context counters (over every scan served by
    /// the context passed to [`run_pipeline_with_solver`]).
    pub solver_stats: ContextStats,
    /// Paper-style per-stage breakdown of *this scan*: classifier, mesh,
    /// surface, assembly/reduction/factorization (0.0 when served from a
    /// warm context), solve, resample.
    pub stage_timings: StageTimings,
}

/// Run the full intraoperative pipeline.
///
/// * `reference_intensity` / `reference_seg` — the first scan (or preop
///   data registered to it) with its trusted segmentation; this is the
///   "patient-specific atlas".
/// * `intraop_intensity` — the later scan exhibiting brain shift.
///
/// Hard failures — an empty mesh, a singular preconditioner block, a
/// malformed boundary-condition set — are returned as [`Error`]. A solver
/// that merely fails to converge is *not* an error: inspect
/// `result.fem.stats.converged()` and degrade at the call site (see
/// [`crate::sequence::run_scan_sequence`]).
pub fn run_pipeline(
    reference_intensity: &Volume<f32>,
    reference_seg: &Volume<u8>,
    intraop_intensity: &Volume<f32>,
    cfg: &PipelineConfig,
) -> Result<PipelineResult, Error> {
    run_pipeline_with_solver(reference_intensity, reference_seg, intraop_intensity, cfg, &mut None)
}

/// [`run_pipeline`] with a persistent FEM solver context threaded across
/// calls.
///
/// On the first scan of a surgery pass `&mut None`: the context (global
/// stiffness assembly, Dirichlet reduction, preconditioner factorization)
/// is built and left behind in `solver`. Later scans of the *same*
/// surgery reuse it — their biomechanical stage is a single warm-started
/// Krylov solve. The context is rebuilt automatically if the mesh or the
/// constrained surface changes (e.g. rigid registration realigned the
/// reference); changing `cfg.materials` or `cfg.fem` mid-surgery requires
/// resetting `solver` to `None` yourself.
pub fn run_pipeline_with_solver(
    reference_intensity: &Volume<f32>,
    reference_seg: &Volume<u8>,
    intraop_intensity: &Volume<f32>,
    cfg: &PipelineConfig,
    solver: &mut Option<SolverContext>,
) -> Result<PipelineResult, Error> {
    let mut timeline = Timeline::new();

    // ── Rigid registration: bring the reference into the intraop frame. ──
    let (rigid, ref_intensity_aligned, ref_seg_aligned) = if cfg.skip_rigid {
        (None, reference_intensity.clone(), reference_seg.clone())
    } else {
        let res = timeline.stage("rigid registration", true, || {
            register_rigid(intraop_intensity, reference_intensity, &cfg.rigid)
        });
        let t = res.transform;
        let aligned_int = brainshift_imaging::interp::resample_with(
            reference_intensity,
            intraop_intensity,
            0.0,
            |p| t.apply(p),
        );
        let aligned_seg = brainshift_imaging::interp::resample_labels_with(
            reference_seg,
            intraop_intensity.dims(),
            intraop_intensity.spacing(),
            labels::BACKGROUND,
            |p| t.apply(p),
        );
        (Some(res), aligned_int, aligned_seg)
    };

    // ── Optional intensity normalization against the reference. ──
    let normalized;
    let intraop_intensity = if cfg.normalize_intensity {
        normalized = timeline.stage("intensity normalization", true, || {
            brainshift_imaging::normalize::match_histogram(intraop_intensity, &ref_intensity_aligned)
        });
        &normalized
    } else {
        intraop_intensity
    };

    // ── Intraoperative tissue classification (k-NN, Fig 1). ──
    // `segment_intraop` inlined so the sub-stages land in the timings.
    let mut class_sub = [0.0f64; 3]; // feature stack, kd-tree build, k-NN query
    let intraop_seg = timeline.stage("tissue classification", true, || {
        let mut sw = Stopwatch::wall();
        let mut classes = ref_seg_aligned.labels();
        classes.retain(|&c| c != labels::RESECTION);
        let model =
            PrototypeModel::sample(&ref_seg_aligned, &classes, cfg.segment.per_class, cfg.segment.seed);
        let fs = build_feature_stack(intraop_intensity, &ref_seg_aligned, &classes, &cfg.segment);
        class_sub[0] = sw.lap_s();
        let tree = KdTree::build(model.extract(&fs))?;
        class_sub[1] = sw.lap_s();
        let seg = classify_volume(&fs, &tree, cfg.segment.k);
        class_sub[2] = sw.lap_s();
        Ok::<_, crate::error::Error>(seg)
    })?;

    // ── Mesh the reference brain (initialization; overlappable). ──
    let mesh = timeline.stage("mesh generation", true, || {
        mesh_labeled_volume(&ref_seg_aligned, &cfg.mesher)
    });
    if mesh.num_tets() == 0 {
        return Err(Error::Pipeline("reference segmentation produced an empty mesh".into()));
    }
    let brain_surface = extract_boundary(&mesh);

    // ── Active surface: match reference brain surface to the intraop
    //    brain (surface displacement stage of Fig 6). Two passes: the
    //    mesh boundary is voxel-blocky, so first snap it onto the
    //    *reference* brain boundary (cancels discretization bias), then
    //    evolve that onto the intraop boundary; the per-vertex
    //    displacement is the difference.
    let (surface_displacements, surface_residual) = timeline.stage("surface displacement", true, || {
        let ref_mask = largest_component(&ref_seg_aligned.map(|&l| labels::is_brain_tissue(l)));
        let force_ref = DistanceForce::from_mask(&ref_mask, cfg.surface_force_step);
        let snap = evolve_surface(&brain_surface, &force_ref, &cfg.active_surface);

        let target_mask = largest_component(&intraop_seg.map(|&l| labels::is_brain_tissue(l)));
        let force: Box<dyn ExternalForce> = match cfg.surface_force {
            SurfaceForceKind::DistancePotential => {
                Box::new(DistanceForce::from_mask(&target_mask, cfg.surface_force_step))
            }
            SurfaceForceKind::ImageGradient => {
                // Gray-level prior: the brain/CSF boundary sits between
                // the brain and CSF nominal intensities.
                let expected = (brainshift_imaging::phantom::tissue_intensity(labels::BRAIN)
                    + brainshift_imaging::phantom::tissue_intensity(labels::CSF))
                    / 2.0;
                Box::new(EdgeForce::from_image(
                    intraop_intensity,
                    1.0,
                    expected,
                    60.0,
                    cfg.surface_force_step,
                ))
            }
        };
        let force = force.as_ref();
        let mut snapped_surface = brain_surface.clone();
        snapped_surface.vertices = snap.positions.clone();
        let res = evolve_surface(&snapped_surface, force, &cfg.active_surface);
        let resid = res.final_distance;
        let displacements: Vec<Vec3> = res
            .positions
            .iter()
            .zip(&snap.positions)
            .map(|(a, b)| *a - *b)
            .collect();
        (displacements, resid)
    });

    // ── Biomechanical simulation: surface displacements as Dirichlet
    //    data, FEM for the volume (Fig 1's last box). The solver context
    //    (assembly + reduction + preconditioner) persists across scans of
    //    a surgery; a scan whose mesh matches pays only the solve. ──
    // Context timings before this scan, to delta out what *this* scan
    // paid (a rebuilt context starts its phase clocks from zero).
    let prior_timings = solver.as_ref().map(|c| c.timings()).unwrap_or_default();
    let (fem, solver_stats, ctx_timings, rebuilt) = timeline.stage(
        "biomechanical simulation",
        true,
        || -> Result<(FemSolution, ContextStats, ContextTimings, bool), Error> {
            let mut bcs = DirichletBcs::new();
            for (v, &node) in brain_surface.mesh_node.iter().enumerate() {
                bcs.set(node, surface_displacements[v]);
            }
            let reusable = solver
                .as_ref()
                .is_some_and(|c| c.matches(&mesh, &brain_surface.mesh_node));
            if !reusable {
                *solver = Some(SolverContext::new(
                    &mesh,
                    &cfg.materials,
                    &brain_surface.mesh_node,
                    cfg.fem.clone(),
                )?);
            }
            // Typed error, not a panic: the install above makes this
            // unreachable, but the errors-vs-panics policy forbids
            // `expect` on it in intraoperative code.
            let ctx = solver
                .as_mut()
                .ok_or_else(|| Error::Pipeline("FEM solver context missing after installation".into()))?;
            let solution = ctx.solve(&bcs)?;
            Ok((solution, ctx.stats(), ctx.timings(), !reusable))
        },
    )?;

    // ── Dense deformation + resample (the ~0.5 s visualization step). ──
    let (forward_field, backward_field, warped_reference) = timeline.stage("visualization resample", true, || {
        let fwd = displacement_field_from_mesh(
            &mesh,
            &fem.displacements,
            intraop_intensity.dims(),
            intraop_intensity.spacing(),
        );
        let bwd = invert_field(&fwd, 10);
        let warped = warp_volume_backward(&ref_intensity_aligned, &bwd, 0.0);
        (fwd, bwd, warped)
    });

    // What this scan paid inside the FEM context: setup phases only when
    // the context was (re)built, plus the delta of cumulative solve time.
    let base = if rebuilt { ContextTimings::default() } else { prior_timings };
    let stage_timings = StageTimings {
        classification_s: timeline.seconds_of("tissue classification"),
        mesh_s: timeline.seconds_of("mesh generation"),
        surface_s: timeline.seconds_of("surface displacement"),
        assembly_s: ctx_timings.assembly_s - base.assembly_s,
        reduction_s: ctx_timings.reduction_s - base.reduction_s,
        factorization_s: ctx_timings.factorization_s - base.factorization_s,
        solve_s: ctx_timings.solve_s - base.solve_s,
        resample_s: timeline.seconds_of("visualization resample"),
        feature_s: class_sub[0],
        knn_build_s: class_sub[1],
        knn_query_s: class_sub[2],
        // Morphology runs inside the surface stage on this monolithic
        // path; `PreparedSurgery::register_scan` measures it separately.
        ..Default::default()
    };

    Ok(PipelineResult {
        rigid,
        intraop_seg,
        mesh,
        brain_surface,
        surface_residual,
        fem,
        forward_field,
        backward_field,
        warped_reference,
        timeline,
        solver_stats,
        stage_timings,
    })
}

/// Composite the warped brain into the intraop scan background for
/// difference images: outside the deformable region the intraop scan is
/// used (skin/skull don't move), inside the warped reference is shown.
pub fn composite_warped(
    warped_reference: &Volume<f32>,
    intraop_intensity: &Volume<f32>,
    intraop_seg: &Volume<u8>,
) -> Volume<f32> {
    assert_eq!(warped_reference.dims(), intraop_intensity.dims());
    let mut out = intraop_intensity.clone();
    for (i, &l) in intraop_seg.data().iter().enumerate() {
        if labels::is_brain_tissue(l) {
            out.data_mut()[i] = warped_reference.data()[i];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case::{generate_elastic_case, ElasticCase, ElasticCaseOptions};
    use brainshift_imaging::phantom::{BrainShiftConfig, PhantomConfig};
    use brainshift_imaging::volume::{Dims, Spacing};

    fn small_case() -> ElasticCase {
        generate_elastic_case(
            &PhantomConfig {
                dims: Dims::new(48, 48, 36),
                spacing: Spacing::iso(3.0),
                ..Default::default()
            },
            &BrainShiftConfig { peak_shift_mm: 8.0, resect_tumor: false, ..Default::default() },
            &ElasticCaseOptions::default(),
        )
    }

    fn fast_cfg() -> PipelineConfig {
        PipelineConfig {
            skip_rigid: true,
            mesher: MesherConfig { step: 2, include: labels::is_brain_tissue },
            ..Default::default()
        }
    }

    #[test]
    fn pipeline_runs_end_to_end_and_recovers_shift() {
        let case = small_case();
        let res = run_pipeline(
            &case.preop.intensity,
            &case.preop.labels,
            &case.intraop.intensity,
            &fast_cfg(),
        ).expect("pipeline failed");
        assert!(res.fem.stats.converged(), "FEM did not converge");
        assert!(res.mesh.num_tets() > 100);
        // Recovered forward field should capture the deformation where it
        // is significant (well above the voxel-discretization floor).
        let d = case.preop.labels.dims();
        let mut err_sum = 0.0;
        let mut gt_sum = 0.0;
        let mut n = 0usize;
        for z in 0..d.nz {
            for y in 0..d.ny {
                for x in 0..d.nx {
                    let gt = case.gt_forward.get(x, y, z);
                    if gt.norm() > 3.0 {
                        let rec = res.forward_field.get(x, y, z);
                        err_sum += (rec - gt).norm();
                        gt_sum += gt.norm();
                        n += 1;
                    }
                }
            }
        }
        assert!(n > 0);
        let mean_err = err_sum / n as f64;
        let mean_gt = gt_sum / n as f64;
        // At 3 mm voxels the k-NN surface sits ~1 voxel high (partial
        // volume), so pointwise recovery in the strongly-deformed region
        // plateaus around 30%; the *peak* deformation must be captured
        // nearly fully (see EXPERIMENTS.md for the resolution study).
        assert!(
            mean_err < 0.8 * mean_gt,
            "mean error {mean_err:.2} mm vs mean shift {mean_gt:.2} mm"
        );
        let max_rec = res.forward_field.max_magnitude();
        let max_gt = case.gt_forward.max_magnitude();
        assert!(
            (max_rec - max_gt).abs() < 0.35 * max_gt,
            "peak deformation {max_rec:.2} vs {max_gt:.2}"
        );
    }

    #[test]
    fn warped_reference_matches_intraop_better_than_unwarped() {
        let case = small_case();
        let res = run_pipeline(
            &case.preop.intensity,
            &case.preop.labels,
            &case.intraop.intensity,
            &fast_cfg(),
        ).expect("pipeline failed");
        // Compare intensity difference in the brain region.
        let brain = case.intraop.labels.map(|&l| labels::is_brain_tissue(l));
        let diff = |a: &Volume<f32>| -> f64 {
            let mut s = 0.0;
            let mut n = 0usize;
            for (i, &m) in brain.data().iter().enumerate() {
                if m {
                    s += (a.data()[i] - case.intraop.intensity.data()[i]).abs() as f64;
                    n += 1;
                }
            }
            s / n as f64
        };
        let before = diff(&case.preop.intensity);
        let after = diff(&res.warped_reference);
        assert!(after < before, "warp made things worse: {before:.2} → {after:.2}");
    }

    #[test]
    fn timeline_records_all_intraop_stages() {
        let case = small_case();
        let res = run_pipeline(
            &case.preop.intensity,
            &case.preop.labels,
            &case.intraop.intensity,
            &fast_cfg(),
        ).expect("pipeline failed");
        for stage in [
            "tissue classification",
            "mesh generation",
            "surface displacement",
            "biomechanical simulation",
            "visualization resample",
        ] {
            assert!(res.timeline.seconds_of(stage) > 0.0, "missing stage {stage}");
        }
    }

    #[test]
    fn image_gradient_force_also_recovers_shift() {
        // The paper's gradient-derived force formulation: noisier than
        // the distance potential but must still capture the deformation.
        let case = small_case();
        let mut cfg = fast_cfg();
        cfg.surface_force = SurfaceForceKind::ImageGradient;
        let res = run_pipeline(
            &case.preop.intensity,
            &case.preop.labels,
            &case.intraop.intensity,
            &cfg,
        ).expect("pipeline failed");
        assert!(res.fem.stats.converged());
        let peak = res.forward_field.max_magnitude();
        assert!(
            peak > 0.3 * case.gt_forward.max_magnitude(),
            "gradient force recovered only {peak:.2} mm of {:.2} mm",
            case.gt_forward.max_magnitude()
        );
    }

    #[test]
    fn solver_context_persists_across_pipeline_calls() {
        // Two scans of the same surgery (fixed reference, skip_rigid):
        // the second run must reuse the first run's assembly and
        // factorization and warm-start its solve.
        let case = small_case();
        let cfg = fast_cfg();
        let mut solver = None;
        let r1 = run_pipeline_with_solver(
            &case.preop.intensity,
            &case.preop.labels,
            &case.intraop.intensity,
            &cfg,
            &mut solver,
        ).expect("pipeline failed");
        assert_eq!(r1.solver_stats.assemblies, 1);
        assert_eq!(r1.solver_stats.factorizations, 1);
        assert_eq!(r1.solver_stats.warm_started_solves, 0);
        let r2 = run_pipeline_with_solver(
            &case.preop.intensity,
            &case.preop.labels,
            &case.intraop.intensity,
            &cfg,
            &mut solver,
        ).expect("pipeline failed");
        assert!(r2.fem.stats.converged());
        assert_eq!(r2.solver_stats.assemblies, 1, "second scan reassembled");
        assert_eq!(r2.solver_stats.factorizations, 1, "second scan refactored");
        assert_eq!(r2.solver_stats.solves, 2);
        assert_eq!(r2.solver_stats.warm_started_solves, 1);
        // Identical inputs → identical displacement output either way.
        for (a, b) in r1.fem.displacements.iter().zip(&r2.fem.displacements) {
            assert!((*a - *b).norm() < 1e-7);
        }
    }

    #[test]
    fn composite_preserves_background() {
        let case = small_case();
        let res = run_pipeline(
            &case.preop.intensity,
            &case.preop.labels,
            &case.intraop.intensity,
            &fast_cfg(),
        ).expect("pipeline failed");
        let comp = composite_warped(&res.warped_reference, &case.intraop.intensity, &res.intraop_seg);
        // Where the segmentation says background/skin, the composite must
        // equal the intraop scan exactly.
        let d = comp.dims();
        for idx in 0..d.len() {
            if !labels::is_brain_tissue(res.intraop_seg.data()[idx]) {
                assert_eq!(comp.data()[idx], case.intraop.intensity.data()[idx]);
            }
        }
    }
}
