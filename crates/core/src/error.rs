//! Typed errors for the intraoperative pipeline.
//!
//! The pipeline separates *hard* failures (a malformed mesh, a singular
//! preconditioner, mismatched boundary conditions — surfaced here as
//! [`Error`]) from *soft* failures (a scan whose solver did not converge
//! within its budget), which degrade gracefully: the scan is marked
//! [`Degraded`](crate::sequence::ScanStatus::Degraded) and the previous
//! scan's displacement field is carried forward.

use brainshift_fem::FemError;
use brainshift_mesh::MeshError;
use brainshift_segment::SegmentError;
use brainshift_sparse::SparseError;
use std::fmt;

/// A hard failure of the intraoperative pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Mesh construction or validation failed.
    Mesh(MeshError),
    /// The FEM layer rejected its inputs.
    Fem(FemError),
    /// The sparse layer rejected a matrix or preconditioner.
    Sparse(SparseError),
    /// The classifier rejected its training data (malformed prototypes).
    Segment(SegmentError),
    /// A pipeline-level invariant was violated (with a description).
    Pipeline(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Mesh(e) => write!(f, "mesh error: {e}"),
            Error::Fem(e) => write!(f, "FEM error: {e}"),
            Error::Sparse(e) => write!(f, "sparse error: {e}"),
            Error::Segment(e) => write!(f, "segmentation error: {e}"),
            Error::Pipeline(msg) => write!(f, "pipeline error: {msg}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Mesh(e) => Some(e),
            Error::Fem(e) => Some(e),
            Error::Sparse(e) => Some(e),
            Error::Segment(e) => Some(e),
            Error::Pipeline(_) => None,
        }
    }
}

impl From<MeshError> for Error {
    fn from(e: MeshError) -> Self {
        Error::Mesh(e)
    }
}

impl From<FemError> for Error {
    fn from(e: FemError) -> Self {
        Error::Fem(e)
    }
}

impl From<SparseError> for Error {
    fn from(e: SparseError) -> Self {
        Error::Sparse(e)
    }
}

impl From<SegmentError> for Error {
    fn from(e: SegmentError) -> Self {
        Error::Segment(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_and_displays_lower_layers() {
        let e = Error::from(FemError::Unconstrained);
        assert!(e.to_string().contains("boundary conditions"));
        assert!(std::error::Error::source(&e).is_some());
        let e = Error::Pipeline("empty mesh".into());
        assert!(e.to_string().contains("empty mesh"));
        let e = Error::from(SegmentError::EmptyPrototypeSet);
        assert!(e.to_string().contains("prototype"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
