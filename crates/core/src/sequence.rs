//! Multi-scan intraoperative sequences.
//!
//! "In each neurosurgery case several volumetric MRI scans were carried
//! out during surgery. The first scan was acquired at the beginning of the
//! procedure before any changes in the shape of the brain took place, and
//! then over the course of surgery other scans were acquired as the
//! surgeon checked the progress of tumor resection." This module
//! generates such a series — progressive brain shift, the tumor resected
//! in the final scans — and tracks the registration per scan, reusing the
//! prototype-voxel statistical model across acquisitions exactly as the
//! paper's automatic update does.

use crate::case::{generate_elastic_case, ElasticCase, ElasticCaseOptions};
use crate::error::Error;
use crate::metrics::{field_error, FieldErrorReport};
use crate::pipeline::PipelineConfig;
use crate::surgery::PreparedSurgery;
use crate::timeline::StageTimings;
use brainshift_fem::ContextStats;
use brainshift_sparse::{EscalationPolicy, SolverOptions};
use brainshift_imaging::phantom::{forward_warp_labels, render_intensity, BrainShiftConfig, PhantomConfig, PhantomScan};
use brainshift_imaging::{labels, DisplacementField, Volume};

/// A series of intraoperative scans with ground-truth deformations.
pub struct ScanSequence {
    /// The first intraoperative scan (reference configuration).
    pub reference: PhantomScan,
    /// Later scans, in acquisition order.
    pub scans: Vec<PhantomScan>,
    /// Ground-truth forward field of each scan, on the reference grid.
    pub gt_forward: Vec<DisplacementField>,
    /// Stage (0..1] of the full shift reached at each scan.
    pub stages: Vec<f64>,
}

/// Generate a sequence of `n_scans` later scans with linearly progressing
/// shift (linear elasticity: scaling the surface BCs scales the interior
/// solution exactly, so one ground-truth solve serves every stage). The
/// tumor is resected from scan `resect_from` onward.
pub fn generate_scan_sequence(
    cfg: &PhantomConfig,
    shift: &BrainShiftConfig,
    n_scans: usize,
    resect_from: usize,
) -> ScanSequence {
    assert!(n_scans >= 1);
    let full = generate_elastic_case(
        cfg,
        &BrainShiftConfig { resect_tumor: false, ..shift.clone() },
        &ElasticCaseOptions::default(),
    );
    let ElasticCase { preop, gt_forward: full_field, .. } = full;
    let mut scans = Vec::with_capacity(n_scans);
    let mut fields = Vec::with_capacity(n_scans);
    let mut stages = Vec::with_capacity(n_scans);
    for i in 0..n_scans {
        let stage = (i + 1) as f64 / n_scans as f64;
        let mut field = full_field.clone();
        for u in field.data_mut() {
            *u = *u * stage;
        }
        let mut lab = forward_warp_labels(&preop.labels, &field, labels::CSF);
        if i >= resect_from {
            for v in lab.data_mut() {
                if *v == labels::TUMOR {
                    *v = labels::RESECTION;
                }
            }
        }
        let scan_cfg = PhantomConfig { seed: cfg.seed.wrapping_add(1 + i as u64), ..cfg.clone() };
        let intensity = render_intensity(&lab, &scan_cfg);
        scans.push(PhantomScan { intensity, labels: lab });
        fields.push(field);
        stages.push(stage);
    }
    ScanSequence { reference: preop, scans, gt_forward: fields, stages }
}

/// How the biomechanical solve of one scan concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStatus {
    /// The primary solver configuration converged.
    Converged,
    /// The solver converged, but only after walking the escalation
    /// ladder (larger GMRES restarts and/or the BiCGStab fallback).
    Escalated {
        /// Total solver attempts made (≥ 2).
        attempts: usize,
    },
    /// The solver did not converge within its budget even after
    /// escalation: the scan's displacement field is the *previous*
    /// scan's field carried forward (zero for the first scan), not a
    /// solution for this scan's boundary conditions.
    Degraded,
}

/// Outcome of registering one scan of the sequence.
pub struct ScanOutcome {
    /// Index of the scan within the sequence.
    pub scan_index: usize,
    /// Fraction (0..1] of the full shift reached at this scan.
    pub stage: f64,
    /// How the biomechanical solve concluded (see [`ScanStatus`]).
    pub status: ScanStatus,
    /// Recovered-vs-truth deformation error report.
    pub field_error: FieldErrorReport,
    /// GMRES iterations of the biomechanical solve.
    pub fem_iterations: usize,
    /// Mean active-surface residual distance (mm).
    pub surface_residual: f64,
    /// Peak recovered deformation (mm) — should grow with the stage.
    pub peak_recovered_mm: f64,
    /// Per-stage wall-clock breakdown of this scan (warm path: assembly /
    /// reduction / factorization are 0, they are once-per-surgery costs).
    pub timings: StageTimings,
}

/// Everything a registered sequence yields: the per-scan outcomes plus
/// the solver counters proving the once-per-surgery initialization.
pub struct SequenceResult {
    /// One entry per intraoperative scan, in acquisition order.
    pub outcomes: Vec<ScanOutcome>,
    /// FEM solver-context counters over the whole surgery. With the
    /// persistent context these show exactly one assembly and one
    /// preconditioner factorization regardless of the scan count.
    pub solver_stats: ContextStats,
    /// Scans that ended [`ScanStatus::Degraded`].
    pub degraded_scans: usize,
    /// Whole-surgery stage totals: every scan's breakdown accumulated,
    /// plus the once-per-surgery assembly / Dirichlet reduction /
    /// preconditioner factorization measured on the solver context.
    pub stage_timings: StageTimings,
}

/// Deterministic fault injection for failure-path testing: the listed
/// scans are solved with a starved iteration budget and no escalation,
/// forcing a genuine solver non-convergence at exactly those points of
/// the sequence.
#[derive(Debug, Clone, Default)]
pub struct FaultInjection {
    /// Scan indices whose FEM solve is starved (0-based).
    pub fail_fem_scans: Vec<usize>,
}

/// Register every scan of the sequence against the reference, reusing the
/// mesh, the assembled stiffness matrix, the factored preconditioner and
/// the prototype model across scans (the paper's once-per-surgery
/// initialization). Each scan's FEM solve is warm-started from the
/// previous scan's displacement field.
///
/// Hard failures (malformed mesh, singular preconditioner) are returned
/// as [`Error`]; a scan whose solver merely fails to converge degrades
/// gracefully — see [`ScanStatus::Degraded`].
pub fn run_scan_sequence(seq: &ScanSequence, cfg: &PipelineConfig) -> Result<SequenceResult, Error> {
    run_scan_sequence_with_faults(seq, cfg, &FaultInjection::default())
}

/// [`run_scan_sequence`] with deterministic fault injection: scans listed
/// in `faults.fail_fem_scans` are solved with a starved iteration budget
/// and no escalation. Used to exercise the degradation path; production
/// callers use [`run_scan_sequence`].
pub fn run_scan_sequence_with_faults(
    seq: &ScanSequence,
    cfg: &PipelineConfig,
    faults: &FaultInjection,
) -> Result<SequenceResult, Error> {
    // Built once per surgery: mesh, snapped boundary surface, prototype
    // model (the per-surgery half of the job-ified pipeline), plus the
    // solver context — assemble K, split off K_ff/K_fc and factor the
    // preconditioner once, re-solve per scan.
    let prepared = PreparedSurgery::new(&seq.reference.labels, cfg.clone())?;
    let mut solver = prepared.build_solver_context()?;

    // Options forcing genuine non-convergence on injected scans: zero
    // Krylov iterations, no escalation.
    let starved = SolverOptions { max_iterations: 0, ..cfg.fem.options.clone() };
    let no_escalation = EscalationPolicy::none();

    let mut outcomes = Vec::with_capacity(seq.scans.len());
    let mut degraded_scans = 0usize;
    let mut stage_timings = StageTimings::default();
    // The last *good* field, carried forward over degraded scans (the
    // navigation display keeps showing the last trusted state rather than
    // an unconverged iterate).
    let mut last_field: Option<DisplacementField> = None;
    for (i, scan) in seq.scans.iter().enumerate() {
        let injected = faults.fail_fem_scans.contains(&i);
        let reg = prepared.register_scan(
            &mut solver,
            &scan.intensity,
            last_field.as_ref(),
            injected.then_some(&starved),
            injected.then_some(&no_escalation),
        )?;
        if reg.status == ScanStatus::Degraded {
            degraded_scans += 1;
        } else {
            last_field = Some(reg.field.clone());
        }
        let fe = field_error(&reg.field, &seq.gt_forward[i], 1.5);
        stage_timings.accumulate(&reg.timings);
        outcomes.push(ScanOutcome {
            scan_index: i,
            stage: seq.stages[i],
            status: reg.status,
            field_error: fe,
            fem_iterations: reg.fem_iterations,
            surface_residual: reg.surface_residual,
            peak_recovered_mm: reg.field.max_magnitude(),
            timings: reg.timings,
        });
    }
    // Fold in the once-per-surgery costs measured on the context itself.
    let ct = solver.timings();
    stage_timings.assembly_s += ct.assembly_s;
    stage_timings.reduction_s += ct.reduction_s;
    stage_timings.factorization_s += ct.factorization_s;
    Ok(SequenceResult { outcomes, solver_stats: solver.stats(), degraded_scans, stage_timings })
}

/// Convenience: is the tumor present in a scan's labels?
pub fn has_tumor(scan: &PhantomScan) -> bool {
    scan.labels.count_label(labels::TUMOR) > 0
}

/// Total tissue volume (mm³) of a label in a scan — the paper's
/// "quantitative monitoring of treatment progress".
pub fn label_volume_mm3(seg: &Volume<u8>, label: u8) -> f64 {
    seg.count_label(label) as f64 * seg.spacing().voxel_volume()
}

/// Mean ground-truth displacement at a stage (diagnostic).
pub fn stage_mean_shift(seq: &ScanSequence, i: usize) -> f64 {
    seq.gt_forward[i].mean_magnitude()
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::volume::{Dims, Spacing};

    fn small_seq(n: usize, resect_from: usize) -> ScanSequence {
        generate_scan_sequence(
            &PhantomConfig {
                dims: Dims::new(32, 32, 24),
                spacing: Spacing::iso(4.5),
                ..Default::default()
            },
            &BrainShiftConfig { peak_shift_mm: 8.0, ..Default::default() },
            n,
            resect_from,
        )
    }

    #[test]
    fn sequence_shift_is_progressive() {
        let seq = small_seq(3, 3);
        assert_eq!(seq.scans.len(), 3);
        let m0 = stage_mean_shift(&seq, 0);
        let m1 = stage_mean_shift(&seq, 1);
        let m2 = stage_mean_shift(&seq, 2);
        assert!(m0 < m1 && m1 < m2, "{m0} {m1} {m2}");
        // Linear scaling: stage 2/3 ≈ 2× stage 1/3.
        assert!((m1 / m0 - 2.0).abs() < 0.05);
    }

    #[test]
    fn resection_applies_from_given_scan() {
        let seq = small_seq(3, 2);
        assert!(has_tumor(&seq.scans[0]));
        assert!(has_tumor(&seq.scans[1]));
        assert!(!has_tumor(&seq.scans[2]));
        assert!(seq.scans[2].labels.count_label(labels::RESECTION) > 0);
    }

    #[test]
    fn tumor_volume_monitoring() {
        let seq = small_seq(2, 2);
        let v_ref = label_volume_mm3(&seq.reference.labels, labels::TUMOR);
        let v_later = label_volume_mm3(&seq.scans[1].labels, labels::TUMOR);
        assert!(v_ref > 0.0);
        // Tumor still present (resect_from = 2), volume similar.
        assert!(v_later > 0.5 * v_ref);
    }

    #[test]
    fn sequence_reuses_one_assembly_and_factorization() {
        // The acceptance contract of the persistent context: an entire
        // multi-scan surgery performs exactly ONE stiffness assembly and
        // ONE preconditioner factorization, with every scan after the
        // first warm-started.
        let seq = small_seq(3, 3);
        let res = run_scan_sequence(&seq, &PipelineConfig { skip_rigid: true, ..Default::default() }).expect("sequence failed");
        let s = res.solver_stats;
        assert_eq!(s.assemblies, 1, "stiffness reassembled mid-surgery");
        assert_eq!(s.factorizations, 1, "preconditioner refactored mid-surgery");
        assert_eq!(s.solves, 3);
        assert_eq!(s.warm_started_solves, 2);
        // The whole-surgery breakdown carries both the once-per-surgery
        // costs and the per-scan work.
        let t = res.stage_timings;
        assert!(t.assembly_s > 0.0, "assembly untimed");
        assert!(t.factorization_s > 0.0, "factorization untimed");
        assert!(t.solve_s > 0.0 && t.classification_s > 0.0 && t.resample_s > 0.0);
        assert!(t.total_s() > 0.0);
    }

    #[test]
    fn sequence_registration_tracks_growing_shift() {
        let seq = small_seq(3, 3);
        let outcomes = run_scan_sequence(&seq, &PipelineConfig { skip_rigid: true, ..Default::default() }).expect("sequence failed").outcomes;
        assert_eq!(outcomes.len(), 3);
        // Recovered peak deformation grows along the sequence.
        assert!(
            outcomes[2].peak_recovered_mm > outcomes[0].peak_recovered_mm,
            "{} vs {}",
            outcomes[2].peak_recovered_mm,
            outcomes[0].peak_recovered_mm
        );
        for o in &outcomes {
            assert!(o.fem_iterations > 0);
            // Later scans (shift ≫ voxel size at this coarse 4.5 mm test
            // grid) must recover more signal than they miss; the earliest
            // scan's shift is at the discretization floor, so only a loose
            // bound applies there.
            let bound = if o.stage >= 0.5 { 1.0 } else { 2.0 };
            assert!(
                o.field_error.mean_error_mm < bound * o.field_error.mean_truth_mm,
                "scan {}: {} vs {}",
                o.scan_index,
                o.field_error.mean_error_mm,
                o.field_error.mean_truth_mm
            );
        }
    }
}
