//! Quantitative registration-accuracy metrics.
//!
//! The paper judged accuracy visually ("the closeness of the match ...
//! can be judged by the very small intensity differences at the boundary")
//! and noted "a small misregistration of the lateral ventricles" under the
//! homogeneous model. With a synthetic ground truth we can turn both of
//! those observations into numbers (Figure 4(d) as a statistic, the
//! ventricle comment as a Dice score).

use brainshift_imaging::{labels, DisplacementField, Volume};

/// Accuracy of a recovered deformation against a ground-truth field,
/// restricted to voxels where the ground truth is significant.
#[derive(Debug, Clone)]
pub struct FieldErrorReport {
    /// Voxels compared. `0` means **no comparison was made** (no voxel's
    /// ground-truth magnitude exceeded the threshold); every statistic in
    /// the report is then a well-defined `0.0`, never NaN — callers must
    /// check `voxels` before treating the errors as evidence of accuracy.
    pub voxels: usize,
    /// Mean ‖recovered − truth‖ (mm).
    pub mean_error_mm: f64,
    /// RMS error (mm).
    pub rms_error_mm: f64,
    /// Max error (mm).
    pub max_error_mm: f64,
    /// Mean ground-truth magnitude (mm) for context.
    pub mean_truth_mm: f64,
    /// mean_error / mean_truth: < 1 means the simulation recovered more
    /// deformation than it missed.
    pub relative_error: f64,
}

/// Compare a recovered forward field with the ground truth over voxels
/// where `‖truth‖ > threshold_mm`.
pub fn field_error(
    recovered: &DisplacementField,
    truth: &DisplacementField,
    threshold_mm: f64,
) -> FieldErrorReport {
    assert_eq!(recovered.dims(), truth.dims());
    let mut n = 0usize;
    let mut sum = 0.0;
    let mut sum_sq = 0.0;
    let mut max = 0.0f64;
    let mut truth_sum = 0.0;
    for (r, t) in recovered.data().iter().zip(truth.data()) {
        if t.norm() > threshold_mm {
            let e = (*r - *t).norm();
            n += 1;
            sum += e;
            sum_sq += e * e;
            max = max.max(e);
            truth_sum += t.norm();
        }
    }
    if n == 0 {
        // Empty selection: define everything as 0.0 rather than dividing
        // 0/0. `voxels: 0` is the documented "no comparison made" marker.
        return FieldErrorReport {
            voxels: 0,
            mean_error_mm: 0.0,
            rms_error_mm: 0.0,
            max_error_mm: 0.0,
            mean_truth_mm: 0.0,
            relative_error: 0.0,
        };
    }
    let n_f = n as f64;
    let mean = sum / n_f;
    let mean_truth = truth_sum / n_f;
    FieldErrorReport {
        voxels: n,
        mean_error_mm: mean,
        rms_error_mm: (sum_sq / n_f).sqrt(),
        max_error_mm: max,
        mean_truth_mm: mean_truth,
        relative_error: if mean_truth > 0.0 { mean / mean_truth } else { 0.0 },
    }
}

/// The quantitative Figure 4(d): intensity residual statistics between
/// the warped reference and the actual intraoperative scan, inside a
/// region mask.
#[derive(Debug, Clone)]
pub struct ResidualReport {
    /// Voxels inside the mask.
    pub voxels: usize,
    /// Mean absolute intensity difference.
    pub mean_abs: f64,
    /// Root-mean-square intensity difference.
    pub rms: f64,
    /// 95th percentile of |difference|.
    pub p95: f64,
}

/// Intensity residual inside `mask`.
pub fn intensity_residual(a: &Volume<f32>, b: &Volume<f32>, mask: &Volume<bool>) -> ResidualReport {
    assert_eq!(a.dims(), b.dims());
    assert_eq!(a.dims(), mask.dims());
    let mut diffs: Vec<f64> = Vec::new();
    for ((&x, &y), &m) in a.data().iter().zip(b.data()).zip(mask.data()) {
        if m {
            diffs.push((x as f64 - y as f64).abs());
        }
    }
    if diffs.is_empty() {
        return ResidualReport { voxels: 0, mean_abs: 0.0, rms: 0.0, p95: 0.0 };
    }
    let n = diffs.len() as f64;
    let mean_abs = diffs.iter().sum::<f64>() / n;
    let rms = (diffs.iter().map(|d| d * d).sum::<f64>() / n).sqrt();
    diffs.sort_by(f64::total_cmp);
    let p95 = diffs[((diffs.len() - 1) as f64 * 0.95) as usize];
    ResidualReport { voxels: diffs.len(), mean_abs, rms, p95 }
}

/// Dice overlap of one label between a warped reference segmentation and
/// the intraoperative truth — used for the paper's ventricle-
/// misregistration observation.
pub fn label_dice(a: &Volume<u8>, b: &Volume<u8>, label: u8) -> f64 {
    brainshift_segment::dice(&a.map(|&l| l == label), &b.map(|&l| l == label))
}

/// Summary of per-structure overlap before and after nonrigid correction.
#[derive(Debug, Clone)]
pub struct StructureOverlap {
    /// The tissue label evaluated.
    pub label: u8,
    /// Human-readable name of the label.
    pub name: &'static str,
    /// Dice overlap after rigid alignment only.
    pub dice_rigid_only: f64,
    /// Dice overlap after the biomechanical simulation.
    pub dice_after_simulation: f64,
}

/// Evaluate per-structure Dice before (rigid only) and after simulation.
pub fn structure_overlaps(
    reference_seg: &Volume<u8>,
    warped_seg: &Volume<u8>,
    intraop_truth: &Volume<u8>,
    structures: &[u8],
) -> Vec<StructureOverlap> {
    structures
        .iter()
        .map(|&l| StructureOverlap {
            label: l,
            name: labels::label_name(l),
            dice_rigid_only: label_dice(reference_seg, intraop_truth, l),
            dice_after_simulation: label_dice(warped_seg, intraop_truth, l),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::volume::{Dims, Spacing};
    use brainshift_imaging::Vec3;

    #[test]
    fn field_error_zero_for_identical() {
        let f = DisplacementField::from_fn(Dims::new(6, 6, 6), Spacing::iso(1.0), |_, _, _| {
            Vec3::new(2.0, 0.0, 0.0)
        });
        let r = field_error(&f, &f, 1.0);
        assert_eq!(r.voxels, 216);
        assert_eq!(r.mean_error_mm, 0.0);
        assert_eq!(r.relative_error, 0.0 / 2.0);
        assert!((r.mean_truth_mm - 2.0).abs() < 1e-12);
    }

    #[test]
    fn field_error_counts_only_significant_truth() {
        let truth = DisplacementField::from_fn(Dims::new(4, 4, 4), Spacing::iso(1.0), |x, _, _| {
            if x < 2 {
                Vec3::new(5.0, 0.0, 0.0)
            } else {
                Vec3::ZERO
            }
        });
        let rec = DisplacementField::zeros(Dims::new(4, 4, 4), Spacing::iso(1.0));
        let r = field_error(&rec, &truth, 1.0);
        assert_eq!(r.voxels, 32);
        assert!((r.mean_error_mm - 5.0).abs() < 1e-12);
        assert!((r.relative_error - 1.0).abs() < 1e-12);
    }

    #[test]
    fn field_error_empty_selection_is_well_defined() {
        // Threshold above every truth magnitude: zero voxels compared.
        // The report must be all-zero and finite — not 0/0 = NaN.
        let d = Dims::new(4, 4, 4);
        let truth = DisplacementField::from_fn(d, Spacing::iso(1.0), |_, _, _| {
            Vec3::new(0.5, 0.0, 0.0)
        });
        let rec = DisplacementField::zeros(d, Spacing::iso(1.0));
        let r = field_error(&rec, &truth, 1.0);
        assert_eq!(r.voxels, 0, "no comparison made");
        for v in [r.mean_error_mm, r.rms_error_mm, r.max_error_mm, r.mean_truth_mm, r.relative_error] {
            assert!(v.is_finite());
            assert_eq!(v, 0.0);
        }
    }

    #[test]
    fn residual_statistics() {
        let d = Dims::new(4, 4, 4);
        let a = Volume::from_fn(d, Spacing::iso(1.0), |_, _, _| 10.0f32);
        let b = Volume::from_fn(d, Spacing::iso(1.0), |x, _, _| if x == 0 { 10.0 } else { 14.0 });
        let mask = Volume::filled(d, Spacing::iso(1.0), true);
        let r = intensity_residual(&a, &b, &mask);
        assert_eq!(r.voxels, 64);
        assert!((r.mean_abs - 3.0).abs() < 1e-9);
        assert_eq!(r.p95, 4.0);
    }

    #[test]
    fn residual_empty_mask() {
        let d = Dims::new(2, 2, 2);
        let a: Volume<f32> = Volume::zeros(d, Spacing::iso(1.0));
        let mask = Volume::filled(d, Spacing::iso(1.0), false);
        let r = intensity_residual(&a, &a, &mask);
        assert_eq!(r.voxels, 0);
    }

    #[test]
    fn dice_per_label() {
        let d = Dims::new(4, 4, 4);
        let a = Volume::from_fn(d, Spacing::iso(1.0), |x, _, _| if x < 2 { 5u8 } else { 0 });
        let b = Volume::from_fn(d, Spacing::iso(1.0), |x, _, _| if x < 2 { 5u8 } else { 0 });
        assert_eq!(label_dice(&a, &b, 5), 1.0);
        let c = Volume::from_fn(d, Spacing::iso(1.0), |x, _, _| if x >= 2 { 5u8 } else { 0 });
        assert_eq!(label_dice(&a, &c, 5), 0.0);
    }

    #[test]
    fn structure_overlap_report() {
        let d = Dims::new(4, 4, 4);
        let truth = Volume::from_fn(d, Spacing::iso(1.0), |x, _, _| if x < 2 { labels::VENTRICLE } else { 0 });
        let rigid = Volume::from_fn(d, Spacing::iso(1.0), |x, _, _| if (1..3).contains(&x) { labels::VENTRICLE } else { 0 });
        let warped = truth.clone();
        let r = structure_overlaps(&rigid, &warped, &truth, &[labels::VENTRICLE]);
        assert_eq!(r.len(), 1);
        assert!(r[0].dice_after_simulation > r[0].dice_rigid_only);
        assert_eq!(r[0].name, "ventricle");
    }
}
