//! Ablation: homogeneous vs heterogeneous material model.
//!
//! The paper: "Improved registration could result from a more
//! sophisticated model of the material properties of the brain (such as
//! more accurate modelling of the cerebral falx and the lateral
//! ventricles)." With a heterogeneous ground truth we can quantify how
//! much a heterogeneous *pipeline* model recovers of what the homogeneous
//! one misses.

use brainshift_core::case::{generate_elastic_case, ElasticCaseOptions};
use brainshift_core::metrics::{field_error, label_dice};
use brainshift_core::pipeline::{run_pipeline, PipelineConfig};
use brainshift_fem::MaterialTable;
use brainshift_imaging::field::warp_labels_backward;
use brainshift_imaging::labels;
use brainshift_imaging::phantom::{BrainShiftConfig, PhantomConfig};
use brainshift_imaging::volume::{Dims, Spacing};

fn main() {
    println!("## Ablation — homogeneous vs heterogeneous pipeline materials\n");
    let cfg = PhantomConfig {
        dims: Dims::new(64, 64, 48),
        spacing: Spacing::iso(2.5),
        ..Default::default()
    };
    let shift = BrainShiftConfig { peak_shift_mm: 8.0, resect_tumor: false, ..Default::default() };
    // Truth: heterogeneous tissue.
    let case = generate_elastic_case(
        &cfg,
        &shift,
        &ElasticCaseOptions { materials: MaterialTable::heterogeneous(), ..Default::default() },
    );
    println!("ground truth: heterogeneous materials, {} equations\n", case.gt_equations);

    println!("— full pipeline (boundary data from images) —");
    println!(
        "{:<15} {:>12} {:>12} {:>14} {:>14}",
        "pipeline model", "field err", "rel err", "ventricle dice", "brain dice"
    );
    for materials in [MaterialTable::homogeneous(), MaterialTable::heterogeneous()] {
        let name = materials.name;
        let res = run_pipeline(
            &case.preop.intensity,
            &case.preop.labels,
            &case.intraop.intensity,
            &PipelineConfig { skip_rigid: true, materials, ..Default::default() },
        ).expect("pipeline failed");
        let fe = field_error(&res.forward_field, &case.gt_forward, 2.0);
        let warped_seg = warp_labels_backward(&case.preop.labels, &res.backward_field, labels::BACKGROUND);
        let vd = label_dice(&warped_seg, &case.intraop.labels, labels::VENTRICLE);
        let bd = label_dice(&warped_seg, &case.intraop.labels, labels::BRAIN);
        println!(
            "{:<15} {:>9.2} mm {:>12.2} {:>14.3} {:>14.3}",
            name, fe.mean_error_mm, fe.relative_error, vd, bd
        );
    }

    // Isolate the material model: give both solvers the exact analytic
    // surface displacements (no segmentation / active-surface error).
    println!("\n— oracle boundary conditions (material effect isolated) —");
    println!("{:<15} {:>12} {:>12}", "interior model", "field err", "rel err");
    use brainshift_core::case::cap_surface_displacement;
    use brainshift_fem::{displacement_field_from_mesh, solve_deformation, DirichletBcs, FemSolveConfig};
    use brainshift_mesh::{boundary_nodes, mesh_labeled_volume, MesherConfig};
    let mesh = mesh_labeled_volume(
        &case.preop.labels,
        &MesherConfig { step: 2, include: labels::is_brain_tissue },
    );
    let mut bcs = DirichletBcs::new();
    for &n in boundary_nodes(&mesh).iter() {
        bcs.set(n, cap_surface_displacement(mesh.nodes[n], &case.model, &shift));
    }
    for materials in [MaterialTable::homogeneous(), MaterialTable::heterogeneous()] {
        let name = materials.name;
        let sol = solve_deformation(&mesh, &materials, &bcs, &FemSolveConfig::default()).expect("FEM solve rejected its inputs");
        let field = displacement_field_from_mesh(&mesh, &sol.displacements, cfg.dims, cfg.spacing);
        let fe = field_error(&field, &case.gt_forward, 2.0);
        println!("{:<15} {:>9.2} mm {:>12.2}", name, fe.mean_error_mm, fe.relative_error);
    }
    println!("\n(with oracle boundary data the heterogeneous interior matches the");
    println!(" heterogeneous truth better — the improvement the paper anticipated;");
    println!(" inside the full pipeline, surface-matching error dominates, which is");
    println!(" why the paper says an intraoperative segmentation of falx/ventricles");
    println!(" would be needed before the richer model pays off.)");
}
