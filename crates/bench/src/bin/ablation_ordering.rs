//! Ablation: node ordering (reverse Cuthill–McKee) and solver quality.
//!
//! The paper's discussion ties scaling to mesh regularity; ordering is the
//! algebraic face of the same coin — RCM concentrates the stiffness matrix
//! near the diagonal, which strengthens ILU(0) blocks and improves memory
//! locality. This study measures bandwidth and iteration counts with the
//! mesher's native ordering vs RCM.

use brainshift_bench::problem_with_equations;
use brainshift_fem::{apply_dirichlet, assemble_stiffness, MaterialTable};
use brainshift_sparse::ordering::{permute_vec, unpermute_vec};
use brainshift_sparse::{
    bandwidth, gmres, permute_symmetric, reverse_cuthill_mckee, BlockJacobiPrecond, BlockSolve,
    SolverOptions,
};
use brainshift_obs::Stopwatch;

fn main() {
    println!("## Ablation — native vs RCM node ordering\n");
    let p = problem_with_equations(30_000);
    let k = assemble_stiffness(&p.mesh, &MaterialTable::homogeneous());
    let red = apply_dirichlet(&k, &vec![0.0; k.nrows()], &p.bcs).expect("valid BC set");
    let a = red.matrix;
    let rhs = red.rhs;
    println!("system: {} equations, {} nnz\n", a.nrows(), a.nnz());

    let opts = SolverOptions { tolerance: 1e-8, max_iterations: 5000, ..Default::default() };
    println!(
        "{:<10} {:>10} {:>8} {:>12} {:>14}",
        "ordering", "bandwidth", "iters", "host solve", "x agreement"
    );

    // Native ordering.
    let t0 = Stopwatch::wall();
    let pc = BlockJacobiPrecond::new(&a, 8, BlockSolve::Ilu0).expect("singular diagonal block");
    let mut x_native = vec![0.0; a.nrows()];
    let s = gmres(&a, &pc, &rhs, &mut x_native, &opts).expect("dims agree");
    assert!(s.converged());
    println!(
        "{:<10} {:>10} {:>8} {:>10.2} s {:>14}",
        "native",
        bandwidth(&a),
        s.iterations,
        t0.elapsed_s(),
        "reference"
    );

    // RCM.
    let perm = reverse_cuthill_mckee(&a).expect("square matrix");
    let ap = permute_symmetric(&a, &perm).expect("valid permutation");
    let rhs_p = permute_vec(&rhs, &perm);
    let t0 = Stopwatch::wall();
    let pc = BlockJacobiPrecond::new(&ap, 8, BlockSolve::Ilu0).expect("singular diagonal block");
    let mut xp = vec![0.0; ap.nrows()];
    let s = gmres(&ap, &pc, &rhs_p, &mut xp, &opts).expect("dims agree");
    assert!(s.converged());
    let elapsed = t0.elapsed_s();
    let x_rcm = unpermute_vec(&xp, &perm);
    let diff: f64 = x_rcm
        .iter()
        .zip(&x_native)
        .map(|(a1, b1)| (a1 - b1).powi(2))
        .sum::<f64>()
        .sqrt()
        / x_native.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
    println!(
        "{:<10} {:>10} {:>8} {:>10.2} s {:>11.2e} rel",
        "rcm",
        bandwidth(&ap),
        s.iterations,
        elapsed,
        diff
    );
    println!("\n(RCM shrinks the bandwidth; whether iterations improve depends on");
    println!(" how far the mesher's discovery order already is from banded — the");
    println!(" solution itself is ordering-invariant, as the agreement shows.)");
}
