//! Ablation: Dirichlet handling — substitution (the paper) vs penalty.
//!
//! The paper applies surface displacements by "substituting known values
//! for equations in the original system, reducing the number of unknowns"
//! and notes this *creates solver load imbalance*. The alternative —
//! a penalty method that keeps every equation — preserves balance but
//! worsens conditioning. This ablation measures both effects.

use brainshift_bench::problem_with_equations;
use brainshift_fem::{apply_dirichlet, assemble_stiffness, MaterialTable};
use brainshift_sparse::partition::even_offsets;
use brainshift_sparse::{gmres, BlockJacobiPrecond, BlockSolve, CsrMatrix, SolverOptions, TripletBuilder};

/// Build the penalty system: `K + β diag(constrained)` with rhs `β u_c`.
fn penalty_system(k: &CsrMatrix, dof_values: &std::collections::HashMap<usize, f64>, beta: f64) -> (CsrMatrix, Vec<f64>) {
    let n = k.nrows();
    let mut b = TripletBuilder::with_capacity(n, n, k.nnz() + dof_values.len());
    for i in 0..n {
        let (cols, vals) = k.row(i);
        for (&c, &v) in cols.iter().zip(vals) {
            b.add(i, c, v);
        }
    }
    let mut rhs = vec![0.0; n];
    for (&dof, &val) in dof_values {
        b.add(dof, dof, beta);
        rhs[dof] = beta * val;
    }
    (b.build(), rhs)
}

fn main() {
    println!("## Ablation — Dirichlet substitution vs penalty method\n");
    let p = problem_with_equations(30_000);
    let materials = MaterialTable::homogeneous();
    let k = assemble_stiffness(&p.mesh, &materials);
    let ndof = k.nrows();
    let opts = SolverOptions { tolerance: 1e-9, max_iterations: 5000, ..Default::default() };
    let blocks = 8;

    // --- Substitution (the paper). ---
    let red = apply_dirichlet(&k, &vec![0.0; ndof], &p.bcs).expect("valid BC set");
    let pc = BlockJacobiPrecond::new(&red.matrix, blocks, BlockSolve::Ilu0).expect("singular diagonal block");
    let mut x = vec![0.0; red.matrix.nrows()];
    let s_sub = gmres(&red.matrix, &pc, &red.rhs, &mut x, &opts).expect("dims agree");
    let sub_full = red.expand_solution(&x);
    // Free-DOF imbalance across contiguous ranks (the paper's complaint).
    let offsets = even_offsets(ndof, blocks);
    let counts = red.rank_dof_counts(&offsets);
    let frees: Vec<f64> = counts.iter().map(|c| c.0 as f64).collect();
    let max = frees.iter().cloned().fold(0.0, f64::max);
    let mean = frees.iter().sum::<f64>() / frees.len() as f64;
    println!("substitution: {} free of {} equations", red.matrix.nrows(), ndof);
    println!("  GMRES iterations: {} (converged: {})", s_sub.iterations, s_sub.converged());
    println!("  free-DOF imbalance across {blocks} ranks: {:.3} (max/mean)", max / mean);

    // --- Penalty method. ---
    let kmax = k.values().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
    for beta_factor in [1e4, 1e8] {
        let beta = kmax * beta_factor;
        let (kp, rhs) = penalty_system(&k, &p.bcs.dof_values(), beta);
        let pc = BlockJacobiPrecond::new(&kp, blocks, BlockSolve::Ilu0).expect("singular diagonal block");
        let mut xp = vec![0.0; ndof];
        let sp = gmres(&kp, &pc, &rhs, &mut xp, &opts).expect("dims agree");
        // Accuracy vs the substitution solution on free DOFs.
        let mut err: f64 = 0.0;
        let mut norm: f64 = 0.0;
        for i in 0..ndof {
            err += (xp[i] - sub_full[i]).powi(2);
            norm += sub_full[i].powi(2);
        }
        println!("\npenalty (beta = {beta_factor:.0e} * max|K|): full {} equations (balanced ranks)", ndof);
        println!("  GMRES iterations: {} (converged: {})", sp.iterations, sp.converged());
        println!("  relative difference vs substitution solution: {:.2e}", (err / norm.max(1e-300)).sqrt());
    }
    println!("\n(substitution is exact but removes unequal numbers of unknowns from");
    println!(" each rank's range — the imbalance the paper reports; penalty keeps");
    println!(" ranks balanced but its accuracy is capped by the finite beta.)");
}
