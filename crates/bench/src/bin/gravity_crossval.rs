//! Cross-validation: gravity physics vs image-driven recovery.
//!
//! The strongest end-to-end check in the repository: the ground-truth
//! deformation is produced by *physics* (tissue weight sagging into a
//! freed craniotomy patch — no displacement is prescribed anywhere), the
//! intraoperative scan is synthesized from it, and the paper's pipeline
//! must recover the deformation from the images alone. Nothing about the
//! ground truth's functional form is available to the pipeline.
//!
//! ```bash
//! cargo run --release -p brainshift-bench --bin gravity_crossval
//! ```

use brainshift_core::case::{generate_elastic_case, ElasticCaseOptions, GroundTruthDrive};
use brainshift_core::metrics::field_error;
use brainshift_core::pipeline::{run_pipeline, PipelineConfig};
use brainshift_imaging::phantom::{BrainShiftConfig, PhantomConfig};
use brainshift_imaging::volume::{Dims, Spacing};

fn main() {
    println!("## Cross-validation — gravity-driven truth, image-driven recovery\n");
    let cfg = PhantomConfig {
        dims: Dims::new(64, 64, 48),
        spacing: Spacing::iso(2.5),
        ..Default::default()
    };
    // peak_shift_mm is ignored by the gravity drive; only the axis is used.
    let shift = BrainShiftConfig { resect_tumor: false, ..Default::default() };
    let case = generate_elastic_case(
        &cfg,
        &shift,
        &ElasticCaseOptions {
            drive: GroundTruthDrive::GravityCraniotomy { opening_radius_mm: 45.0 },
            ..Default::default()
        },
    );
    println!(
        "gravity ground truth: {} equations, peak sag {:.2} mm, mean {:.3} mm",
        case.gt_equations,
        case.gt_forward.max_magnitude(),
        case.gt_forward.mean_magnitude()
    );

    let res = run_pipeline(
        &case.preop.intensity,
        &case.preop.labels,
        &case.intraop.intensity,
        &PipelineConfig { skip_rigid: true, ..Default::default() },
    ).expect("pipeline failed");
    println!(
        "pipeline: FEM {} equations, {} iterations, surface residual {:.2} mm",
        res.fem.total_equations, res.fem.stats.iterations, res.surface_residual
    );
    println!(
        "recovered: peak {:.2} mm, mean {:.3} mm",
        res.forward_field.max_magnitude(),
        res.forward_field.mean_magnitude()
    );
    for thr in [1.0f64, 2.0] {
        let fe = field_error(&res.forward_field, &case.gt_forward, thr);
        println!(
            "where truth > {thr:.0} mm ({} voxels): mean err {:.2} mm of {:.2} mm truth (relative {:.2})",
            fe.voxels, fe.mean_error_mm, fe.mean_truth_mm, fe.relative_error
        );
    }
    println!("\n(the pipeline never sees the gravity model — recovery comes from the");
    println!(" images alone. Error below the truth magnitude means the registration");
    println!(" machinery captures physics-generated deformation it was not fit to.)");
}
