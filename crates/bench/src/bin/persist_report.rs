//! Durability benchmark and end-to-end recovery gate.
//!
//! Three claims are measured and *asserted*, then written to
//! `bench_out/persist.json` (`brainshift.obs.v1`):
//!
//! 1. **Warm restore beats cold rebuild**: decoding a persisted
//!    [`SolverContext`] (stiffness CSR, Dirichlet structure, factored
//!    preconditioner, warm-start state) is strictly cheaper than
//!    rebuilding it from the prepared surgery — the point of snapshotting
//!    a shard instead of re-preparing it.
//! 2. **Crash recovery is byte-exact**: a scan sequence served across a
//!    `snapshot_shard` → `restore_shard` boundary produces bitwise
//!    identical displacement fields and an event-log script tail
//!    byte-identical to an uninterrupted run's.
//! 3. **Replay is deterministic**: a persisted submission log re-executed
//!    through the logical-clock simulator reproduces its recorded event
//!    script byte-for-byte.
//!
//! ```bash
//! cargo run --release -p brainshift-bench --bin persist_report
//! ```

use brainshift_conformance::{quantized_field_hash, GOLDEN_QUANTUM_MM};
use brainshift_core::{generate_scan_sequence, PipelineConfig, PreparedSurgery, ScanSequence};
use brainshift_fem::SolverContext;
use brainshift_imaging::phantom::{BrainShiftConfig, PhantomConfig};
use brainshift_imaging::volume::{Dims, Spacing};
use brainshift_obs::{BenchReport, JsonValue};
use brainshift_persist::{from_bytes, to_bytes};
use brainshift_service::{
    RecordedRun, ScanJob, SchedulerPolicy, Service, ServiceConfig, SimConfig, SimJob,
};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Median of `n` timed runs of `f`, in µs.
fn median_us<T>(n: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let t0 = Instant::now();
            std::hint::black_box(f());
            t0.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn service_cfg() -> ServiceConfig {
    ServiceConfig { workers: 1, queue_capacity: 16, ..Default::default() }
}

/// Serve scans `[from, to)` of the sequence sequentially on `service`,
/// appending each field's quantized hash (and raw data clone) to `out`.
fn serve(
    service: &Service,
    session: u64,
    seq: &ScanSequence,
    from: usize,
    to: usize,
    out: &mut Vec<(u64, bool)>,
) {
    for i in from..to {
        let ticket = service
            .submit(ScanJob {
                session,
                intensity: seq.scans[i].intensity.clone(),
                priority: 0,
                deadline: Duration::from_secs(120),
            })
            .expect("submit scan");
        let outcome = ticket.wait().expect("scan outcome");
        out.push((quantized_field_hash(outcome.field.data(), GOLDEN_QUANTUM_MM), outcome.warm));
    }
}

fn main() {
    println!("preparing phantom surgery...");
    let seq = generate_scan_sequence(
        &PhantomConfig {
            dims: Dims::new(32, 32, 24),
            spacing: Spacing::iso(4.5),
            ..Default::default()
        },
        &BrainShiftConfig::default(),
        6,
        6,
    );
    let cfg = PipelineConfig { skip_rigid: true, ..Default::default() };
    let prepared = Arc::new(PreparedSurgery::new(&seq.reference.labels, cfg).expect("prepare"));

    // ---- 1. Warm restore vs cold rebuild. ----
    let ctx = prepared.build_solver_context().expect("probe context");
    let ctx_bytes = to_bytes(&ctx).expect("encode context");
    let cold_build_us = median_us(3, || prepared.build_solver_context().expect("cold build"));
    let restore_us = median_us(3, || from_bytes::<SolverContext>(&ctx_bytes).expect("decode"));
    let ratio = restore_us / cold_build_us;
    println!(
        "solver context: cold build {cold_build_us:.0} µs, warm restore {restore_us:.0} µs \
         ({ratio:.3}×, snapshot {} KiB)",
        ctx_bytes.len() / 1024
    );
    assert!(
        restore_us < cold_build_us,
        "warm restore ({restore_us:.0} µs) must be strictly cheaper than a cold rebuild \
         ({cold_build_us:.0} µs)"
    );
    // Canonical encoding: restoring and re-encoding reproduces the bytes.
    let restored: SolverContext = from_bytes(&ctx_bytes).expect("decode");
    assert_eq!(to_bytes(&restored).expect("re-encode"), ctx_bytes, "non-canonical context codec");

    // ---- 2. Crash recovery: snapshot mid-sequence, restore, finish. ----
    let n_scans = seq.scans.len();
    let cut = n_scans / 2;

    println!("uninterrupted run: {n_scans} scans on one shard...");
    let baseline = Service::start(service_cfg());
    let sid = baseline.open_session(Arc::clone(&prepared));
    let mut base_results = Vec::new();
    serve(&baseline, sid, &seq, 0, n_scans, &mut base_results);
    let base_script = baseline.script();
    baseline.shutdown();

    println!("interrupted run: {cut} scans, snapshot shard, restore, {} scans...", n_scans - cut);
    let shard_a = Service::start(service_cfg());
    let sid_a = shard_a.open_session(Arc::clone(&prepared));
    assert_eq!(sid_a, sid, "session ids must match across runs");
    let mut rec_results = Vec::new();
    serve(&shard_a, sid_a, &seq, 0, cut, &mut rec_results);
    let script_a = shard_a.script();
    let snapshot = shard_a.snapshot_shard().expect("snapshot shard");
    shard_a.shutdown();

    let mut prep_map = HashMap::new();
    prep_map.insert(sid_a, Arc::clone(&prepared));
    let t0 = Instant::now();
    let shard_b =
        Service::restore_shard(service_cfg(), &snapshot, &prep_map).expect("restore shard");
    let shard_restore_us = t0.elapsed().as_secs_f64() * 1e6;
    serve(&shard_b, sid_a, &seq, cut, n_scans, &mut rec_results);
    let script_b = shard_b.script();
    shard_b.shutdown();

    let fields_match = base_results.iter().map(|r| r.0).eq(rec_results.iter().map(|r| r.0));
    let warm_match = base_results.iter().map(|r| r.1).eq(rec_results.iter().map(|r| r.1));
    let script_match = format!("{script_a}{script_b}") == base_script;
    let recovery_match = fields_match && warm_match && script_match;
    println!(
        "recovery: fields {} | warm flags {} | script tail {} | shard snapshot {} KiB, \
         restore {shard_restore_us:.0} µs",
        if fields_match { "bitwise equal" } else { "DIVERGED" },
        if warm_match { "equal" } else { "DIVERGED" },
        if script_match { "byte-identical" } else { "DIVERGED" },
        snapshot.len() / 1024,
    );
    assert!(fields_match, "post-restore displacement fields diverged from the uninterrupted run");
    assert!(warm_match, "warm/cold start pattern diverged (context not restored warm?)");
    assert!(
        script_match,
        "event-log script diverged:\n--- uninterrupted ---\n{base_script}\n--- recovered ---\n{script_a}{script_b}"
    );
    // The first post-restore scan must have been served from the
    // *restored* warm context — the migration kept the state, not just
    // the session table.
    assert!(rec_results[cut].1, "first post-restore scan ran cold; warm context was lost");

    // ---- 3. Deterministic replay from a persisted submission log. ----
    let jobs: Vec<SimJob> = (0..200u64)
        .map(|i| SimJob {
            session: 1 + i % 7,
            submit_us: i * 400,
            deadline_us: i * 400 + 25_000,
            priority: (i % 3) as u8,
            cost_us: 2_000 + 350 * (i % 5),
            ctx_bytes: 1 << 18,
        })
        .collect();
    let sim_cfg =
        SimConfig { workers: 3, policy: SchedulerPolicy::default(), budget_bytes: 4 << 18 };
    let run = RecordedRun::record(&sim_cfg, &jobs);
    let log_bytes = run.to_bytes().expect("serialize recorded run");
    let replayed = RecordedRun::from_bytes(&log_bytes).expect("deserialize recorded run");
    let outcome = replayed.replay();
    println!(
        "replay: {} jobs, log {} KiB, script {}",
        jobs.len(),
        log_bytes.len() / 1024,
        if outcome.matches { "byte-identical" } else { "DIVERGED" }
    );
    assert!(outcome.matches, "replayed event script diverged from the recorded run");

    // ---- Shared report schema (brainshift.obs.v1). ----
    let mut report = BenchReport::new("persist");
    report.params = JsonValue::obj()
        .with("phantom_dims", "32x32x24".into())
        .with("scans", n_scans.into())
        .with("snapshot_at_scan", cut.into())
        .with("replay_jobs", jobs.len().into());
    report.extra = JsonValue::obj()
        .with("context_snapshot_bytes", ctx_bytes.len().into())
        .with("shard_snapshot_bytes", snapshot.len().into())
        .with("replay_log_bytes", log_bytes.len().into())
        .with("cold_build_us", cold_build_us.into())
        .with("restore_us", restore_us.into())
        .with("restore_over_cold_ratio", ratio.into())
        .with("shard_restore_us", shard_restore_us.into())
        .with("recovery_match", recovery_match.into())
        .with("replay_match", outcome.matches.into());
    let path = PathBuf::from("bench_out").join("persist.json");
    report.write(&path).expect("write persist.json");
    println!("written: {}", path.display());
}
