//! Measure the per-scan *hot path* — tissue classification (SoA kd-tree
//! k-NN, optionally incremental against the previous scan) + active
//! surface + warm FEM solve + resample — on the intraoperative phantom
//! sequence, and write the numbers to `bench_out/segment_hot.json` in the
//! shared `brainshift.obs.v1` report schema.
//!
//! Two passes over the same sequence:
//! * `exact` — `incremental_threshold = 0`: bitwise identical to a full
//!   re-classification of every scan (proven in-process below).
//! * `incremental` — a small positive threshold: voxels whose weighted
//!   features moved less than the threshold keep their cached label.
//!
//! ```bash
//! cargo run --release --bin segment_hot_json -- [scans] [threshold]
//! ```

use brainshift_core::pipeline::PipelineConfig;
use brainshift_core::sequence::{generate_scan_sequence, ScanSequence};
use brainshift_core::surgery::{PreparedSurgery, ScanRegistration};
use brainshift_imaging::phantom::{BrainShiftConfig, PhantomConfig};
use brainshift_imaging::volume::{Dims, Spacing};
use brainshift_obs::{BenchReport, JsonValue, Registry, Stopwatch};
use brainshift_segment::classify::build_feature_stack;
use brainshift_segment::{
    classify_volume, classify_volume_incremental, IncrementalCache, KdTree, PrototypeModel,
};
use std::path::PathBuf;

/// One registered scan's numbers, flattened for the report.
struct Row {
    reg: ScanRegistration,
}

impl Row {
    fn total_s(&self) -> f64 {
        self.reg.timings.total_s()
    }

    fn to_json(&self, i: usize) -> JsonValue {
        let t = &self.reg.timings;
        JsonValue::obj()
            .with("scan", i.into())
            .with("classification_s", t.classification_s.into())
            .with("feature_s", t.feature_s.into())
            .with("knn_build_s", t.knn_build_s.into())
            .with("knn_query_s", t.knn_query_s.into())
            .with("morphology_s", t.morphology_s.into())
            .with("surface_s", t.surface_s.into())
            .with("solve_s", t.solve_s.into())
            .with("resample_s", t.resample_s.into())
            .with("total_s", self.total_s().into())
            .with("reclassified_voxels", self.reg.reclassified_voxels.into())
            .with("total_voxels", self.reg.total_voxels.into())
            .with("used_incremental", self.reg.used_incremental.into())
            .with("knn_leaf_visits", JsonValue::from(self.reg.knn_leaf_visits as usize))
    }
}

/// Register every scan of the sequence with the given incremental
/// threshold; returns (prepare_s, context_setup_s, per-scan rows).
fn run_pass(seq: &ScanSequence, threshold: f32) -> (f64, f64, Vec<Row>) {
    let mut cfg = PipelineConfig { skip_rigid: true, ..Default::default() };
    cfg.segment.incremental_threshold = threshold;
    let sw = Stopwatch::wall();
    let prepared = PreparedSurgery::new(&seq.reference.labels, cfg).expect("prepare failed");
    let prepare_s = sw.elapsed_s();
    let sw = Stopwatch::wall();
    let mut ctx = prepared.build_solver_context().expect("context build failed");
    let setup_s = sw.elapsed_s();
    let mut rows = Vec::with_capacity(seq.scans.len());
    let mut last = None;
    for scan in &seq.scans {
        let reg = prepared
            .register_scan(&mut ctx, &scan.intensity, last.as_ref(), None, None)
            .expect("register failed");
        last = Some(reg.field.clone());
        rows.push(Row { reg });
    }
    (prepare_s, setup_s, rows)
}

/// Prove the incremental invariant on this very sequence: at threshold 0,
/// carrying the cache across scans is bitwise identical to a full
/// classification of every scan. Returns the number of scans checked.
fn prove_exactness(seq: &ScanSequence) -> usize {
    let cfg = PipelineConfig::default().segment;
    let mut classes = seq.reference.labels.labels();
    classes.retain(|&c| c != brainshift_imaging::labels::RESECTION);
    let model =
        PrototypeModel::sample(&seq.reference.labels, &classes, cfg.per_class, cfg.seed);
    let mut cache: Option<IncrementalCache> = None;
    for (i, scan) in seq.scans.iter().enumerate() {
        let fs = build_feature_stack(&scan.intensity, &seq.reference.labels, &classes, &cfg);
        let tree = KdTree::build(model.extract(&fs)).expect("phantom prototypes are valid");
        let full = classify_volume(&fs, &tree, cfg.k);
        let inc = classify_volume_incremental(&fs, &tree, cfg.k, 0.0, cache.take());
        assert_eq!(
            inc.labels.data(),
            full.data(),
            "scan {i}: incremental(0) diverged from full classification"
        );
        cache = Some(inc.cache);
    }
    seq.scans.len()
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(f64::total_cmp);
    if v.is_empty() { 0.0 } else { v[v.len() / 2] }
}

fn print_rows(name: &str, rows: &[Row]) {
    println!("\n[{name}]");
    println!(
        "{:<5} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11} {:>6}",
        "scan", "class ms", "knn ms", "surf ms", "solve ms", "resmp ms", "total ms", "reclass", "inc"
    );
    for (i, r) in rows.iter().enumerate() {
        let t = &r.reg.timings;
        println!(
            "{:<5} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>5}/{:<5} {:>6}",
            i,
            t.classification_s * 1e3,
            t.knn_query_s * 1e3,
            t.surface_s * 1e3,
            t.solve_s * 1e3,
            t.resample_s * 1e3,
            r.total_s() * 1e3,
            r.reg.reclassified_voxels,
            r.reg.total_voxels,
            if r.reg.used_incremental { "yes" } else { "no" }
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_scans: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8).max(2);
    let threshold: f32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2.0);

    // The PR-5 baseline scale: 32×32×24 @ 4.5 mm, progressive shift, no
    // resection (every scan reuses the same tissue classes).
    let dims = Dims::new(32, 32, 24);
    let seq = generate_scan_sequence(
        &PhantomConfig { dims, spacing: Spacing::iso(4.5), ..Default::default() },
        &BrainShiftConfig { peak_shift_mm: 8.0, ..Default::default() },
        n_scans,
        n_scans,
    );
    println!(
        "phantom sequence: {}×{}×{} @ 4.5 mm, {} scans; incremental threshold {}",
        dims.nx, dims.ny, dims.nz, n_scans, threshold
    );

    let checked = prove_exactness(&seq);
    println!("exactness: incremental(0) bitwise == full on all {checked} scans");

    let metrics = Registry::with_wall_clock();
    let (exact_prepare_s, exact_setup_s, exact) = run_pass(&seq, 0.0);
    let (_, _, incr) = run_pass(&seq, threshold);

    print_rows("exact (threshold 0)", &exact);
    print_rows(&format!("incremental (threshold {threshold})"), &incr);

    // Warm scans = everything after the first (the first scan pays the
    // cold classification cache miss; the solver context is prebuilt).
    let warm_totals = |rows: &[Row]| rows[1..].iter().map(Row::total_s).collect::<Vec<_>>();
    let exact_p50 = median(warm_totals(&exact));
    let incr_p50 = median(warm_totals(&incr));
    let exact_class_p50 =
        median(exact[1..].iter().map(|r| r.reg.timings.classification_s).collect());
    let exact_surface_p50 = median(exact[1..].iter().map(|r| r.reg.timings.surface_s).collect());
    println!(
        "\nonce per surgery: prepare {:.1} ms, solver context {:.1} ms",
        exact_prepare_s * 1e3,
        exact_setup_s * 1e3
    );
    println!(
        "warm p50: exact {:.2} ms, incremental {:.2} ms (classification {:.2} ms, surface {:.2} ms)",
        exact_p50 * 1e3,
        incr_p50 * 1e3,
        exact_class_p50 * 1e3,
        exact_surface_p50 * 1e3
    );

    // The thresholded pass must actually skip work on the static voxels.
    let reclassified: usize = incr[1..].iter().map(|r| r.reg.reclassified_voxels).sum();
    let total: usize = incr[1..].iter().map(|r| r.reg.total_voxels).sum();
    assert!(
        reclassified < total,
        "thresholded pass re-classified every voxel ({reclassified}/{total})"
    );
    println!(
        "incremental pass re-classified {reclassified}/{total} warm voxels ({:.1}%)",
        100.0 * reclassified as f64 / total as f64
    );

    for r in &exact[1..] {
        metrics.record_span_s("warm/scan_total", r.total_s());
        metrics.record_span_s("warm/classification", r.reg.timings.classification_s);
        metrics.record_span_s("warm/surface", r.reg.timings.surface_s);
    }
    metrics.counter_add("scans", n_scans as u64);
    metrics.counter_add("exactness_scans_checked", checked as u64);
    metrics.counter_add("incremental_reclassified_voxels", reclassified as u64);
    metrics.counter_add("incremental_total_voxels", total as u64);
    metrics.gauge_set("warm_total_p50_ms", exact_p50 * 1e3);
    metrics.gauge_set("warm_total_p50_incremental_ms", incr_p50 * 1e3);

    let rows_json = |rows: &[Row]| {
        JsonValue::Arr(rows.iter().enumerate().map(|(i, r)| r.to_json(i)).collect())
    };
    let mut report = BenchReport::new("segment_hot");
    report.params = JsonValue::obj()
        .with("dims", format!("{}x{}x{}", dims.nx, dims.ny, dims.nz).into())
        .with("spacing_mm", 4.5.into())
        .with("scans", n_scans.into())
        .with("incremental_threshold", f64::from(threshold).into());
    report.metrics = metrics.snapshot();
    report.extra = JsonValue::obj()
        .with("prepare_s", exact_prepare_s.into())
        .with("context_setup_s", exact_setup_s.into())
        .with("exact_rows", rows_json(&exact))
        .with("incremental_rows", rows_json(&incr))
        .with("warm_total_p50_s", exact_p50.into())
        .with("warm_total_p50_incremental_s", incr_p50.into())
        .with("warm_classification_p50_s", exact_class_p50.into())
        .with("warm_surface_p50_s", exact_surface_p50.into());

    let path = PathBuf::from("bench_out").join("segment_hot.json");
    report.write(&path).expect("write segment_hot.json");
    println!("\nwritten: {}", path.display());
}
