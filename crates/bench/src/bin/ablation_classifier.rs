//! Ablation: k-NN (the paper's choice) vs Gaussian maximum likelihood for
//! intraoperative tissue classification.
//!
//! Both classifiers train on the identical prototype-voxel model and
//! classify the same multichannel feature stack; we score them against
//! the phantom's ground-truth segmentation per tissue class, plus timing.

use brainshift_core::case::{generate_elastic_case, ElasticCaseOptions};
use brainshift_imaging::phantom::{BrainShiftConfig, PhantomConfig};
use brainshift_imaging::volume::{Dims, Spacing};
use brainshift_imaging::labels;
use brainshift_segment::classify::{build_feature_stack, classify_volume};
use brainshift_segment::{dice, GaussianClassifier, KdTree, PrototypeModel, SegmentConfig};
use brainshift_obs::Stopwatch;

fn main() {
    println!("## Ablation — k-NN vs Gaussian ML classification\n");
    let cfg = PhantomConfig {
        dims: Dims::new(64, 64, 48),
        spacing: Spacing::iso(2.5),
        ..Default::default()
    };
    let shift = BrainShiftConfig { peak_shift_mm: 8.0, resect_tumor: false, ..Default::default() };
    let case = generate_elastic_case(&cfg, &shift, &ElasticCaseOptions::default());
    let seg_cfg = SegmentConfig::default();
    let mut classes = case.preop.labels.labels();
    classes.retain(|&c| c != labels::RESECTION);
    let fs = build_feature_stack(&case.intraop.intensity, &case.preop.labels, &classes, &seg_cfg);
    let model = PrototypeModel::sample(&case.preop.labels, &classes, seg_cfg.per_class, seg_cfg.seed);
    let protos = model.extract(&fs);
    println!(
        "training: {} prototypes over {} classes, {} feature channels\n",
        protos.len(),
        model.classes().len(),
        fs.num_channels()
    );

    let gt = &case.intraop.labels;
    let score = |seg: &brainshift_imaging::Volume<u8>| -> (f64, Vec<(u8, f64)>) {
        let agree = gt.data().iter().zip(seg.data()).filter(|(a, b)| a == b).count() as f64
            / gt.data().len() as f64;
        let per_class: Vec<(u8, f64)> = [labels::BRAIN, labels::VENTRICLE, labels::CSF, labels::TUMOR]
            .iter()
            .map(|&l| (l, dice(&gt.map(|&x| x == l), &seg.map(|&x| x == l))))
            .collect();
        (agree, per_class)
    };

    // k-NN.
    let t0 = Stopwatch::wall();
    let tree = KdTree::build(protos.clone()).expect("phantom prototypes are valid");
    let seg_knn = classify_volume(&fs, &tree, seg_cfg.k);
    let t_knn = t0.elapsed_s();
    // Gaussian ML.
    let t0 = Stopwatch::wall();
    let gauss = GaussianClassifier::fit(&protos);
    let seg_gauss = gauss.classify_volume(&fs);
    let t_gauss = t0.elapsed_s();

    println!("{:<12} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9}", "classifier", "agreement", "brain", "ventricle", "csf", "tumor", "time(s)");
    for (name, seg, t) in [("k-NN (paper)", &seg_knn, t_knn), ("gaussian-ml", &seg_gauss, t_gauss)] {
        let (agree, per_class) = score(seg);
        print!("{:<12} {:>10.3}", name, agree);
        for (_, d) in &per_class {
            print!(" {:>9.3}", d);
        }
        println!(" {:>9.2}", t);
    }
    println!("\n(mixed result: k-NN wins on the large textured classes (brain, CSF)");
    println!(" whose feature distributions are multi-modal; the Gaussian model does");
    println!(" better on small compact classes (ventricle, tumor) where k-NN's");
    println!(" majority vote is swamped by neighboring-class prototypes. The paper's");
    println!(" k-NN choice buys distribution-free robustness for interactively chosen");
    println!(" prototypes — not uniform superiority.)");
}
