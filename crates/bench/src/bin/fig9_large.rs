//! Figure 9: the 253 308-equation system (the finer mesh an improved
//! heterogeneous model would need) on the Ultra HPC 6000 — demonstrating
//! that a system 2.5× larger still solves in a clinically compatible time.

use brainshift_bench::{plot_log_series, print_timing_header, print_timing_row, problem_with_equations};
use brainshift_cluster::MachineModel;
use brainshift_fem::{simulate_assemble_solve, MaterialTable, SimOptions, SimProblem};

fn main() {
    let p = problem_with_equations(253_308);
    let materials = MaterialTable::homogeneous();
    let k = SimProblem::new(&p.mesh, &materials, &p.bcs);
    print_timing_header(
        "Figure 9 — 253k equations on Ultra HPC 6000",
        p.mesh.num_equations(),
        MachineModel::ultra_hpc_6000().name,
    );
    let mut asm_series = Vec::new();
    let mut solve_series = Vec::new();
    for cpus in 1..=20 {
        let (t, _) = simulate_assemble_solve(
            &p.mesh,
            &materials,
            &p.bcs,
            MachineModel::ultra_hpc_6000(),
            cpus,
            &SimOptions::default(),
            Some(&k),
        );
        print_timing_row(&t);
        asm_series.push((cpus, t.assemble_s));
        solve_series.push((cpus, t.solve_s));
    }
    plot_log_series(&[("assemble", asm_series), ("solve", solve_series)], 60);
}
