//! Figure 7: assembling, solving, and init+assemble+solve time for the
//! 77 511-equation brain-deformation system on the 16-CPU Deep Flow
//! cluster (Fast Ethernet), versus CPU count.

use brainshift_bench::{plot_log_series, print_timing_header, print_timing_row, problem_with_equations};
use brainshift_cluster::MachineModel;
use brainshift_fem::{simulate_assemble_solve, MaterialTable, SimOptions, SimProblem};

fn main() {
    let target = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(77_511);
    let p = problem_with_equations(target);
    let materials = MaterialTable::homogeneous();
    let k = SimProblem::new(&p.mesh, &materials, &p.bcs);
    print_timing_header(
        "Figure 7 — Deep Flow cluster",
        p.mesh.num_equations(),
        MachineModel::deep_flow().name,
    );
    let mut ten_second_cpus = None;
    let mut asm_series = Vec::new();
    let mut solve_series = Vec::new();
    for cpus in 1..=16 {
        let (t, _) = simulate_assemble_solve(
            &p.mesh,
            &materials,
            &p.bcs,
            MachineModel::deep_flow(),
            cpus,
            &SimOptions::default(),
            Some(&k),
        );
        print_timing_row(&t);
        asm_series.push((cpus, t.assemble_s));
        solve_series.push((cpus, t.solve_s));
        if t.total_s() < 10.0 && ten_second_cpus.is_none() {
            ten_second_cpus = Some(cpus);
        }
    }
    plot_log_series(&[("assemble", asm_series), ("solve", solve_series)], 60);
    match ten_second_cpus {
        Some(c) => println!("\n=> <10 s total from {c} CPUs (paper: \"in less than ten seconds\")"),
        None => println!("\n=> total time never dropped below 10 s"),
    }
}
