//! Figure 6: the timeline of image processing for image-guided
//! neurosurgery — which actions run before surgery and which during, and
//! how long the intraoperative chain takes.
//!
//! Two views are printed: host-measured stage times for the full pipeline
//! on the phantom case, and the modeled operating-room timings at the
//! paper's scale (77 511 equations on 16 Deep Flow CPUs).

use brainshift_core::case::{generate_elastic_case, ElasticCaseOptions};
use brainshift_core::pipeline::{run_pipeline, PipelineConfig};
use brainshift_core::timeline::Timeline;
use brainshift_bench::problem_with_equations;
use brainshift_cluster::MachineModel;
use brainshift_fem::{simulate_assemble_solve, MaterialTable, SimOptions};
use brainshift_imaging::phantom::{BrainShiftConfig, PhantomConfig};
use brainshift_imaging::volume::{Dims, Spacing};

fn main() {
    println!("## Figure 6 — intraoperative processing timeline\n");

    // ---- Host-measured pipeline stages on the phantom case. ----
    let cfg = PhantomConfig {
        dims: Dims::new(64, 64, 48),
        spacing: Spacing::iso(2.5),
        ..Default::default()
    };
    let case = generate_elastic_case(
        &cfg,
        &BrainShiftConfig::default(),
        &ElasticCaseOptions::default(),
    );
    let res = run_pipeline(
        &case.preop.intensity,
        &case.preop.labels,
        &case.intraop.intensity,
        &PipelineConfig { skip_rigid: true, ..Default::default() },
    ).expect("pipeline failed");
    let mut tl = Timeline::new();
    // Preoperative actions happen before the OR (long-running is fine).
    tl.record("preoperative MRI", 1200.0, false);
    tl.record("preoperative segmentation", 3600.0, false);
    for s in res.timeline.stages() {
        tl.record(s.name, s.seconds, s.intraoperative);
    }
    println!("host-measured pipeline on the phantom case ({}x{}x{} voxels):\n", cfg.dims.nx, cfg.dims.ny, cfg.dims.nz);
    println!("{}", tl.render());

    // The same run broken down in the paper's per-stage vocabulary
    // (classifier / mesher / assembly / reduction / preconditioner /
    // GMRES / resample) — the host-measured counterpart of the "< 10 s"
    // budget table.
    println!("{}", res.stage_timings.render());

    // ---- Modeled OR timings at the paper's scale. ----
    println!("modeled intraoperative biomechanical simulation at paper scale:");
    let p = problem_with_equations(77_511);
    let (t, _) = simulate_assemble_solve(
        &p.mesh,
        &MaterialTable::homogeneous(),
        &p.bcs,
        MachineModel::deep_flow(),
        16,
        &SimOptions::default(),
        None,
    );
    println!("  {} equations on 16 CPUs ({}):", t.total_equations, t.machine);
    println!("    init      {:>7.2} s  (overlappable with earlier image processing)", t.init_s);
    println!("    assemble  {:>7.2} s", t.assemble_s);
    println!("    solve     {:>7.2} s  ({} GMRES iterations)", t.solve_s, t.iterations);
    println!("    resample  {:>7.2} s  (paper: ~0.5 s)", t.resample_s);
    println!("    TOTAL     {:>7.2} s  (paper: \"in less than ten seconds\")", t.total_s());
}
