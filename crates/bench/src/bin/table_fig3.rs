//! Figure 3 (table): hardware specifications of the benchmark machines.
//!
//! The paper's Figure 3 tabulates the Deep Flow workstation; we print all
//! three machine models with the parameters our simulated cluster uses.

use brainshift_cluster::MachineModel;

fn main() {
    println!("## Figure 3 — machine models used by the simulated cluster\n");
    for m in [
        MachineModel::deep_flow(),
        MachineModel::ultra_hpc_6000(),
        MachineModel::ultra_80_pair(),
    ] {
        println!("{}\n", m.spec_table());
    }
    println!("(Paper's original Deep Flow node: Compaq Alpha 21164A ev56 533MHz,");
    println!(" Microway Screamer LX, 768MB SDRAM, Seagate Medalist 2.1GB IDE,");
    println!(" DE500 10/100 Ethernet, RedHat Linux 6.1.)");
}
