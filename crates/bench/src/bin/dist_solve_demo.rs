//! Demo: the *executable* distributed solver.
//!
//! The timing figures price a modeled cluster; this binary actually runs
//! the distributed GMRES — rank threads, message passing, block-ILU(0)
//! preconditioning local to each rank — on the brain FEM system, and
//! verifies every rank count produces the same displacement field. This is
//! the MPI-style program the paper ran, minus the 1999 hardware.
//!
//! ```bash
//! cargo run --release -p brainshift-bench --bin dist_solve_demo [equations]
//! ```

use brainshift_bench::problem_with_equations;
use brainshift_cluster::{distributed_gmres, run_ranks, LocalSystem};
use brainshift_fem::{apply_dirichlet, assemble_stiffness, MaterialTable};
use brainshift_sparse::partition::even_offsets;
use brainshift_sparse::SolverOptions;
use brainshift_obs::Stopwatch;

fn main() {
    let equations: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    println!("## distributed GMRES demo (real rank threads + message passing)\n");
    let p = problem_with_equations(equations);
    let k = assemble_stiffness(&p.mesh, &MaterialTable::homogeneous());
    let red = apply_dirichlet(&k, &vec![0.0; k.nrows()], &p.bcs).expect("valid BC set");
    let n = red.matrix.nrows();
    println!("system: {} equations, {} free, {} nnz", k.nrows(), n, red.matrix.nnz());
    let opts = SolverOptions { tolerance: 1e-6, max_iterations: 5000, ..Default::default() };

    let mut reference: Option<Vec<f64>> = None;
    println!(
        "\n{:>6} {:>12} {:>8} {:>12} {:>16}",
        "ranks", "rows/rank", "iters", "host time", "vs 1-rank result"
    );
    for ranks in [1usize, 2, 4, 8] {
        let offsets = even_offsets(n, ranks);
        let t0 = Stopwatch::wall();
        let results = run_ranks(ranks, |comm| {
            let r = comm.rank();
            let sys = LocalSystem::from_global(&red.matrix, offsets[r], offsets[r + 1]).expect("valid row slice");
            distributed_gmres(comm, &sys, &red.rhs[offsets[r]..offsets[r + 1]], &opts)
        });
        let elapsed = t0.elapsed_s();
        let x: Vec<f64> = results.iter().flat_map(|(xl, _)| xl.clone()).collect();
        let stats = &results[0].1;
        let agreement = match &reference {
            None => {
                reference = Some(x);
                "reference".to_string()
            }
            Some(r) => {
                let num: f64 = x.iter().zip(r).map(|(a, b)| (a - b).powi(2)).sum::<f64>().sqrt();
                let den: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt();
                format!("{:.2e} rel diff", num / den.max(1e-300))
            }
        };
        println!(
            "{:>6} {:>12} {:>8} {:>10.2} s {:>16}",
            ranks,
            n / ranks,
            stats.iterations,
            elapsed,
            agreement
        );
        assert!(stats.converged(), "rank count {ranks} failed to converge");
    }
    println!("\n(iterations grow with rank count — each rank's ILU(0) block shrinks,");
    println!(" the same effect the paper's Figure 7 solve curve shows. On a 1-CPU");
    println!(" host the threads time-slice; on real cores this program scales.)");
}
