//! Ablation: active-surface force formulation.
//!
//! The paper derives its forces from image gradients with gray-level
//! priors; a distance potential over the segmented target is the more
//! robust modern choice. Both are implemented — this study compares them
//! head-to-head on the same case, and also sweeps the membrane tension
//! (the internal-force weight the paper's formulation leaves implicit).

use brainshift_core::case::{generate_elastic_case, ElasticCaseOptions};
use brainshift_core::metrics::field_error;
use brainshift_core::pipeline::{run_pipeline, PipelineConfig, SurfaceForceKind};
use brainshift_imaging::phantom::{BrainShiftConfig, PhantomConfig};
use brainshift_imaging::volume::{Dims, Spacing};
use brainshift_surface::ActiveSurfaceConfig;

fn main() {
    println!("## Ablation — active-surface force formulation and tension\n");
    let cfg = PhantomConfig {
        dims: Dims::new(64, 64, 48),
        spacing: Spacing::iso(2.5),
        ..Default::default()
    };
    let shift = BrainShiftConfig { peak_shift_mm: 8.0, resect_tumor: false, ..Default::default() };
    let case = generate_elastic_case(&cfg, &shift, &ElasticCaseOptions::default());

    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10}",
        "configuration", "mean err", "rel err", "peak rec", "surf res"
    );
    let run = |name: &str, pcfg: PipelineConfig| {
        let res = run_pipeline(&case.preop.intensity, &case.preop.labels, &case.intraop.intensity, &pcfg).expect("pipeline failed");
        let fe = field_error(&res.forward_field, &case.gt_forward, 2.0);
        println!(
            "{:<22} {:>7.2} mm {:>10.2} {:>7.2} mm {:>7.2} mm",
            name,
            fe.mean_error_mm,
            fe.relative_error,
            res.forward_field.max_magnitude(),
            res.surface_residual
        );
    };

    run(
        "distance potential",
        PipelineConfig { skip_rigid: true, surface_force: SurfaceForceKind::DistancePotential, ..Default::default() },
    );
    run(
        "image gradient (paper)",
        PipelineConfig { skip_rigid: true, surface_force: SurfaceForceKind::ImageGradient, ..Default::default() },
    );
    for tension in [0.02f64, 0.1, 0.4] {
        run(
            &format!("distance, tension {tension}"),
            PipelineConfig {
                skip_rigid: true,
                active_surface: ActiveSurfaceConfig { tension, ..Default::default() },
                ..Default::default()
            },
        );
    }
    println!("\n(the gradient formulation needs no segmentation of the target scan");
    println!(" but is noisier; higher tension smooths the surface at the cost of");
    println!(" undershooting the sunken cap — the trade-off behind our defaults.)");
}
