//! Ablation: node partitioning (the paper's future-work item).
//!
//! "Our parallel decomposition for the matrix assembly is based on sending
//! approximately equal numbers of mesh nodes to each CPU. However, in our
//! unstructured grid different mesh nodes can have different connectivity"
//! — and the discussion proposes accounting for the work distribution. We
//! compare the paper's even split against a connectivity-weighted split.

use brainshift_bench::problem_with_equations;
use brainshift_cluster::MachineModel;
use brainshift_fem::assembly::{assembly_flops_per_rank, node_work_weights};
use brainshift_sparse::partition::{even_offsets, imbalance, weighted_offsets};

fn main() {
    println!("## Ablation — even vs connectivity-weighted node partition\n");
    let p = problem_with_equations(77_511);
    let mesh = &p.mesh;
    println!("mesh: {} nodes, {} tets\n", mesh.num_nodes(), mesh.num_tets());
    let weights = node_work_weights(mesh);
    let machine = MachineModel::deep_flow();

    println!(
        "{:>5} {:>12} {:>12} {:>14} {:>14}",
        "cpus", "even imb", "weighted imb", "even asm(s)", "weighted asm(s)"
    );
    for cpus in [2usize, 4, 8, 12, 16] {
        let even = even_offsets(mesh.num_nodes(), cpus);
        let wtd = weighted_offsets(&weights, cpus);
        let imb_e = imbalance(&weights, &even);
        let imb_w = imbalance(&weights, &wtd);
        // Modeled assembly wall-clock = slowest rank.
        let t = |offsets: &[usize]| {
            assembly_flops_per_rank(mesh, offsets)
                .iter()
                .map(|&f| machine.cpu.seconds(f))
                .fold(0.0, f64::max)
        };
        println!(
            "{:>5} {:>12.4} {:>12.4} {:>14.3} {:>14.3}",
            cpus,
            imb_e,
            imb_w,
            t(&even),
            t(&wtd)
        );
    }
    println!("\n(weighted partitioning removes the assembly imbalance the paper");
    println!(" identified; the residual gap is communication, not load.)");
}
