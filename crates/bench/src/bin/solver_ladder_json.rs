//! Measure the solver speed ladder (DESIGN.md §16) on the phantom brain
//! mesh and write `bench_out/solver_ladder.json` in the shared
//! `brainshift.obs.v1` report schema: bandwidth before/after RCM,
//! iterations and cold/warm wall-time per ladder rung, f32 vs f64 solve
//! time, and SpMV effective bandwidth for the scalar vs 3×3-blocked
//! kernels.
//!
//! ```bash
//! cargo run --release -p brainshift-bench --bin solver_ladder_json -- [equations]
//! ```
//!
//! Two bandwidth baselines are reported. `native` is the lattice
//! mesher's scan-discovery order, which is already near-banded — for a
//! ball-shaped domain no ordering beats the equatorial cut by much, so
//! RCM's gain over it is modest. `arbitrary` is a seeded shuffle of the
//! node order, standing in for what an unstructured mesher (the paper's
//! real marching-cubes + Delaunay pipeline) admits; RCM's job is to make
//! bandwidth independent of that admission order, and that reduction is
//! the headline number.

use brainshift_bench::{cap_bcs, problem_with_equations};
use brainshift_fem::{
    apply_dirichlet, assemble_stiffness, DirichletStructure, ElementOperator, FemSolveConfig,
    MaterialTable, Reordering, SolverContext, SpmvKind,
};
use brainshift_imaging::phantom::BrainShiftConfig;
use brainshift_mesh::boundary_nodes;
use brainshift_obs::{BenchReport, JsonValue, Registry, Stopwatch};
use brainshift_sparse::{
    bandwidth, gmres, mean_row_bandwidth, permute_symmetric, refine, reverse_cuthill_mckee_blocks,
    BlockCsr, BlockJacobiPrecond, BlockSolve, CsrMatrix, JacobiPrecond, LinearOperator, Precision,
    Preconditioner, RefineOptions, SolverOptions,
};
use std::path::PathBuf;

/// Deterministic node-block shuffle (splitmix64): the "arbitrary
/// admission order" baseline. Keeps each node's 3 DOFs adjacent, as any
/// mesher would.
fn arbitrary_node_order(nodes: usize, seed: u64) -> Vec<usize> {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    };
    let mut order: Vec<usize> = (0..nodes).collect();
    for i in (1..nodes).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        order.swap(i, j);
    }
    let mut perm = Vec::with_capacity(3 * nodes);
    for &n in &order {
        perm.extend_from_slice(&[3 * n, 3 * n + 1, 3 * n + 2]);
    }
    perm
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let equations: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(24_000);

    println!("building a ~{equations}-equation brain FEM problem...");
    let p = problem_with_equations(equations);
    let materials = MaterialTable::homogeneous();
    let full_bcs = cap_bcs(&p.mesh, &p.model, &BrainShiftConfig::default());
    println!(
        "mesh: {} nodes, {} tets → {} equations\n",
        p.mesh.num_nodes(),
        p.mesh.num_tets(),
        p.mesh.num_equations()
    );
    let metrics = Registry::with_wall_clock();

    // ---- Bandwidth: arbitrary admission order vs native vs RCM. ----
    let k = assemble_stiffness(&p.mesh, &materials);
    let red = apply_dirichlet(&k, &vec![0.0; k.nrows()], &p.bcs).expect("valid BC set");
    let a: &CsrMatrix = &red.matrix;
    let shuffle = arbitrary_node_order(a.nrows() / 3, 0x5eed);
    let a_shuf = permute_symmetric(a, &shuffle).expect("valid permutation");
    let rcm = reverse_cuthill_mckee_blocks(a, 3).expect("node-blocked matrix");
    let a_rcm = permute_symmetric(a, &rcm).expect("valid permutation");
    let (bw_arb, bw_nat, bw_rcm) = (bandwidth(&a_shuf), bandwidth(a), bandwidth(&a_rcm));
    let (mbw_arb, mbw_nat, mbw_rcm) =
        (mean_row_bandwidth(&a_shuf), mean_row_bandwidth(a), mean_row_bandwidth(&a_rcm));
    println!("bandwidth (max / mean-row):");
    println!("  arbitrary order  {bw_arb:>8} / {mbw_arb:>10.1}");
    println!("  native (mesher)  {bw_nat:>8} / {mbw_nat:>10.1}");
    println!("  RCM              {bw_rcm:>8} / {mbw_rcm:>10.1}");
    let red_arb = bw_arb as f64 / bw_rcm as f64;
    let red_nat = bw_nat as f64 / bw_rcm as f64;
    println!("  reduction: ×{red_arb:.1} vs arbitrary, ×{red_nat:.2} vs native\n");
    metrics.gauge_set("bandwidth_reduction_vs_arbitrary", red_arb);
    metrics.gauge_set("bandwidth_reduction_vs_native", red_nat);
    assert!(
        red_arb >= 2.0,
        "RCM must cut bandwidth ≥2× vs an arbitrary admission order, got ×{red_arb:.2}"
    );

    // ---- SpMV: scalar CSR vs register-blocked 3×3. ----
    let block = BlockCsr::from_csr(a).expect("node-blocked matrix");
    let x: Vec<f64> = (0..a.nrows()).map(|i| ((i * 31 + 7) % 17) as f64 * 0.1).collect();
    let mut y = vec![0.0; a.nrows()];
    let reps = (200_000_000 / a.nnz()).clamp(10, 400);
    let time_apply = |op: &dyn LinearOperator, y: &mut Vec<f64>| -> f64 {
        op.apply(&x, y); // warm the cache once
        let sw = Stopwatch::wall();
        for _ in 0..reps {
            op.apply(&x, y);
        }
        sw.elapsed_s() / reps as f64
    };
    let scalar_s = time_apply(a, &mut y);
    let block_s = time_apply(&block, &mut y);
    let traffic = |matrix_bytes: usize| (matrix_bytes + 16 * a.nrows()) as f64 / 1e9;
    let scalar_gbs = traffic(a.memory_bytes()) / scalar_s;
    let block_gbs = traffic(block.memory_bytes()) / block_s;
    println!("SpMV ({} rows, {} nnz, {reps} reps):", a.nrows(), a.nnz());
    println!("  scalar CSR   {:>8.3} ms/apply  {scalar_gbs:>6.1} GB/s", scalar_s * 1e3);
    println!(
        "  blocked 3×3  {:>8.3} ms/apply  {block_gbs:>6.1} GB/s  (×{:.2} faster)\n",
        block_s * 1e3,
        scalar_s / block_s
    );
    metrics.gauge_set("spmv_scalar_gb_s", scalar_gbs);
    metrics.gauge_set("spmv_block3_gb_s", block_gbs);

    // ---- f32-inner refinement vs pure-f64 GMRES on the same system. ----
    let opts = SolverOptions { tolerance: 1e-8, max_iterations: 5000, ..Default::default() };
    let pc = BlockJacobiPrecond::new(a, 8, BlockSolve::Ilu0).expect("nonsingular blocks");
    let rhs = &red.rhs;
    let mut x64 = vec![0.0; a.nrows()];
    let sw = Stopwatch::wall();
    let s64 = gmres(a, &pc, rhs, &mut x64, &opts).expect("dims agree");
    let f64_s = sw.elapsed_s();
    assert!(s64.converged(), "f64 reference solve diverged: {s64:?}");
    let mirror = pc.mixed_mirror(a).expect("block-jacobi always has an f32 companion");
    let mut xm = vec![0.0; a.nrows()];
    let sw = Stopwatch::wall();
    let sm = refine(a, &mirror, rhs, &mut xm, &opts, &RefineOptions::default())
        .expect("dims agree");
    let f32_s = sw.elapsed_s();
    assert!(sm.converged(), "mixed refinement diverged: {sm:?}");
    println!("direct solve, f64 vs f32-inner refinement:");
    println!("  f64 GMRES      {f64_s:>7.3} s  {:>5} iters", s64.iterations);
    println!(
        "  f32 refinement {f32_s:>7.3} s  {:>5} iters  (×{:.2})\n",
        sm.iterations,
        f64_s / f32_s
    );
    metrics.record_span_s("direct/f64", f64_s);
    metrics.record_span_s("direct/f32_refine", f32_s);

    // ---- Ladder rungs through the production SolverContext. ----
    // Cold = context build (assemble + reduce + reorder + factor) plus
    // the first solve; warm = the follow-up solve at full load.
    let rungs: [(&str, Reordering, SpmvKind, Precision); 5] = [
        ("baseline", Reordering::Native, SpmvKind::Scalar, Precision::Double),
        ("rcm", Reordering::Rcm, SpmvKind::Scalar, Precision::Double),
        ("block3", Reordering::Native, SpmvKind::Block3, Precision::Double),
        ("mixed", Reordering::Native, SpmvKind::Scalar, Precision::Mixed),
        ("ladder", Reordering::Rcm, SpmvKind::Block3, Precision::Mixed),
    ];
    let half_bcs = {
        let mut bcs = brainshift_fem::DirichletBcs::new();
        for (n, u) in full_bcs.iter() {
            bcs.set(n, u * 0.5);
        }
        bcs
    };
    println!(
        "{:<10} {:>9} {:>10} {:>11} {:>10} {:>7} {:>12}",
        "rung", "setup(s)", "cold(s)", "1st-slv(s)", "warm(s)", "iters", "vs baseline"
    );
    let mut baseline_cold = 0.0f64;
    let mut baseline_cold_solve = 0.0f64;
    let mut baseline_u: Vec<brainshift_imaging::Vec3> = Vec::new();
    let mut rung_rows: Vec<JsonValue> = Vec::new();
    let mut best_cold_improvement = 0.0f64;
    // All rungs solve to 1e-8; two converged iterates may still differ
    // by O(cond(A) × tolerance) in displacement.
    let tol_bound = 1e-5;
    // Best-of-N per rung: a cold solve is a fraction of a second, and a
    // single noisy scheduler tick would otherwise decide the comparison.
    let cold_reps = 3;
    for (name, reorder, spmv, precision) in rungs {
        let mut cfg = FemSolveConfig::default();
        cfg.reorder = reorder;
        cfg.spmv = spmv;
        cfg.options.precision = precision;
        cfg.options.tolerance = 1e-8;
        let (mut setup_s, mut cold_s, mut warm_s) = (f64::MAX, f64::MAX, f64::MAX);
        let mut cold_solve_s = f64::MAX;
        let mut cold_iters = 0;
        let mut last_sol = None;
        for _ in 0..cold_reps {
            let sw = Stopwatch::wall();
            let mut ctx =
                SolverContext::new(&p.mesh, &materials, &full_bcs.nodes_sorted(), cfg.clone())
                    .expect("context build");
            let this_setup = sw.elapsed_s();
            let sw = Stopwatch::wall();
            let sol = ctx.solve(&half_bcs).expect("cold solve");
            let this_cold = this_setup + sw.elapsed_s();
            assert!(sol.stats.converged(), "{name} cold solve diverged");
            if this_cold < cold_s {
                setup_s = this_setup;
                cold_s = this_cold;
                cold_iters = sol.stats.iterations;
            }
            cold_solve_s = cold_solve_s.min(ctx.timings().last_solve_s);
            let sw = Stopwatch::wall();
            let sol = ctx.solve(&full_bcs).expect("warm solve");
            warm_s = warm_s.min(sw.elapsed_s());
            assert!(sol.stats.converged(), "{name} warm solve diverged");
            last_sol = Some(sol);
        }
        let sol = last_sol.expect("at least one repetition");
        let dev = if name == "baseline" {
            baseline_cold = cold_s;
            baseline_cold_solve = cold_solve_s;
            baseline_u = sol.displacements.clone();
            0.0
        } else {
            let peak = baseline_u.iter().map(|u| u.norm()).fold(1.0, f64::max);
            let dev = sol
                .displacements
                .iter()
                .zip(&baseline_u)
                .map(|(a1, b1)| (*a1 - *b1).norm())
                .fold(0.0, f64::max)
                / peak;
            assert!(dev < tol_bound, "{name} diverges from baseline: {dev:.3e} rel");
            // The rungs only touch the Krylov solve — assembly and
            // reduction are byte-identical work in every configuration —
            // so the cold comparison is the first solve's wall time.
            best_cold_improvement = best_cold_improvement.max(baseline_cold_solve / cold_solve_s);
            dev
        };
        println!(
            "{name:<10} {setup_s:>9.3} {cold_s:>10.3} {cold_solve_s:>11.3} {warm_s:>10.3} {cold_iters:>7} {dev:>10.2e}"
        );
        metrics.record_span_s(&format!("rung/{name}/cold"), cold_s);
        metrics.record_span_s(&format!("rung/{name}/warm"), warm_s);
        rung_rows.push(
            JsonValue::obj()
                .with("rung", JsonValue::Str(name.to_string()))
                .with("setup_s", setup_s.into())
                .with("cold_s", cold_s.into())
                .with("cold_solve_s", cold_solve_s.into())
                .with("warm_s", warm_s.into())
                .with("cold_iterations", cold_iters.into())
                .with("rel_deviation_vs_baseline", dev.into()),
        );
    }

    // ---- Assembly-free cold path: element operator vs assembled CSR. ----
    let structure = {
        let k2 = assemble_stiffness(&p.mesh, &materials);
        DirichletStructure::new(&k2, &boundary_nodes(&p.mesh)).expect("reduce")
    };
    let n = structure.matrix.nrows();
    let x_true: Vec<f64> = (0..n).map(|i| ((i as f64) * 0.37).sin()).collect();
    let mut b = vec![0.0; n];
    structure.matrix.spmv(&x_true, &mut b);
    let (mut assembled_cold_s, mut matfree_cold_s) = (f64::MAX, f64::MAX);
    let (mut sa, mut sf) = (None, None);
    for _ in 0..cold_reps {
        let sw = Stopwatch::wall();
        let k2 = assemble_stiffness(&p.mesh, &materials);
        let st = DirichletStructure::new(&k2, &boundary_nodes(&p.mesh)).expect("reduce");
        let pc2 = BlockJacobiPrecond::new(&st.matrix, 8, BlockSolve::Ilu0).expect("blocks");
        let mut xa = vec![0.0; n];
        let s = gmres(&st.matrix, &pc2, &b, &mut xa, &opts).expect("dims agree");
        assembled_cold_s = assembled_cold_s.min(sw.elapsed_s());
        assert!(s.converged());
        sa = Some(s);
        let sw = Stopwatch::wall();
        let op =
            ElementOperator::new(&p.mesh, &materials, &structure.reduced_of_dof).expect("build");
        let pc_mf = JacobiPrecond::new(&op.diagonal_matrix());
        let mut xf = vec![0.0; n];
        let s = gmres(&op, &pc_mf, &b, &mut xf, &opts).expect("dims agree");
        matfree_cold_s = matfree_cold_s.min(sw.elapsed_s());
        assert!(s.converged());
        sf = Some(s);
    }
    let (sa, sf) = (sa.expect("reps ≥ 1"), sf.expect("reps ≥ 1"));
    println!("\nassembly-free cold path (same reduced system, manufactured RHS):");
    println!("  assembled+factored  {assembled_cold_s:>7.3} s  {:>5} iters", sa.iterations);
    println!(
        "  matrix-free         {matfree_cold_s:>7.3} s  {:>5} iters  (×{:.2})",
        sf.iterations,
        assembled_cold_s / matfree_cold_s
    );
    metrics.record_span_s("cold/assembled", assembled_cold_s);
    metrics.record_span_s("cold/matfree", matfree_cold_s);

    best_cold_improvement = best_cold_improvement.max(assembled_cold_s / matfree_cold_s);
    println!("\nbest cold-solve improvement across rungs: ×{best_cold_improvement:.2}");
    metrics.gauge_set("best_cold_improvement", best_cold_improvement);
    assert!(
        best_cold_improvement > 1.0,
        "no ladder rung improved the cold solve (best ×{best_cold_improvement:.2})"
    );

    let mut report = BenchReport::new("solver_ladder");
    report.params = JsonValue::obj()
        .with("equations", p.mesh.num_equations().into())
        .with("reduced_equations", a.nrows().into())
        .with("nnz", a.nnz().into());
    report.metrics = metrics.snapshot();
    report.extra = JsonValue::obj()
        .with(
            "bandwidth",
            JsonValue::obj()
                .with("arbitrary_max", bw_arb.into())
                .with("native_max", bw_nat.into())
                .with("rcm_max", bw_rcm.into())
                .with("arbitrary_mean", mbw_arb.into())
                .with("native_mean", mbw_nat.into())
                .with("rcm_mean", mbw_rcm.into())
                .with("reduction_vs_arbitrary", red_arb.into())
                .with("reduction_vs_native", red_nat.into()),
        )
        .with(
            "spmv",
            JsonValue::obj()
                .with("scalar_s_per_apply", scalar_s.into())
                .with("block3_s_per_apply", block_s.into())
                .with("scalar_gb_s", scalar_gbs.into())
                .with("block3_gb_s", block_gbs.into()),
        )
        .with(
            "precision",
            JsonValue::obj()
                .with("f64_solve_s", f64_s.into())
                .with("f64_iterations", s64.iterations.into())
                .with("refine_solve_s", f32_s.into())
                .with("refine_iterations", sm.iterations.into()),
        )
        .with("rungs", JsonValue::Arr(rung_rows))
        .with(
            "matfree",
            JsonValue::obj()
                .with("assembled_cold_s", assembled_cold_s.into())
                .with("matfree_cold_s", matfree_cold_s.into()),
        );

    let path = PathBuf::from("bench_out").join("solver_ladder.json");
    report.write(&path).expect("write solver_ladder.json");
    println!("\nwritten: {}", path.display());
}
