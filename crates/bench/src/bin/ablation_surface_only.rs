//! Ablation: volumetric FEM vs surface-only deformation.
//!
//! The paper contrasts itself with Bro-Nielsen's fast surface-condensed
//! FEM: "This work had the goal of achieving interactive graphics speeds
//! at the cost of accuracy of the simulation." We compare the volumetric
//! biomechanical interior against the cheap alternative — extrapolating
//! the surface displacements into the volume with inverse-distance
//! weighting — using the elastic ground truth as the referee.

use brainshift_core::case::{cap_surface_displacement, generate_elastic_case, ElasticCaseOptions};
use brainshift_core::metrics::field_error;
use brainshift_fem::{displacement_field_from_mesh, solve_deformation, DirichletBcs, FemSolveConfig, MaterialTable};
use brainshift_imaging::phantom::{BrainShiftConfig, PhantomConfig};
use brainshift_imaging::volume::{Dims, Spacing};
use brainshift_imaging::{labels, Vec3};
use brainshift_mesh::{boundary_nodes, mesh_labeled_volume, MesherConfig};
use brainshift_obs::Stopwatch;

fn main() {
    println!("## Ablation — volumetric FEM vs surface-only extrapolation\n");
    let cfg = PhantomConfig {
        dims: Dims::new(64, 64, 48),
        spacing: Spacing::iso(2.5),
        ..Default::default()
    };
    let shift = BrainShiftConfig { peak_shift_mm: 8.0, resect_tumor: false, ..Default::default() };
    let case = generate_elastic_case(&cfg, &shift, &ElasticCaseOptions::default());

    // Both methods get the SAME exact surface displacements (isolating the
    // interior model from surface-matching error).
    let mesh = mesh_labeled_volume(
        &case.preop.labels,
        &MesherConfig { step: 2, include: labels::is_brain_tissue },
    );
    let bnodes = boundary_nodes(&mesh);
    let mut bcs = DirichletBcs::new();
    for &n in &bnodes {
        bcs.set(n, cap_surface_displacement(mesh.nodes[n], &case.model, &shift));
    }

    // --- Volumetric FEM (the paper's method). ---
    let t0 = Stopwatch::wall();
    let sol = solve_deformation(&mesh, &MaterialTable::homogeneous(), &bcs, &FemSolveConfig::default()).expect("FEM solve rejected its inputs");
    let fem_time = t0.elapsed_s();
    let fem_field = displacement_field_from_mesh(&mesh, &sol.displacements, cfg.dims, cfg.spacing);

    // --- Surface-only: inverse-distance extrapolation from the boundary
    //     (the accuracy level of graphics-oriented surface models). ---
    let t0 = Stopwatch::wall();
    let surface_pts: Vec<(Vec3, Vec3)> = bnodes
        .iter()
        .map(|&n| (mesh.nodes[n], bcs.get(n).unwrap()))
        .collect();
    let mut interp_disp: Vec<Vec3> = Vec::with_capacity(mesh.num_nodes());
    for (i, &p) in mesh.nodes.iter().enumerate() {
        if let Some(u) = bcs.get(i) {
            interp_disp.push(u);
            continue;
        }
        // Shepard weights over the k nearest surface samples.
        let mut best: Vec<(f64, Vec3)> = surface_pts
            .iter()
            .map(|&(q, u)| ((p - q).norm_sq(), u))
            .collect();
        best.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut wsum = 0.0;
        let mut acc = Vec3::ZERO;
        for &(d2, u) in best.iter().take(12) {
            let w = 1.0 / (d2 + 1e-9);
            wsum += w;
            acc += u * w;
        }
        interp_disp.push(acc / wsum);
    }
    let surf_time = t0.elapsed_s();
    let surf_field = displacement_field_from_mesh(&mesh, &interp_disp, cfg.dims, cfg.spacing);

    for (name, field, t) in [("volumetric FEM", &fem_field, fem_time), ("surface-only", &surf_field, surf_time)] {
        let fe = field_error(field, &case.gt_forward, 2.0);
        println!(
            "{:<16} mean err {:>5.2} mm  rms {:>5.2} mm  max {:>5.2} mm  rel {:>5.2}   host time {:>6.2}s",
            name, fe.mean_error_mm, fe.rms_error_mm, fe.max_error_mm, fe.relative_error, t
        );
    }
    println!("\n(the volumetric model propagates boundary data through elasticity;");
    println!(" inverse-distance extrapolation ignores mechanics and pays for it in");
    println!(" interior accuracy — the trade-off the paper's introduction describes.)");
}
