//! Ablation: image resolution vs recovery accuracy.
//!
//! The paper's intraoperative scans are 256×256×60 (~1 mm in-plane); our
//! tests run coarser for speed. This study quantifies how the pipeline's
//! field-recovery error scales with voxel size — separating the method's
//! intrinsic accuracy from discretization effects (k-NN boundary bleed is
//! ~1 voxel, so the error floor should track the voxel size).

use brainshift_core::case::{generate_elastic_case, ElasticCaseOptions};
use brainshift_core::metrics::field_error;
use brainshift_core::pipeline::{run_pipeline, PipelineConfig};
use brainshift_imaging::phantom::{BrainShiftConfig, PhantomConfig};
use brainshift_imaging::volume::{Dims, Spacing};

fn main() {
    println!("## Ablation — voxel size vs deformation recovery\n");
    let shift = BrainShiftConfig { peak_shift_mm: 8.0, resect_tumor: false, ..Default::default() };
    println!(
        "{:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "voxel(mm)", "grid", "mean err", "rel err", "peak rec", "surf res"
    );
    // Constant physical head (~160×160×120 mm) at increasing resolution.
    for (nx, nz, mm) in [(32usize, 24usize, 5.0f64), (40, 30, 4.0), (54, 40, 3.0), (64, 48, 2.5), (80, 60, 2.0)] {
        let cfg = PhantomConfig {
            dims: Dims::new(nx, nx, nz),
            spacing: Spacing::iso(mm),
            ..Default::default()
        };
        let case = generate_elastic_case(&cfg, &shift, &ElasticCaseOptions::default());
        let res = run_pipeline(
            &case.preop.intensity,
            &case.preop.labels,
            &case.intraop.intensity,
            &PipelineConfig { skip_rigid: true, ..Default::default() },
        ).expect("pipeline failed");
        let fe = field_error(&res.forward_field, &case.gt_forward, 2.0);
        println!(
            "{:>10.1} {:>12} {:>7.2} mm {:>10.2} {:>7.2} mm {:>7.2} mm",
            mm,
            format!("{nx}x{nx}x{nz}"),
            fe.mean_error_mm,
            fe.relative_error,
            res.forward_field.max_magnitude(),
            res.surface_residual
        );
    }
    println!("\n(error tracks voxel size: the pipeline's accuracy floor is set by");
    println!(" the discrete segmentation boundary, not by the mechanics — at the");
    println!(" paper's ~1 mm scans the same machinery lands proportionally closer.)");
}
