//! Ablation: the paper's solver choice (GMRES + block Jacobi).
//!
//! Compares preconditioners (none / point Jacobi / block-Jacobi with
//! dense-LU or ILU(0) blocks) and Krylov methods (GMRES vs CG, the system
//! being SPD after Dirichlet substitution), reporting iteration counts
//! and modeled Deep Flow solve times at 1 and 16 CPUs.

use brainshift_bench::problem_with_equations;
use brainshift_cluster::MachineModel;
use brainshift_fem::{apply_dirichlet, assemble_stiffness, MaterialTable};
use brainshift_sparse::{
    bicgstab, conjugate_gradient, gmres, BlockJacobiPrecond, BlockSolve, IdentityPrecond,
    JacobiPrecond, Preconditioner, SolveStats, SolverOptions,
};

fn main() {
    println!("## Ablation — preconditioner and Krylov method\n");
    // A mid-size system so even the unpreconditioned run finishes.
    let p = problem_with_equations(30_000);
    let k = assemble_stiffness(&p.mesh, &MaterialTable::homogeneous());
    let red = apply_dirichlet(&k, &vec![0.0; k.nrows()], &p.bcs).expect("valid BC set");
    println!(
        "system: {} equations ({} free), nnz {}\n",
        k.nrows(),
        red.matrix.nrows(),
        red.matrix.nnz()
    );
    let opts = SolverOptions { tolerance: 1e-5, max_iterations: 5000, ..Default::default() };
    let machine = MachineModel::deep_flow();
    // Per-iteration modeled cost at P cpus (coarse: spmv + precond + orth).
    let per_iter_seconds = |iters: usize, cpus: usize, precond_cost: f64| -> f64 {
        let nnz = red.matrix.nnz() as f64;
        let n = red.matrix.nrows() as f64;
        let flops_per_iter = 2.0 * nnz + precond_cost + 4.0 * 15.0 * n;
        let comm = if cpus > 1 { 17.0 * machine.allreduce(cpus, 8.0) } else { 0.0 };
        iters as f64 * (machine.cpu.seconds(flops_per_iter / cpus as f64) + comm)
    };

    println!(
        "{:<28} {:>7} {:>10} {:>12} {:>12}",
        "configuration", "iters", "converged", "t@1cpu(s)", "t@16cpu(s)"
    );
    let report = |name: &str, stats: &SolveStats, precond_cost: f64| {
        println!(
            "{:<28} {:>7} {:>10} {:>12.2} {:>12.2}",
            name,
            stats.iterations,
            stats.converged(),
            per_iter_seconds(stats.iterations, 1, precond_cost),
            per_iter_seconds(stats.iterations, 16, precond_cost)
        );
    };

    let run_gmres = |p: &dyn Preconditioner| -> SolveStats {
        let mut x = vec![0.0; red.matrix.nrows()];
        gmres(&red.matrix, p, &red.rhs, &mut x, &opts).expect("dims agree")
    };
    let nnz = red.matrix.nnz() as f64;

    let s = run_gmres(&IdentityPrecond);
    report("gmres + none", &s, 0.0);
    let s = run_gmres(&JacobiPrecond::new(&red.matrix));
    report("gmres + jacobi", &s, red.matrix.nrows() as f64);
    for blocks in [4usize, 16] {
        let pc = BlockJacobiPrecond::new(&red.matrix, blocks, BlockSolve::Ilu0).expect("singular diagonal block");
        let s = run_gmres(&pc);
        report(&format!("gmres + block-jacobi/ilu0 x{blocks}"), &s, 4.0 * nnz);
    }
    let pc = BlockJacobiPrecond::new(&red.matrix, 16, BlockSolve::Ilu0).expect("singular diagonal block");
    let mut x = vec![0.0; red.matrix.nrows()];
    let s = conjugate_gradient(&red.matrix, &pc, &red.rhs, &mut x, &opts).expect("dims agree");
    report("cg    + block-jacobi/ilu0 x16", &s, 4.0 * nnz);
    let mut x = vec![0.0; red.matrix.nrows()];
    let s = conjugate_gradient(&red.matrix, &JacobiPrecond::new(&red.matrix), &red.rhs, &mut x, &opts)
        .expect("dims agree");
    report("cg    + jacobi", &s, red.matrix.nrows() as f64);
    let pc = BlockJacobiPrecond::new(&red.matrix, 16, BlockSolve::Ilu0).expect("singular diagonal block");
    let mut x = vec![0.0; red.matrix.nrows()];
    let s = bicgstab(&red.matrix, &pc, &red.rhs, &mut x, &opts).expect("dims agree");
    // BiCGStab does 2 matvecs + 2 precond applies per iteration.
    report("bicgstab + block-jacobi x16", &s, 4.0 * nnz + 2.0 * nnz);

    println!("\n(the paper chose GMRES + block Jacobi: block count matches CPU count,");
    println!(" so the preconditioner needs no communication — the trade-off visible");
    println!(" above is more iterations per extra block vs perfectly local work.)");
}
