//! Figure 5: the 3-D visualization of the simulated deformation.
//!
//! The paper's Figure 5 color-codes "the magnitude of the deformation at
//! every point on the surface of the deformed volume" with arrows showing
//! initial→final positions. Our textual reproduction prints the
//! surface-displacement distribution (the color map's histogram), its
//! spatial pattern by latitude band relative to the craniotomy, and the
//! dominant direction — the data behind the picture.

use brainshift_core::case::{generate_elastic_case, ElasticCaseOptions};
use brainshift_core::pipeline::{run_pipeline, PipelineConfig};
use brainshift_imaging::phantom::{BrainShiftConfig, PhantomConfig};
use brainshift_imaging::volume::{Dims, Spacing};
use brainshift_imaging::Vec3;

fn main() {
    println!("## Figure 5 — surface deformation magnitude and direction\n");
    let cfg = PhantomConfig {
        dims: Dims::new(64, 64, 48),
        spacing: Spacing::iso(2.5),
        ..Default::default()
    };
    let shift = BrainShiftConfig { peak_shift_mm: 8.0, resect_tumor: true, ..Default::default() };
    let case = generate_elastic_case(&cfg, &shift, &ElasticCaseOptions::default());
    let res = run_pipeline(
        &case.preop.intensity,
        &case.preop.labels,
        &case.intraop.intensity,
        &PipelineConfig { skip_rigid: true, ..Default::default() },
    ).expect("pipeline failed");

    // Surface-vertex displacements = FEM displacement at boundary nodes.
    let disp: Vec<(Vec3, Vec3)> = res
        .brain_surface
        .mesh_node
        .iter()
        .map(|&n| (res.mesh.nodes[n], res.fem.displacements[n]))
        .collect();

    // Histogram of magnitudes (the paper's color scale).
    let max_mag = disp.iter().map(|(_, d)| d.norm()).fold(0.0, f64::max);
    println!("surface vertices: {}", disp.len());
    println!("max |u| on surface: {max_mag:.2} mm (prescribed peak {:.1} mm)\n", shift.peak_shift_mm);
    println!("magnitude histogram (the Fig 5 color coding):");
    let bins = 8usize;
    let bin_w = (max_mag / bins as f64).max(1e-9);
    let mut counts = vec![0usize; bins];
    for (_, d) in &disp {
        let b = ((d.norm() / bin_w) as usize).min(bins - 1);
        counts[b] += 1;
    }
    let total = disp.len().max(1);
    for (b, &c) in counts.iter().enumerate() {
        let bar = "#".repeat((c * 60 / total).max(usize::from(c > 0)));
        println!("  {:>5.1}-{:>5.1} mm  {:>6} {}", b as f64 * bin_w, (b + 1) as f64 * bin_w, c, bar);
    }

    // Magnitude by angle from the craniotomy axis (spatial pattern).
    let center = case.model.brain.center;
    let axis = shift.craniotomy_dir.normalized();
    println!("\nmean |u| by angle from the craniotomy axis:");
    let n_bands = 6;
    let mut sums = vec![0.0f64; n_bands];
    let mut ns = vec![0usize; n_bands];
    for (p, d) in &disp {
        let cosang = (*p - center).normalized().dot(axis).clamp(-1.0, 1.0);
        let ang = cosang.acos().to_degrees();
        let band = ((ang / 180.0 * n_bands as f64) as usize).min(n_bands - 1);
        sums[band] += d.norm();
        ns[band] += 1;
    }
    for b in 0..n_bands {
        let mean = if ns[b] > 0 { sums[b] / ns[b] as f64 } else { 0.0 };
        println!("  {:>3}-{:>3} deg: mean |u| {:>5.2} mm  ({} vertices)", b * 180 / n_bands, (b + 1) * 180 / n_bands, mean, ns[b]);
    }
    println!("\n(the deformation concentrates under the craniotomy and decays with");
    println!(" angular distance — the pattern of the paper's color-coded Figure 5.)");

    // Dominant direction among strongly displaced vertices (the arrows).
    let mut mean_dir = Vec3::ZERO;
    let mut n_strong = 0;
    for (_, d) in &disp {
        if d.norm() > 0.5 * max_mag {
            mean_dir += d.normalized();
            n_strong += 1;
        }
    }
    if n_strong > 0 {
        mean_dir = (mean_dir / n_strong as f64).normalized();
        println!("\nmean direction of the strongest displacements (the blue arrows):");
        println!("  ({:+.2}, {:+.2}, {:+.2}); craniotomy axis ({:+.2}, {:+.2}, {:+.2})", mean_dir.x, mean_dir.y, mean_dir.z, -axis.x, -axis.y, -axis.z);
        println!("  alignment with inward axis: {:.2}", mean_dir.dot(-axis));
    }
}
