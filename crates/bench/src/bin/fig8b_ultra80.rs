//! Figure 8(b): assembling and solving the 77 511-equation system on two
//! Sun Ultra 80 servers (4× 450 MHz each) networked with Fast Ethernet.

use brainshift_bench::{plot_log_series, print_timing_header, print_timing_row, problem_with_equations};
use brainshift_cluster::MachineModel;
use brainshift_fem::{simulate_assemble_solve, MaterialTable, SimOptions, SimProblem};

fn main() {
    let p = problem_with_equations(77_511);
    let materials = MaterialTable::homogeneous();
    let k = SimProblem::new(&p.mesh, &materials, &p.bcs);
    print_timing_header(
        "Figure 8b — 2x Ultra 80 over Fast Ethernet",
        p.mesh.num_equations(),
        MachineModel::ultra_80_pair().name,
    );
    let mut asm_series = Vec::new();
    let mut solve_series = Vec::new();
    for cpus in 1..=8 {
        let (t, _) = simulate_assemble_solve(
            &p.mesh,
            &materials,
            &p.bcs,
            MachineModel::ultra_80_pair(),
            cpus,
            &SimOptions::default(),
            Some(&k),
        );
        print_timing_row(&t);
        asm_series.push((cpus, t.assemble_s));
        solve_series.push((cpus, t.solve_s));
    }
    plot_log_series(&[("assemble", asm_series), ("solve", solve_series)], 60);
}
