//! Ablation: rigid (the paper) vs affine registration under scanner
//! geometry error.
//!
//! The paper's MI alignment is rigid — correct when both scans come from
//! the same calibrated scanner. A gradient-scale miscalibration adds
//! anisotropic scale that rigid cannot absorb and that would otherwise be
//! (wrongly) handed to the biomechanical stage. This study measures both
//! models against a scan with 5% z-scale error plus a small rotation.

use brainshift_imaging::interp::resample_with;
use brainshift_imaging::phantom::{generate_preop, PhantomConfig};
use brainshift_imaging::similarity::ncc;
use brainshift_imaging::volume::{Dims, Spacing};
use brainshift_imaging::Vec3;
use brainshift_register::{
    register_affine, register_rigid, AffineRegConfig, AffineTransform, RigidRegConfig,
};
use brainshift_obs::Stopwatch;

fn main() {
    println!("## Ablation — rigid vs affine registration under scale error\n");
    let scan = generate_preop(&PhantomConfig {
        dims: Dims::new(48, 48, 36),
        spacing: Spacing::iso(3.3),
        ..Default::default()
    });
    let d = scan.intensity.dims();
    let c = Vec3::new(d.nx as f64 / 2.0, d.ny as f64 / 2.0, d.nz as f64 / 2.0);
    // True distortion: 5% z-scale + 2° rotation + 1.5-voxel shift.
    let truth = AffineTransform::from_params(
        &[0.0, 0.0, 0.035, 0.0, 0.0, 0.05, 0.0, 0.0, 0.0, 1.5, -1.0, 0.5],
        c,
    );
    let moving = resample_with(&scan.intensity, &scan.intensity, 0.0, |p| truth.apply(p));
    let before = ncc(&scan.intensity, &moving);
    println!("misalignment: 5% z-scale, 2 deg rotation, subvoxel shift (ncc {before:.3})\n");
    println!("{:<8} {:>8} {:>12} {:>12}", "model", "ncc", "evaluations", "host time");

    let t0 = Stopwatch::wall();
    let rigid = register_rigid(&scan.intensity, &moving, &RigidRegConfig::default());
    let aligned_r = resample_with(&moving, &scan.intensity, 0.0, |p| rigid.transform.apply(p));
    println!(
        "{:<8} {:>8.3} {:>12} {:>10.2} s",
        "rigid",
        ncc(&scan.intensity, &aligned_r),
        rigid.evaluations,
        t0.elapsed_s()
    );

    let t0 = Stopwatch::wall();
    let affine = register_affine(&scan.intensity, &moving, &AffineRegConfig::default());
    let aligned_a = resample_with(&moving, &scan.intensity, 0.0, |p| affine.transform.apply(p));
    println!(
        "{:<8} {:>8.3} {:>12} {:>10.2} s",
        "affine",
        ncc(&scan.intensity, &aligned_a),
        affine.evaluations,
        t0.elapsed_s()
    );
    println!(
        "\nrecovered volume factor {:.4} (truth {:.4})",
        affine.transform.volume_factor(),
        1.0 / truth.volume_factor()
    );
    println!("\n(the rigid model leaves the scale error as residual mismatch that the");
    println!(" nonrigid stage would wrongly attribute to brain deformation; the");
    println!(" 12-DOF model absorbs it, at roughly an order of magnitude more metric");
    println!(" evaluations — run once per surgery, that cost is immaterial.)");
}
