//! Scenario-factory smoke batch: hundreds of seeded cases from all four
//! workload classes (gravity sag, resection collapse, skull contact,
//! sparse keypoints), each prepared and served through the production
//! 2-worker service path. The binary is its own acceptance gate:
//!
//! - **0 invalid meshes** — every generated case survives
//!   `validate_quality`, across every seeded cavity carve;
//! - **0 shed jobs** — the service admits and completes every scan;
//! - **byte-identical event scripts** — the suite is run twice and the
//!   service's timestamp-free [`EventLog::script`] must match exactly,
//!   the determinism oracle over the full generate → prepare → serve
//!   chain.
//!
//! Writes a `brainshift.obs.v1` report to
//! `bench_out/scenario_suite.json`.
//!
//! ```bash
//! cargo run --release --bin scenario_suite_json -- [cases]
//! ```

use brainshift_core::ScanStatus;
use brainshift_obs::{BenchReport, JsonValue};
use brainshift_scenario::{run_scenario_suite, ScenarioKind, SuiteConfig, SuiteReport};
use std::path::PathBuf;
use std::time::Instant;

struct ClassStats {
    kind: ScenarioKind,
    cases: usize,
    degraded: usize,
    mean_latency_ms: f64,
    mean_gt_peak_mm: f64,
    mean_recovered_peak_mm: f64,
    warm: usize,
}

fn class_stats(report: &SuiteReport) -> Vec<ClassStats> {
    ScenarioKind::ALL
        .iter()
        .map(|&kind| {
            let rs: Vec<_> = report.records.iter().filter(|r| r.kind == kind).collect();
            let n = rs.len().max(1) as f64;
            ClassStats {
                kind,
                cases: rs.len(),
                degraded: rs.iter().filter(|r| r.status == ScanStatus::Degraded).count(),
                mean_latency_ms: rs.iter().map(|r| r.latency_s * 1e3).sum::<f64>() / n,
                mean_gt_peak_mm: rs.iter().map(|r| r.gt_peak_mm).sum::<f64>() / n,
                mean_recovered_peak_mm: rs.iter().map(|r| r.recovered_peak_mm).sum::<f64>() / n,
                warm: rs.iter().filter(|r| r.warm).count(),
            }
        })
        .collect()
}

fn main() {
    let cases: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(SuiteConfig::default().cases);
    let cfg = SuiteConfig { cases, ..Default::default() };
    eprintln!(
        "scenario suite: {} cases over {} classes, {} workers, base seed {:#x}",
        cfg.cases,
        ScenarioKind::ALL.len(),
        cfg.workers,
        cfg.base_seed
    );

    let t0 = Instant::now();
    let run_a = run_scenario_suite(&cfg);
    let wall_a = t0.elapsed().as_secs_f64();
    eprintln!(
        "run A: {} served, {} invalid meshes, {} generation failures, {} shed, {} degraded, \
         {} carve retries ({wall_a:.1}s)",
        run_a.records.len(),
        run_a.invalid_meshes,
        run_a.generation_failures,
        run_a.shed_jobs,
        run_a.degraded,
        run_a.carve_retries
    );

    let t1 = Instant::now();
    let run_b = run_scenario_suite(&cfg);
    let wall_b = t1.elapsed().as_secs_f64();
    eprintln!("run B: {} served ({wall_b:.1}s)", run_b.records.len());

    // The acceptance gates.
    assert_eq!(run_a.invalid_meshes, 0, "invalid meshes in run A");
    assert_eq!(run_a.generation_failures, 0, "generation failures in run A");
    assert_eq!(run_a.shed_jobs, 0, "shed jobs in run A");
    assert_eq!(
        run_a.script, run_b.script,
        "event script differs between two runs of the same seed set"
    );
    eprintln!("determinism: two-run event scripts byte-identical ({} bytes)", run_a.script.len());

    let per_class: JsonValue = class_stats(&run_a)
        .iter()
        .map(|c| {
            JsonValue::obj()
                .with("class", c.kind.name().into())
                .with("cases", c.cases.into())
                .with("degraded", c.degraded.into())
                .with("warm_serves", c.warm.into())
                .with("mean_latency_ms", c.mean_latency_ms.into())
                .with("mean_gt_peak_mm", c.mean_gt_peak_mm.into())
                .with("mean_recovered_peak_mm", c.mean_recovered_peak_mm.into())
        })
        .collect();

    let mut report = BenchReport::new("scenario_suite");
    report.params = JsonValue::obj()
        .with("cases", cfg.cases.into())
        .with("workers", cfg.workers.into())
        .with("base_seed", cfg.base_seed.into())
        .with("deadline_s", cfg.deadline.as_secs_f64().into());
    report.extra = JsonValue::obj()
        .with("served", run_a.records.len().into())
        .with("invalid_meshes", run_a.invalid_meshes.into())
        .with("generation_failures", run_a.generation_failures.into())
        .with("shed_jobs", run_a.shed_jobs.into())
        .with("degraded", run_a.degraded.into())
        .with("carve_retries", run_a.carve_retries.into())
        .with("script_bytes", run_a.script.len().into())
        .with("script_deterministic", (run_a.script == run_b.script).into())
        .with("wall_s_run_a", wall_a.into())
        .with("wall_s_run_b", wall_b.into())
        .with("per_class", per_class);

    let path = PathBuf::from("bench_out/scenario_suite.json");
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).expect("create bench_out/");
    }
    std::fs::write(&path, report.render()).expect("write scenario_suite.json");
    eprintln!("wrote {}", path.display());
}
