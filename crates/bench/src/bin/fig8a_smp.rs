//! Figure 8(a): assembling and solving the 77 511-equation system on the
//! Sun Ultra HPC 6000 (20× 250 MHz UltraSPARC-II, shared memory).

use brainshift_bench::{plot_log_series, print_timing_header, print_timing_row, problem_with_equations};
use brainshift_cluster::MachineModel;
use brainshift_fem::{simulate_assemble_solve, MaterialTable, SimOptions, SimProblem};

fn main() {
    let p = problem_with_equations(77_511);
    let materials = MaterialTable::homogeneous();
    let k = SimProblem::new(&p.mesh, &materials, &p.bcs);
    print_timing_header(
        "Figure 8a — Ultra HPC 6000 SMP",
        p.mesh.num_equations(),
        MachineModel::ultra_hpc_6000().name,
    );
    let mut asm_series = Vec::new();
    let mut solve_series = Vec::new();
    for cpus in 1..=20 {
        let (t, _) = simulate_assemble_solve(
            &p.mesh,
            &materials,
            &p.bcs,
            MachineModel::ultra_hpc_6000(),
            cpus,
            &SimOptions::default(),
            Some(&k),
        );
        print_timing_row(&t);
        asm_series.push((cpus, t.assemble_s));
        solve_series.push((cpus, t.solve_s));
    }
    plot_log_series(&[("assemble", asm_series), ("solve", solve_series)], 60);
}
