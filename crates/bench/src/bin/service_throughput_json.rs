//! Open-loop load generator for the intraoperative service: N concurrent
//! phantom surgeries submit scans at a fixed cadence (deadline = cadence,
//! as in an operating room: a registration is useless once the next scan
//! has arrived), swept across worker-pool sizes, plus one run at half the
//! context-cache memory budget. Writes latency percentiles, deadline-miss
//! rate, shed rate, and cache hit rate to
//! `bench_out/service_throughput.json`.
//!
//! ```bash
//! cargo run --release --bin service_throughput_json -- [surgeries] [scans] [cadence_ms]
//! ```

use brainshift_core::{generate_scan_sequence, PipelineConfig, PreparedSurgery, ScanSequence, ScanStatus};
use brainshift_imaging::phantom::{BrainShiftConfig, PhantomConfig};
use brainshift_imaging::volume::{Dims, Spacing};
use brainshift_obs::{BenchReport, JsonValue, Snapshot};
use brainshift_service::{ScanJob, Service, ServiceConfig};
use std::path::PathBuf;
use std::sync::Arc;
// The open-loop schedule needs `Instant`/`Duration` arithmetic for its
// absolute submission times; this is real wall-clock load generation, so
// a logical clock would defeat the purpose (audited keep).
use std::time::{Duration, Instant};

struct RunResult {
    workers: usize,
    budget_bytes: usize,
    submitted: usize,
    rejected: usize,
    completed: usize,
    degraded: usize,
    errors: usize,
    deadline_misses: usize,
    latencies_ms: Vec<f64>,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    /// The service's own metric registry at the end of the run.
    metrics: Snapshot,
}

impl RunResult {
    fn miss_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.completed as f64
        }
    }

    fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted_ms.len() - 1) as f64).round() as usize;
    sorted_ms[idx.min(sorted_ms.len() - 1)]
}

/// One open-loop run: every surgery submits its scans on schedule
/// (staggered starts), regardless of completions — the backlog is the
/// service's problem, which is the point.
fn run_load(
    surgeries: &[(Arc<PreparedSurgery>, ScanSequence)],
    workers: usize,
    budget_bytes: usize,
    cadence: Duration,
) -> RunResult {
    let service = Service::start(ServiceConfig {
        workers,
        memory_budget_bytes: budget_bytes,
        queue_capacity: 64,
        ..Default::default()
    });
    // Preparations are shared across runs; sessions (and the context
    // cache) start fresh per run.
    let ids: Vec<u64> =
        surgeries.iter().map(|(p, _)| service.open_session(Arc::clone(p))).collect();

    let n_scans = surgeries[0].1.scans.len();
    let stagger = cadence / surgeries.len() as u32;
    // Submission schedule: (when, surgery, scan), time-sorted.
    let mut schedule = Vec::new();
    for (k, _) in surgeries.iter().enumerate() {
        for i in 0..n_scans {
            schedule.push((stagger * k as u32 + cadence * i as u32, k, i));
        }
    }
    schedule.sort_by_key(|&(t, k, i)| (t, k, i));

    let t0 = Instant::now();
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for (at, k, i) in schedule {
        if let Some(wait) = at.checked_sub(t0.elapsed()) {
            std::thread::sleep(wait);
        }
        match service.submit(ScanJob {
            session: ids[k],
            intensity: surgeries[k].1.scans[i].intensity.clone(),
            priority: 0,
            deadline: cadence,
        }) {
            Ok(t) => tickets.push(t),
            Err(_) => rejected += 1,
        }
    }

    let submitted = tickets.len() + rejected;
    let mut latencies_ms = Vec::new();
    let (mut completed, mut degraded, mut errors, mut misses) = (0usize, 0usize, 0usize, 0usize);
    for t in tickets {
        match t.wait() {
            Ok(out) => {
                completed += 1;
                if matches!(out.status, ScanStatus::Degraded) {
                    degraded += 1;
                }
                if out.missed_deadline {
                    misses += 1;
                }
                latencies_ms.push(out.latency.as_secs_f64() * 1e3);
            }
            Err(_) => errors += 1,
        }
    }
    let cache = service.cache_stats();
    let metrics = service.metrics_snapshot();
    service.shutdown();
    latencies_ms.sort_by(f64::total_cmp);
    RunResult {
        workers,
        budget_bytes,
        submitted,
        rejected,
        completed,
        degraded,
        errors,
        deadline_misses: misses,
        latencies_ms,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
        metrics,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_surgeries: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16).max(1);
    let n_scans: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(12).max(1);
    // Default cadence is sized for the host: one scan costs ~0.2 s of CPU
    // on the 32³ phantom, so 16 surgeries need ≥ 3.2 CPU-seconds per
    // period; 4 s keeps utilization ~75% on a single core.
    let cadence_ms: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4000);
    let cadence = Duration::from_millis(cadence_ms);

    println!("preparing {n_surgeries} phantom surgeries × {n_scans} scans (cadence {cadence_ms} ms)...");
    let surgeries: Vec<(Arc<PreparedSurgery>, ScanSequence)> = (0..n_surgeries)
        .map(|k| {
            // Vary the deformation so the surgeries are not clones.
            let seq = generate_scan_sequence(
                &PhantomConfig {
                    dims: Dims::new(32, 32, 24),
                    spacing: Spacing::iso(4.5),
                    ..Default::default()
                },
                &BrainShiftConfig {
                    peak_shift_mm: 4.0 + (k % 5) as f64,
                    ..Default::default()
                },
                n_scans,
                n_scans,
            );
            let cfg = PipelineConfig { skip_rigid: true, ..Default::default() };
            let p = PreparedSurgery::new(&seq.reference.labels, cfg).expect("prepare surgery");
            (Arc::new(p), seq)
        })
        .collect();
    let ctx_bytes = surgeries[0]
        .0
        .build_solver_context()
        .expect("probe context")
        .memory_bytes();
    let full_budget = ctx_bytes.saturating_mul(n_surgeries + 2);
    let half_budget = (ctx_bytes * n_surgeries / 2).max(ctx_bytes);
    println!("solver context: {:.1} MiB each\n", ctx_bytes as f64 / (1 << 20) as f64);

    let worker_sweep = [1usize, 2, 4, 8];
    let mut results = Vec::new();
    for &w in &worker_sweep {
        println!("run: {w} worker(s), full budget...");
        let r = run_load(&surgeries, w, full_budget, cadence);
        println!(
            "  {}/{} completed ({} shed, {} degraded, {} late), p50 {:.0} ms p95 {:.0} ms, hit rate {:.1}%",
            r.completed,
            r.submitted,
            r.rejected,
            r.degraded,
            r.deadline_misses,
            percentile(&r.latencies_ms, 50.0),
            percentile(&r.latencies_ms, 95.0),
            r.hit_rate() * 100.0
        );
        results.push(r);
    }
    println!("run: {} worker(s), HALF budget ({:.1} MiB)...", worker_sweep[worker_sweep.len() - 1], half_budget as f64 / (1 << 20) as f64);
    let half = run_load(&surgeries, worker_sweep[worker_sweep.len() - 1], half_budget, cadence);
    println!(
        "  {}/{} completed ({} shed, {} degraded, {} late), {} evictions, hit rate {:.1}%",
        half.completed,
        half.submitted,
        half.rejected,
        half.degraded,
        half.deadline_misses,
        half.cache_evictions,
        half.hit_rate() * 100.0
    );

    // ---- Acceptance checks (at any scale where they are meaningful). ----
    let best = &results[results.len() - 1];
    assert_eq!(best.errors, 0, "typed execution errors under full budget");
    assert_eq!(
        best.deadline_misses, 0,
        "{} deadline misses at {} workers / {} surgeries at default cadence",
        best.deadline_misses, best.workers, n_surgeries
    );
    if n_scans >= 10 {
        assert!(
            best.hit_rate() >= 0.90,
            "warm hit rate {:.3} < 0.90 with a budget that fits every session",
            best.hit_rate()
        );
    }
    assert_eq!(half.errors, 0, "half budget must degrade to cold solves, never to errors");
    assert_eq!(
        half.completed + half.rejected,
        half.submitted,
        "every admitted job completes under half budget"
    );

    // ---- Shared report schema (brainshift.obs.v1). ----
    let all: Vec<&RunResult> = results.iter().chain(std::iter::once(&half)).collect();
    let runs = JsonValue::Arr(
        all.iter()
            .map(|r| {
                JsonValue::obj()
                    .with("workers", r.workers.into())
                    .with("budget_bytes", r.budget_bytes.into())
                    .with("submitted", r.submitted.into())
                    .with("rejected", r.rejected.into())
                    .with("completed", r.completed.into())
                    .with("degraded", r.degraded.into())
                    .with("errors", r.errors.into())
                    .with("deadline_misses", r.deadline_misses.into())
                    .with("deadline_miss_rate", r.miss_rate().into())
                    .with("p50_latency_ms", percentile(&r.latencies_ms, 50.0).into())
                    .with("p95_latency_ms", percentile(&r.latencies_ms, 95.0).into())
                    .with("p99_latency_ms", percentile(&r.latencies_ms, 99.0).into())
                    .with("cache_hits", r.cache_hits.into())
                    .with("cache_misses", r.cache_misses.into())
                    .with("cache_evictions", r.cache_evictions.into())
                    .with("cache_hit_rate", r.hit_rate().into())
            })
            .collect(),
    );
    let mut report = BenchReport::new("service_throughput");
    report.params = JsonValue::obj()
        .with("surgeries", n_surgeries.into())
        .with("scans_per_surgery", n_scans.into())
        .with("cadence_ms", cadence_ms.into())
        .with("context_bytes", ctx_bytes.into());
    // The service registry of the best full-budget run: queue / cache /
    // deadline counters plus per-stage solve spans.
    report.metrics = best.metrics.clone();
    report.extra = JsonValue::obj().with("runs", runs);

    let path = PathBuf::from("bench_out").join("service_throughput.json");
    report.write(&path).expect("write service_throughput.json");
    println!("\nwritten: {}", path.display());
}
