//! Open-loop load generator for the intraoperative service: N concurrent
//! phantom surgeries submit scans at a fixed cadence (deadline = cadence,
//! as in an operating room: a registration is useless once the next scan
//! has arrived), swept across worker-pool sizes, plus one run at half the
//! context-cache memory budget, plus a deterministic fleet simulation at
//! hundreds of surgeries / tens of thousands of jobs. Writes latency
//! percentiles (nearest-rank, ≥100 samples at default scale),
//! deadline-miss rate, shed rate, and cache hit rate to
//! `bench_out/service_throughput.json`.
//!
//! ```bash
//! cargo run --release --bin service_throughput_json -- [surgeries] [scans] [cadence_ms]
//! ```
//!
//! The worker sweep is also the scaling regression gate: p95 latency
//! must be monotone non-increasing across 1 → 2 → 4 workers (the
//! shared-run-queue service *failed* this — adding a worker made p95
//! worse). The wall-clock gate arms only when every percentile has
//! ≥ 100 samples AND the host has ≥ 4 cores (on fewer cores the worker
//! threads time-share and wall-clock scaling is physics, not dispatch);
//! a deterministic logical-clock sweep of the same dispatch code is
//! always run and always gated strictly, so the emitted artifact carries
//! host-independent monotone-scaling evidence either way.

use brainshift_core::{generate_scan_sequence, PipelineConfig, PreparedSurgery, ScanSequence, ScanStatus};
use brainshift_imaging::phantom::{BrainShiftConfig, PhantomConfig};
use brainshift_imaging::volume::{Dims, Spacing};
use brainshift_obs::{BenchReport, JsonValue, Snapshot};
use brainshift_service::{
    simulate_fleet, AffinityConfig, FleetSimConfig, FleetSimReport, ScanJob, SchedulerPolicy,
    Service, ServiceConfig, SimJob, StealPolicy,
};
use std::path::PathBuf;
use std::sync::Arc;
// The open-loop schedule needs `Instant`/`Duration` arithmetic for its
// absolute submission times; this is real wall-clock load generation, so
// a logical clock would defeat the purpose (audited keep).
use std::time::{Duration, Instant};

struct RunResult {
    workers: usize,
    budget_bytes: usize,
    submitted: usize,
    rejected: usize,
    completed: usize,
    degraded: usize,
    errors: usize,
    deadline_misses: usize,
    latencies_ms: Vec<f64>,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    stolen: u64,
    preferred: u64,
    /// The service's own metric registry at the end of the run.
    metrics: Snapshot,
}

impl RunResult {
    fn miss_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.completed as f64
        }
    }

    fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Nearest-rank percentile. The old implementation rounded an index into
/// the sample array, which at small n silently collapsed p95/p99/max
/// into the same sample (9 jobs → index 8 for all three) — credible-
/// looking numbers with no information in them. Nearest-rank is the
/// standard conservative estimator, and the monotone-p95 gate below only
/// arms at ≥ 100 samples so a tail percentile always has real data
/// behind it.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// One open-loop run: every surgery submits its scans on schedule
/// (staggered starts), regardless of completions — the backlog is the
/// service's problem, which is the point.
fn run_load(
    surgeries: &[(Arc<PreparedSurgery>, ScanSequence)],
    workers: usize,
    budget_bytes: usize,
    cadence: Duration,
) -> RunResult {
    let service = Service::start(ServiceConfig {
        workers,
        memory_budget_bytes: budget_bytes,
        queue_capacity: 64,
        ..Default::default()
    });
    // Preparations are shared across runs; sessions (and the context
    // cache) start fresh per run.
    let ids: Vec<u64> =
        surgeries.iter().map(|(p, _)| service.open_session(Arc::clone(p))).collect();

    let n_scans = surgeries[0].1.scans.len();
    let stagger = cadence / surgeries.len() as u32;
    // Submission schedule: (when, surgery, scan), time-sorted.
    let mut schedule = Vec::new();
    for (k, _) in surgeries.iter().enumerate() {
        for i in 0..n_scans {
            schedule.push((stagger * k as u32 + cadence * i as u32, k, i));
        }
    }
    schedule.sort_by_key(|&(t, k, i)| (t, k, i));

    let t0 = Instant::now();
    let mut tickets = Vec::new();
    let mut rejected = 0usize;
    for (at, k, i) in schedule {
        if let Some(wait) = at.checked_sub(t0.elapsed()) {
            std::thread::sleep(wait);
        }
        match service.submit(ScanJob {
            session: ids[k],
            intensity: surgeries[k].1.scans[i].intensity.clone(),
            priority: 0,
            deadline: cadence,
        }) {
            Ok(t) => tickets.push(t),
            Err(_) => rejected += 1,
        }
    }

    let submitted = tickets.len() + rejected;
    let mut latencies_ms = Vec::new();
    let (mut completed, mut degraded, mut errors, mut misses) = (0usize, 0usize, 0usize, 0usize);
    for t in tickets {
        match t.wait() {
            Ok(out) => {
                completed += 1;
                if matches!(out.status, ScanStatus::Degraded) {
                    degraded += 1;
                }
                if out.missed_deadline {
                    misses += 1;
                }
                latencies_ms.push(out.latency.as_secs_f64() * 1e3);
            }
            Err(_) => errors += 1,
        }
    }
    let cache = service.cache_stats();
    let metrics = service.metrics_snapshot();
    service.shutdown();
    latencies_ms.sort_by(f64::total_cmp);
    RunResult {
        workers,
        budget_bytes,
        submitted,
        rejected,
        completed,
        degraded,
        errors,
        deadline_misses: misses,
        latencies_ms,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        cache_evictions: cache.evictions,
        stolen: metrics.counter("service.jobs.stolen").unwrap_or(0),
        preferred: metrics.counter("service.jobs.preferred").unwrap_or(0),
        metrics,
    }
}

/// Deterministic integer mix (SplitMix64 finalizer) for scripted
/// per-job cost variation — no RNG state, a pure function of the job's
/// coordinates, so the fleet simulation is bit-reproducible.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic scaling sweep on the logical clock: the same affinity
/// dispatch the threaded service runs, on a fixed saturating load, for
/// 1/2/4/8 workers. Unlike the wall-clock sweep this is exact — no host
/// noise, no core-count dependence — so the monotone-p95 contract is
/// checked strictly, and the committed artifact carries a scaling curve
/// that is reproducible anywhere.
fn run_des_sweep() -> Vec<(usize, u64)> {
    // 8 sessions × 50 scans, each costing 600 µs at a 1 000 µs cadence:
    // one worker sees 4.8× its capacity, so added workers have real work
    // to absorb.
    let mut jobs = Vec::new();
    for k in 0..50u64 {
        for s in 1..=8u64 {
            jobs.push(SimJob {
                session: s,
                submit_us: k * 1_000,
                deadline_us: k * 1_000 + 2_000,
                priority: 0,
                cost_us: 600,
                ctx_bytes: 1 << 20,
            });
        }
    }
    [1usize, 2, 4, 8]
        .into_iter()
        .map(|workers| {
            let r = brainshift_service::simulate_affinity(
                &AffinityConfig {
                    workers,
                    policy: SchedulerPolicy {
                        queue_capacity: jobs.len(),
                        aging_weight: 1.0,
                        min_service_us: 0,
                        priority_boost_us: 0,
                    },
                    budget_bytes: 512 << 20,
                    steal: StealPolicy::default(),
                },
                &jobs,
            );
            let mut lat: Vec<u64> = r
                .outcomes
                .iter()
                .filter_map(|o| {
                    o.completed_us.map(|c| c.saturating_sub(jobs[o.script_index].submit_us))
                })
                .collect();
            lat.sort_unstable();
            let rank = ((0.95 * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
            (workers, lat[rank - 1])
        })
        .collect()
}

/// The fleet, at a scale no single machine run can reach: hundreds of
/// concurrent surgeries, tens of thousands of scan jobs, on the logical
/// clock (the simulators run the production queue/cache/placement code,
/// so shed rate, tail latency, and per-shard hit rates are those of the
/// real policies).
fn run_fleet_sim(shards: usize, sessions: u64, rounds: usize) -> (FleetSimReport, Vec<SimJob>) {
    let cadence: u64 = 1_000_000; // 1 s scanner cadence, logical µs
    let mean_cost: u64 = 30_000; // ≈ the measured 32³ warm solve
    let mut jobs = Vec::with_capacity(sessions as usize * rounds);
    for k in 0..rounds {
        for s in 1..=sessions {
            // Stable per-session phase + per-job cost jitter (±50%),
            // both pure hashes: the script is a value, not a sample.
            let phase = mix(s) % cadence;
            let submit = k as u64 * cadence + phase;
            let cost = mean_cost / 2 + mix(s ^ (k as u64) << 32) % mean_cost;
            jobs.push(SimJob {
                session: s,
                submit_us: submit,
                deadline_us: submit + cadence,
                priority: 0,
                cost_us: cost,
                ctx_bytes: 4 << 20,
            });
        }
    }
    jobs.sort_by_key(|j| (j.submit_us, j.session));
    let cfg = FleetSimConfig {
        shards,
        shard: AffinityConfig {
            workers: 2,
            policy: SchedulerPolicy {
                queue_capacity: 256,
                aging_weight: 1.0,
                min_service_us: 0,
                priority_boost_us: 1_000_000,
            },
            // Roomy enough that eviction pressure comes from session
            // count, not from a starved budget.
            budget_bytes: 512 << 20,
            steal: StealPolicy::default(),
        },
    };
    (simulate_fleet(&cfg, &jobs), jobs)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let n_surgeries: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(16).max(1);
    let n_scans: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(8).max(1);
    // Default cadence is sized so the offered load fits a single CPU
    // core: one scan costs ~35–70 ms on the 32³ phantom, so 16 surgeries
    // offer at most ~1.1 s of work per 2 s period. That keeps the run
    // meaningful on small hosts (deadlines are holdable, queues stay
    // shallow); the *scaling contrast* comes from the deterministic
    // logical-clock sweep below, which saturates one worker by
    // construction. Pass a shorter cadence to stress wall-clock overload
    // behaviour explicitly.
    let cadence_ms: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(2000);
    let cadence = Duration::from_millis(cadence_ms);

    println!("preparing {n_surgeries} phantom surgeries × {n_scans} scans (cadence {cadence_ms} ms)...");
    let surgeries: Vec<(Arc<PreparedSurgery>, ScanSequence)> = (0..n_surgeries)
        .map(|k| {
            // Vary the deformation so the surgeries are not clones.
            let seq = generate_scan_sequence(
                &PhantomConfig {
                    dims: Dims::new(32, 32, 24),
                    spacing: Spacing::iso(4.5),
                    ..Default::default()
                },
                &BrainShiftConfig {
                    peak_shift_mm: 4.0 + (k % 5) as f64,
                    ..Default::default()
                },
                n_scans,
                n_scans,
            );
            let cfg = PipelineConfig { skip_rigid: true, ..Default::default() };
            let p = PreparedSurgery::new(&seq.reference.labels, cfg).expect("prepare surgery");
            (Arc::new(p), seq)
        })
        .collect();
    let ctx_bytes = surgeries[0]
        .0
        .build_solver_context()
        .expect("probe context")
        .memory_bytes();
    let full_budget = ctx_bytes.saturating_mul(n_surgeries + 2);
    let half_budget = (ctx_bytes * n_surgeries / 2).max(ctx_bytes);
    println!("solver context: {:.1} MiB each\n", ctx_bytes as f64 / (1 << 20) as f64);

    let worker_sweep = [1usize, 2, 4, 8];
    let mut results = Vec::new();
    for &w in &worker_sweep {
        println!("run: {w} worker(s), full budget...");
        let r = run_load(&surgeries, w, full_budget, cadence);
        println!(
            "  {}/{} completed ({} shed, {} degraded, {} late), p50 {:.0} ms p95 {:.0} ms, hit rate {:.1}%, {} stolen",
            r.completed,
            r.submitted,
            r.rejected,
            r.degraded,
            r.deadline_misses,
            percentile(&r.latencies_ms, 50.0),
            percentile(&r.latencies_ms, 95.0),
            r.hit_rate() * 100.0,
            r.stolen,
        );
        results.push(r);
    }
    println!("run: {} worker(s), HALF budget ({:.1} MiB)...", worker_sweep[worker_sweep.len() - 1], half_budget as f64 / (1 << 20) as f64);
    let half = run_load(&surgeries, worker_sweep[worker_sweep.len() - 1], half_budget, cadence);
    println!(
        "  {}/{} completed ({} shed, {} degraded, {} late), {} evictions, hit rate {:.1}%",
        half.completed,
        half.submitted,
        half.rejected,
        half.degraded,
        half.deadline_misses,
        half.cache_evictions,
        half.hit_rate() * 100.0
    );

    // ---- Fleet simulation (deterministic, logical clock). ----
    let (fleet_shards, fleet_sessions, fleet_rounds) = (4usize, 240u64, 100usize);
    println!(
        "\nfleet sim: {fleet_shards} shards × 2 workers, {fleet_sessions} surgeries × {fleet_rounds} scans..."
    );
    let (fleet, fleet_jobs) = run_fleet_sim(fleet_shards, fleet_sessions, fleet_rounds);
    println!(
        "  {} jobs: {} completed, {} shed (rate {:.4}), {} late, p50 {:.0} ms p99 {:.0} ms",
        fleet_jobs.len(),
        fleet.completed,
        fleet.shed,
        fleet.shed_rate,
        fleet.missed_deadlines,
        fleet.p50_latency_us as f64 / 1e3,
        fleet.p99_latency_us as f64 / 1e3,
    );
    for (i, hr) in fleet.per_shard_hit_rate.iter().enumerate() {
        let sessions_on_shard = fleet
            .shards
            .get(i)
            .map(|r| {
                let mut s: Vec<u64> = r.outcomes.iter().map(|o| o.session).collect();
                s.sort_unstable();
                s.dedup();
                s.len()
            })
            .unwrap_or(0);
        println!("  shard {i}: {sessions_on_shard} surgeries, warm hit rate {:.1}%", hr * 100.0);
    }

    // ---- Deterministic scaling sweep (logical clock). ----
    let des = run_des_sweep();
    println!("\nDES scaling sweep (8 sessions × 50 scans, 600 µs cost @ 1 ms cadence):");
    for &(w, p95) in &des {
        println!("  {w} worker(s): p95 {p95} µs");
    }

    // ---- Acceptance checks (at any scale where they are meaningful). ----
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let best = &results[results.len() - 1];
    assert_eq!(best.errors, 0, "typed execution errors under full budget");
    if cores >= best.workers {
        // Real parallelism behind the pool: the widest run holds every
        // deadline at default load.
        assert_eq!(
            best.deadline_misses, 0,
            "{} deadline misses at {} workers / {} surgeries at default cadence",
            best.deadline_misses, best.workers, n_surgeries
        );
    } else {
        // Fewer cores than workers: threads time-share the CPU and
        // wall-clock deadlines are physics, not dispatch. The check
        // degrades to the actual regression contract — adding workers
        // must never make deadline behaviour meaningfully worse (5 pp of
        // slack absorbs scheduler jitter on a time-shared core).
        assert!(
            best.miss_rate() <= results[0].miss_rate() + 0.05,
            "deadline-miss rate rose from {:.4} at {} workers to {:.4} at {} workers ({cores} cores)",
            results[0].miss_rate(),
            results[0].workers,
            best.miss_rate(),
            best.workers
        );
    }
    if n_scans >= 10 {
        assert!(
            best.hit_rate() >= 0.90,
            "warm hit rate {:.3} < 0.90 with a budget that fits every session",
            best.hit_rate()
        );
    }
    assert_eq!(half.errors, 0, "half budget must degrade to cold solves, never to errors");
    assert_eq!(
        half.completed + half.rejected,
        half.submitted,
        "every admitted job completes under half budget"
    );

    // The DES sweep is exact, so the monotone contract is strict: the
    // per-worker queues with sticky placement must never lose tail
    // latency as workers are added.
    for pair in des.windows(2) {
        let (&(w_lo, p_lo), &(w_hi, p_hi)) = (&pair[0], &pair[1]);
        if w_hi > 4 {
            continue; // 4 → 8 is reported, not gated (flat tail).
        }
        assert!(
            p_hi <= p_lo,
            "negative scaling in the deterministic sweep: p95 rose from {p_lo} µs at {w_lo} workers to {p_hi} µs at {w_hi} workers"
        );
    }
    println!("scaling gate (logical clock): p95 monotone non-increasing across 1 → 2 → 4 workers ✓");

    // The wall-clock gate: with ≥ 100 samples behind each percentile and
    // enough cores that worker threads actually run in parallel, p95
    // must not rise as workers are added (1 → 2 → 4). Tolerance is one
    // nearest-rank neighbour's worth of wall-clock noise: 5% + 2 ms.
    let credible = results.iter().all(|r| r.latencies_ms.len() >= 100) && cores >= 4;
    if credible {
        for pair in results.windows(2) {
            if pair[1].workers > 4 {
                continue; // 4 → 8 is reported, not gated (flat tail).
            }
            let (lo, hi) = (&pair[0], &pair[1]);
            let (p_lo, p_hi) =
                (percentile(&lo.latencies_ms, 95.0), percentile(&hi.latencies_ms, 95.0));
            assert!(
                p_hi <= p_lo * 1.05 + 2.0,
                "negative scaling: p95 rose from {:.1} ms at {} workers to {:.1} ms at {} workers",
                p_lo,
                lo.workers,
                p_hi,
                hi.workers
            );
        }
        println!("scaling gate (wall clock): p95 monotone non-increasing across 1 → 2 → 4 workers ✓");
    } else if cores < 4 {
        println!("scaling gate (wall clock): skipped ({cores} core(s) — workers time-share the CPU)");
    } else {
        println!(
            "scaling gate (wall clock): skipped ({} samples < 100 — smoke scale)",
            results.iter().map(|r| r.latencies_ms.len()).min().unwrap_or(0)
        );
    }
    // The fleet simulation is deterministic by construction; spot-check
    // the invariants the report relies on.
    assert_eq!(
        fleet.completed + fleet.shed,
        fleet_jobs.len() as u64,
        "fleet conservation: every job completes or is shed"
    );
    assert!(fleet.shed_rate < 0.5, "fleet shed rate {:.3} — misconfigured load", fleet.shed_rate);

    // ---- Shared report schema (brainshift.obs.v1). ----
    let all: Vec<&RunResult> = results.iter().chain(std::iter::once(&half)).collect();
    let runs = JsonValue::Arr(
        all.iter()
            .map(|r| {
                JsonValue::obj()
                    .with("workers", r.workers.into())
                    .with("budget_bytes", r.budget_bytes.into())
                    .with("submitted", r.submitted.into())
                    .with("rejected", r.rejected.into())
                    .with("completed", r.completed.into())
                    .with("degraded", r.degraded.into())
                    .with("errors", r.errors.into())
                    .with("deadline_misses", r.deadline_misses.into())
                    .with("deadline_miss_rate", r.miss_rate().into())
                    .with("samples", r.latencies_ms.len().into())
                    .with("p50_latency_ms", percentile(&r.latencies_ms, 50.0).into())
                    .with("p95_latency_ms", percentile(&r.latencies_ms, 95.0).into())
                    .with("p99_latency_ms", percentile(&r.latencies_ms, 99.0).into())
                    .with("cache_hits", r.cache_hits.into())
                    .with("cache_misses", r.cache_misses.into())
                    .with("cache_evictions", r.cache_evictions.into())
                    .with("cache_hit_rate", r.hit_rate().into())
                    .with("jobs_preferred", r.preferred.into())
                    .with("jobs_stolen", r.stolen.into())
            })
            .collect(),
    );
    let per_shard = JsonValue::Arr(
        fleet
            .shards
            .iter()
            .enumerate()
            .map(|(i, r)| {
                JsonValue::obj()
                    .with("shard", i.into())
                    .with("completed", r.metrics.counter("service.jobs.completed").unwrap_or(0).into())
                    .with("rejected", r.metrics.counter("service.jobs.rejected").unwrap_or(0).into())
                    .with("cache_hit_rate", fleet.per_shard_hit_rate.get(i).copied().unwrap_or(0.0).into())
                    .with("jobs_stolen", r.metrics.counter("service.jobs.stolen").unwrap_or(0).into())
                    .with(
                        "jobs_preferred",
                        r.metrics.counter("service.jobs.preferred").unwrap_or(0).into(),
                    )
            })
            .collect(),
    );
    let fleet_json = JsonValue::obj()
        .with("shards", fleet_shards.into())
        .with("workers_per_shard", 2usize.into())
        .with("surgeries", fleet_sessions.into())
        .with("jobs", fleet_jobs.len().into())
        .with("completed", fleet.completed.into())
        .with("shed", fleet.shed.into())
        .with("shed_rate", fleet.shed_rate.into())
        .with("missed_deadlines", fleet.missed_deadlines.into())
        .with("p50_latency_us", fleet.p50_latency_us.into())
        .with("p99_latency_us", fleet.p99_latency_us.into())
        .with("per_shard", per_shard);
    let scaling_des = JsonValue::Arr(
        des.iter()
            .map(|&(w, p95)| {
                JsonValue::obj().with("workers", w.into()).with("p95_latency_us", p95.into())
            })
            .collect(),
    );
    let mut report = BenchReport::new("service_throughput");
    report.params = JsonValue::obj()
        .with("surgeries", n_surgeries.into())
        .with("scans_per_surgery", n_scans.into())
        .with("cadence_ms", cadence_ms.into())
        .with("context_bytes", ctx_bytes.into())
        .with("host_cores", cores.into())
        .with("percentile_method", "nearest_rank".into());
    // The service registry of the best full-budget run: queue / cache /
    // deadline counters plus per-stage solve spans.
    report.metrics = best.metrics.clone();
    report.extra = JsonValue::obj()
        .with("runs", runs)
        .with("scaling_des", scaling_des)
        .with("fleet", fleet_json);

    let path = PathBuf::from("bench_out").join("service_throughput.json");
    report.write(&path).expect("write service_throughput.json");
    println!("\nwritten: {}", path.display());
}
