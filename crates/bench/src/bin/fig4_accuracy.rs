//! Figure 4: accuracy of the recovered volumetric deformation.
//!
//! The paper shows four 2-D slices: (a) the first intraoperative scan,
//! (b) the later scan after brain shift, (c) the first scan deformed by
//! the simulation to match, (d) the magnitude of the difference — judged
//! by "the very small intensity differences at the boundary of the
//! simulated deformed brain", plus "a small misregistration of the
//! lateral ventricles" blamed on the homogeneous model.
//!
//! We regenerate the four slices as PGM files and, because our phantom
//! has ground truth, print the quantitative versions: intensity residual
//! statistics before/after simulation, per-structure Dice, and the
//! deformation-field error report.

use brainshift_core::case::{generate_elastic_case, ElasticCaseOptions};
use brainshift_core::metrics::{field_error, intensity_residual, structure_overlaps};
use brainshift_core::pipeline::{composite_warped, run_pipeline, PipelineConfig};
use brainshift_fem::MaterialTable;
use brainshift_imaging::field::warp_labels_backward;
use brainshift_imaging::io::write_slice_pgm;
use brainshift_imaging::phantom::{BrainShiftConfig, PhantomConfig};
use brainshift_imaging::volume::{Dims, Spacing, Volume};
use brainshift_imaging::labels;
use std::path::PathBuf;

fn main() {
    let out_dir = PathBuf::from("bench_out");
    std::fs::create_dir_all(&out_dir).expect("create bench_out/");

    println!("## Figure 4 — accuracy of the simulated deformation\n");
    let cfg = PhantomConfig {
        dims: Dims::new(64, 64, 48),
        spacing: Spacing::iso(2.5),
        ..Default::default()
    };
    let shift = BrainShiftConfig { peak_shift_mm: 8.0, resect_tumor: true, ..Default::default() };
    // Heterogeneous ground truth vs the pipeline's homogeneous model:
    // reproduces the paper's ventricle-misregistration observation.
    let case = generate_elastic_case(
        &cfg,
        &shift,
        &ElasticCaseOptions { materials: MaterialTable::heterogeneous(), ..Default::default() },
    );
    println!("ground truth: {} equations, peak shift {:.1} mm", case.gt_equations, shift.peak_shift_mm);

    let pipe_cfg = PipelineConfig { skip_rigid: true, ..Default::default() };
    let res = run_pipeline(&case.preop.intensity, &case.preop.labels, &case.intraop.intensity, &pipe_cfg).expect("pipeline failed");
    println!(
        "pipeline: mesh {} nodes / {} tets, FEM {} eqs ({} free), GMRES {} iters, converged: {}",
        res.mesh.num_nodes(),
        res.mesh.num_tets(),
        res.fem.total_equations,
        res.fem.reduced_equations,
        res.fem.stats.iterations,
        res.fem.stats.converged()
    );

    // ---- The four slices. ----
    let z = cfg.dims.nz / 2;
    let (lo, hi) = case.preop.intensity.min_max();
    write_slice_pgm(&case.preop.intensity, z, lo, hi, &out_dir.join("fig4a_first_scan.pgm")).unwrap();
    write_slice_pgm(&case.intraop.intensity, z, lo, hi, &out_dir.join("fig4b_second_scan.pgm")).unwrap();
    let comp = composite_warped(&res.warped_reference, &case.intraop.intensity, &res.intraop_seg);
    write_slice_pgm(&comp, z, lo, hi, &out_dir.join("fig4c_simulated_match.pgm")).unwrap();
    let diff = Volume::from_vec(
        comp.dims(),
        comp.spacing(),
        comp.data()
            .iter()
            .zip(case.intraop.intensity.data())
            .map(|(a, b)| (a - b).abs())
            .collect(),
    );
    write_slice_pgm(&diff, z, 0.0, hi * 0.5, &out_dir.join("fig4d_difference.pgm")).unwrap();
    // Checkerboard QA composites: rigid-only vs after simulation.
    let cb_before = brainshift_imaging::similarity::checkerboard(&case.preop.intensity, &case.intraop.intensity, 8);
    let cb_after = brainshift_imaging::similarity::checkerboard(&comp, &case.intraop.intensity, 8);
    write_slice_pgm(&cb_before, z, lo, hi, &out_dir.join("fig4_checker_rigid.pgm")).unwrap();
    write_slice_pgm(&cb_after, z, lo, hi, &out_dir.join("fig4_checker_simulated.pgm")).unwrap();
    println!("\nslices written to bench_out/fig4a..d*.pgm (+ checkerboard QA, axial z={z})");

    // ---- Quantitative Figure 4(d). ----
    let brain_mask = case.intraop.labels.map(|&l| labels::is_brain_tissue(l));
    let before = intensity_residual(&case.preop.intensity, &case.intraop.intensity, &brain_mask);
    let after = intensity_residual(&comp, &case.intraop.intensity, &brain_mask);
    // Lower bound: even a perfect registration leaves scan-to-scan noise
    // (the paper: "intrinsic MR scanner intensity variability causes a
    // small variation in the observed voxel intensities from scan to
    // scan"). Measure it directly: re-render the SAME deformed anatomy
    // with an independent noise realization and difference the renders.
    let rerender = brainshift_imaging::phantom::render_intensity(
        &case.intraop.labels,
        &PhantomConfig { seed: cfg.seed.wrapping_add(1234), ..cfg.clone() },
    );
    let floor = intensity_residual(&rerender, &case.intraop.intensity, &brain_mask);
    println!("\nintensity residual in the brain (|I1 - I2| per voxel):");
    println!("  rigid alignment only : mean {:>6.2}  rms {:>6.2}  p95 {:>6.2}", before.mean_abs, before.rms, before.p95);
    println!("  after simulation     : mean {:>6.2}  rms {:>6.2}  p95 {:>6.2}", after.mean_abs, after.rms, after.p95);
    println!("  scan-noise floor     : mean {:>6.2}  rms {:>6.2}  p95 {:>6.2}", floor.mean_abs, floor.rms, floor.p95);
    println!(
        "  => simulation removes {:.0}% of the correctable rms residual",
        (before.rms - after.rms) / (before.rms - floor.rms).max(1e-9) * 100.0
    );
    println!("  (the remaining gap concentrates at the brain boundary and in the");
    println!("   gray/white texture, which misregisters in proportion to the");
    println!("   residual field error below)");

    // ---- Field error (possible only with synthetic ground truth). ----
    let fe = field_error(&res.forward_field, &case.gt_forward, 2.0);
    println!("\ndeformation-field error where ‖truth‖ > 2 mm ({} voxels):", fe.voxels);
    println!(
        "  mean {:.2} mm, rms {:.2} mm, max {:.2} mm (mean truth {:.2} mm, relative {:.2})",
        fe.mean_error_mm, fe.rms_error_mm, fe.max_error_mm, fe.mean_truth_mm, fe.relative_error
    );

    // ---- The ventricle observation. ----
    let warped_seg = warp_labels_backward(&case.preop.labels, &res.backward_field, labels::BACKGROUND);
    let overlaps = structure_overlaps(
        &case.preop.labels,
        &warped_seg,
        &case.intraop.labels,
        &[labels::BRAIN, labels::VENTRICLE, labels::FALX],
    );
    println!("\nper-structure Dice (rigid-only → after simulation):");
    for o in &overlaps {
        println!("  {:<10} {:.3} → {:.3}", o.name, o.dice_rigid_only, o.dice_after_simulation);
    }
    println!("\n(homogeneous pipeline vs heterogeneous truth: residual ventricle");
    println!(" misregistration is expected — the paper's Fig 4 discussion.)");
}
