//! Measure the per-scan biomechanical solve on the host — cold path vs
//! persistent solver context — and write the numbers to
//! `bench_out/warm_solve.json` in the shared `brainshift.obs.v1` report
//! schema so future changes have a perf trajectory.
//!
//! ```bash
//! cargo run --release --bin warm_solve_json -- [equations] [scans]
//! ```

use brainshift_bench::{cap_bcs, problem_with_equations};
use brainshift_fem::{
    solve_deformation, DirichletBcs, FemSolveConfig, MaterialTable, SolverContext,
};
use brainshift_imaging::phantom::BrainShiftConfig;
use brainshift_obs::{BenchReport, JsonValue, Registry, Stopwatch};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let equations: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(24_000);
    let n_scans: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(5).max(1);

    println!("building a ~{equations}-equation brain FEM problem...");
    let p = problem_with_equations(equations);
    let materials = MaterialTable::homogeneous();
    let full_bcs = cap_bcs(&p.mesh, &p.model, &BrainShiftConfig::default());
    let cfg = FemSolveConfig::default();
    println!(
        "mesh: {} nodes → {} equations; {} scans of progressive shift\n",
        p.mesh.num_nodes(),
        p.mesh.num_equations(),
        n_scans
    );

    let metrics = Registry::with_wall_clock();

    // Progressive-shift scans: stage i prescribes (i+1)/n of the full
    // craniotomy-cap displacement, as in the intraoperative sequence.
    let scans: Vec<DirichletBcs> = (0..n_scans)
        .map(|i| {
            let s = (i + 1) as f64 / n_scans as f64;
            let mut bcs = DirichletBcs::new();
            for (n, u) in full_bcs.iter() {
                bcs.set(n, u * s);
            }
            bcs
        })
        .collect();

    // ---- Cold path: assemble + reduce + factor + solve, every scan. ----
    let mut cold_s = Vec::with_capacity(n_scans);
    let mut cold_iters = Vec::with_capacity(n_scans);
    let mut cold_solutions = Vec::with_capacity(n_scans);
    for bcs in &scans {
        let sw = Stopwatch::wall();
        let sol = solve_deformation(&p.mesh, &materials, bcs, &cfg).expect("FEM solve rejected its inputs");
        let dt = sw.elapsed_s();
        cold_s.push(dt);
        metrics.record_span_s("cold/solve", dt);
        assert!(sol.stats.converged(), "cold solve did not converge");
        cold_iters.push(sol.stats.iterations);
        cold_solutions.push(sol.displacements);
    }

    // ---- Persistent context: setup once, warm-started solves. ----
    let sw = Stopwatch::wall();
    let mut ctx = SolverContext::new(&p.mesh, &materials, &full_bcs.nodes_sorted(), cfg.clone()).expect("solver context build failed");
    let setup_s = sw.elapsed_s();
    metrics.record_span_s("context/setup", setup_s);
    let mut warm_s = Vec::with_capacity(n_scans);
    let mut warm_iters = Vec::with_capacity(n_scans);
    let mut max_dev = 0.0f64;
    for (i, bcs) in scans.iter().enumerate() {
        let sw = Stopwatch::wall();
        let sol = ctx.solve(bcs).expect("solve failed");
        let dt = sw.elapsed_s();
        warm_s.push(dt);
        metrics.record_span_s("warm/solve", dt);
        assert!(sol.stats.converged(), "warm solve did not converge");
        warm_iters.push(sol.stats.iterations);
        for (a, b) in sol.displacements.iter().zip(&cold_solutions[i]) {
            max_dev = max_dev.max((*a - *b).norm());
        }
    }
    let stats = ctx.stats();
    assert_eq!(stats.assemblies, 1);
    assert_eq!(stats.factorizations, 1);
    // Both paths stop at a relative residual of `tolerance`; two converged
    // solutions may differ by O(tolerance × ‖u‖) in displacement.
    let peak_mm = cold_solutions
        .iter()
        .flatten()
        .map(|u| u.norm())
        .fold(0.0, f64::max);
    let dev_bound = 50.0 * cfg.options.tolerance * peak_mm.max(1.0);
    assert!(
        max_dev < dev_bound,
        "context and cold displacements diverge: {max_dev:.3e} mm (bound {dev_bound:.3e})"
    );

    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let cold_mean = mean(&cold_s);
    let warm_mean = mean(&warm_s);
    println!("{:<28} {:>10} {:>8}", "path", "mean/scan", "iters");
    println!(
        "{:<28} {:>8.3} s {:>8}",
        "cold (reassemble+refactor)",
        cold_mean,
        cold_iters.iter().sum::<usize>() / n_scans
    );
    println!(
        "{:<28} {:>8.3} s {:>8}",
        "context (warm-started)",
        warm_mean,
        warm_iters.iter().sum::<usize>() / n_scans
    );
    println!(
        "context setup (once/surgery) {:>7.3} s; per-scan speedup ×{:.2}; max deviation {:.2e} mm",
        setup_s,
        cold_mean / warm_mean,
        max_dev
    );
    assert!(
        warm_mean < cold_mean,
        "context path not faster: {warm_mean:.3}s vs {cold_mean:.3}s"
    );

    metrics.counter_add("scans", n_scans as u64);
    metrics.counter_add("assemblies", stats.assemblies as u64);
    metrics.counter_add("factorizations", stats.factorizations as u64);
    metrics.gauge_set("per_scan_speedup", cold_mean / warm_mean);
    metrics.gauge_set("max_displacement_deviation_mm", max_dev);

    let f64_arr = |v: &[f64]| JsonValue::Arr(v.iter().map(|&x| JsonValue::Num(x)).collect());
    let usize_arr = |v: &[usize]| JsonValue::Arr(v.iter().map(|&x| JsonValue::from(x)).collect());
    let mut report = BenchReport::new("warm_solve");
    report.params = JsonValue::obj()
        .with("equations", p.mesh.num_equations().into())
        .with("scans", n_scans.into());
    report.metrics = metrics.snapshot();
    report.extra = JsonValue::obj()
        .with("cold_scan_s", f64_arr(&cold_s))
        .with("warm_scan_s", f64_arr(&warm_s))
        .with("cold_mean_s", cold_mean.into())
        .with("warm_mean_s", warm_mean.into())
        .with("cold_iterations", usize_arr(&cold_iters))
        .with("warm_iterations", usize_arr(&warm_iters));

    let path = PathBuf::from("bench_out").join("warm_solve.json");
    report.write(&path).expect("write warm_solve.json");
    println!("\nwritten: {}", path.display());
}
