//! # brainshift-bench
//!
//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (see DESIGN.md §4 for the experiment index). The binaries in
//! `src/bin/` print the same rows/series the paper reports; the criterion
//! benches in `benches/` cover kernel-level performance.

#![warn(missing_docs)]

use brainshift_core::case::cap_surface_displacement;
use brainshift_fem::{DirichletBcs, SimTimings};
use brainshift_imaging::phantom::{BrainShiftConfig, HeadModel, PhantomConfig};
use brainshift_imaging::volume::{Dims, Spacing, Volume};
use brainshift_imaging::{labels, Vec3};
use brainshift_mesh::{boundary_nodes, mesh_labeled_volume, MesherConfig, TetMesh};

/// A benchmark problem: mesh + model + the surface displacements the
/// paper's timing runs solved for.
pub struct BenchProblem {
    /// The labeled phantom volume the mesh was generated from.
    pub labels: Volume<u8>,
    /// The tetrahedral FEM mesh.
    pub mesh: TetMesh,
    /// The anatomical model (for boundary-condition geometry).
    pub model: HeadModel,
    /// Craniotomy-cap surface displacements (Dirichlet data).
    pub bcs: DirichletBcs,
}

/// Generate a labels-only phantom (no intensity rendering — the timing
/// figures only need the mesh).
pub fn phantom_labels(dims: Dims, spacing: Spacing) -> (Volume<u8>, HeadModel) {
    let cfg = PhantomConfig { dims, spacing, ..Default::default() };
    let model = HeadModel::fit(dims, spacing, &cfg);
    let vol = Volume::from_fn(dims, spacing, |x, y, z| {
        model.label_at(Vec3::new(
            x as f64 * spacing.dx,
            y as f64 * spacing.dy,
            z as f64 * spacing.dz,
        ))
    });
    (vol, model)
}

/// Build a benchmark problem whose FEM system has approximately
/// `target_equations` equations (3 per node), by scaling the phantom grid.
/// The paper's two systems are 77 511 and 253 308 equations.
pub fn problem_with_equations(target_equations: usize) -> BenchProblem {
    let target_nodes = target_equations / 3;
    // Node count scales with meshed volume; search the grid scale.
    // Base: 128×128×80 at step 2 gives ~26k nodes (~78k equations).
    let mut scale = (target_nodes as f64 / 26000.0).cbrt();
    let build = |scale: f64| -> (Volume<u8>, HeadModel, TetMesh) {
        let nx = (((128.0 * scale) / 2.0).round() as usize * 2).max(16);
        let nz = (((80.0 * scale) / 2.0).round() as usize * 2).max(12);
        // Keep the physical head size constant (~240×240×150 mm)
        // regardless of grid size.
        let spacing = Spacing::new(240.0 / nx as f64, 240.0 / nx as f64, 150.0 / nz as f64);
        let (vol, model) = phantom_labels(Dims::new(nx, nx, nz), spacing);
        let mesh = mesh_labeled_volume(
            &vol,
            &MesherConfig { step: 2, include: labels::is_brain_tissue },
        );
        (vol, model, mesh)
    };
    for _attempt in 0..6 {
        let (vol, model, mesh) = build(scale);
        let err = mesh.num_nodes() as f64 / target_nodes as f64;
        if (0.97..=1.03).contains(&err) {
            let bcs = cap_bcs(&mesh, &model, &BrainShiftConfig::default());
            return BenchProblem { labels: vol, mesh, model, bcs };
        }
        scale /= err.cbrt();
    }
    let (vol, model, mesh) = build(scale);
    let bcs = cap_bcs(&mesh, &model, &BrainShiftConfig::default());
    BenchProblem { labels: vol, mesh, model, bcs }
}

/// Surface displacements of the craniotomy-cap profile, applied to every
/// boundary node (the same Dirichlet data the pipeline's active surface
/// produces, here prescribed analytically so the timing benches don't
/// depend on image processing).
pub fn cap_bcs(mesh: &TetMesh, model: &HeadModel, shift: &BrainShiftConfig) -> DirichletBcs {
    let mut bcs = DirichletBcs::new();
    for &n in boundary_nodes(mesh).iter() {
        bcs.set(n, cap_surface_displacement(mesh.nodes[n], model, shift));
    }
    bcs
}

/// Print the standard header for a timing-figure table.
pub fn print_timing_header(title: &str, equations: usize, machine: &str) {
    println!("## {title}");
    println!("# system: {equations} equations (paper: see DESIGN.md §4)");
    println!("# machine model: {machine}");
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10} {:>7} {:>9} {:>9}",
        "cpus", "init(s)", "assemble", "solve(s)", "total(s)", "iters", "asm-imb", "slv-imb"
    );
}

/// Print one row of a timing-figure table.
pub fn print_timing_row(t: &SimTimings) {
    println!(
        "{:>5} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>7} {:>9.3} {:>9.3}",
        t.cpus,
        t.init_s,
        t.assemble_s,
        t.solve_s,
        t.total_s(),
        t.iterations,
        t.assembly_imbalance,
        t.solve_imbalance
    );
}

/// Render an ASCII log-scale plot of one or more (label, series) where
/// each series is (cpus, seconds) — the textual analogue of the paper's
/// log-axis timing figures.
pub fn plot_log_series(series: &[(&str, Vec<(usize, f64)>)], width: usize) {
    let all: Vec<f64> = series.iter().flat_map(|(_, s)| s.iter().map(|&(_, t)| t)).collect();
    let lo = all.iter().cloned().fold(f64::INFINITY, f64::min).max(1e-6);
    let hi = all.iter().cloned().fold(0.0f64, f64::max).max(lo * 1.0001);
    let log_lo = lo.ln();
    let log_hi = hi.ln();
    println!("\nlog-scale time (left = {lo:.2} s, right = {hi:.2} s):");
    for (label, s) in series {
        println!("  {label}:");
        for &(cpus, t) in s {
            let frac = ((t.max(lo).ln() - log_lo) / (log_hi - log_lo)).clamp(0.0, 1.0);
            let pos = (frac * (width - 1) as f64) as usize;
            let mut line: Vec<char> = vec![' '; width];
            line[pos] = '*';
            println!("  {:>4} |{}|", cpus, line.iter().collect::<String>());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phantom_labels_match_model() {
        let (vol, model) = phantom_labels(Dims::new(32, 32, 24), Spacing::iso(4.0));
        let c = model.brain.center;
        let vx = (c.x / 4.0) as usize;
        let vy = (c.y / 4.0) as usize;
        let vz = (c.z / 4.0) as usize;
        assert_eq!(*vol.get(vx, vy, vz), model.label_at(c));
        assert!(vol.count_label(labels::BRAIN) > 0);
    }

    #[test]
    fn target_equation_search_converges() {
        // A miniature version of the paper-size search (fast target).
        let p = problem_with_equations(9_000);
        let eq = p.mesh.num_equations();
        assert!(
            (eq as f64 - 9_000.0).abs() < 0.15 * 9_000.0,
            "got {eq} equations"
        );
        assert!(p.mesh.validate().is_ok());
        assert!(!p.bcs.is_empty());
    }

    #[test]
    fn cap_bcs_cover_all_boundary_nodes() {
        let (vol, model) = phantom_labels(Dims::new(24, 24, 20), Spacing::iso(5.0));
        let mesh = mesh_labeled_volume(&vol, &MesherConfig { step: 2, include: labels::is_brain_tissue });
        let bcs = cap_bcs(&mesh, &model, &BrainShiftConfig::default());
        assert_eq!(bcs.len(), boundary_nodes(&mesh).len());
        // The node nearest the craniotomy must get (close to) the peak.
        let max_bc = bcs.iter().map(|(_, u)| u.norm()).fold(0.0, f64::max);
        assert!(max_bc > 0.5 * BrainShiftConfig::default().peak_shift_mm);
    }
}
