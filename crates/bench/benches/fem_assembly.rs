//! Criterion: global stiffness assembly (the paper's Figure 7 assembly
//! curve, measured on the host) and element-level kernels.

use brainshift_bench::problem_with_equations;
use brainshift_fem::{assemble_stiffness, stiffness_btdb, stiffness_isotropic, Material, MaterialTable, TetShape};
use brainshift_imaging::Vec3;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_element_stiffness(c: &mut Criterion) {
    let shape = TetShape::new([
        Vec3::new(0.1, 0.0, 0.2),
        Vec3::new(2.2, 0.1, 0.0),
        Vec3::new(0.0, 2.4, 0.1),
        Vec3::new(0.3, 0.2, 2.1),
    ])
    .expect("degenerate tet");
    let mat = Material::brain();
    let d = mat.elasticity_matrix();
    let mut g = c.benchmark_group("element_stiffness");
    g.bench_function("closed_form", |b| {
        b.iter(|| std::hint::black_box(stiffness_isotropic(&shape, &mat)));
    });
    g.bench_function("btdb_generic", |b| {
        b.iter(|| std::hint::black_box(stiffness_btdb(&shape, &d)));
    });
    g.finish();
}

fn bench_global_assembly(c: &mut Criterion) {
    let mut g = c.benchmark_group("global_assembly");
    g.sample_size(10);
    for eqs in [9_000usize, 30_000] {
        let p = problem_with_equations(eqs);
        let materials = MaterialTable::homogeneous();
        g.throughput(Throughput::Elements(p.mesh.num_tets() as u64));
        g.bench_function(BenchmarkId::new("tets", p.mesh.num_tets()), |b| {
            b.iter(|| std::hint::black_box(assemble_stiffness(&p.mesh, &materials)));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_element_stiffness, bench_global_assembly
}
criterion_main!(benches);
