//! Criterion: the intraoperative pipeline stage by stage (the host-side
//! Figure 6) — meshing, k-NN classification, active surface, FEM solve,
//! dense-field interpolation.

use brainshift_core::case::{generate_elastic_case, ElasticCaseOptions};
use brainshift_fem::{displacement_field_from_mesh, solve_deformation, DirichletBcs, FemSolveConfig, MaterialTable};
use brainshift_imaging::labels;
use brainshift_imaging::phantom::{BrainShiftConfig, PhantomConfig};
use brainshift_imaging::volume::{Dims, Spacing};
use brainshift_imaging::Vec3;
use brainshift_mesh::{boundary_nodes, extract_boundary, mesh_labeled_volume, MesherConfig};
use brainshift_segment::{segment_intraop, SegmentConfig};
use brainshift_surface::{evolve_surface, ActiveSurfaceConfig, DistanceForce};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_stages(c: &mut Criterion) {
    let cfg = PhantomConfig {
        dims: Dims::new(48, 48, 36),
        spacing: Spacing::iso(3.0),
        ..Default::default()
    };
    let case = generate_elastic_case(&cfg, &BrainShiftConfig::default(), &ElasticCaseOptions::default());
    let mesher = MesherConfig { step: 2, include: labels::is_brain_tissue };
    let mesh = mesh_labeled_volume(&case.preop.labels, &mesher);
    let surface = extract_boundary(&mesh);

    let mut g = c.benchmark_group("pipeline_stage");
    g.sample_size(10);

    g.bench_function("mesh_generation", |b| {
        b.iter(|| std::hint::black_box(mesh_labeled_volume(&case.preop.labels, &mesher)));
    });

    g.bench_function("knn_segmentation", |b| {
        b.iter(|| {
            std::hint::black_box(segment_intraop(
                &case.intraop.intensity,
                &case.preop.labels,
                &SegmentConfig::default(),
            ))
        });
    });

    g.bench_function("active_surface", |b| {
        let mask = case.intraop.labels.map(|&l| labels::is_brain_tissue(l));
        let force = DistanceForce::from_mask(&mask, 2.0);
        b.iter(|| std::hint::black_box(evolve_surface(&surface, &force, &ActiveSurfaceConfig::default())));
    });

    g.bench_function("fem_solve", |b| {
        let mut bcs = DirichletBcs::new();
        for &n in boundary_nodes(&mesh).iter() {
            let p = mesh.nodes[n];
            bcs.set(n, Vec3::new(0.0, 0.0, -4.0 * (-((p.x - 72.0).powi(2) + (p.y - 72.0).powi(2)) / 800.0).exp()));
        }
        b.iter(|| {
            let sol = solve_deformation(&mesh, &MaterialTable::homogeneous(), &bcs, &FemSolveConfig::default()).expect("FEM solve rejected its inputs");
            assert!(sol.stats.converged());
            std::hint::black_box(sol.displacements.len())
        });
    });

    g.bench_function("field_interpolation", |b| {
        let disp: Vec<Vec3> = mesh.nodes.iter().map(|p| Vec3::new(0.0, 0.0, -p.z * 0.05)).collect();
        b.iter(|| {
            std::hint::black_box(displacement_field_from_mesh(&mesh, &disp, cfg.dims, cfg.spacing))
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_stages
}
criterion_main!(benches);
