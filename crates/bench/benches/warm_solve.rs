//! Criterion: per-scan biomechanical solve latency — the cold path
//! (assemble + reduce + factor + solve every scan, what `run_scan_sequence`
//! did before the persistent context) versus context reuse (assemble-once,
//! zero-started solves) versus the full warm-started path (assemble-once,
//! each solve seeded from the neighbouring scan's displacement).

use brainshift_bench::{cap_bcs, problem_with_equations};
use brainshift_fem::{
    solve_deformation, DirichletBcs, FemSolveConfig, MaterialTable, SolverContext,
};
use brainshift_imaging::phantom::BrainShiftConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::Cell;

fn scaled(bcs: &DirichletBcs, s: f64) -> DirichletBcs {
    let mut out = DirichletBcs::new();
    for (n, u) in bcs.iter() {
        out.set(n, u * s);
    }
    out
}

fn bench_warm_solve(c: &mut Criterion) {
    let p = problem_with_equations(9_000);
    let materials = MaterialTable::homogeneous();
    let bcs = cap_bcs(&p.mesh, &p.model, &BrainShiftConfig::default());
    let cfg = FemSolveConfig::default();
    let constrained = bcs.nodes_sorted();

    let mut g = c.benchmark_group("per_scan_solve_9k");
    g.sample_size(10);

    // The pre-context per-scan cost: everything from scratch.
    g.bench_function("cold_assemble_factor_solve", |b| {
        b.iter(|| {
            let sol = solve_deformation(&p.mesh, &materials, &bcs, &cfg).expect("FEM solve rejected its inputs");
            assert!(sol.stats.converged());
        });
    });

    // Assembly, reduction and factorization hoisted out; solves still
    // start from zero (context reuse without warm starting).
    g.bench_function("context_reuse_zero_start", |b| {
        let mut ctx = SolverContext::new(&p.mesh, &materials, &constrained, cfg.clone()).expect("solver context build failed");
        b.iter(|| {
            ctx.reset_warm_start();
            let sol = ctx.solve(&bcs).expect("solve failed");
            assert!(sol.stats.converged());
        });
    });

    // The full intraoperative path: consecutive scans differ by a small
    // shift increment, each solve seeded from the previous scan.
    // Alternating between two nearby scan states keeps every iteration a
    // genuine warm start (never a re-solve of an identical system).
    g.bench_function("context_warm_start", |b| {
        let mut ctx = SolverContext::new(&p.mesh, &materials, &constrained, cfg.clone()).expect("solver context build failed");
        let scan_a = scaled(&bcs, 0.95);
        let scan_b = &bcs;
        ctx.solve(&scan_a).expect("solve failed"); // prime the warm-start state
        let flip = Cell::new(false);
        b.iter(|| {
            let target = if flip.get() { &scan_a } else { scan_b };
            flip.set(!flip.get());
            let sol = ctx.solve(target).expect("solve failed");
            assert!(sol.stats.converged());
        });
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_warm_solve
}
criterion_main!(benches);
