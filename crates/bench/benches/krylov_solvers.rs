//! Criterion: the Krylov solve under each preconditioner — the host-side
//! counterpart of the paper's solve curves and the preconditioner
//! ablation.

use brainshift_bench::problem_with_equations;
use brainshift_fem::{apply_dirichlet, assemble_stiffness, MaterialTable};
use brainshift_sparse::{
    conjugate_gradient, gmres, BlockJacobiPrecond, BlockSolve, IdentityPrecond, JacobiPrecond,
    SolverOptions,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_solvers(c: &mut Criterion) {
    let p = problem_with_equations(9_000);
    let k = assemble_stiffness(&p.mesh, &MaterialTable::homogeneous());
    let red = apply_dirichlet(&k, &vec![0.0; k.nrows()], &p.bcs).expect("valid BC set");
    let a = &red.matrix;
    let opts = SolverOptions { tolerance: 1e-5, max_iterations: 3000, ..Default::default() };

    let mut g = c.benchmark_group("krylov_9k");
    g.sample_size(10);
    g.bench_function("gmres_none", |b| {
        b.iter(|| {
            let mut x = vec![0.0; a.nrows()];
            let s = gmres(a, &IdentityPrecond, &red.rhs, &mut x, &opts).expect("dims agree");
            assert!(s.converged());
        });
    });
    g.bench_function("gmres_jacobi", |b| {
        let pc = JacobiPrecond::new(a);
        b.iter(|| {
            let mut x = vec![0.0; a.nrows()];
            let s = gmres(a, &pc, &red.rhs, &mut x, &opts).expect("dims agree");
            assert!(s.converged());
        });
    });
    g.bench_function("gmres_block_jacobi_ilu0_x8", |b| {
        let pc = BlockJacobiPrecond::new(a, 8, BlockSolve::Ilu0).expect("singular diagonal block");
        b.iter(|| {
            let mut x = vec![0.0; a.nrows()];
            let s = gmres(a, &pc, &red.rhs, &mut x, &opts).expect("dims agree");
            assert!(s.converged());
        });
    });
    g.bench_function("cg_jacobi", |b| {
        let pc = JacobiPrecond::new(a);
        b.iter(|| {
            let mut x = vec![0.0; a.nrows()];
            let s = conjugate_gradient(a, &pc, &red.rhs, &mut x, &opts).expect("dims agree");
            assert!(s.converged());
        });
    });
    g.bench_function("precond_setup_block_jacobi_ilu0_x8", |b| {
        b.iter(|| std::hint::black_box(BlockJacobiPrecond::new(a, 8, BlockSolve::Ilu0)));
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_solvers
}
criterion_main!(benches);
