//! Criterion: the sparse kernels under the solver (SpMV serial/parallel,
//! BLAS-1, triplet compression) at FEM-realistic sizes and sparsity.

use brainshift_bench::problem_with_equations;
use brainshift_fem::{assemble_stiffness, MaterialTable};
use brainshift_sparse::dense::{axpy, dot};
use brainshift_sparse::TripletBuilder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_spmv(c: &mut Criterion) {
    let p = problem_with_equations(30_000);
    let k = assemble_stiffness(&p.mesh, &MaterialTable::homogeneous());
    let n = k.nrows();
    let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.01).sin()).collect();
    let mut y = vec![0.0; n];
    let mut g = c.benchmark_group("spmv");
    g.throughput(Throughput::Elements(k.nnz() as u64));
    g.bench_function(BenchmarkId::new("serial", k.nnz()), |b| {
        b.iter(|| k.spmv(&x, &mut y));
    });
    g.bench_function(BenchmarkId::new("parallel", k.nnz()), |b| {
        b.iter(|| k.spmv_parallel(&x, &mut y));
    });
    g.finish();
}

fn bench_blas1(c: &mut Criterion) {
    let n = 250_000;
    let a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.001).sin()).collect();
    let b2: Vec<f64> = (0..n).map(|i| (i as f64 * 0.002).cos()).collect();
    let mut y = b2.clone();
    let mut g = c.benchmark_group("blas1");
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("dot", |bch| {
        bch.iter(|| std::hint::black_box(dot(&a, &b2)));
    });
    g.bench_function("axpy", |bch| {
        bch.iter(|| axpy(1.0001, &a, &mut y));
    });
    g.finish();
}

fn bench_triplet_build(c: &mut Criterion) {
    // COO→CSR compression at assembly-realistic duplication.
    let n = 20_000;
    let mut entries = Vec::new();
    for i in 0..n {
        for j in 0..12 {
            entries.push((i, (i + j * 7) % n, 1.0f64));
        }
    }
    c.bench_function("triplet_build_240k", |b| {
        b.iter(|| {
            let mut tb = TripletBuilder::with_capacity(n, n, entries.len());
            for &(i, j, v) in &entries {
                tb.add(i, j, v);
            }
            std::hint::black_box(tb.build())
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_spmv, bench_blas1, bench_triplet_build
}
criterion_main!(benches);
