//! Criterion: image-processing kernels on the intraoperative path — the
//! distance transform (spatial prior construction), Gaussian smoothing,
//! the final deformation resample (the paper's ~0.5 s step) and MI
//! evaluation (one rigid-registration metric call).

use brainshift_imaging::dtransform::saturated_distance_transform;
use brainshift_imaging::field::{warp_volume_backward, DisplacementField};
use brainshift_imaging::filter::gaussian_smooth;
use brainshift_imaging::phantom::{generate_preop, PhantomConfig};
use brainshift_imaging::similarity::mutual_information;
use brainshift_imaging::volume::{Dims, Spacing};
use brainshift_imaging::{labels, Vec3};
use brainshift_register::{mutual_information as mi_transform, MiConfig, RigidTransform};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn phantom() -> brainshift_imaging::phantom::PhantomScan {
    generate_preop(&PhantomConfig {
        dims: Dims::new(64, 64, 48),
        spacing: Spacing::iso(2.5),
        ..Default::default()
    })
}

fn bench_imaging(c: &mut Criterion) {
    let scan = phantom();
    let voxels = scan.intensity.dims().len() as u64;

    let mut g = c.benchmark_group("imaging_64x64x48");
    g.sample_size(20);
    g.throughput(Throughput::Elements(voxels));

    g.bench_function("saturated_distance_transform", |b| {
        let mask = scan.labels.map(|&l| l == labels::BRAIN);
        b.iter(|| std::hint::black_box(saturated_distance_transform(&mask, 20.0)));
    });

    g.bench_function("gaussian_smooth_sigma1", |b| {
        b.iter(|| std::hint::black_box(gaussian_smooth(&scan.intensity, 1.0)));
    });

    g.bench_function("warp_resample", |b| {
        // The paper's "~0.5 seconds" resample, at our phantom size.
        let field = DisplacementField::from_fn(scan.intensity.dims(), scan.intensity.spacing(), |x, y, _| {
            Vec3::new((x as f64 * 0.05).sin() * 3.0, (y as f64 * 0.04).cos() * 2.0, -4.0)
        });
        b.iter(|| std::hint::black_box(warp_volume_backward(&scan.intensity, &field, 0.0)));
    });

    g.bench_function("mutual_information_same_grid", |b| {
        b.iter(|| std::hint::black_box(mutual_information(&scan.intensity, &scan.intensity, 32)));
    });

    g.bench_function("mi_metric_with_transform", |b| {
        let d = scan.intensity.dims();
        let t = RigidTransform::from_params(
            [0.02, 0.0, 0.01, 1.0, 0.5, 0.0],
            Vec3::new(d.nx as f64 / 2.0, d.ny as f64 / 2.0, d.nz as f64 / 2.0),
        );
        b.iter(|| {
            std::hint::black_box(mi_transform(&scan.intensity, &scan.intensity, &t, &MiConfig::default()))
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_imaging
}
criterion_main!(benches);
