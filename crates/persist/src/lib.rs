//! # brainshift-persist
//!
//! The durability layer: a versioned, endian-stable binary format for
//! snapshotting warm per-surgery state (assembled stiffness matrices,
//! factored preconditioners, warm-start vectors, event logs) so a shard
//! restart never pays the cold once-per-surgery rebuild mid-surgery.
//!
//! Three pieces, bottom to top:
//!
//! * [`Encoder`] / [`Decoder`] — little-endian primitive codec with
//!   length-prefixed containers. Every multi-byte value is written
//!   little-endian regardless of host order, so a snapshot taken on one
//!   machine restores on another.
//! * [`Persist`] — the encode/decode trait the domain crates (`sparse`,
//!   `fem`, `segment`, `service`, `imaging`) implement for their own
//!   types. Decoding validates: corrupt or truncated input surfaces as a
//!   typed [`PersistError`], never a panic and never a partially
//!   constructed value.
//! * [`SnapshotWriter`] / [`SnapshotReader`] — the container: an 8-byte
//!   magic, a format version, and a section table (name, offset, length,
//!   FNV-1a checksum) followed by the section payloads. The reader
//!   verifies the magic, the version, every table bound, and every
//!   section checksum *before* handing out a single payload byte.
//!
//! ## Version-evolution policy
//!
//! The format version is a single monotonically increasing `u32`
//! ([`FORMAT_VERSION`]). A reader accepts the versions it knows
//! ([`snapshot::MIN_SUPPORTED_VERSION`]`..=`[`FORMAT_VERSION`]); anything
//! newer — or older than the supported floor — is
//! [`PersistError::UnsupportedVersion`] — refuse, don't guess. Compatible
//! additions (new sections) do not bump the version: readers look
//! sections up by name and ignore names they don't know. Any change to an
//! existing section's encoding bumps the version; the reader hands each
//! section a [`Decoder`] carrying the container's stamped version so
//! `Persist::decode` impls read old layouts via `dec.version()`.

#![warn(missing_docs)]
// Decoding untrusted bytes must never panic: every failure is a typed
// `PersistError`. Test modules are exempt.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod codec;
pub mod error;
pub mod snapshot;

pub use codec::{fnv1a, Decoder, Encoder, Persist};
pub use error::PersistError;
pub use snapshot::{SnapshotReader, SnapshotWriter, FORMAT_VERSION, MAGIC, MIN_SUPPORTED_VERSION};

/// Encode one `Persist` value into a standalone byte buffer.
pub fn to_bytes<T: Persist>(value: &T) -> Result<Vec<u8>, PersistError> {
    let mut enc = Encoder::new();
    value.encode(&mut enc)?;
    Ok(enc.into_bytes())
}

/// Decode one `Persist` value from a standalone byte buffer, requiring
/// the buffer to be fully consumed.
pub fn from_bytes<T: Persist>(bytes: &[u8]) -> Result<T, PersistError> {
    let mut dec = Decoder::new(bytes);
    let v = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(v)
}
