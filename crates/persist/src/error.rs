//! Typed persistence failures.
//!
//! Every way a snapshot can be wrong — foreign file, future format,
//! bit rot, truncation, or a payload that decodes to structurally
//! impossible values — has its own variant, so callers can distinguish
//! "not ours" from "damaged" from "newer than this binary". Nothing in
//! this crate panics on bad input.

use std::fmt;

/// Why an encode or decode failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// The buffer does not start with the snapshot magic — it is not a
    /// brainshift snapshot at all.
    BadMagic {
        /// The first bytes actually found (up to the magic's length).
        found: Vec<u8>,
    },
    /// The snapshot's format version is not one this reader supports.
    UnsupportedVersion {
        /// The version recorded in the snapshot.
        found: u32,
        /// The newest version this reader understands.
        supported: u32,
    },
    /// A section's FNV-1a content checksum does not match its payload —
    /// the snapshot was corrupted after it was written.
    ChecksumMismatch {
        /// Name of the damaged section.
        section: String,
        /// Checksum recorded in the section table.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// The input ended before the value did.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that remained.
        remaining: usize,
    },
    /// The value is complete but the remaining bytes were not consumed —
    /// the payload is longer than the value it claims to hold.
    TrailingBytes {
        /// Unconsumed bytes.
        remaining: usize,
    },
    /// A section the caller requires is absent from the snapshot.
    MissingSection {
        /// The missing section's name.
        name: String,
    },
    /// The bytes decoded but the value they describe is impossible
    /// (length mismatch, out-of-range index, invalid enum tag, …).
    InvalidData {
        /// What was wrong.
        reason: String,
    },
    /// An I/O failure while reading or writing a snapshot file.
    Io {
        /// The rendered `std::io::Error`.
        reason: String,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic { found } => {
                write!(f, "not a brainshift snapshot (leading bytes {found:02x?})")
            }
            PersistError::UnsupportedVersion { found, supported } => {
                write!(f, "snapshot format version {found} unsupported (this reader knows ≤ {supported})")
            }
            PersistError::ChecksumMismatch { section, expected, actual } => {
                write!(f, "section '{section}' checksum mismatch: expected {expected:016x}, got {actual:016x}")
            }
            PersistError::Truncated { needed, remaining } => {
                write!(f, "truncated input: needed {needed} bytes, {remaining} remain")
            }
            PersistError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete value")
            }
            PersistError::MissingSection { name } => write!(f, "snapshot has no section '{name}'"),
            PersistError::InvalidData { reason } => write!(f, "invalid data: {reason}"),
            PersistError::Io { reason } => write!(f, "snapshot i/o: {reason}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io { reason: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_descriptive() {
        let cases: Vec<(PersistError, &str)> = vec![
            (PersistError::BadMagic { found: vec![0xde, 0xad] }, "not a brainshift snapshot"),
            (PersistError::UnsupportedVersion { found: 9, supported: 1 }, "version 9"),
            (
                PersistError::ChecksumMismatch { section: "log".into(), expected: 1, actual: 2 },
                "checksum mismatch",
            ),
            (PersistError::Truncated { needed: 8, remaining: 3 }, "truncated"),
            (PersistError::TrailingBytes { remaining: 4 }, "trailing"),
            (PersistError::MissingSection { name: "meta".into() }, "no section"),
            (PersistError::InvalidData { reason: "bad tag".into() }, "invalid data"),
            (PersistError::Io { reason: "denied".into() }, "i/o"),
        ];
        for (e, frag) in cases {
            assert!(e.to_string().contains(frag), "{e}");
        }
    }
}
