//! Little-endian primitive codec and the [`Persist`] trait.
//!
//! Endianness is fixed at little regardless of host order, so snapshots
//! are portable across machines. Floats are written as their IEEE-754
//! bit patterns (`f64::to_bits`), which makes encode→decode *bitwise*
//! lossless — including NaN payloads and signed zeros — a property the
//! round-trip test suites assert directly.

use crate::error::PersistError;
use std::time::Duration;

/// FNV-1a over a byte slice — the same hash family the repo uses for
/// mesh and kd-tree fingerprints, here hashing section payloads.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consume the encoder, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// One raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// `usize` widened to a `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// IEEE-754 bit pattern of an `f64` (bitwise lossless).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// IEEE-754 bit pattern of an `f32` (bitwise lossless).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// A bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Raw bytes, no length prefix (callers prefix their own lengths).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.put_bytes(s.as_bytes());
    }
}

/// Cursor over an immutable byte slice; every read is bounds-checked and
/// failures are typed ([`PersistError::Truncated`]).
///
/// The decoder also carries the *container format version* the bytes
/// were written under, so `Persist::decode` impls can skip fields that
/// did not exist yet (`if dec.version() >= 2 { … }`). Freshly-encoded
/// buffers (`from_bytes` round trips) decode at the current
/// [`crate::FORMAT_VERSION`]; snapshot sections decode at the version
/// stamped in the container header.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
    version: u32,
}

impl<'a> Decoder<'a> {
    /// A decoder at the start of `buf`, assuming the current
    /// [`crate::FORMAT_VERSION`] layout.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0, version: crate::FORMAT_VERSION }
    }

    /// A decoder for bytes written under an explicit (possibly older)
    /// container format version.
    pub fn with_version(buf: &'a [u8], version: u32) -> Self {
        Decoder { buf, pos: 0, version }
    }

    /// Format version the underlying bytes were written at.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless every byte was consumed.
    pub fn finish(&self) -> Result<(), PersistError> {
        match self.remaining() {
            0 => Ok(()),
            remaining => Err(PersistError::TrailingBytes { remaining }),
        }
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated { needed: n, remaining: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// One raw byte.
    pub fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PersistError> {
        let b = self.take(4)?;
        let mut a = [0u8; 4];
        a.copy_from_slice(b);
        Ok(u32::from_le_bytes(a))
    }

    /// Little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PersistError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    /// Little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, PersistError> {
        Ok(self.get_u64()? as i64)
    }

    /// A `u64` narrowed to the host `usize`.
    pub fn get_usize(&mut self) -> Result<usize, PersistError> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| PersistError::InvalidData { reason: format!("length {v} exceeds usize") })
    }

    /// `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// `f32` from its IEEE-754 bit pattern.
    pub fn get_f32(&mut self) -> Result<f32, PersistError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// A bool; any byte other than 0/1 is [`PersistError::InvalidData`].
    pub fn get_bool(&mut self) -> Result<bool, PersistError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(PersistError::InvalidData { reason: format!("invalid bool byte {other}") }),
        }
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, PersistError> {
        let len = self.get_usize()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| PersistError::InvalidData { reason: format!("invalid utf-8: {e}") })
    }
}

/// Snapshot encode/decode for one type.
///
/// `decode` must fully validate: on any input it either returns a value
/// whose invariants hold or a typed error — no panics, no partially
/// valid values. `encode` is fallible only for types that can hold
/// unsupported state (e.g. a trait object with a non-persistable
/// implementation); plain data types always return `Ok`.
pub trait Persist: Sized {
    /// Append this value's encoding to `enc`.
    fn encode(&self, enc: &mut Encoder) -> Result<(), PersistError>;
    /// Read one value from `dec`, validating it.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError>;
}

impl Persist for u8 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u8(*self);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        dec.get_u8()
    }
}

impl Persist for u32 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u32(*self);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        dec.get_u32()
    }
}

impl Persist for u64 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u64(*self);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        dec.get_u64()
    }
}

impl Persist for i64 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_i64(*self);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        dec.get_i64()
    }
}

impl Persist for usize {
    fn encode(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_usize(*self);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        dec.get_usize()
    }
}

impl Persist for f64 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_f64(*self);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        dec.get_f64()
    }
}

impl Persist for f32 {
    fn encode(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_f32(*self);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        dec.get_f32()
    }
}

impl Persist for bool {
    fn encode(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_bool(*self);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        dec.get_bool()
    }
}

impl Persist for String {
    fn encode(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_str(self);
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        dec.get_str()
    }
}

impl Persist for Duration {
    fn encode(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_u64(self.as_secs());
        enc.put_u32(self.subsec_nanos());
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let secs = dec.get_u64()?;
        let nanos = dec.get_u32()?;
        if nanos >= 1_000_000_000 {
            return Err(PersistError::InvalidData { reason: format!("{nanos} subsec nanos") });
        }
        Ok(Duration::new(secs, nanos))
    }
}

impl<T: Persist> Persist for Option<T> {
    fn encode(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.encode(enc)?;
            }
        }
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        match dec.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            t => Err(PersistError::InvalidData { reason: format!("invalid Option tag {t}") }),
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn encode(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        enc.put_usize(self.len());
        for v in self {
            v.encode(enc)?;
        }
        Ok(())
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        let len = dec.get_usize()?;
        // Each element is at least one byte; a length beyond the input is
        // a lie — reject before allocating for it.
        if len > dec.remaining() {
            return Err(PersistError::Truncated { needed: len, remaining: dec.remaining() });
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn encode(&self, enc: &mut Encoder) -> Result<(), PersistError> {
        self.0.encode(enc)?;
        self.1.encode(enc)
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, PersistError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(v: &T) {
        let bytes = crate::to_bytes(v).expect("encode");
        let back: T = crate::from_bytes(&bytes).expect("decode");
        assert_eq!(&back, v);
        // Re-encoding the decoded value is byte-identical (canonical
        // encoding — the property the corruption checks rely on).
        assert_eq!(crate::to_bytes(&back).expect("encode"), bytes);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(&0u8);
        round_trip(&u64::MAX);
        round_trip(&usize::MAX);
        round_trip(&(-1i64));
        round_trip(&f64::NEG_INFINITY);
        round_trip(&true);
        round_trip(&String::from("brainshift"));
        round_trip(&Duration::from_micros(123_456_789));
        round_trip(&Some(3.5f64));
        round_trip(&Option::<u64>::None);
        round_trip(&vec![1usize, 2, 3]);
        round_trip(&vec![(1usize, 2usize), (3, 4)]);
    }

    #[test]
    fn nan_bits_survive() {
        let weird = f64::from_bits(0x7ff8_dead_beef_0001);
        let bytes = crate::to_bytes(&weird).expect("encode");
        let back: f64 = crate::from_bytes(&bytes).expect("decode");
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn truncation_and_trailing_are_typed() {
        let bytes = crate::to_bytes(&vec![1.0f64, 2.0]).expect("encode");
        let r: Result<Vec<f64>, _> = crate::from_bytes(&bytes[..bytes.len() - 3]);
        assert!(matches!(r, Err(PersistError::Truncated { .. })), "{r:?}");
        let mut longer = bytes.clone();
        longer.push(0);
        let r: Result<Vec<f64>, _> = crate::from_bytes(&longer);
        assert!(matches!(r, Err(PersistError::TrailingBytes { remaining: 1 })), "{r:?}");
    }

    #[test]
    fn lying_vec_length_rejected_without_allocation() {
        let mut enc = Encoder::new();
        enc.put_usize(usize::MAX / 2);
        let r: Result<Vec<u8>, _> = crate::from_bytes(&enc.into_bytes());
        assert!(matches!(r, Err(PersistError::Truncated { .. })), "{r:?}");
    }

    #[test]
    fn invalid_tags_rejected() {
        let r: Result<bool, _> = crate::from_bytes(&[7]);
        assert!(matches!(r, Err(PersistError::InvalidData { .. })));
        let r: Result<Option<u8>, _> = crate::from_bytes(&[9, 0]);
        assert!(matches!(r, Err(PersistError::InvalidData { .. })));
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Standard FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    proptest! {
        #[test]
        fn prop_u64_round_trips(v in 0..u64::MAX) {
            round_trip(&v);
        }

        #[test]
        fn prop_f64_bits_round_trip(bits in 0..u64::MAX) {
            let v = f64::from_bits(bits);
            let bytes = crate::to_bytes(&v).expect("encode");
            let back: f64 = crate::from_bytes(&bytes).expect("decode");
            prop_assert_eq!(back.to_bits(), bits);
        }

        #[test]
        fn prop_vecs_and_strings_round_trip(
            v in prop::collection::vec(0..u32::MAX, 0..64),
            chars in prop::collection::vec(32u8..127, 0..48),
        ) {
            round_trip(&v);
            let s = String::from_utf8(chars).expect("ascii");
            round_trip(&s);
        }
    }
}
