//! The snapshot container: magic, format version, checksummed sections.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     MAGIC            b"BRSHSNAP"
//! 8       4     FORMAT_VERSION   u32
//! 12      4     section count    u32
//! 16      …     section table    per section:
//!                                  name    (u64 len + utf-8 bytes)
//!                                  offset  u64   (absolute, into the file)
//!                                  len     u64
//!                                  fnv1a   u64   (checksum of the payload)
//! …       …     payloads         concatenated, in table order
//! ```
//!
//! [`SnapshotReader::parse`] verifies the magic, the version, every
//! table bound, and every section checksum eagerly — a caller that gets
//! a reader back knows the whole container is intact before touching a
//! payload byte. Sections are looked up by name, so adding new sections
//! is a compatible change that does not bump [`FORMAT_VERSION`].

use crate::codec::{fnv1a, Decoder, Encoder};
use crate::error::PersistError;

/// Leading bytes of every brainshift snapshot.
pub const MAGIC: [u8; 8] = *b"BRSHSNAP";

/// Current snapshot format version. Bumped only when an existing
/// section's encoding changes; new sections do not bump it.
///
/// v2 (the solver speed ladder) appended trailing fields to the solver
/// configuration and context sections: `SolverOptions::precision`,
/// `EscalationPolicy::f64_fallback`, `FemSolveConfig::{reorder, spmv}`,
/// and the context's optional RCM permutation. v1 containers decode with
/// those fields at their defaults.
pub const FORMAT_VERSION: u32 = 2;

/// Oldest container version this reader still decodes.
pub const MIN_SUPPORTED_VERSION: u32 = 1;

/// Builds a snapshot from named payload sections.
#[derive(Debug, Default)]
pub struct SnapshotWriter {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a named section. Names should be unique; on duplicates the
    /// reader returns the first.
    pub fn section(&mut self, name: &str, payload: Vec<u8>) {
        self.sections.push((name.to_string(), payload));
    }

    /// Encode a `Persist` value and append it as a named section.
    pub fn section_value<T: crate::Persist>(
        &mut self,
        name: &str,
        value: &T,
    ) -> Result<(), PersistError> {
        self.section(name, crate::to_bytes(value)?);
        Ok(())
    }

    /// Serialize the container.
    pub fn finish(self) -> Vec<u8> {
        // The table's size depends only on the names, so lay it out first.
        let mut table_len = 0usize;
        for (name, _) in &self.sections {
            table_len += 8 + name.len() + 8 + 8 + 8;
        }
        let header_len = MAGIC.len() + 4 + 4;
        let mut offset = header_len + table_len;

        let mut enc = Encoder::new();
        enc.put_bytes(&MAGIC);
        enc.put_u32(FORMAT_VERSION);
        enc.put_u32(self.sections.len() as u32);
        for (name, payload) in &self.sections {
            enc.put_str(name);
            enc.put_u64(offset as u64);
            enc.put_u64(payload.len() as u64);
            enc.put_u64(fnv1a(payload));
            offset += payload.len();
        }
        for (_, payload) in &self.sections {
            enc.put_bytes(payload);
        }
        enc.into_bytes()
    }
}

#[derive(Debug)]
struct SectionEntry {
    name: String,
    offset: usize,
    len: usize,
}

/// A parsed, fully checksum-verified snapshot.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    buf: &'a [u8],
    table: Vec<SectionEntry>,
    version: u32,
}

impl<'a> SnapshotReader<'a> {
    /// Parse and verify a snapshot: magic, version, table bounds, and
    /// every section's FNV-1a checksum. Any defect is a typed error and
    /// no reader is returned.
    pub fn parse(buf: &'a [u8]) -> Result<Self, PersistError> {
        if buf.len() < MAGIC.len() || buf[..MAGIC.len()] != MAGIC {
            let found = buf[..buf.len().min(MAGIC.len())].to_vec();
            return Err(PersistError::BadMagic { found });
        }
        let mut dec = Decoder::new(&buf[MAGIC.len()..]);
        let version = dec.get_u32()?;
        if !(MIN_SUPPORTED_VERSION..=FORMAT_VERSION).contains(&version) {
            return Err(PersistError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let count = dec.get_u32()? as usize;
        let mut table = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let name = dec.get_str()?;
            let offset = dec.get_usize()?;
            let len = dec.get_usize()?;
            let expected = dec.get_u64()?;
            let end = offset
                .checked_add(len)
                .ok_or_else(|| PersistError::InvalidData {
                    reason: format!("section '{name}' range overflows"),
                })?;
            if end > buf.len() {
                return Err(PersistError::Truncated {
                    needed: end,
                    remaining: buf.len(),
                });
            }
            let payload = &buf[offset..end];
            let actual = fnv1a(payload);
            if actual != expected {
                return Err(PersistError::ChecksumMismatch { section: name, expected, actual });
            }
            table.push(SectionEntry { name, offset, len });
        }
        Ok(SnapshotReader { buf, table, version })
    }

    /// The container's stamped format version (within
    /// [`MIN_SUPPORTED_VERSION`]`..=`[`FORMAT_VERSION`]).
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Section names, in table order.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.table.iter().map(|e| e.name.as_str())
    }

    /// True when the snapshot holds a section with this name.
    pub fn has_section(&self, name: &str) -> bool {
        self.table.iter().any(|e| e.name == name)
    }

    /// A decoder over one section's (already checksum-verified) payload.
    pub fn section(&self, name: &str) -> Result<Decoder<'a>, PersistError> {
        let entry = self
            .table
            .iter()
            .find(|e| e.name == name)
            .ok_or_else(|| PersistError::MissingSection { name: name.to_string() })?;
        // Decode at the *container's* stamped version so older payload
        // layouts are read correctly.
        Ok(Decoder::with_version(
            &self.buf[entry.offset..entry.offset + entry.len],
            self.version,
        ))
    }

    /// Decode one `Persist` value from a named section, requiring the
    /// section to be fully consumed.
    pub fn section_value<T: crate::Persist>(&self, name: &str) -> Result<T, PersistError> {
        let mut dec = self.section(name)?;
        let v = T::decode(&mut dec)?;
        dec.finish()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section_value("meta", &42u64).expect("encode");
        w.section_value("payload", &vec![1.5f64, -2.5, 3.25]).expect("encode");
        w.finish()
    }

    #[test]
    fn round_trips_sections_by_name() {
        let bytes = sample();
        let r = SnapshotReader::parse(&bytes).expect("parse");
        assert_eq!(r.section_names().collect::<Vec<_>>(), vec!["meta", "payload"]);
        assert!(r.has_section("meta") && !r.has_section("absent"));
        assert_eq!(r.section_value::<u64>("meta").expect("meta"), 42);
        assert_eq!(
            r.section_value::<Vec<f64>>("payload").expect("payload"),
            vec![1.5, -2.5, 3.25]
        );
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = sample();
        bytes[0] ^= 0xff;
        let r = SnapshotReader::parse(&bytes);
        assert!(matches!(r, Err(PersistError::BadMagic { .. })), "{r:?}");
        // A completely foreign buffer, shorter than the magic.
        let r = SnapshotReader::parse(b"PK");
        assert!(matches!(r, Err(PersistError::BadMagic { .. })), "{r:?}");
    }

    #[test]
    fn future_version_is_refused() {
        let mut bytes = sample();
        // Version field sits right after the 8-byte magic.
        bytes[8] = 0xff;
        let r = SnapshotReader::parse(&bytes);
        match r {
            Err(PersistError::UnsupportedVersion { found, supported }) => {
                assert_ne!(found, supported);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn v1_container_is_still_accepted() {
        // Primitive-section layouts are identical in v1 and v2, so a
        // container re-stamped to version 1 must parse and decode, with
        // the reader reporting the old version to section decoders.
        let mut bytes = sample();
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let r = SnapshotReader::parse(&bytes).expect("v1 parses");
        assert_eq!(r.version(), 1);
        assert_eq!(r.section("meta").expect("meta").version(), 1);
        assert_eq!(r.section_value::<u64>("meta").expect("meta"), 42);
        // Below the supported floor is refused.
        let mut old = sample();
        old[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            SnapshotReader::parse(&old),
            Err(PersistError::UnsupportedVersion { found: 0, .. })
        ));
    }

    #[test]
    fn every_flipped_payload_byte_is_caught() {
        let clean = sample();
        let r = SnapshotReader::parse(&clean).expect("parse");
        // Payloads are the tail of the container; everything before them
        // is header + table.
        let total_payload: usize =
            ["meta", "payload"].iter().map(|n| r.section(n).expect("s").remaining()).sum();
        let payload_start = clean.len() - total_payload;
        drop(r);
        for i in payload_start..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[i] ^= 0x01;
            let res = SnapshotReader::parse(&corrupt);
            assert!(
                matches!(res, Err(PersistError::ChecksumMismatch { .. })),
                "flipping byte {i} not caught: {res:?}"
            );
        }
    }

    #[test]
    fn corrupted_table_checksum_is_caught() {
        let clean = sample();
        // Flip a bit in the stored checksum itself (last 8 bytes of the
        // first table entry: name(8+4) + offset(8) + len(8) + checksum(8)
        // starting at header end = 16).
        let checksum_at = 16 + 8 + "meta".len() + 8 + 8;
        let mut corrupt = clean.clone();
        corrupt[checksum_at] ^= 0x10;
        let res = SnapshotReader::parse(&corrupt);
        assert!(matches!(res, Err(PersistError::ChecksumMismatch { .. })), "{res:?}");
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = sample();
        for cut in [bytes.len() - 1, bytes.len() / 2, 20, 10] {
            let res = SnapshotReader::parse(&bytes[..cut]);
            assert!(res.is_err(), "cut at {cut} parsed");
        }
    }

    #[test]
    fn missing_section_is_typed() {
        let bytes = sample();
        let r = SnapshotReader::parse(&bytes).expect("parse");
        let res = r.section("nope");
        assert!(matches!(res, Err(PersistError::MissingSection { .. })), "{res:?}");
    }

    #[test]
    fn section_with_trailing_bytes_is_rejected_by_section_value() {
        let mut w = SnapshotWriter::new();
        let mut enc = crate::Encoder::new();
        enc.put_u64(7);
        enc.put_u8(0xaa); // one stray byte after the value
        w.section("meta", enc.into_bytes());
        let bytes = w.finish();
        let r = SnapshotReader::parse(&bytes).expect("parse");
        let res = r.section_value::<u64>("meta");
        assert!(matches!(res, Err(PersistError::TrailingBytes { remaining: 1 })), "{res:?}");
    }

    #[test]
    fn empty_snapshot_parses() {
        let bytes = SnapshotWriter::new().finish();
        let r = SnapshotReader::parse(&bytes).expect("parse");
        assert_eq!(r.section_names().count(), 0);
    }
}
