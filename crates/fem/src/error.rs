//! Typed errors for the FEM layer.
//!
//! FEM constructors and solver entry points validate their inputs and
//! return [`FemError`] instead of panicking: a degenerate element, an
//! unconstrained system, or a singular preconditioner block must reach
//! the intraoperative pipeline as data it can react to (escalate,
//! degrade, skip the scan), not as an abort.

use brainshift_mesh::MeshError;
use brainshift_sparse::SparseError;
use std::fmt;

/// Errors raised while building or solving the biomechanical FEM system.
#[derive(Debug, Clone, PartialEq)]
pub enum FemError {
    /// The mesh failed structural or quality validation.
    Mesh(MeshError),
    /// The sparse layer rejected a matrix or preconditioner (including
    /// singular block-Jacobi blocks).
    Sparse(SparseError),
    /// An element's vertex configuration is degenerate (zero or
    /// near-zero volume) where it cannot be skipped.
    DegenerateElement {
        /// Signed volume of the offending element (mm³).
        volume: f64,
    },
    /// No Dirichlet boundary conditions were supplied: the elasticity
    /// operator has a rigid-body null space and the system is singular.
    Unconstrained,
    /// A constrained node index exceeds the mesh's node count.
    ConstrainedNodeOutOfRange {
        /// Offending node index.
        node: usize,
        /// Number of DOFs in the system.
        ndof: usize,
    },
    /// The boundary-condition set does not match the constrained node set
    /// the solver context was built with.
    BcSetMismatch {
        /// Constrained DOFs the context expects.
        expected: usize,
        /// Constrained DOFs the BC set provides.
        got: usize,
    },
    /// A node is in the constrained set but the BC set has no value for
    /// it.
    MissingBcValue {
        /// The node without a prescribed displacement.
        node: usize,
    },
    /// A prebuilt stiffness matrix does not match the mesh's equation
    /// count.
    MatrixShapeMismatch {
        /// Rows of the supplied matrix.
        rows: usize,
        /// Equations (3 × nodes) of the mesh.
        equations: usize,
    },
    /// An externally assembled load vector does not match the mesh's
    /// equation count.
    LoadVectorMismatch {
        /// Length of the supplied load vector.
        len: usize,
        /// Equations (3 × nodes) of the mesh.
        equations: usize,
    },
}

impl fmt::Display for FemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FemError::Mesh(e) => write!(f, "mesh error: {e}"),
            FemError::Sparse(e) => write!(f, "sparse error: {e}"),
            FemError::DegenerateElement { volume } => {
                write!(f, "degenerate element (volume {volume:.3e})")
            }
            FemError::Unconstrained => {
                write!(f, "system has no Dirichlet boundary conditions (singular)")
            }
            FemError::ConstrainedNodeOutOfRange { node, ndof } => {
                write!(f, "constrained node {node} out of range for {ndof} DOFs")
            }
            FemError::BcSetMismatch { expected, got } => {
                write!(f, "BC set has {got} constrained DOFs, context expects {expected}")
            }
            FemError::MissingBcValue { node } => {
                write!(f, "node {node} is in the constrained set but has no prescribed value")
            }
            FemError::MatrixShapeMismatch { rows, equations } => {
                write!(f, "stiffness matrix has {rows} rows, mesh has {equations} equations")
            }
            FemError::LoadVectorMismatch { len, equations } => {
                write!(f, "load vector has {len} entries, mesh has {equations} equations")
            }
        }
    }
}

impl std::error::Error for FemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FemError::Mesh(e) => Some(e),
            FemError::Sparse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MeshError> for FemError {
    fn from(e: MeshError) -> Self {
        FemError::Mesh(e)
    }
}

impl From<SparseError> for FemError {
    fn from(e: SparseError) -> Self {
        FemError::Sparse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_lower_layers_with_source() {
        let e = FemError::from(SparseError::SingularBlock { block: 1, rows: (0, 3), shifted: true });
        assert!(e.to_string().contains("singular"));
        assert!(std::error::Error::source(&e).is_some());
        let e = FemError::from(MeshError::InvertedTet { tet: 0, volume: -1.0 });
        assert!(matches!(e, FemError::Mesh(_)));
    }
}
