//! Linear tetrahedral elements.
//!
//! The paper (Eq. 2–3) uses tetrahedra with linear interpolation of the
//! displacement field; shape-function coefficients follow Zienkiewicz &
//! Taylor (the paper's ref [26], "pages 91–92"). The element stiffness is
//! `Kᵉ = V Bᵀ D B` with the constant strain-displacement matrix `B`.

use crate::error::FemError;
use crate::material::Material;
use brainshift_imaging::{Mat3, Vec3};

/// Geometry-derived quantities of one linear tetrahedron: shape-function
/// gradients (constant over the element) and volume.
#[derive(Debug, Clone, Copy)]
pub struct TetShape {
    /// ∇Nᵢ for each of the 4 nodes (1/mm).
    pub grads: [Vec3; 4],
    /// Element volume (mm³), positive for valid orientation.
    pub volume: f64,
}

impl TetShape {
    /// Compute gradients and volume from vertex positions. Returns
    /// [`FemError::DegenerateElement`] for (near-)zero-volume elements.
    pub fn new(p: [Vec3; 4]) -> Result<TetShape, FemError> {
        let e1 = p[1] - p[0];
        let e2 = p[2] - p[0];
        let e3 = p[3] - p[0];
        let volume = e1.cross(e2).dot(e3) / 6.0;
        if volume.abs() < 1e-30 {
            return Err(FemError::DegenerateElement { volume });
        }
        // Barycentric gradient: [λ1 λ2 λ3]ᵀ = M⁻¹ (x − p0), with M columns
        // e1, e2, e3; so ∇λᵢ is the i-th ROW of M⁻¹.
        let m = Mat3::from_rows([e1.x, e2.x, e3.x], [e1.y, e2.y, e3.y], [e1.z, e2.z, e3.z]);
        let inv = m.inverse().ok_or(FemError::DegenerateElement { volume })?;
        let g1 = Vec3::new(inv.m[0][0], inv.m[0][1], inv.m[0][2]);
        let g2 = Vec3::new(inv.m[1][0], inv.m[1][1], inv.m[1][2]);
        let g3 = Vec3::new(inv.m[2][0], inv.m[2][1], inv.m[2][2]);
        let g0 = -(g1 + g2 + g3);
        Ok(TetShape { grads: [g0, g1, g2, g3], volume })
    }

    /// Shape function values at point `x` (barycentric coordinates w.r.t.
    /// the original vertices); requires the vertex positions again.
    pub fn shape_values(p: [Vec3; 4], x: Vec3) -> Option<[f64; 4]> {
        brainshift_mesh::tetmesh::barycentric_in(p[0], p[1], p[2], p[3], x)
    }
}

/// Row-major 12×12 element stiffness matrix, ordered
/// `[u0x u0y u0z u1x ... u3z]`.
pub type ElementStiffness = [[f64; 12]; 12];

/// Element stiffness via the closed-form isotropic expression
/// `(K_ij)_ab = V (λ gᵢ_a gⱼ_b + μ gᵢ_b gⱼ_a + μ δ_ab gᵢ·gⱼ)` — equivalent
/// to `V Bᵀ D B` (validated against [`stiffness_btdb`] in tests) and what
/// the assembly hot loop uses.
pub fn stiffness_isotropic(shape: &TetShape, mat: &Material) -> ElementStiffness {
    let lambda = mat.lame_lambda();
    let mu = mat.lame_mu();
    let v = shape.volume;
    let mut k = [[0.0; 12]; 12];
    for i in 0..4 {
        let gi = shape.grads[i];
        for j in 0..4 {
            let gj = shape.grads[j];
            let gdot = gi.dot(gj);
            let gi_a = [gi.x, gi.y, gi.z];
            let gj_b = [gj.x, gj.y, gj.z];
            for a in 0..3 {
                for b in 0..3 {
                    let mut val = lambda * gi_a[a] * gj_b[b] + mu * gi_a[b] * gj_b[a];
                    if a == b {
                        val += mu * gdot;
                    }
                    k[3 * i + a][3 * j + b] = v * val;
                }
            }
        }
    }
    k
}

/// Element stiffness via the generic `V Bᵀ D B` product with an arbitrary
/// 6×6 elasticity matrix (reference implementation; also used for
/// anisotropic experiments).
pub fn stiffness_btdb(shape: &TetShape, d: &[[f64; 6]; 6]) -> ElementStiffness {
    // B is 6×12: strain = B u, engineering shear convention.
    let mut b = [[0.0f64; 12]; 6];
    for i in 0..4 {
        let g = shape.grads[i];
        let c = 3 * i;
        b[0][c] = g.x;
        b[1][c + 1] = g.y;
        b[2][c + 2] = g.z;
        b[3][c] = g.y;
        b[3][c + 1] = g.x;
        b[4][c + 1] = g.z;
        b[4][c + 2] = g.y;
        b[5][c] = g.z;
        b[5][c + 2] = g.x;
    }
    // K = V Bᵀ D B
    let mut db = [[0.0f64; 12]; 6];
    for r in 0..6 {
        for c in 0..12 {
            let mut acc = 0.0;
            for k2 in 0..6 {
                acc += d[r][k2] * b[k2][c];
            }
            db[r][c] = acc;
        }
    }
    let mut k = [[0.0f64; 12]; 12];
    for r in 0..12 {
        for c in 0..12 {
            let mut acc = 0.0;
            for k2 in 0..6 {
                acc += b[k2][r] * db[k2][c];
            }
            k[r][c] = shape.volume * acc;
        }
    }
    k
}

/// Work units (effective flops) to build and scatter one element
/// stiffness in the modeled 1999 implementation — includes the generic
/// Bᵀ D B product, interpolation bookkeeping and the PETSc
/// MatSetValues-style scatter overhead the paper's code paid. Used by the
/// simulated-cluster cost model; the constant matters less than its
/// *proportionality* to per-element work (calibrated against Figure 7's
/// absolute assembly times).
pub const FLOPS_PER_ELEMENT: f64 = 24_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_tet() -> [Vec3; 4] {
        [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(0.0, 0.0, 1.0),
        ]
    }

    #[test]
    fn shape_gradients_sum_to_zero() {
        let s = TetShape::new(unit_tet()).unwrap();
        let sum = s.grads[0] + s.grads[1] + s.grads[2] + s.grads[3];
        assert!(sum.norm() < 1e-14);
        assert!((s.volume - 1.0 / 6.0).abs() < 1e-15);
    }

    #[test]
    fn gradients_reproduce_linear_field() {
        // For u(x) = c·x, the FE interpolation Σ Nᵢ(x) u(pᵢ) is exact, so
        // Σ ∇Nᵢ (c·pᵢ) = c.
        let p = [
            Vec3::new(0.2, 0.1, 0.0),
            Vec3::new(1.3, 0.2, 0.1),
            Vec3::new(0.1, 1.1, 0.3),
            Vec3::new(0.4, 0.2, 1.2),
        ];
        let s = TetShape::new(p).unwrap();
        let c = Vec3::new(0.7, -1.3, 2.1);
        let mut grad = Vec3::ZERO;
        for i in 0..4 {
            grad += s.grads[i] * c.dot(p[i]);
        }
        assert!((grad - c).norm() < 1e-12, "{grad:?}");
    }

    #[test]
    fn degenerate_tet_rejected() {
        let p = [
            Vec3::ZERO,
            Vec3::new(1.0, 0.0, 0.0),
            Vec3::new(2.0, 0.0, 0.0),
            Vec3::new(3.0, 0.0, 0.0),
        ];
        assert!(matches!(TetShape::new(p), Err(FemError::DegenerateElement { .. })));
    }

    #[test]
    fn stiffness_symmetric() {
        let s = TetShape::new(unit_tet()).unwrap();
        let k = stiffness_isotropic(&s, &Material::brain());
        for i in 0..12 {
            for j in 0..12 {
                assert!((k[i][j] - k[j][i]).abs() < 1e-9 * k[0][0].abs().max(1.0));
            }
        }
    }

    #[test]
    fn closed_form_matches_btdb() {
        let p = [
            Vec3::new(0.1, 0.0, 0.2),
            Vec3::new(1.2, 0.1, 0.0),
            Vec3::new(0.0, 1.4, 0.1),
            Vec3::new(0.3, 0.2, 1.1),
        ];
        let s = TetShape::new(p).unwrap();
        let mat = Material::new(2500.0, 0.4);
        let k1 = stiffness_isotropic(&s, &mat);
        let k2 = stiffness_btdb(&s, &mat.elasticity_matrix());
        let scale = k1.iter().flatten().fold(0.0f64, |m, &v| m.max(v.abs()));
        for i in 0..12 {
            for j in 0..12 {
                assert!(
                    (k1[i][j] - k2[i][j]).abs() < 1e-10 * scale,
                    "({i},{j}): {} vs {}",
                    k1[i][j],
                    k2[i][j]
                );
            }
        }
    }

    #[test]
    fn rigid_translation_produces_zero_force() {
        // K u = 0 for a rigid-body translation.
        let s = TetShape::new(unit_tet()).unwrap();
        let k = stiffness_isotropic(&s, &Material::brain());
        let u = [1.0, 2.0, -0.5].repeat(4);
        for row in k.iter() {
            let f: f64 = row.iter().zip(&u).map(|(a, b)| a * b).sum();
            assert!(f.abs() < 1e-9, "{f}");
        }
    }

    #[test]
    fn rigid_rotation_produces_zero_force() {
        // Infinitesimal rotation u = ω × x is also in the null space.
        let p = unit_tet();
        let s = TetShape::new(p).unwrap();
        let k = stiffness_isotropic(&s, &Material::brain());
        let omega = Vec3::new(0.3, -0.2, 0.5);
        let mut u = [0.0; 12];
        for i in 0..4 {
            let r = omega.cross(p[i]);
            u[3 * i] = r.x;
            u[3 * i + 1] = r.y;
            u[3 * i + 2] = r.z;
        }
        for row in k.iter() {
            let f: f64 = row.iter().zip(&u).map(|(a, b)| a * b).sum();
            assert!(f.abs() < 1e-9, "{f}");
        }
    }

    #[test]
    fn stiffness_positive_semidefinite_on_random_vectors() {
        use rand::{Rng, SeedableRng};
        let s = TetShape::new(unit_tet()).unwrap();
        let k = stiffness_isotropic(&s, &Material::brain());
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let u: Vec<f64> = (0..12).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut ku = [0.0; 12];
            for i in 0..12 {
                ku[i] = k[i].iter().zip(&u).map(|(a, b)| a * b).sum();
            }
            let quad: f64 = u.iter().zip(&ku).map(|(a, b)| a * b).sum();
            assert!(quad >= -1e-9, "uᵀKu = {quad} < 0");
        }
    }

    #[test]
    fn scaling_volume_scales_stiffness() {
        let p = unit_tet();
        let s1 = TetShape::new(p).unwrap();
        let p2: [Vec3; 4] = [p[0] * 2.0, p[1] * 2.0, p[2] * 2.0, p[3] * 2.0];
        let s2 = TetShape::new(p2).unwrap();
        let k1 = stiffness_isotropic(&s1, &Material::brain());
        let k2 = stiffness_isotropic(&s2, &Material::brain());
        // K ∝ V × |∇N|² → scales linearly with edge length (2×).
        assert!((k2[0][0] / k1[0][0] - 2.0).abs() < 1e-9);
    }
}
