//! Body-force load vectors (gravity).
//!
//! The paper's energy (Eq. 1) includes externally applied forces; its
//! pipeline drives the model purely by surface displacements, but the
//! *physics* of brain shift is gravity acting on tissue once CSF drains.
//! This module assembles the consistent nodal load vector for a constant
//! body force per element, enabling gravity-driven simulations (used by
//! the `gravity_sag` example and as a solver cross-check).
//!
//! Units: the stiffness matrix is assembled with E in Pa and lengths in
//! mm, so forces are in Pa·mm² (µN) and body-force densities in Pa/mm;
//! `gravity_load_density` converts from SI (kg/m³, m/s²).

use brainshift_imaging::Vec3;
use brainshift_mesh::TetMesh;

/// Convert a mass density (kg/m³) under gravity `g` (m/s², vector) to the
/// body-force density in the assembler's Pa/mm unit system.
pub fn gravity_load_density(rho_kg_m3: f64, g_m_s2: Vec3) -> Vec3 {
    // ρg [N/m³] × 1e-3 → Pa/mm.
    g_m_s2 * (rho_kg_m3 * 1e-3)
}

/// Typical brain tissue density, kg/m³.
pub const BRAIN_DENSITY: f64 = 1040.0;
/// Standard gravity pointing along −z, m/s².
pub fn standard_gravity() -> Vec3 {
    Vec3::new(0.0, 0.0, -9.81)
}

/// Assemble the consistent nodal load vector for per-label body-force
/// densities (Pa/mm): each element spreads `w × V` equally over its four
/// nodes (exact for linear shape functions and constant force).
pub fn assemble_body_force(mesh: &TetMesh, density_of: impl Fn(u8) -> Vec3) -> Vec<f64> {
    let mut f = vec![0.0; mesh.num_equations()];
    for (t, tet) in mesh.tets.iter().enumerate() {
        let v = mesh.tet_volume(t);
        let w = density_of(mesh.tet_labels[t]);
        let share = w * (v / 4.0);
        for &n in tet {
            f[3 * n] += share.x;
            f[3 * n + 1] += share.y;
            f[3 * n + 2] += share.z;
        }
    }
    f
}

/// Uniform gravity load for the whole mesh (brain density everywhere).
pub fn assemble_gravity(mesh: &TetMesh) -> Vec<f64> {
    let w = gravity_load_density(BRAIN_DENSITY, standard_gravity());
    assemble_body_force(mesh, |_| w)
}

/// Uniform gravity load along an arbitrary direction: standard gravity
/// magnitude, brain density, direction normalized from `dir`. This is the
/// intraoperative situation — the patient's head is oriented so the
/// craniotomy faces "up", so gravity points along the inward craniotomy
/// axis rather than world −z.
pub fn assemble_directed_gravity(mesh: &TetMesh, dir: Vec3) -> Vec<f64> {
    let g_mag = gravity_load_density(BRAIN_DENSITY, standard_gravity()).norm();
    let w = dir.normalized() * g_mag;
    assemble_body_force(mesh, |_| w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::assemble_stiffness;
    use crate::bc::{apply_dirichlet, DirichletBcs};
    use crate::material::MaterialTable;
    use brainshift_imaging::labels;
    use brainshift_imaging::volume::{Dims, Spacing, Volume};
    use brainshift_mesh::{mesh_labeled_volume, MesherConfig};
    use brainshift_sparse::{gmres, Ilu0, SolverOptions};

    fn column_mesh(nx: usize, nz: usize) -> TetMesh {
        let seg = Volume::from_fn(Dims::new(nx, nx, nz), Spacing::iso(1.0), |_, _, _| labels::BRAIN);
        mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable })
    }

    #[test]
    fn total_load_equals_weight() {
        let mesh = column_mesh(3, 5);
        let f = assemble_gravity(&mesh);
        let total_z: f64 = (0..mesh.num_nodes()).map(|n| f[3 * n + 2]).sum();
        let w = gravity_load_density(BRAIN_DENSITY, standard_gravity());
        let expect = w.z * mesh.total_volume();
        assert!((total_z - expect).abs() < 1e-9 * expect.abs());
        // x/y components vanish.
        let total_x: f64 = (0..mesh.num_nodes()).map(|n| f[3 * n]).sum();
        assert!(total_x.abs() < 1e-12);
    }

    #[test]
    fn unit_conversion() {
        let w = gravity_load_density(1000.0, Vec3::new(0.0, 0.0, -10.0));
        // 1000 kg/m³ × 10 m/s² = 10⁴ N/m³ = 10 Pa/mm.
        assert!((w.z + 10.0).abs() < 1e-12);
    }

    #[test]
    fn gravity_sag_of_fixed_base_column() {
        // Column fixed at z = 0, gravity pulls down: displacement is
        // downward, grows with height, and the top deflection is of the
        // analytic order u = ρg H² / (2 E_c) with the constrained modulus.
        let nz = 8;
        let mesh = column_mesh(3, nz);
        let mats = MaterialTable::homogeneous();
        let k = assemble_stiffness(&mesh, &mats);
        let f = assemble_gravity(&mesh);
        let mut bcs = DirichletBcs::new();
        for (n, p) in mesh.nodes.iter().enumerate() {
            if p.z < 1e-9 {
                bcs.set(n, Vec3::ZERO);
            }
        }
        let red = apply_dirichlet(&k, &f, &bcs).expect("valid BC set");
        let mut x = vec![0.0; red.matrix.nrows()];
        let stats = gmres(
            &red.matrix,
            &Ilu0::new(&red.matrix),
            &red.rhs,
            &mut x,
            &SolverOptions { tolerance: 1e-10, max_iterations: 5000, ..Default::default() },
        )
        .expect("dimensions agree");
        assert!(stats.converged());
        let full = red.expand_solution(&x);
        // Monotone downward sag with height along the centre column.
        let mut prev = 0.0;
        for (n, p) in mesh.nodes.iter().enumerate() {
            if (p.x - 1.0).abs() < 1e-9 && (p.y - 1.0).abs() < 1e-9 {
                let uz = full[3 * n + 2];
                assert!(uz <= 1e-12, "node at z={} moved up: {uz}", p.z);
                if p.z > 0.0 {
                    assert!(uz <= prev + 1e-12, "sag not monotone at z={}", p.z);
                    prev = uz;
                }
            }
        }
        // Order-of-magnitude check vs 1-D constrained compression:
        // u_top ≈ ρg H² / (2 (λ+2μ)).
        let mat = crate::material::Material::brain();
        let w = gravity_load_density(BRAIN_DENSITY, standard_gravity()).z.abs();
        let h = nz as f64;
        let analytic = w * h * h / (2.0 * (mat.lame_lambda() + 2.0 * mat.lame_mu()));
        let top = mesh
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, p)| (p.z - h).abs() < 1e-9)
            .map(|(n, _)| -full[3 * n + 2])
            .fold(0.0f64, f64::max);
        assert!(
            top > 0.2 * analytic && top < 5.0 * analytic,
            "top sag {top} vs analytic order {analytic}"
        );
    }

    #[test]
    fn heavier_tissue_sags_more() {
        let mesh = column_mesh(3, 6);
        let mats = MaterialTable::homogeneous();
        let k = assemble_stiffness(&mesh, &mats);
        let mut bcs = DirichletBcs::new();
        for (n, p) in mesh.nodes.iter().enumerate() {
            if p.z < 1e-9 {
                bcs.set(n, Vec3::ZERO);
            }
        }
        let solve_for = |rho: f64| -> f64 {
            let w = gravity_load_density(rho, standard_gravity());
            let f = assemble_body_force(&mesh, |_| w);
            let red = apply_dirichlet(&k, &f, &bcs).expect("valid BC set");
            let mut x = vec![0.0; red.matrix.nrows()];
            let s = gmres(
                &red.matrix,
                &Ilu0::new(&red.matrix),
                &red.rhs,
                &mut x,
                &SolverOptions { tolerance: 1e-10, max_iterations: 5000, ..Default::default() },
            )
            .expect("dimensions agree");
            assert!(s.converged());
            let full = red.expand_solution(&x);
            full.iter().skip(2).step_by(3).fold(0.0f64, |m, &v| m.max(-v))
        };
        let sag1 = solve_for(1000.0);
        let sag2 = solve_for(2000.0);
        // Linear problem: doubling the density doubles the sag.
        assert!((sag2 / sag1 - 2.0).abs() < 1e-6, "{sag1} vs {sag2}");
    }
}
