//! # brainshift-fem
//!
//! The biomechanical finite-element engine of the paper: linear-elastic
//! tetrahedral elements (Zienkiewicz & Taylor formulation), per-tissue
//! material tables (homogeneous, as the paper used, and heterogeneous, as
//! it proposed), parallel global assembly, Dirichlet substitution of the
//! active-surface displacements, a GMRES + block-Jacobi solve driver, and
//! the simulated-cluster instrumentation that regenerates the paper's
//! timing figures.

#![warn(missing_docs)]
// The FEM layer returns typed `FemError`s instead of panicking on bad
// input. Test modules are exempt; descriptive `.expect()` on established
// invariants remains allowed.
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod assembly;
pub mod bc;
pub mod context;
pub mod element;
pub mod error;
pub mod interpolate;
pub mod loads;
pub mod material;
pub mod matfree;
pub mod simulate;
pub mod solver;
pub mod stress;

pub use assembly::assemble_stiffness;
pub use bc::{apply_dirichlet, DirichletBcs, DirichletStructure, ReducedSystem};
pub use context::{ContextStats, ContextTimings, SolverContext};
pub use element::{stiffness_btdb, stiffness_isotropic, TetShape};
pub use error::FemError;
pub use interpolate::displacement_field_from_mesh;
pub use loads::{
    assemble_body_force, assemble_directed_gravity, assemble_gravity, gravity_load_density,
};
pub use material::{Material, MaterialTable};
pub use matfree::ElementOperator;
pub use simulate::{simulate_assemble_solve, SimOptions, SimProblem, SimTimings};
pub use stress::{evaluate_stress, summarize, ElementState, StressSummary};
pub use solver::{
    solve_deformation, solve_with_loads, solve_with_matrix, solve_with_matrix_and_loads,
    FemSolveConfig, FemSolution, KrylovKind, PrecondKind, Reordering, SpmvKind,
};
