//! Mesh-to-voxel displacement interpolation.
//!
//! The FEM produces displacements at mesh nodes; "for display of the
//! simulated deformation we need to resample a data set according to the
//! computed deformation" — that resampling needs the displacement at every
//! voxel, obtained here by barycentric interpolation within each
//! tetrahedron (the linear shape functions of the paper's Eq. 2).

use brainshift_imaging::volume::{Dims, Spacing};
use brainshift_imaging::{DisplacementField, Vec3};
use brainshift_mesh::TetMesh;
use rayon::prelude::*;

/// Interpolate nodal displacements onto a voxel grid. Voxels outside the
/// mesh get zero displacement. `tol` admits voxels slightly outside a tet
/// (barycentric coordinates ≥ −tol) so grid-aligned boundaries are covered.
pub fn displacement_field_from_mesh(
    mesh: &TetMesh,
    displacements: &[Vec3],
    dims: Dims,
    spacing: Spacing,
) -> DisplacementField {
    assert_eq!(displacements.len(), mesh.num_nodes());
    let tol = 1e-9;
    // Scatter per-tet into slabs of z to parallelize without locking:
    // each z-slab is processed independently, scanning the tets whose
    // bounding box intersects it. Precompute tet bounding boxes in voxel
    // coordinates.
    #[derive(Clone, Copy)]
    struct TetBox {
        t: usize,
        z0: usize,
        z1: usize,
    }
    let vox_of = |p: Vec3| Vec3::new(p.x / spacing.dx, p.y / spacing.dy, p.z / spacing.dz);
    let boxes: Vec<TetBox> = (0..mesh.num_tets())
        .filter_map(|t| {
            let tet = mesh.tets[t];
            let mut lo = Vec3::splat(f64::INFINITY);
            let mut hi = Vec3::splat(f64::NEG_INFINITY);
            for &n in &tet {
                let v = vox_of(mesh.nodes[n]);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let z0 = lo.z.ceil().max(0.0) as usize;
            let z1 = (hi.z.floor() as i64).min(dims.nz as i64 - 1);
            if z1 < z0 as i64 {
                return None;
            }
            Some(TetBox { t, z0, z1: z1 as usize })
        })
        .collect();
    // Bucket tets by z-slab.
    let mut by_z: Vec<Vec<usize>> = vec![Vec::new(); dims.nz];
    for b in &boxes {
        for z in b.z0..=b.z1 {
            by_z[z].push(b.t);
        }
    }

    let slab = dims.nx * dims.ny;
    let mut data = vec![Vec3::ZERO; dims.len()];
    data.par_chunks_mut(slab).enumerate().for_each(|(z, out)| {
        for &t in &by_z[z] {
            let tet = mesh.tets[t];
            let p = [
                mesh.nodes[tet[0]],
                mesh.nodes[tet[1]],
                mesh.nodes[tet[2]],
                mesh.nodes[tet[3]],
            ];
            // Voxel-space bounding box in x, y for this tet.
            let mut lo = Vec3::splat(f64::INFINITY);
            let mut hi = Vec3::splat(f64::NEG_INFINITY);
            for &q in &p {
                let v = vox_of(q);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let x0 = lo.x.ceil().max(0.0) as usize;
            let x1 = (hi.x.floor() as i64).min(dims.nx as i64 - 1);
            let y0 = lo.y.ceil().max(0.0) as usize;
            let y1 = (hi.y.floor() as i64).min(dims.ny as i64 - 1);
            if x1 < x0 as i64 || y1 < y0 as i64 {
                continue;
            }
            for y in y0..=(y1 as usize) {
                for x in x0..=(x1 as usize) {
                    let world = Vec3::new(x as f64 * spacing.dx, y as f64 * spacing.dy, z as f64 * spacing.dz);
                    if let Some(w) = brainshift_mesh::tetmesh::barycentric_in(p[0], p[1], p[2], p[3], world) {
                        if w.iter().all(|&wi| wi >= -tol) {
                            let u = displacements[tet[0]] * w[0]
                                + displacements[tet[1]] * w[1]
                                + displacements[tet[2]] * w[2]
                                + displacements[tet[3]] * w[3];
                            out[x + dims.nx * y] = u;
                        }
                    }
                }
            }
        }
    });
    let mut field = DisplacementField::zeros(dims, spacing);
    field.data_mut().copy_from_slice(&data);
    field
}

/// Fraction of voxels in `mask_dims` covered by the mesh (diagnostic).
pub fn coverage_fraction(mesh: &TetMesh, dims: Dims, spacing: Spacing) -> f64 {
    let marker: Vec<Vec3> = vec![Vec3::new(1.0, 0.0, 0.0); mesh.num_nodes()];
    let f = displacement_field_from_mesh(mesh, &marker, dims, spacing);
    let covered = f.data().iter().filter(|v| v.x > 0.5).count();
    covered as f64 / dims.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::labels;
    use brainshift_imaging::volume::Volume;
    use brainshift_mesh::{mesh_labeled_volume, MesherConfig};

    fn full_mesh(n: usize) -> TetMesh {
        let seg = Volume::from_fn(Dims::new(n, n, n), Spacing::iso(1.0), |_, _, _| labels::BRAIN);
        mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable })
    }

    #[test]
    fn linear_nodal_field_interpolates_exactly() {
        let n = 4;
        let mesh = full_mesh(n);
        let disp: Vec<Vec3> = mesh
            .nodes
            .iter()
            .map(|p| Vec3::new(0.1 * p.x + 0.2 * p.y, -0.3 * p.z, 0.05 * p.x))
            .collect();
        let dims = Dims::new(n + 1, n + 1, n + 1);
        let f = displacement_field_from_mesh(&mesh, &disp, dims, Spacing::iso(1.0));
        // Every voxel centre inside the meshed cube must see the linear
        // field exactly.
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    let expect = Vec3::new(0.1 * x as f64 + 0.2 * y as f64, -0.3 * z as f64, 0.05 * x as f64);
                    let got = f.get(x, y, z);
                    assert!((got - expect).norm() < 1e-9, "({x},{y},{z}): {got:?}");
                }
            }
        }
    }

    #[test]
    fn outside_mesh_is_zero() {
        let mesh = full_mesh(2);
        let disp = vec![Vec3::new(1.0, 1.0, 1.0); mesh.num_nodes()];
        let dims = Dims::new(10, 10, 10);
        let f = displacement_field_from_mesh(&mesh, &disp, dims, Spacing::iso(1.0));
        assert_eq!(f.get(9, 9, 9), Vec3::ZERO);
        assert!((f.get(1, 1, 1) - Vec3::new(1.0, 1.0, 1.0)).norm() < 1e-9);
    }

    #[test]
    fn coverage_of_full_cube() {
        let mesh = full_mesh(4);
        // Voxels 0..=4 in each axis are inside the mesh: 5³ of 8³.
        let frac = coverage_fraction(&mesh, Dims::new(8, 8, 8), Spacing::iso(1.0));
        let expect = 125.0 / 512.0;
        assert!((frac - expect).abs() < 0.02, "{frac} vs {expect}");
    }

    #[test]
    fn anisotropic_spacing_respected() {
        let mesh = full_mesh(3); // nodes span 0..3 mm in each axis
        let disp: Vec<Vec3> = mesh.nodes.iter().map(|p| Vec3::new(p.z, 0.0, 0.0)).collect();
        // Grid with dz = 1.5 mm: voxel (0,0,2) is at z = 3.0 mm.
        let f = displacement_field_from_mesh(&mesh, &disp, Dims::new(4, 4, 3), Spacing::new(1.0, 1.0, 1.5));
        assert!((f.get(0, 0, 2).x - 3.0).abs() < 1e-9);
        assert!((f.get(1, 1, 1).x - 1.5).abs() < 1e-9);
    }
}
