//! Persistent solver context: assemble once, re-solve many.
//!
//! The paper's intraoperative loop solves the *same* elastic system once
//! per scan: the mesh, the material table, and the set of constrained
//! surface nodes are fixed for the whole surgery — only the prescribed
//! surface displacements change as the brain shifts. The original
//! pipeline nevertheless re-assembled the global stiffness matrix,
//! re-applied the Dirichlet substitution, and re-factored the
//! preconditioner on every scan.
//!
//! A [`SolverContext`] hoists all of that per-surgery work out of the
//! per-scan path. It caches:
//!
//! 1. the assembled stiffness matrix `K`;
//! 2. the reduced free-free block `K_ff` and the boundary-coupling block
//!    `K_fc` (so each scan's load vector is one sparse product,
//!    `f = −K_fc·u_c`);
//! 3. the factored preconditioner for `K_ff`;
//! 4. a [`KrylovWorkspace`] reused across solves (no per-scan basis
//!    allocation).
//!
//! Per scan, the remaining work is: gather boundary values → one
//! `K_fc` product → one GMRES solve warm-started from the previous
//! scan's displacement (brain shift is progressive, so consecutive
//! solutions are close). [`ContextStats`] counts assemblies and
//! factorizations so callers can *assert* the assemble-once contract.

use crate::assembly::assemble_stiffness;
use crate::bc::{DirichletBcs, DirichletStructure};
use crate::error::FemError;
use crate::material::MaterialTable;
use crate::solver::{
    build_preconditioner, FemSolution, FemSolveConfig, KrylovKind, Reordering, SpmvKind,
};
use brainshift_imaging::Vec3;
use brainshift_mesh::TetMesh;
use brainshift_obs::Stopwatch;
use brainshift_sparse::{
    conjugate_gradient, permute_symmetric, permute_vec_into, reverse_cuthill_mckee_blocks,
    solve_escalated_mixed, unpermute_vec_into, BlockCsr, CsrMatrix, EscalationPolicy,
    KrylovWorkspace, LinearOperator, MixedPrecision, Precision, Preconditioner, RungTrace,
    SolverOptions,
};

/// Counters proving the assemble-once / re-solve-many contract and
/// recording how often the solver had to fight for convergence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Global stiffness assemblies performed by this context.
    pub assemblies: usize,
    /// Preconditioner factorizations performed by this context.
    pub factorizations: usize,
    /// Total solves served.
    pub solves: usize,
    /// Solves seeded from a previous solution instead of zero.
    pub warm_started_solves: usize,
    /// Solves that needed at least one escalation rung beyond the
    /// primary GMRES configuration.
    pub escalations: usize,
    /// Solves that did not converge even after the full escalation
    /// ladder (the returned field is the best iterate, not a solution).
    pub failed_solves: usize,
}

/// Wall-clock seconds spent in each setup/solve phase of a context —
/// the FEM half of the paper's per-stage breakdown. Kept separate from
/// [`ContextStats`] (which stays `Eq` for exact comparison in tests).
/// `solve_s` accumulates across solves; `last_solve_s` is the most
/// recent solve alone.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ContextTimings {
    /// Global stiffness assembly.
    pub assembly_s: f64,
    /// Dirichlet reduction (building `K_ff`/`K_fc`).
    pub reduction_s: f64,
    /// Preconditioner factorization.
    pub factorization_s: f64,
    /// Cumulative Krylov solve time across all solves served.
    pub solve_s: f64,
    /// Krylov solve time of the most recent solve.
    pub last_solve_s: f64,
}

/// A per-surgery solver: fixed mesh, materials, and constrained node
/// set; cheap repeated solves as the prescribed values change per scan.
pub struct SolverContext {
    cfg: FemSolveConfig,
    num_nodes: usize,
    mesh_fingerprint: u64,
    k: CsrMatrix,
    structure: DirichletStructure,
    /// Node-level RCM permutation of the reduced system (`perm[new] =
    /// old`) when `cfg.reorder` asks for one. Everything the solve
    /// touches — matrix, preconditioner factors, warm-start vector —
    /// lives in this order; solutions are unpermuted on extraction.
    perm: Option<Vec<usize>>,
    /// The RCM-permuted reduced matrix (rebuilt on decode).
    a_p: Option<CsrMatrix>,
    /// 3×3-blocked form of the solve matrix when `cfg.spmv` asks for one
    /// (rebuilt on decode).
    block: Option<BlockCsr>,
    /// f32 companion of the solve matrix + preconditioner for the
    /// mixed-precision rung (rebuilt on decode).
    mixed: Option<MixedPrecision>,
    precond: Box<dyn Preconditioner>,
    workspace: KrylovWorkspace,
    /// Previous reduced solution *in solve order*; seeds the next solve.
    prev_x: Vec<f64>,
    has_prev: bool,
    u_c: Vec<f64>,
    rhs: Vec<f64>,
    /// Solve-order right-hand side (empty when solving in native order).
    rhs_p: Vec<f64>,
    /// Native-order solution scratch (empty when solving in native order).
    x_nat: Vec<f64>,
    full: Vec<f64>,
    stats: ContextStats,
    timings: ContextTimings,
}

/// Build the derived kernels for the solve matrix (the permuted reduced
/// matrix when RCM is on): the 3×3-blocked SpMV form and the f32 mirror
/// for the mixed-precision rung. Shared by the construction and decode
/// paths; the factored `precond` must act on `solve_mat`.
fn derive_kernels(
    cfg: &FemSolveConfig,
    solve_mat: &CsrMatrix,
    precond: &dyn Preconditioner,
) -> Result<(Option<BlockCsr>, Option<MixedPrecision>), FemError> {
    let block = match cfg.spmv {
        SpmvKind::Scalar => None,
        SpmvKind::Block3 => Some(BlockCsr::from_csr(solve_mat)?),
    };
    let mixed = if cfg.options.precision == Precision::Mixed {
        precond.mixed_mirror(solve_mat)
    } else {
        None
    };
    Ok((block, mixed))
}

impl SolverContext {
    /// Assemble the stiffness matrix for `mesh`/`materials`, reduce it
    /// along the DOFs of `constrained_nodes`, and factor the
    /// preconditioner — the once-per-surgery setup. The mesh is
    /// structurally validated first: a context built from an inverted or
    /// degenerate mesh would fail intraoperatively, so it must fail here.
    pub fn new(
        mesh: &TetMesh,
        materials: &MaterialTable,
        constrained_nodes: &[usize],
        cfg: FemSolveConfig,
    ) -> Result<Self, FemError> {
        mesh.validate()?;
        let sw = Stopwatch::wall();
        let k = assemble_stiffness(mesh, materials);
        let assembly_s = sw.elapsed_s();
        let mut ctx = Self::with_matrix(k, mesh, constrained_nodes, cfg)?;
        ctx.stats.assemblies = 1;
        ctx.timings.assembly_s = assembly_s;
        Ok(ctx)
    }

    /// Build a context around a pre-assembled stiffness matrix (no
    /// assembly counted; one factorization performed).
    pub fn with_matrix(
        k: CsrMatrix,
        mesh: &TetMesh,
        constrained_nodes: &[usize],
        cfg: FemSolveConfig,
    ) -> Result<Self, FemError> {
        if k.nrows() != mesh.num_equations() {
            return Err(FemError::MatrixShapeMismatch {
                rows: k.nrows(),
                equations: mesh.num_equations(),
            });
        }
        if constrained_nodes.is_empty() {
            return Err(FemError::Unconstrained);
        }
        let mut sw = Stopwatch::wall();
        let structure = DirichletStructure::new(&k, constrained_nodes)?;
        // RCM ordering, when requested, is part of building the reduced
        // system: the permuted matrix is what gets factored and solved.
        let perm = match cfg.reorder {
            Reordering::Native => None,
            Reordering::Rcm => Some(reverse_cuthill_mckee_blocks(&structure.matrix, 3)?),
        };
        let a_p = match &perm {
            Some(p) => Some(permute_symmetric(&structure.matrix, p)?),
            None => None,
        };
        let reduction_s = sw.lap_s();
        let solve_mat = a_p.as_ref().unwrap_or(&structure.matrix);
        let precond = build_preconditioner(cfg.precond, solve_mat)?;
        let (block, mixed) = derive_kernels(&cfg, solve_mat, precond.as_ref())?;
        let factorization_s = sw.lap_s();
        let nfree = structure.num_free();
        let nc = structure.num_constrained();
        let workspace = KrylovWorkspace::new(nfree, cfg.options.restart);
        let scratch = if perm.is_some() { nfree } else { 0 };
        Ok(SolverContext {
            cfg,
            num_nodes: mesh.num_nodes(),
            mesh_fingerprint: mesh.fingerprint(),
            full: vec![0.0; k.nrows()],
            k,
            structure,
            perm,
            a_p,
            block,
            mixed,
            precond,
            workspace,
            prev_x: vec![0.0; nfree],
            has_prev: false,
            u_c: vec![0.0; nc],
            rhs: vec![0.0; nfree],
            rhs_p: vec![0.0; scratch],
            x_nat: vec![0.0; scratch],
            stats: ContextStats { factorizations: 1, ..Default::default() },
            timings: ContextTimings { reduction_s, factorization_s, ..Default::default() },
        })
    }

    /// Solve for the displacement field under `bcs`. The constrained
    /// node set must equal the one the context was built for (only the
    /// values may differ); returns [`FemError::BcSetMismatch`] otherwise.
    ///
    /// The solve is warm-started from the previous scan's solution when
    /// one exists (see [`Self::reset_warm_start`]). When the solver fails
    /// to converge even after escalation, the pre-solve warm-start seed
    /// is restored so one bad scan cannot poison the next scan's seed —
    /// the unconverged iterate is still returned for the caller to judge.
    pub fn solve(&mut self, bcs: &DirichletBcs) -> Result<FemSolution, FemError> {
        self.solve_with(bcs, None, None)
    }

    /// [`Self::solve`] with per-call overrides of the solver options
    /// and/or escalation policy (the context's configuration is used for
    /// whichever is `None`). Used by fault-injection tests and by callers
    /// that tighten the time budget for a specific scan.
    pub fn solve_with(
        &mut self,
        bcs: &DirichletBcs,
        opts_override: Option<&SolverOptions>,
        escalation_override: Option<&EscalationPolicy>,
    ) -> Result<FemSolution, FemError> {
        if 3 * bcs.len() != self.structure.num_constrained() {
            return Err(FemError::BcSetMismatch {
                expected: self.structure.num_constrained(),
                got: 3 * bcs.len(),
            });
        }
        self.structure.gather_constrained(bcs, &mut self.u_c)?;
        self.structure.reduced_rhs_zero_f(&self.u_c, &mut self.rhs);
        // The solve runs in solve order (RCM when on): permute the RHS
        // in, solve, and unpermute the solution out. `prev_x` stays in
        // solve order across scans so warm starts need no translation.
        let rhs: &[f64] = match &self.perm {
            Some(p) => {
                permute_vec_into(&self.rhs, p, &mut self.rhs_p);
                &self.rhs_p
            }
            None => &self.rhs,
        };
        let op: &dyn LinearOperator = match (&self.block, &self.a_p) {
            (Some(b), _) => b,
            (None, Some(ap)) => ap,
            (None, None) => &self.structure.matrix,
        };
        let solve_csr: &CsrMatrix = self.a_p.as_ref().unwrap_or(&self.structure.matrix);
        let mixed = self.mixed.as_ref().map(|m| (solve_csr, m));

        // Warm start: seed from the previous scan's reduced solution.
        let warm = self.has_prev;
        if !warm {
            self.prev_x.iter_mut().for_each(|v| *v = 0.0);
        }
        let seed_snapshot = self.prev_x.clone();
        let opts = opts_override.unwrap_or(&self.cfg.options).clone();
        let escalation = escalation_override.unwrap_or(&self.cfg.escalation).clone();
        let sw = Stopwatch::wall();
        let (stats, attempts, escalated, rung_reasons, rungs) = match self.cfg.krylov {
            KrylovKind::Gmres => {
                let out = solve_escalated_mixed(
                    op,
                    self.precond.as_ref(),
                    mixed,
                    rhs,
                    &mut self.prev_x,
                    &opts,
                    &escalation,
                    &mut self.workspace,
                )?;
                (out.stats, out.attempts, out.escalated, out.rung_reasons, out.rungs)
            }
            KrylovKind::ConjugateGradient => {
                let s = conjugate_gradient(
                    op,
                    self.precond.as_ref(),
                    rhs,
                    &mut self.prev_x,
                    &opts,
                )?;
                let reasons = vec![s.reason];
                let rungs = vec![RungTrace {
                    solver: "cg",
                    restart: 0,
                    reason: s.reason,
                    iterations: s.iterations,
                    restarts: 0,
                    relative_residual: s.relative_residual,
                    seconds: sw.elapsed_s(),
                }];
                (s, 1, false, reasons, rungs)
            }
        };
        self.timings.last_solve_s = sw.elapsed_s();
        self.timings.solve_s += self.timings.last_solve_s;
        self.stats.solves += 1;
        if warm {
            self.stats.warm_started_solves += 1;
        }
        if escalated {
            self.stats.escalations += 1;
        }

        let x_nat: &[f64] = match &self.perm {
            Some(p) => {
                unpermute_vec_into(&self.prev_x, p, &mut self.x_nat);
                &self.x_nat
            }
            None => &self.prev_x,
        };
        self.structure.expand_solution_into(x_nat, &self.u_c, &mut self.full);
        let displacements = (0..self.num_nodes)
            .map(|n| Vec3::new(self.full[3 * n], self.full[3 * n + 1], self.full[3 * n + 2]))
            .collect();
        if stats.converged() {
            self.has_prev = true;
        } else {
            // Roll back: the next solve seeds from the last *good* field.
            self.stats.failed_solves += 1;
            self.prev_x = seed_snapshot;
        }
        Ok(FemSolution {
            displacements,
            stats,
            attempts,
            escalated,
            rung_reasons,
            rungs,
            reduced_equations: self.structure.num_free(),
            total_equations: self.k.nrows(),
        })
    }

    /// Forget the previous solution; the next solve starts from zero.
    pub fn reset_warm_start(&mut self) {
        self.has_prev = false;
    }

    /// Assembly / factorization / solve counters.
    pub fn stats(&self) -> ContextStats {
        self.stats
    }

    /// Wall-clock seconds spent per setup/solve phase so far.
    pub fn timings(&self) -> ContextTimings {
        self.timings
    }

    /// Approximate heap footprint of everything this context keeps alive
    /// between scans: the assembled stiffness matrix, the reduced
    /// `K_ff`/`K_fc` blocks and DOF maps, the factored preconditioner,
    /// the Krylov workspace, the warm-start/scratch vectors, and the
    /// configuration's heap (escalation restart ladder). This is what a
    /// memory-budgeted context cache charges a surgery for; the persist
    /// layer's size-audit test holds it to the serialized size.
    pub fn memory_bytes(&self) -> usize {
        self.k.memory_bytes()
            + self.structure.memory_bytes()
            + self.precond.memory_bytes()
            + std::mem::size_of_val(self.cfg.escalation.larger_restarts.as_slice())
            + self.perm.as_ref().map_or(0, |p| std::mem::size_of_val(p.as_slice()))
            + self.scratch_bytes()
            + std::mem::size_of_val(self.prev_x.as_slice())
    }

    /// Heap bytes of the state that is *not* serialized by `Persist`
    /// because it is rebuilt on decode: the Krylov workspace, the
    /// per-solve scratch vectors, and the derived solve-order state (the
    /// permuted matrix, the blocked kernel, the f32 mirror).
    /// `memory_bytes() − scratch_bytes()` is therefore the accountant's
    /// estimate of the serialized payload.
    pub fn scratch_bytes(&self) -> usize {
        self.workspace.bytes()
            + std::mem::size_of_val(self.u_c.as_slice())
            + std::mem::size_of_val(self.rhs.as_slice())
            + std::mem::size_of_val(self.rhs_p.as_slice())
            + std::mem::size_of_val(self.x_nat.as_slice())
            + std::mem::size_of_val(self.full.as_slice())
            + self.a_p.as_ref().map_or(0, |m| m.memory_bytes())
            + self.block.as_ref().map_or(0, |b| b.memory_bytes())
            + self.mixed.as_ref().map_or(0, |m| m.memory_bytes())
    }

    /// The content fingerprint ([`TetMesh::fingerprint`]) of the mesh
    /// this context was built from. The persist layer checks it against
    /// the live mesh before resuming a restored context.
    pub fn mesh_fingerprint(&self) -> u64 {
        self.mesh_fingerprint
    }

    /// The cached full stiffness matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.k
    }

    /// The cached reduction structure (`K_ff`, `K_fc`, DOF maps).
    pub fn structure(&self) -> &DirichletStructure {
        &self.structure
    }

    /// Unknowns in the reduced system.
    pub fn reduced_equations(&self) -> usize {
        self.structure.num_free()
    }

    /// The solver configuration this context was built with.
    pub fn config(&self) -> &FemSolveConfig {
        &self.cfg
    }

    /// Can this context serve solves for `mesh` with `constrained_nodes`?
    ///
    /// True when the mesh content fingerprint ([`TetMesh::fingerprint`]:
    /// node coordinates, connectivity, and tissue labels) matches the one
    /// the context was built from and the (deduplicated) constrained node
    /// set is identical. Material changes are *not* detected — a surgery
    /// keeps one material table, so callers must rebuild on their own if
    /// they change it.
    pub fn matches(&self, mesh: &TetMesh, constrained_nodes: &[usize]) -> bool {
        if mesh.num_nodes() != self.num_nodes
            || mesh.num_equations() != self.k.nrows()
            || mesh.fingerprint() != self.mesh_fingerprint
        {
            return false;
        }
        let mut seen = vec![false; self.num_nodes];
        let mut unique = 0usize;
        for &n in constrained_nodes {
            if n >= self.num_nodes {
                return false;
            }
            if !seen[n] {
                seen[n] = true;
                unique += 1;
            }
        }
        3 * unique == self.structure.num_constrained()
            && constrained_nodes
                .iter()
                .all(|&n| self.structure.reduced_of_dof[3 * n] == usize::MAX)
    }
}

impl brainshift_persist::Persist for ContextStats {
    fn encode(
        &self,
        enc: &mut brainshift_persist::Encoder,
    ) -> Result<(), brainshift_persist::PersistError> {
        enc.put_usize(self.assemblies);
        enc.put_usize(self.factorizations);
        enc.put_usize(self.solves);
        enc.put_usize(self.warm_started_solves);
        enc.put_usize(self.escalations);
        enc.put_usize(self.failed_solves);
        Ok(())
    }
    fn decode(
        dec: &mut brainshift_persist::Decoder<'_>,
    ) -> Result<Self, brainshift_persist::PersistError> {
        Ok(ContextStats {
            assemblies: dec.get_usize()?,
            factorizations: dec.get_usize()?,
            solves: dec.get_usize()?,
            warm_started_solves: dec.get_usize()?,
            escalations: dec.get_usize()?,
            failed_solves: dec.get_usize()?,
        })
    }
}

impl brainshift_persist::Persist for ContextTimings {
    fn encode(
        &self,
        enc: &mut brainshift_persist::Encoder,
    ) -> Result<(), brainshift_persist::PersistError> {
        enc.put_f64(self.assembly_s);
        enc.put_f64(self.reduction_s);
        enc.put_f64(self.factorization_s);
        enc.put_f64(self.solve_s);
        enc.put_f64(self.last_solve_s);
        Ok(())
    }
    fn decode(
        dec: &mut brainshift_persist::Decoder<'_>,
    ) -> Result<Self, brainshift_persist::PersistError> {
        Ok(ContextTimings {
            assembly_s: dec.get_f64()?,
            reduction_s: dec.get_f64()?,
            factorization_s: dec.get_f64()?,
            solve_s: dec.get_f64()?,
            last_solve_s: dec.get_f64()?,
        })
    }
}

/// Serializes the once-per-surgery state (assembled `K`, reduced blocks,
/// *factored* preconditioner, warm-start vector, counters) and rebuilds
/// the per-solve scratch (Krylov workspace, gather buffers) on decode —
/// so a restored context resumes warm without re-assembling or
/// re-factoring anything.
impl brainshift_persist::Persist for SolverContext {
    fn encode(
        &self,
        enc: &mut brainshift_persist::Encoder,
    ) -> Result<(), brainshift_persist::PersistError> {
        self.cfg.encode(enc)?;
        enc.put_usize(self.num_nodes);
        enc.put_u64(self.mesh_fingerprint);
        self.k.encode(enc)?;
        self.structure.encode(enc)?;
        if !self.precond.persist_into(enc)? {
            return Err(brainshift_persist::PersistError::InvalidData {
                reason: format!("preconditioner '{}' does not support persistence", self.precond.name()),
            });
        }
        self.prev_x.encode(enc)?;
        enc.put_bool(self.has_prev);
        self.stats.encode(enc)?;
        self.timings.encode(enc)?;
        // v2 tail: the RCM permutation (the permuted matrix, blocked
        // kernel, and f32 mirror are derived from it on decode).
        self.perm.encode(enc)
    }

    fn decode(
        dec: &mut brainshift_persist::Decoder<'_>,
    ) -> Result<Self, brainshift_persist::PersistError> {
        use brainshift_persist::PersistError;
        let cfg = FemSolveConfig::decode(dec)?;
        let num_nodes = dec.get_usize()?;
        let mesh_fingerprint = dec.get_u64()?;
        let k = CsrMatrix::decode(dec)?;
        let structure = DirichletStructure::decode(dec)?;
        let invalid = |reason: String| Err(PersistError::InvalidData { reason });
        if k.nrows() != k.ncols() || k.nrows() != 3 * num_nodes {
            return invalid(format!(
                "stiffness matrix is {}×{} for {num_nodes} nodes",
                k.nrows(),
                k.ncols()
            ));
        }
        if structure.reduced_of_dof.len() != k.nrows() {
            return invalid(format!(
                "reduction covers {} DOFs, matrix has {}",
                structure.reduced_of_dof.len(),
                k.nrows()
            ));
        }
        let nfree = structure.num_free();
        let precond = brainshift_sparse::decode_preconditioner(dec, nfree)?;
        let prev_x = Vec::<f64>::decode(dec)?;
        if prev_x.len() != nfree {
            return invalid(format!("warm-start vector has {} entries for {nfree} unknowns", prev_x.len()));
        }
        let has_prev = dec.get_bool()?;
        let stats = ContextStats::decode(dec)?;
        let timings = ContextTimings::decode(dec)?;
        let perm = if dec.version() >= 2 { Option::<Vec<usize>>::decode(dec)? } else { None };
        // The permutation must agree with the configuration (a v1
        // container can only carry the native ordering, whose config
        // decodes to `Native`) and must be a true node-triple
        // permutation — the factored preconditioner is only valid in
        // that exact order.
        match (&perm, cfg.reorder) {
            (None, Reordering::Native) | (Some(_), Reordering::Rcm) => {}
            (None, Reordering::Rcm) => {
                return invalid("RCM config without a stored permutation".to_string());
            }
            (Some(_), Reordering::Native) => {
                return invalid("stored permutation without RCM config".to_string());
            }
        }
        if let Some(p) = &perm {
            if p.len() != nfree || nfree % 3 != 0 {
                return invalid(format!("permutation has {} entries for {nfree} unknowns", p.len()));
            }
            let mut seen = vec![false; nfree];
            for (new, &old) in p.iter().enumerate() {
                if old >= nfree || seen[old] {
                    return invalid(format!("permutation entry {new} → {old} is invalid"));
                }
                seen[old] = true;
            }
            for t in p.chunks_exact(3) {
                if t[0] % 3 != 0 || t[1] != t[0] + 1 || t[2] != t[0] + 2 {
                    return invalid(format!("permutation splits node triple {t:?}"));
                }
            }
        }
        let derive_err = |e: FemError| PersistError::InvalidData {
            reason: format!("rebuilding solve-order state: {e}"),
        };
        let a_p = match &perm {
            Some(p) => {
                Some(permute_symmetric(&structure.matrix, p).map_err(|e| derive_err(e.into()))?)
            }
            None => None,
        };
        let solve_mat = a_p.as_ref().unwrap_or(&structure.matrix);
        let (block, mixed) =
            derive_kernels(&cfg, solve_mat, precond.as_ref()).map_err(derive_err)?;
        let nc = structure.num_constrained();
        let scratch = if perm.is_some() { nfree } else { 0 };
        Ok(SolverContext {
            workspace: KrylovWorkspace::new(nfree, cfg.options.restart),
            full: vec![0.0; k.nrows()],
            u_c: vec![0.0; nc],
            rhs: vec![0.0; nfree],
            rhs_p: vec![0.0; scratch],
            x_nat: vec![0.0; scratch],
            cfg,
            num_nodes,
            mesh_fingerprint,
            k,
            structure,
            perm,
            a_p,
            block,
            mixed,
            precond,
            prev_x,
            has_prev,
            stats,
            timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve_deformation;
    use brainshift_imaging::labels;
    use brainshift_imaging::volume::{Dims, Spacing, Volume};
    use brainshift_mesh::{boundary_nodes, mesh_labeled_volume, MesherConfig};
    use brainshift_sparse::SolverOptions;

    fn block_mesh(n: usize) -> TetMesh {
        let seg = Volume::from_fn(Dims::new(n, n, n), Spacing::iso(1.0), |_, _, _| labels::BRAIN);
        mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable })
    }

    fn tight() -> FemSolveConfig {
        FemSolveConfig {
            options: SolverOptions { tolerance: 1e-10, max_iterations: 5000, ..Default::default() },
            ..Default::default()
        }
    }

    fn scan_bcs(mesh: &TetMesh, surface: &[usize], scale: f64) -> DirichletBcs {
        let mut bcs = DirichletBcs::new();
        for &n in surface {
            let p = mesh.nodes[n];
            bcs.set(n, Vec3::new(0.0, 0.01 * scale * p.x, -0.05 * scale * (p.z + 1.0)));
        }
        bcs
    }

    #[test]
    fn context_matches_cold_solver_across_scans() {
        let mesh = block_mesh(4);
        let materials = MaterialTable::homogeneous();
        let surface = boundary_nodes(&mesh);
        let mut ctx = SolverContext::new(&mesh, &materials, &surface, tight()).expect("context build failed");
        for stage in 1..=4 {
            let bcs = scan_bcs(&mesh, &surface, stage as f64);
            let warm = ctx.solve(&bcs).expect("solve failed");
            let cold = solve_deformation(&mesh, &materials, &bcs, &tight()).expect("solve failed");
            assert!(warm.stats.converged() && cold.stats.converged());
            for (a, b) in warm.displacements.iter().zip(&cold.displacements) {
                assert!((*a - *b).norm() < 1e-7, "stage {stage}: {a:?} vs {b:?}");
            }
        }
        let s = ctx.stats();
        assert_eq!(s.assemblies, 1);
        assert_eq!(s.factorizations, 1);
        assert_eq!(s.solves, 4);
        assert_eq!(s.warm_started_solves, 3);
    }

    #[test]
    fn warm_start_converges_no_slower_than_zero_start() {
        let mesh = block_mesh(5);
        let materials = MaterialTable::homogeneous();
        let surface = boundary_nodes(&mesh);
        let cfg = tight();
        // Two consecutive scans with nearby boundary displacements.
        let bcs1 = scan_bcs(&mesh, &surface, 1.0);
        let bcs2 = scan_bcs(&mesh, &surface, 1.1);

        let mut warm_ctx = SolverContext::new(&mesh, &materials, &surface, cfg.clone()).expect("context build failed");
        warm_ctx.solve(&bcs1).expect("solve failed");
        let warm = warm_ctx.solve(&bcs2).expect("solve failed");

        let mut zero_ctx = SolverContext::new(&mesh, &materials, &surface, cfg).expect("context build failed");
        let zero = zero_ctx.solve(&bcs2).expect("solve failed");

        assert!(warm.stats.converged() && zero.stats.converged());
        assert!(
            warm.stats.iterations <= zero.stats.iterations,
            "warm {} > zero {}",
            warm.stats.iterations,
            zero.stats.iterations
        );
    }

    #[test]
    fn reset_warm_start_reverts_to_zero_seed() {
        let mesh = block_mesh(3);
        let materials = MaterialTable::homogeneous();
        let surface = boundary_nodes(&mesh);
        let mut ctx = SolverContext::new(&mesh, &materials, &surface, tight()).expect("context build failed");
        let bcs = scan_bcs(&mesh, &surface, 1.0);
        let first = ctx.solve(&bcs).expect("solve failed");
        ctx.reset_warm_start();
        let second = ctx.solve(&bcs).expect("solve failed");
        assert_eq!(first.stats.iterations, second.stats.iterations);
        assert_eq!(ctx.stats().warm_started_solves, 0);
    }

    #[test]
    fn memory_accounting_covers_the_cached_state() {
        let mesh = block_mesh(4);
        let surface = boundary_nodes(&mesh);
        let ctx =
            SolverContext::new(&mesh, &MaterialTable::homogeneous(), &surface, tight()).expect("context build failed");
        let bytes = ctx.memory_bytes();
        // At minimum the context holds K plus the reduced blocks — all
        // three are CSR matrices with this mesh's sparsity.
        let floor = ctx.matrix().memory_bytes() + ctx.structure().matrix.memory_bytes();
        assert!(bytes >= floor, "{bytes} < {floor}");
        // A larger mesh must account strictly more memory.
        let mesh2 = block_mesh(6);
        let surface2 = boundary_nodes(&mesh2);
        let ctx2 =
            SolverContext::new(&mesh2, &MaterialTable::homogeneous(), &surface2, tight()).expect("context build failed");
        assert!(ctx2.memory_bytes() > bytes);
    }

    #[test]
    fn mismatched_bc_set_rejected() {
        let mesh = block_mesh(3);
        let surface = boundary_nodes(&mesh);
        let mut ctx =
            SolverContext::new(&mesh, &MaterialTable::homogeneous(), &surface, tight()).expect("context build failed");
        // Prescribe only one node: not the context's constrained set.
        let mut bcs = DirichletBcs::new();
        bcs.set(surface[0], Vec3::ZERO);
        assert!(matches!(ctx.solve(&bcs), Err(FemError::BcSetMismatch { .. })));
        // An unconstrained build is rejected too.
        let r = SolverContext::new(&mesh, &MaterialTable::homogeneous(), &[], tight());
        assert!(matches!(r, Err(FemError::Unconstrained)));
    }

    #[test]
    fn timings_cover_every_phase_and_accumulate() {
        let mesh = block_mesh(4);
        let surface = boundary_nodes(&mesh);
        let mut ctx =
            SolverContext::new(&mesh, &MaterialTable::homogeneous(), &surface, tight()).expect("context build failed");
        let t0 = ctx.timings();
        assert!(t0.assembly_s >= 0.0 && t0.reduction_s >= 0.0 && t0.factorization_s >= 0.0);
        assert_eq!(t0.solve_s, 0.0);
        ctx.solve(&scan_bcs(&mesh, &surface, 1.0)).expect("solve failed");
        let t1 = ctx.timings();
        assert!(t1.solve_s > 0.0, "nanosecond-precision clock: a real solve never times at 0");
        assert_eq!(t1.last_solve_s, t1.solve_s);
        // Setup phases are once-per-surgery: untouched by a solve.
        assert_eq!(t1.assembly_s, t0.assembly_s);
        assert_eq!(t1.factorization_s, t0.factorization_s);
        ctx.solve(&scan_bcs(&mesh, &surface, 1.5)).expect("solve failed");
        let t2 = ctx.timings();
        assert!(t2.solve_s > t1.solve_s, "solve time accumulates");
        assert!(t2.last_solve_s <= t2.solve_s);
    }

    #[test]
    fn rcm_context_matches_native_ordering_across_scans() {
        let mesh = block_mesh(4);
        let materials = MaterialTable::homogeneous();
        let surface = boundary_nodes(&mesh);
        let mut native =
            SolverContext::new(&mesh, &materials, &surface, tight()).expect("native build");
        let mut rcm_cfg = tight();
        rcm_cfg.reorder = Reordering::Rcm;
        let mut rcm =
            SolverContext::new(&mesh, &materials, &surface, rcm_cfg).expect("rcm build");
        for stage in 1..=3 {
            let bcs = scan_bcs(&mesh, &surface, stage as f64);
            let a = native.solve(&bcs).expect("native solve");
            let b = rcm.solve(&bcs).expect("rcm solve");
            assert!(a.stats.converged() && b.stats.converged());
            for (u, v) in a.displacements.iter().zip(&b.displacements) {
                assert!((*u - *v).norm() < 1e-7, "stage {stage}: {u:?} vs {v:?}");
            }
        }
        // The warm-start contract survives reordering: repeating the last
        // scan solves in zero iterations.
        let bcs = scan_bcs(&mesh, &surface, 3.0);
        let again = rcm.solve(&bcs).expect("warm rcm solve");
        assert_eq!(again.stats.iterations, 0, "RCM warm start should satisfy the system");
    }

    #[test]
    fn block_spmv_and_mixed_precision_match_the_scalar_f64_path() {
        let mesh = block_mesh(4);
        let materials = MaterialTable::homogeneous();
        let surface = boundary_nodes(&mesh);
        let bcs = scan_bcs(&mesh, &surface, 1.0);
        let baseline = {
            let mut ctx =
                SolverContext::new(&mesh, &materials, &surface, tight()).expect("baseline");
            ctx.solve(&bcs).expect("baseline solve")
        };
        // Every ladder variant — blocked SpMV, mixed precision, and both
        // together with RCM — must land on the same field.
        let variants: Vec<FemSolveConfig> = vec![
            FemSolveConfig { spmv: SpmvKind::Block3, ..tight() },
            FemSolveConfig {
                options: brainshift_sparse::SolverOptions {
                    precision: Precision::Mixed,
                    ..tight().options
                },
                ..tight()
            },
            FemSolveConfig {
                reorder: Reordering::Rcm,
                spmv: SpmvKind::Block3,
                options: brainshift_sparse::SolverOptions {
                    precision: Precision::Mixed,
                    ..tight().options
                },
                ..tight()
            },
        ];
        for (vi, cfg) in variants.into_iter().enumerate() {
            let mut ctx =
                SolverContext::new(&mesh, &materials, &surface, cfg).expect("variant build");
            let sol = ctx.solve(&bcs).expect("variant solve");
            assert!(sol.stats.converged(), "variant {vi}: {:?}", sol.stats);
            for (u, v) in baseline.displacements.iter().zip(&sol.displacements) {
                assert!((*u - *v).norm() < 1e-6, "variant {vi}: {u:?} vs {v:?}");
            }
        }
    }

    #[test]
    fn rcm_context_round_trips_through_persist() {
        let mesh = block_mesh(4);
        let materials = MaterialTable::homogeneous();
        let surface = boundary_nodes(&mesh);
        let mut cfg = tight();
        cfg.reorder = Reordering::Rcm;
        cfg.spmv = SpmvKind::Block3;
        let mut ctx = SolverContext::new(&mesh, &materials, &surface, cfg).expect("build");
        let bcs1 = scan_bcs(&mesh, &surface, 1.0);
        ctx.solve(&bcs1).expect("first solve");
        let bytes = brainshift_persist::to_bytes(&ctx).expect("encode");
        let mut restored: SolverContext = brainshift_persist::from_bytes(&bytes).expect("decode");
        // The restored context resumes warm, in the same RCM order, and
        // produces the same field on the next scan.
        let bcs2 = scan_bcs(&mesh, &surface, 1.2);
        let live = ctx.solve(&bcs2).expect("live solve");
        let back = restored.solve(&bcs2).expect("restored solve");
        assert_eq!(restored.stats().factorizations, 1, "restore must not re-factor");
        for (u, v) in live.displacements.iter().zip(&back.displacements) {
            assert!((*u - *v).norm() < 1e-9, "{u:?} vs {v:?}");
        }
        // A tampered permutation is refused.
        let mut corrupt: Vec<u8> = bytes.clone();
        // The permutation is the trailing field: swap its last two node
        // triples' worth of bytes cheaply by flipping a byte near the
        // end (still a valid container framing, invalid permutation).
        let n = corrupt.len();
        corrupt[n - 9] ^= 0xff;
        assert!(brainshift_persist::from_bytes::<SolverContext>(&corrupt).is_err());
    }

    #[test]
    fn identical_scans_solve_in_zero_iterations_when_warm() {
        let mesh = block_mesh(4);
        let surface = boundary_nodes(&mesh);
        let mut ctx =
            SolverContext::new(&mesh, &MaterialTable::homogeneous(), &surface, tight()).expect("context build failed");
        let bcs = scan_bcs(&mesh, &surface, 2.0);
        ctx.solve(&bcs).expect("solve failed");
        // Same boundary values again: the warm start *is* the solution.
        let again = ctx.solve(&bcs).expect("solve failed");
        assert!(again.stats.converged());
        assert_eq!(again.stats.iterations, 0, "warm start should satisfy the system");
    }
}
