//! Persistent solver context: assemble once, re-solve many.
//!
//! The paper's intraoperative loop solves the *same* elastic system once
//! per scan: the mesh, the material table, and the set of constrained
//! surface nodes are fixed for the whole surgery — only the prescribed
//! surface displacements change as the brain shifts. The original
//! pipeline nevertheless re-assembled the global stiffness matrix,
//! re-applied the Dirichlet substitution, and re-factored the
//! preconditioner on every scan.
//!
//! A [`SolverContext`] hoists all of that per-surgery work out of the
//! per-scan path. It caches:
//!
//! 1. the assembled stiffness matrix `K`;
//! 2. the reduced free-free block `K_ff` and the boundary-coupling block
//!    `K_fc` (so each scan's load vector is one sparse product,
//!    `f = −K_fc·u_c`);
//! 3. the factored preconditioner for `K_ff`;
//! 4. a [`KrylovWorkspace`] reused across solves (no per-scan basis
//!    allocation).
//!
//! Per scan, the remaining work is: gather boundary values → one
//! `K_fc` product → one GMRES solve warm-started from the previous
//! scan's displacement (brain shift is progressive, so consecutive
//! solutions are close). [`ContextStats`] counts assemblies and
//! factorizations so callers can *assert* the assemble-once contract.

use crate::assembly::assemble_stiffness;
use crate::bc::{DirichletBcs, DirichletStructure};
use crate::error::FemError;
use crate::material::MaterialTable;
use crate::solver::{build_preconditioner, FemSolution, FemSolveConfig, KrylovKind};
use brainshift_imaging::Vec3;
use brainshift_mesh::TetMesh;
use brainshift_obs::Stopwatch;
use brainshift_sparse::{
    conjugate_gradient, solve_escalated, CsrMatrix, EscalationPolicy, KrylovWorkspace,
    Preconditioner, RungTrace, SolverOptions,
};

/// Counters proving the assemble-once / re-solve-many contract and
/// recording how often the solver had to fight for convergence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ContextStats {
    /// Global stiffness assemblies performed by this context.
    pub assemblies: usize,
    /// Preconditioner factorizations performed by this context.
    pub factorizations: usize,
    /// Total solves served.
    pub solves: usize,
    /// Solves seeded from a previous solution instead of zero.
    pub warm_started_solves: usize,
    /// Solves that needed at least one escalation rung beyond the
    /// primary GMRES configuration.
    pub escalations: usize,
    /// Solves that did not converge even after the full escalation
    /// ladder (the returned field is the best iterate, not a solution).
    pub failed_solves: usize,
}

/// Wall-clock seconds spent in each setup/solve phase of a context —
/// the FEM half of the paper's per-stage breakdown. Kept separate from
/// [`ContextStats`] (which stays `Eq` for exact comparison in tests).
/// `solve_s` accumulates across solves; `last_solve_s` is the most
/// recent solve alone.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ContextTimings {
    /// Global stiffness assembly.
    pub assembly_s: f64,
    /// Dirichlet reduction (building `K_ff`/`K_fc`).
    pub reduction_s: f64,
    /// Preconditioner factorization.
    pub factorization_s: f64,
    /// Cumulative Krylov solve time across all solves served.
    pub solve_s: f64,
    /// Krylov solve time of the most recent solve.
    pub last_solve_s: f64,
}

/// A per-surgery solver: fixed mesh, materials, and constrained node
/// set; cheap repeated solves as the prescribed values change per scan.
pub struct SolverContext {
    cfg: FemSolveConfig,
    num_nodes: usize,
    mesh_fingerprint: u64,
    k: CsrMatrix,
    structure: DirichletStructure,
    precond: Box<dyn Preconditioner>,
    workspace: KrylovWorkspace,
    /// Previous reduced solution; seeds the next solve.
    prev_x: Vec<f64>,
    has_prev: bool,
    u_c: Vec<f64>,
    rhs: Vec<f64>,
    full: Vec<f64>,
    stats: ContextStats,
    timings: ContextTimings,
}

impl SolverContext {
    /// Assemble the stiffness matrix for `mesh`/`materials`, reduce it
    /// along the DOFs of `constrained_nodes`, and factor the
    /// preconditioner — the once-per-surgery setup. The mesh is
    /// structurally validated first: a context built from an inverted or
    /// degenerate mesh would fail intraoperatively, so it must fail here.
    pub fn new(
        mesh: &TetMesh,
        materials: &MaterialTable,
        constrained_nodes: &[usize],
        cfg: FemSolveConfig,
    ) -> Result<Self, FemError> {
        mesh.validate()?;
        let sw = Stopwatch::wall();
        let k = assemble_stiffness(mesh, materials);
        let assembly_s = sw.elapsed_s();
        let mut ctx = Self::with_matrix(k, mesh, constrained_nodes, cfg)?;
        ctx.stats.assemblies = 1;
        ctx.timings.assembly_s = assembly_s;
        Ok(ctx)
    }

    /// Build a context around a pre-assembled stiffness matrix (no
    /// assembly counted; one factorization performed).
    pub fn with_matrix(
        k: CsrMatrix,
        mesh: &TetMesh,
        constrained_nodes: &[usize],
        cfg: FemSolveConfig,
    ) -> Result<Self, FemError> {
        if k.nrows() != mesh.num_equations() {
            return Err(FemError::MatrixShapeMismatch {
                rows: k.nrows(),
                equations: mesh.num_equations(),
            });
        }
        if constrained_nodes.is_empty() {
            return Err(FemError::Unconstrained);
        }
        let mut sw = Stopwatch::wall();
        let structure = DirichletStructure::new(&k, constrained_nodes)?;
        let reduction_s = sw.lap_s();
        let precond = build_preconditioner(cfg.precond, &structure.matrix)?;
        let factorization_s = sw.lap_s();
        let nfree = structure.num_free();
        let nc = structure.num_constrained();
        let workspace = KrylovWorkspace::new(nfree, cfg.options.restart);
        Ok(SolverContext {
            cfg,
            num_nodes: mesh.num_nodes(),
            mesh_fingerprint: mesh.fingerprint(),
            full: vec![0.0; k.nrows()],
            k,
            structure,
            precond,
            workspace,
            prev_x: vec![0.0; nfree],
            has_prev: false,
            u_c: vec![0.0; nc],
            rhs: vec![0.0; nfree],
            stats: ContextStats { factorizations: 1, ..Default::default() },
            timings: ContextTimings { reduction_s, factorization_s, ..Default::default() },
        })
    }

    /// Solve for the displacement field under `bcs`. The constrained
    /// node set must equal the one the context was built for (only the
    /// values may differ); returns [`FemError::BcSetMismatch`] otherwise.
    ///
    /// The solve is warm-started from the previous scan's solution when
    /// one exists (see [`Self::reset_warm_start`]). When the solver fails
    /// to converge even after escalation, the pre-solve warm-start seed
    /// is restored so one bad scan cannot poison the next scan's seed —
    /// the unconverged iterate is still returned for the caller to judge.
    pub fn solve(&mut self, bcs: &DirichletBcs) -> Result<FemSolution, FemError> {
        self.solve_with(bcs, None, None)
    }

    /// [`Self::solve`] with per-call overrides of the solver options
    /// and/or escalation policy (the context's configuration is used for
    /// whichever is `None`). Used by fault-injection tests and by callers
    /// that tighten the time budget for a specific scan.
    pub fn solve_with(
        &mut self,
        bcs: &DirichletBcs,
        opts_override: Option<&SolverOptions>,
        escalation_override: Option<&EscalationPolicy>,
    ) -> Result<FemSolution, FemError> {
        if 3 * bcs.len() != self.structure.num_constrained() {
            return Err(FemError::BcSetMismatch {
                expected: self.structure.num_constrained(),
                got: 3 * bcs.len(),
            });
        }
        self.structure.gather_constrained(bcs, &mut self.u_c)?;
        self.structure.reduced_rhs_zero_f(&self.u_c, &mut self.rhs);

        // Warm start: seed from the previous scan's reduced solution.
        let warm = self.has_prev;
        if !warm {
            self.prev_x.iter_mut().for_each(|v| *v = 0.0);
        }
        let seed_snapshot = self.prev_x.clone();
        let opts = opts_override.unwrap_or(&self.cfg.options).clone();
        let escalation = escalation_override.unwrap_or(&self.cfg.escalation).clone();
        let sw = Stopwatch::wall();
        let (stats, attempts, escalated, rung_reasons, rungs) = match self.cfg.krylov {
            KrylovKind::Gmres => {
                let out = solve_escalated(
                    &self.structure.matrix,
                    self.precond.as_ref(),
                    &self.rhs,
                    &mut self.prev_x,
                    &opts,
                    &escalation,
                    &mut self.workspace,
                );
                (out.stats, out.attempts, out.escalated, out.rung_reasons, out.rungs)
            }
            KrylovKind::ConjugateGradient => {
                let s = conjugate_gradient(
                    &self.structure.matrix,
                    self.precond.as_ref(),
                    &self.rhs,
                    &mut self.prev_x,
                    &opts,
                );
                let reasons = vec![s.reason];
                let rungs = vec![RungTrace {
                    solver: "cg",
                    restart: 0,
                    reason: s.reason,
                    iterations: s.iterations,
                    restarts: 0,
                    relative_residual: s.relative_residual,
                    seconds: sw.elapsed_s(),
                }];
                (s, 1, false, reasons, rungs)
            }
        };
        self.timings.last_solve_s = sw.elapsed_s();
        self.timings.solve_s += self.timings.last_solve_s;
        self.stats.solves += 1;
        if warm {
            self.stats.warm_started_solves += 1;
        }
        if escalated {
            self.stats.escalations += 1;
        }

        self.structure.expand_solution_into(&self.prev_x, &self.u_c, &mut self.full);
        let displacements = (0..self.num_nodes)
            .map(|n| Vec3::new(self.full[3 * n], self.full[3 * n + 1], self.full[3 * n + 2]))
            .collect();
        if stats.converged() {
            self.has_prev = true;
        } else {
            // Roll back: the next solve seeds from the last *good* field.
            self.stats.failed_solves += 1;
            self.prev_x = seed_snapshot;
        }
        Ok(FemSolution {
            displacements,
            stats,
            attempts,
            escalated,
            rung_reasons,
            rungs,
            reduced_equations: self.structure.num_free(),
            total_equations: self.k.nrows(),
        })
    }

    /// Forget the previous solution; the next solve starts from zero.
    pub fn reset_warm_start(&mut self) {
        self.has_prev = false;
    }

    /// Assembly / factorization / solve counters.
    pub fn stats(&self) -> ContextStats {
        self.stats
    }

    /// Wall-clock seconds spent per setup/solve phase so far.
    pub fn timings(&self) -> ContextTimings {
        self.timings
    }

    /// Approximate heap footprint of everything this context keeps alive
    /// between scans: the assembled stiffness matrix, the reduced
    /// `K_ff`/`K_fc` blocks and DOF maps, the factored preconditioner,
    /// the Krylov workspace, the warm-start/scratch vectors, and the
    /// configuration's heap (escalation restart ladder). This is what a
    /// memory-budgeted context cache charges a surgery for; the persist
    /// layer's size-audit test holds it to the serialized size.
    pub fn memory_bytes(&self) -> usize {
        self.k.memory_bytes()
            + self.structure.memory_bytes()
            + self.precond.memory_bytes()
            + std::mem::size_of_val(self.cfg.escalation.larger_restarts.as_slice())
            + self.scratch_bytes()
            + std::mem::size_of_val(self.prev_x.as_slice())
    }

    /// Heap bytes of the state that is *not* serialized by `Persist`
    /// because it is rebuilt on decode: the Krylov workspace and the
    /// per-solve scratch vectors. `memory_bytes() − scratch_bytes()` is
    /// therefore the accountant's estimate of the serialized payload.
    pub fn scratch_bytes(&self) -> usize {
        self.workspace.bytes()
            + std::mem::size_of_val(self.u_c.as_slice())
            + std::mem::size_of_val(self.rhs.as_slice())
            + std::mem::size_of_val(self.full.as_slice())
    }

    /// The content fingerprint ([`TetMesh::fingerprint`]) of the mesh
    /// this context was built from. The persist layer checks it against
    /// the live mesh before resuming a restored context.
    pub fn mesh_fingerprint(&self) -> u64 {
        self.mesh_fingerprint
    }

    /// The cached full stiffness matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.k
    }

    /// The cached reduction structure (`K_ff`, `K_fc`, DOF maps).
    pub fn structure(&self) -> &DirichletStructure {
        &self.structure
    }

    /// Unknowns in the reduced system.
    pub fn reduced_equations(&self) -> usize {
        self.structure.num_free()
    }

    /// The solver configuration this context was built with.
    pub fn config(&self) -> &FemSolveConfig {
        &self.cfg
    }

    /// Can this context serve solves for `mesh` with `constrained_nodes`?
    ///
    /// True when the mesh content fingerprint ([`TetMesh::fingerprint`]:
    /// node coordinates, connectivity, and tissue labels) matches the one
    /// the context was built from and the (deduplicated) constrained node
    /// set is identical. Material changes are *not* detected — a surgery
    /// keeps one material table, so callers must rebuild on their own if
    /// they change it.
    pub fn matches(&self, mesh: &TetMesh, constrained_nodes: &[usize]) -> bool {
        if mesh.num_nodes() != self.num_nodes
            || mesh.num_equations() != self.k.nrows()
            || mesh.fingerprint() != self.mesh_fingerprint
        {
            return false;
        }
        let mut seen = vec![false; self.num_nodes];
        let mut unique = 0usize;
        for &n in constrained_nodes {
            if n >= self.num_nodes {
                return false;
            }
            if !seen[n] {
                seen[n] = true;
                unique += 1;
            }
        }
        3 * unique == self.structure.num_constrained()
            && constrained_nodes
                .iter()
                .all(|&n| self.structure.reduced_of_dof[3 * n] == usize::MAX)
    }
}

impl brainshift_persist::Persist for ContextStats {
    fn encode(
        &self,
        enc: &mut brainshift_persist::Encoder,
    ) -> Result<(), brainshift_persist::PersistError> {
        enc.put_usize(self.assemblies);
        enc.put_usize(self.factorizations);
        enc.put_usize(self.solves);
        enc.put_usize(self.warm_started_solves);
        enc.put_usize(self.escalations);
        enc.put_usize(self.failed_solves);
        Ok(())
    }
    fn decode(
        dec: &mut brainshift_persist::Decoder<'_>,
    ) -> Result<Self, brainshift_persist::PersistError> {
        Ok(ContextStats {
            assemblies: dec.get_usize()?,
            factorizations: dec.get_usize()?,
            solves: dec.get_usize()?,
            warm_started_solves: dec.get_usize()?,
            escalations: dec.get_usize()?,
            failed_solves: dec.get_usize()?,
        })
    }
}

impl brainshift_persist::Persist for ContextTimings {
    fn encode(
        &self,
        enc: &mut brainshift_persist::Encoder,
    ) -> Result<(), brainshift_persist::PersistError> {
        enc.put_f64(self.assembly_s);
        enc.put_f64(self.reduction_s);
        enc.put_f64(self.factorization_s);
        enc.put_f64(self.solve_s);
        enc.put_f64(self.last_solve_s);
        Ok(())
    }
    fn decode(
        dec: &mut brainshift_persist::Decoder<'_>,
    ) -> Result<Self, brainshift_persist::PersistError> {
        Ok(ContextTimings {
            assembly_s: dec.get_f64()?,
            reduction_s: dec.get_f64()?,
            factorization_s: dec.get_f64()?,
            solve_s: dec.get_f64()?,
            last_solve_s: dec.get_f64()?,
        })
    }
}

/// Serializes the once-per-surgery state (assembled `K`, reduced blocks,
/// *factored* preconditioner, warm-start vector, counters) and rebuilds
/// the per-solve scratch (Krylov workspace, gather buffers) on decode —
/// so a restored context resumes warm without re-assembling or
/// re-factoring anything.
impl brainshift_persist::Persist for SolverContext {
    fn encode(
        &self,
        enc: &mut brainshift_persist::Encoder,
    ) -> Result<(), brainshift_persist::PersistError> {
        self.cfg.encode(enc)?;
        enc.put_usize(self.num_nodes);
        enc.put_u64(self.mesh_fingerprint);
        self.k.encode(enc)?;
        self.structure.encode(enc)?;
        if !self.precond.persist_into(enc)? {
            return Err(brainshift_persist::PersistError::InvalidData {
                reason: format!("preconditioner '{}' does not support persistence", self.precond.name()),
            });
        }
        self.prev_x.encode(enc)?;
        enc.put_bool(self.has_prev);
        self.stats.encode(enc)?;
        self.timings.encode(enc)
    }

    fn decode(
        dec: &mut brainshift_persist::Decoder<'_>,
    ) -> Result<Self, brainshift_persist::PersistError> {
        use brainshift_persist::PersistError;
        let cfg = FemSolveConfig::decode(dec)?;
        let num_nodes = dec.get_usize()?;
        let mesh_fingerprint = dec.get_u64()?;
        let k = CsrMatrix::decode(dec)?;
        let structure = DirichletStructure::decode(dec)?;
        let invalid = |reason: String| Err(PersistError::InvalidData { reason });
        if k.nrows() != k.ncols() || k.nrows() != 3 * num_nodes {
            return invalid(format!(
                "stiffness matrix is {}×{} for {num_nodes} nodes",
                k.nrows(),
                k.ncols()
            ));
        }
        if structure.reduced_of_dof.len() != k.nrows() {
            return invalid(format!(
                "reduction covers {} DOFs, matrix has {}",
                structure.reduced_of_dof.len(),
                k.nrows()
            ));
        }
        let nfree = structure.num_free();
        let precond = brainshift_sparse::decode_preconditioner(dec, nfree)?;
        let prev_x = Vec::<f64>::decode(dec)?;
        if prev_x.len() != nfree {
            return invalid(format!("warm-start vector has {} entries for {nfree} unknowns", prev_x.len()));
        }
        let has_prev = dec.get_bool()?;
        let stats = ContextStats::decode(dec)?;
        let timings = ContextTimings::decode(dec)?;
        let nc = structure.num_constrained();
        Ok(SolverContext {
            workspace: KrylovWorkspace::new(nfree, cfg.options.restart),
            full: vec![0.0; k.nrows()],
            u_c: vec![0.0; nc],
            rhs: vec![0.0; nfree],
            cfg,
            num_nodes,
            mesh_fingerprint,
            k,
            structure,
            precond,
            prev_x,
            has_prev,
            stats,
            timings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve_deformation;
    use brainshift_imaging::labels;
    use brainshift_imaging::volume::{Dims, Spacing, Volume};
    use brainshift_mesh::{boundary_nodes, mesh_labeled_volume, MesherConfig};
    use brainshift_sparse::SolverOptions;

    fn block_mesh(n: usize) -> TetMesh {
        let seg = Volume::from_fn(Dims::new(n, n, n), Spacing::iso(1.0), |_, _, _| labels::BRAIN);
        mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable })
    }

    fn tight() -> FemSolveConfig {
        FemSolveConfig {
            options: SolverOptions { tolerance: 1e-10, max_iterations: 5000, ..Default::default() },
            ..Default::default()
        }
    }

    fn scan_bcs(mesh: &TetMesh, surface: &[usize], scale: f64) -> DirichletBcs {
        let mut bcs = DirichletBcs::new();
        for &n in surface {
            let p = mesh.nodes[n];
            bcs.set(n, Vec3::new(0.0, 0.01 * scale * p.x, -0.05 * scale * (p.z + 1.0)));
        }
        bcs
    }

    #[test]
    fn context_matches_cold_solver_across_scans() {
        let mesh = block_mesh(4);
        let materials = MaterialTable::homogeneous();
        let surface = boundary_nodes(&mesh);
        let mut ctx = SolverContext::new(&mesh, &materials, &surface, tight()).expect("context build failed");
        for stage in 1..=4 {
            let bcs = scan_bcs(&mesh, &surface, stage as f64);
            let warm = ctx.solve(&bcs).expect("solve failed");
            let cold = solve_deformation(&mesh, &materials, &bcs, &tight()).expect("solve failed");
            assert!(warm.stats.converged() && cold.stats.converged());
            for (a, b) in warm.displacements.iter().zip(&cold.displacements) {
                assert!((*a - *b).norm() < 1e-7, "stage {stage}: {a:?} vs {b:?}");
            }
        }
        let s = ctx.stats();
        assert_eq!(s.assemblies, 1);
        assert_eq!(s.factorizations, 1);
        assert_eq!(s.solves, 4);
        assert_eq!(s.warm_started_solves, 3);
    }

    #[test]
    fn warm_start_converges_no_slower_than_zero_start() {
        let mesh = block_mesh(5);
        let materials = MaterialTable::homogeneous();
        let surface = boundary_nodes(&mesh);
        let cfg = tight();
        // Two consecutive scans with nearby boundary displacements.
        let bcs1 = scan_bcs(&mesh, &surface, 1.0);
        let bcs2 = scan_bcs(&mesh, &surface, 1.1);

        let mut warm_ctx = SolverContext::new(&mesh, &materials, &surface, cfg.clone()).expect("context build failed");
        warm_ctx.solve(&bcs1).expect("solve failed");
        let warm = warm_ctx.solve(&bcs2).expect("solve failed");

        let mut zero_ctx = SolverContext::new(&mesh, &materials, &surface, cfg).expect("context build failed");
        let zero = zero_ctx.solve(&bcs2).expect("solve failed");

        assert!(warm.stats.converged() && zero.stats.converged());
        assert!(
            warm.stats.iterations <= zero.stats.iterations,
            "warm {} > zero {}",
            warm.stats.iterations,
            zero.stats.iterations
        );
    }

    #[test]
    fn reset_warm_start_reverts_to_zero_seed() {
        let mesh = block_mesh(3);
        let materials = MaterialTable::homogeneous();
        let surface = boundary_nodes(&mesh);
        let mut ctx = SolverContext::new(&mesh, &materials, &surface, tight()).expect("context build failed");
        let bcs = scan_bcs(&mesh, &surface, 1.0);
        let first = ctx.solve(&bcs).expect("solve failed");
        ctx.reset_warm_start();
        let second = ctx.solve(&bcs).expect("solve failed");
        assert_eq!(first.stats.iterations, second.stats.iterations);
        assert_eq!(ctx.stats().warm_started_solves, 0);
    }

    #[test]
    fn memory_accounting_covers_the_cached_state() {
        let mesh = block_mesh(4);
        let surface = boundary_nodes(&mesh);
        let ctx =
            SolverContext::new(&mesh, &MaterialTable::homogeneous(), &surface, tight()).expect("context build failed");
        let bytes = ctx.memory_bytes();
        // At minimum the context holds K plus the reduced blocks — all
        // three are CSR matrices with this mesh's sparsity.
        let floor = ctx.matrix().memory_bytes() + ctx.structure().matrix.memory_bytes();
        assert!(bytes >= floor, "{bytes} < {floor}");
        // A larger mesh must account strictly more memory.
        let mesh2 = block_mesh(6);
        let surface2 = boundary_nodes(&mesh2);
        let ctx2 =
            SolverContext::new(&mesh2, &MaterialTable::homogeneous(), &surface2, tight()).expect("context build failed");
        assert!(ctx2.memory_bytes() > bytes);
    }

    #[test]
    fn mismatched_bc_set_rejected() {
        let mesh = block_mesh(3);
        let surface = boundary_nodes(&mesh);
        let mut ctx =
            SolverContext::new(&mesh, &MaterialTable::homogeneous(), &surface, tight()).expect("context build failed");
        // Prescribe only one node: not the context's constrained set.
        let mut bcs = DirichletBcs::new();
        bcs.set(surface[0], Vec3::ZERO);
        assert!(matches!(ctx.solve(&bcs), Err(FemError::BcSetMismatch { .. })));
        // An unconstrained build is rejected too.
        let r = SolverContext::new(&mesh, &MaterialTable::homogeneous(), &[], tight());
        assert!(matches!(r, Err(FemError::Unconstrained)));
    }

    #[test]
    fn timings_cover_every_phase_and_accumulate() {
        let mesh = block_mesh(4);
        let surface = boundary_nodes(&mesh);
        let mut ctx =
            SolverContext::new(&mesh, &MaterialTable::homogeneous(), &surface, tight()).expect("context build failed");
        let t0 = ctx.timings();
        assert!(t0.assembly_s >= 0.0 && t0.reduction_s >= 0.0 && t0.factorization_s >= 0.0);
        assert_eq!(t0.solve_s, 0.0);
        ctx.solve(&scan_bcs(&mesh, &surface, 1.0)).expect("solve failed");
        let t1 = ctx.timings();
        assert!(t1.solve_s > 0.0, "nanosecond-precision clock: a real solve never times at 0");
        assert_eq!(t1.last_solve_s, t1.solve_s);
        // Setup phases are once-per-surgery: untouched by a solve.
        assert_eq!(t1.assembly_s, t0.assembly_s);
        assert_eq!(t1.factorization_s, t0.factorization_s);
        ctx.solve(&scan_bcs(&mesh, &surface, 1.5)).expect("solve failed");
        let t2 = ctx.timings();
        assert!(t2.solve_s > t1.solve_s, "solve time accumulates");
        assert!(t2.last_solve_s <= t2.solve_s);
    }

    #[test]
    fn identical_scans_solve_in_zero_iterations_when_warm() {
        let mesh = block_mesh(4);
        let surface = boundary_nodes(&mesh);
        let mut ctx =
            SolverContext::new(&mesh, &MaterialTable::homogeneous(), &surface, tight()).expect("context build failed");
        let bcs = scan_bcs(&mesh, &surface, 2.0);
        ctx.solve(&bcs).expect("solve failed");
        // Same boundary values again: the warm start *is* the solution.
        let again = ctx.solve(&bcs).expect("solve failed");
        assert!(again.stats.converged());
        assert_eq!(again.stats.iterations, 0, "warm start should satisfy the system");
    }
}
