//! Assembly-free application of the reduced stiffness operator.
//!
//! The cold path's first solve currently waits for a full global CSR
//! assembly before the Krylov iteration can start. An [`ElementOperator`]
//! skips the global matrix entirely: it caches each element's 12×12
//! stiffness and its reduced DOF map, and applies `y = K_ff·x` by
//! element-wise gather → dense multiply → scatter, in parallel. That is
//! the classic matrix-free FEM trade: more flops per apply (element
//! stiffnesses overlap where the CSR would have merged them) in exchange
//! for no assembly latency and perfectly regular per-element kernels.
//!
//! The operator acts on the *reduced* (free-DOF) system: constrained
//! DOFs contribute nothing (their basis columns are substituted into the
//! right-hand side elsewhere), which is exactly the `K_ff` block the
//! assembled path solves.

use crate::element::{stiffness_isotropic, TetShape};
use crate::error::FemError;
use crate::material::MaterialTable;
use brainshift_mesh::TetMesh;
use brainshift_sparse::{CsrMatrix, LinearOperator, TripletBuilder};
use rayon::prelude::*;

/// One cached element: its dense stiffness and the reduced index of each
/// of its 12 DOFs (`usize::MAX` for constrained DOFs).
struct CachedElement {
    ke: [[f64; 12]; 12],
    dofs: [usize; 12],
}

/// Matrix-free `K_ff` built from per-element stiffnesses.
pub struct ElementOperator {
    nfree: usize,
    elems: Vec<CachedElement>,
}

impl ElementOperator {
    /// Cache every non-degenerate element's stiffness and reduced DOF
    /// map. `reduced_of_dof` maps global DOF → reduced index
    /// (`usize::MAX` when constrained), exactly as
    /// [`crate::bc::DirichletStructure`] builds it; elements whose DOFs
    /// are all constrained are dropped.
    pub fn new(
        mesh: &TetMesh,
        materials: &MaterialTable,
        reduced_of_dof: &[usize],
    ) -> Result<Self, FemError> {
        if reduced_of_dof.len() != mesh.num_equations() {
            return Err(FemError::MatrixShapeMismatch {
                rows: reduced_of_dof.len(),
                equations: mesh.num_equations(),
            });
        }
        let nfree = reduced_of_dof.iter().filter(|&&r| r != usize::MAX).count();
        let chunk = 1024.max(mesh.num_tets() / (rayon::current_num_threads() * 4).max(1));
        let chunks: Vec<Vec<CachedElement>> = mesh
            .tets
            .par_chunks(chunk)
            .zip(mesh.tet_labels.par_chunks(chunk))
            .map(|(tets, tet_labels)| {
                let mut out = Vec::with_capacity(tets.len());
                for (tet, &label) in tets.iter().zip(tet_labels) {
                    let p = [
                        mesh.nodes[tet[0]],
                        mesh.nodes[tet[1]],
                        mesh.nodes[tet[2]],
                        mesh.nodes[tet[3]],
                    ];
                    let Ok(shape) = TetShape::new(p) else { continue };
                    let ke = stiffness_isotropic(&shape, &materials.of(label));
                    let mut dofs = [usize::MAX; 12];
                    let mut any_free = false;
                    for (i, &n) in tet.iter().enumerate() {
                        for c in 0..3 {
                            let r = reduced_of_dof[3 * n + c];
                            dofs[3 * i + c] = r;
                            any_free |= r != usize::MAX;
                        }
                    }
                    if any_free {
                        out.push(CachedElement { ke, dofs });
                    }
                }
                out
            })
            .collect();
        let mut elems = Vec::with_capacity(mesh.num_tets());
        for c in chunks {
            elems.extend(c);
        }
        Ok(ElementOperator { nfree, elems })
    }

    /// Elements contributing to the operator.
    pub fn num_elements(&self) -> usize {
        self.elems.len()
    }

    /// Heap footprint of the cached element stiffnesses and DOF maps.
    pub fn memory_bytes(&self) -> usize {
        self.elems.len() * std::mem::size_of::<CachedElement>()
    }

    /// The diagonal of `K_ff`, accumulated element-wise — enough to build
    /// a Jacobi preconditioner without assembling anything.
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.nfree];
        for e in &self.elems {
            for (a, &r) in e.dofs.iter().enumerate() {
                if r != usize::MAX {
                    d[r] += e.ke[a][a];
                }
            }
        }
        d
    }

    /// The diagonal of `K_ff` as a 1×1-banded CSR matrix, the shape the
    /// preconditioner constructors expect.
    pub fn diagonal_matrix(&self) -> CsrMatrix {
        let d = self.diagonal();
        let mut b = TripletBuilder::new(self.nfree, self.nfree);
        for (i, &v) in d.iter().enumerate() {
            b.add(i, i, v);
        }
        b.build()
    }
}

impl LinearOperator for ElementOperator {
    fn dim(&self) -> usize {
        self.nfree
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.nfree);
        debug_assert_eq!(y.len(), self.nfree);
        // Gather → 12×12 multiply → scatter per element; each chunk
        // accumulates into a private partial vector (no scatter races),
        // merged serially afterwards.
        let chunk = 1024.max(self.elems.len() / (rayon::current_num_threads() * 4).max(1));
        let partials: Vec<Vec<f64>> = self
            .elems
            .par_chunks(chunk)
            .map(|elems| {
                let mut part = vec![0.0f64; self.nfree];
                for e in elems {
                    let mut xe = [0.0f64; 12];
                    for (a, &r) in e.dofs.iter().enumerate() {
                        if r != usize::MAX {
                            xe[a] = x[r];
                        }
                    }
                    for (a, &r) in e.dofs.iter().enumerate() {
                        if r == usize::MAX {
                            continue;
                        }
                        let row = &e.ke[a];
                        let mut s = 0.0;
                        for b in 0..12 {
                            s += row[b] * xe[b];
                        }
                        part[r] += s;
                    }
                }
                part
            })
            .collect();
        y.iter_mut().for_each(|v| *v = 0.0);
        for part in partials {
            for (yi, pi) in y.iter_mut().zip(part) {
                *yi += pi;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::assemble_stiffness;
    use crate::bc::DirichletStructure;
    use brainshift_imaging::labels;
    use brainshift_imaging::volume::{Dims, Spacing, Volume};
    use brainshift_mesh::{boundary_nodes, mesh_labeled_volume, MesherConfig};
    use brainshift_sparse::{gmres, JacobiPrecond, SolverOptions};

    fn block_mesh(n: usize) -> TetMesh {
        let seg = Volume::from_fn(Dims::new(n, n, n), Spacing::iso(1.0), |_, _, _| labels::BRAIN);
        mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable })
    }

    fn reduced_setup(n: usize) -> (TetMesh, DirichletStructure) {
        let mesh = block_mesh(n);
        let k = assemble_stiffness(&mesh, &MaterialTable::heterogeneous());
        let surface = boundary_nodes(&mesh);
        let structure = DirichletStructure::new(&k, &surface).expect("reduce");
        (mesh, structure)
    }

    #[test]
    fn matches_the_assembled_reduced_matrix() {
        let (mesh, structure) = reduced_setup(4);
        let op = ElementOperator::new(&mesh, &MaterialTable::heterogeneous(), &structure.reduced_of_dof)
            .expect("build");
        assert_eq!(op.dim(), structure.num_free());
        let n = op.dim();
        let x: Vec<f64> = (0..n).map(|i| ((i * 37 + 11) % 23) as f64 * 0.1 - 1.0).collect();
        let mut y_free = vec![0.0; n];
        let mut y_csr = vec![0.0; n];
        op.apply(&x, &mut y_free);
        structure.matrix.spmv(&x, &mut y_csr);
        let scale = y_csr.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        for (a, b) in y_free.iter().zip(&y_csr) {
            assert!((a - b).abs() < 1e-9 * scale, "{a} vs {b}");
        }
    }

    #[test]
    fn element_diagonal_matches_assembled_diagonal() {
        let (mesh, structure) = reduced_setup(3);
        let op = ElementOperator::new(&mesh, &MaterialTable::heterogeneous(), &structure.reduced_of_dof)
            .expect("build");
        let d_free = op.diagonal();
        let d_csr = structure.matrix.diagonal();
        for (a, b) in d_free.iter().zip(&d_csr) {
            assert!((a - b).abs() < 1e-9 * b.abs().max(1.0), "{a} vs {b}");
        }
    }

    #[test]
    fn gmres_solves_through_the_matrix_free_operator() {
        let (mesh, structure) = reduced_setup(3);
        let op = ElementOperator::new(&mesh, &MaterialTable::heterogeneous(), &structure.reduced_of_dof)
            .expect("build");
        let n = op.dim();
        // Manufactured solution through the assembled matrix; solved
        // through the element operator with a matrix-free Jacobi.
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut b = vec![0.0; n];
        structure.matrix.spmv(&x_true, &mut b);
        let pc = JacobiPrecond::new(&op.diagonal_matrix());
        let opts = SolverOptions { tolerance: 1e-12, max_iterations: 2000, ..Default::default() };
        let mut x = vec![0.0; n];
        let stats = gmres(&op, &pc, &b, &mut x, &opts).expect("dims agree");
        assert!(stats.converged(), "{stats:?}");
        for (a, b) in x.iter().zip(&x_true) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn mismatched_dof_map_is_rejected() {
        let mesh = block_mesh(3);
        let r = ElementOperator::new(&mesh, &MaterialTable::homogeneous(), &[0, 1, 2]);
        assert!(matches!(r, Err(FemError::MatrixShapeMismatch { .. })));
    }
}
