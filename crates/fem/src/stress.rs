//! Post-processing: strain and stress recovery from the displacement
//! solution.
//!
//! The paper stops at the displacement field (its product is registration),
//! but the same FEM machinery yields per-element strain/stress — what its
//! clinical successors report for tissue-loading analysis, and a strong
//! correctness check for the solver (constant-strain patch fields must be
//! recovered exactly).

use crate::element::TetShape;
use crate::material::MaterialTable;
use brainshift_imaging::Vec3;
use brainshift_mesh::TetMesh;
use rayon::prelude::*;

/// Engineering strain `[εxx, εyy, εzz, γxy, γyz, γzx]` of one element.
pub type Strain = [f64; 6];
/// Cauchy stress `[σxx, σyy, σzz, τxy, τyz, τzx]` (Pa).
pub type Stress = [f64; 6];

/// Constant strain of a linear tetrahedron under nodal displacements `u`.
pub fn element_strain(shape: &TetShape, u: &[Vec3; 4]) -> Strain {
    let mut e = [0.0f64; 6];
    for i in 0..4 {
        let g = shape.grads[i];
        let d = u[i];
        e[0] += g.x * d.x;
        e[1] += g.y * d.y;
        e[2] += g.z * d.z;
        e[3] += g.y * d.x + g.x * d.y;
        e[4] += g.z * d.y + g.y * d.z;
        e[5] += g.z * d.x + g.x * d.z;
    }
    e
}

/// Stress from strain through the isotropic constitutive law.
pub fn stress_from_strain(strain: &Strain, lambda: f64, mu: f64) -> Stress {
    let tr = strain[0] + strain[1] + strain[2];
    [
        lambda * tr + 2.0 * mu * strain[0],
        lambda * tr + 2.0 * mu * strain[1],
        lambda * tr + 2.0 * mu * strain[2],
        mu * strain[3],
        mu * strain[4],
        mu * strain[5],
    ]
}

/// Von Mises equivalent stress (Pa).
pub fn von_mises(s: &Stress) -> f64 {
    let d01 = s[0] - s[1];
    let d12 = s[1] - s[2];
    let d20 = s[2] - s[0];
    (0.5 * (d01 * d01 + d12 * d12 + d20 * d20) + 3.0 * (s[3] * s[3] + s[4] * s[4] + s[5] * s[5]))
        .sqrt()
}

/// Per-element post-processing results.
#[derive(Debug, Clone)]
pub struct ElementState {
    /// Engineering strain of the element.
    pub strain: Strain,
    /// Cauchy stress (Pa).
    pub stress: Stress,
    /// Von Mises equivalent stress (Pa).
    pub von_mises: f64,
    /// Volumetric strain (relative volume change).
    pub dilatation: f64,
}

/// Evaluate strain/stress in every element from nodal displacements.
pub fn evaluate_stress(
    mesh: &TetMesh,
    materials: &MaterialTable,
    displacements: &[Vec3],
) -> Vec<ElementState> {
    assert_eq!(displacements.len(), mesh.num_nodes());
    (0..mesh.num_tets())
        .into_par_iter()
        .map(|t| {
            let tet = mesh.tets[t];
            let p = [
                mesh.nodes[tet[0]],
                mesh.nodes[tet[1]],
                mesh.nodes[tet[2]],
                mesh.nodes[tet[3]],
            ];
            let u = [
                displacements[tet[0]],
                displacements[tet[1]],
                displacements[tet[2]],
                displacements[tet[3]],
            ];
            let shape = TetShape::new(p).expect("degenerate element in stress evaluation");
            let strain = element_strain(&shape, &u);
            let mat = materials.of(mesh.tet_labels[t]);
            let stress = stress_from_strain(&strain, mat.lame_lambda(), mat.lame_mu());
            ElementState {
                strain,
                stress,
                von_mises: von_mises(&stress),
                dilatation: strain[0] + strain[1] + strain[2],
            }
        })
        .collect()
}

/// Summary statistics for reporting (e.g. peak tissue load).
#[derive(Debug, Clone)]
pub struct StressSummary {
    /// Largest von Mises stress over all elements (Pa).
    pub max_von_mises_pa: f64,
    /// Mean von Mises stress (Pa).
    pub mean_von_mises_pa: f64,
    /// Most-compressed element (most negative dilatation).
    pub min_dilatation: f64,
    /// Most-expanded element (largest positive dilatation).
    pub max_dilatation: f64,
}

/// Summarize per-element states.
pub fn summarize(states: &[ElementState]) -> StressSummary {
    let mut max_vm = 0.0f64;
    let mut sum_vm = 0.0;
    let mut min_d = f64::INFINITY;
    let mut max_d = f64::NEG_INFINITY;
    for s in states {
        max_vm = max_vm.max(s.von_mises);
        sum_vm += s.von_mises;
        min_d = min_d.min(s.dilatation);
        max_d = max_d.max(s.dilatation);
    }
    StressSummary {
        max_von_mises_pa: max_vm,
        mean_von_mises_pa: if states.is_empty() { 0.0 } else { sum_vm / states.len() as f64 },
        min_dilatation: if states.is_empty() { 0.0 } else { min_d },
        max_dilatation: if states.is_empty() { 0.0 } else { max_d },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::material::Material;
    use brainshift_imaging::labels;
    use brainshift_imaging::volume::{Dims, Spacing, Volume};
    use brainshift_mesh::{mesh_labeled_volume, MesherConfig};

    fn block_mesh(n: usize) -> TetMesh {
        let seg = Volume::from_fn(Dims::new(n, n, n), Spacing::iso(1.0), |_, _, _| labels::BRAIN);
        mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable })
    }

    #[test]
    fn rigid_motion_is_strain_free() {
        let mesh = block_mesh(3);
        let mats = MaterialTable::homogeneous();
        // Translation + infinitesimal rotation.
        let omega = Vec3::new(0.001, -0.002, 0.0005);
        let disp: Vec<Vec3> = mesh
            .nodes
            .iter()
            .map(|&p| Vec3::new(1.0, 2.0, 3.0) + omega.cross(p))
            .collect();
        let states = evaluate_stress(&mesh, &mats, &disp);
        for s in states {
            for e in s.strain {
                assert!(e.abs() < 1e-12, "{e}");
            }
            assert!(s.von_mises < 1e-8);
        }
    }

    #[test]
    fn uniaxial_stretch_recovers_analytic_stress() {
        // u = (αx, 0, 0): εxx = α, σxx = (λ+2μ)α, σyy = σzz = λα.
        let mesh = block_mesh(3);
        let mats = MaterialTable::homogeneous();
        let mat = Material::brain();
        let alpha = 0.01;
        let disp: Vec<Vec3> = mesh.nodes.iter().map(|&p| Vec3::new(alpha * p.x, 0.0, 0.0)).collect();
        let states = evaluate_stress(&mesh, &mats, &disp);
        let l = mat.lame_lambda();
        let m = mat.lame_mu();
        for s in &states {
            assert!((s.strain[0] - alpha).abs() < 1e-12);
            assert!((s.stress[0] - (l + 2.0 * m) * alpha).abs() < 1e-8);
            assert!((s.stress[1] - l * alpha).abs() < 1e-8);
            assert!((s.dilatation - alpha).abs() < 1e-12);
        }
    }

    #[test]
    fn simple_shear_von_mises() {
        // u = (γ z, 0, 0): γzx = γ, τzx = μγ, von Mises = √3 μγ.
        let mesh = block_mesh(3);
        let mats = MaterialTable::homogeneous();
        let mat = Material::brain();
        let gamma = 0.02;
        let disp: Vec<Vec3> = mesh.nodes.iter().map(|&p| Vec3::new(gamma * p.z, 0.0, 0.0)).collect();
        let states = evaluate_stress(&mesh, &mats, &disp);
        let expect = 3.0f64.sqrt() * mat.lame_mu() * gamma;
        for s in &states {
            assert!((s.von_mises - expect).abs() < 1e-6 * expect, "{} vs {expect}", s.von_mises);
            assert!(s.dilatation.abs() < 1e-12);
        }
    }

    #[test]
    fn summary_statistics() {
        let mesh = block_mesh(3);
        let mats = MaterialTable::homogeneous();
        let disp: Vec<Vec3> = mesh.nodes.iter().map(|&p| Vec3::new(0.01 * p.x, 0.0, 0.0)).collect();
        let states = evaluate_stress(&mesh, &mats, &disp);
        let sum = summarize(&states);
        assert!(sum.max_von_mises_pa > 0.0);
        assert!((sum.mean_von_mises_pa - sum.max_von_mises_pa).abs() < 1e-6 * sum.max_von_mises_pa);
        assert!((sum.min_dilatation - 0.01).abs() < 1e-9);
    }

    #[test]
    fn stress_scales_with_material_stiffness() {
        let mesh = block_mesh(2);
        let homo = MaterialTable::homogeneous();
        let mut stiff = MaterialTable::homogeneous();
        stiff.set(labels::BRAIN, Material::new(30_000.0, 0.45)); // 10× E
        let disp: Vec<Vec3> = mesh.nodes.iter().map(|&p| Vec3::new(0.01 * p.x, 0.0, 0.0)).collect();
        let s1 = summarize(&evaluate_stress(&mesh, &homo, &disp));
        let s2 = summarize(&evaluate_stress(&mesh, &stiff, &disp));
        assert!((s2.max_von_mises_pa / s1.max_von_mises_pa - 10.0).abs() < 1e-9);
    }
}
