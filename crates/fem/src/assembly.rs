//! Global stiffness assembly.
//!
//! The paper assembles `K` in parallel by "sending approximately equal
//! numbers of mesh nodes to each CPU"; because "different mesh nodes can
//! have different connectivity", per-CPU work differs — the assembly load
//! imbalance of §3.2. We provide (a) a real parallel assembly over threads
//! and (b) the per-rank work accounting the simulated cluster prices.

use crate::element::{stiffness_isotropic, TetShape, FLOPS_PER_ELEMENT};
use crate::material::MaterialTable;
use brainshift_mesh::TetMesh;
use brainshift_sparse::{CsrMatrix, TripletBuilder};
use rayon::prelude::*;

/// Assemble the global stiffness matrix `K` (3N × 3N) for a mesh and
/// material table. Degenerate elements are skipped.
pub fn assemble_stiffness(mesh: &TetMesh, materials: &MaterialTable) -> CsrMatrix {
    let ndof = mesh.num_equations();
    // Parallel over chunks of elements, one TripletBuilder per chunk,
    // merged at the end (rayon's data-parallel idiom from the guides).
    let chunk = 2048.max(mesh.num_tets() / (rayon::current_num_threads() * 4).max(1));
    let builders: Vec<TripletBuilder> = mesh
        .tets
        .par_chunks(chunk)
        .zip(mesh.tet_labels.par_chunks(chunk))
        .map(|(tets, tet_labels)| {
            let mut b = TripletBuilder::with_capacity(ndof, ndof, tets.len() * 144);
            for (tet, &label) in tets.iter().zip(tet_labels) {
                let p = [
                    mesh.nodes[tet[0]],
                    mesh.nodes[tet[1]],
                    mesh.nodes[tet[2]],
                    mesh.nodes[tet[3]],
                ];
                let Ok(shape) = TetShape::new(p) else { continue };
                let mat = materials.of(label);
                let ke = stiffness_isotropic(&shape, &mat);
                for (i, &ni) in tet.iter().enumerate() {
                    for (j, &nj) in tet.iter().enumerate() {
                        for a in 0..3 {
                            for c in 0..3 {
                                let v = ke[3 * i + a][3 * j + c];
                                if v != 0.0 {
                                    b.add(3 * ni + a, 3 * nj + c, v);
                                }
                            }
                        }
                    }
                }
            }
            b
        })
        .collect();
    let mut all = TripletBuilder::new(ndof, ndof);
    for b in builders {
        all.merge(b);
    }
    all.build()
}

/// Per-rank assembly work (flops) under a contiguous *node* partition
/// given by `node_offsets` (the paper's decomposition). Each element
/// contributes work to the rank(s) owning its nodes, proportionally —
/// nodes of higher connectivity accumulate more work, reproducing the
/// paper's assembly imbalance.
pub fn assembly_flops_per_rank(mesh: &TetMesh, node_offsets: &[usize]) -> Vec<f64> {
    let p = node_offsets.len() - 1;
    let mut flops = vec![0.0; p];
    let share = FLOPS_PER_ELEMENT / 4.0;
    for tet in &mesh.tets {
        for &n in tet {
            let rank = brainshift_sparse::partition::part_of(node_offsets, n);
            flops[rank] += share;
        }
    }
    flops
}

/// Total element count × per-element cost: the serial assembly work.
pub fn assembly_flops_total(mesh: &TetMesh) -> f64 {
    mesh.num_tets() as f64 * FLOPS_PER_ELEMENT
}

/// Per-node work weights (flops) for the improved, connectivity-balanced
/// partition the paper proposes as future work.
pub fn node_work_weights(mesh: &TetMesh) -> Vec<f64> {
    let mut w = vec![0.0; mesh.num_nodes()];
    let share = FLOPS_PER_ELEMENT / 4.0;
    for tet in &mesh.tets {
        for &n in tet {
            w[n] += share;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::labels;
    use brainshift_imaging::volume::{Dims, Spacing, Volume};
    use brainshift_mesh::{mesh_labeled_volume, MesherConfig};
    use brainshift_sparse::partition::even_offsets;

    pub(crate) fn block_mesh(n: usize) -> TetMesh {
        let seg = Volume::from_fn(Dims::new(n, n, n), Spacing::iso(1.0), |_, _, _| labels::BRAIN);
        mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable })
    }

    #[test]
    fn stiffness_is_symmetric() {
        let mesh = block_mesh(3);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        assert_eq!(k.nrows(), mesh.num_equations());
        assert!(k.asymmetry() < 1e-12, "asymmetry {}", k.asymmetry());
    }

    #[test]
    fn rigid_translation_in_null_space() {
        let mesh = block_mesh(3);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let n = mesh.num_nodes();
        let mut u = vec![0.0; 3 * n];
        for i in 0..n {
            u[3 * i] = 1.0;
            u[3 * i + 1] = -2.0;
            u[3 * i + 2] = 0.5;
        }
        let mut f = vec![0.0; 3 * n];
        k.spmv(&u, &mut f);
        let fmax = f.iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        let kmax = k.values().iter().fold(0.0f64, |m, &v| m.max(v.abs()));
        assert!(fmax < 1e-9 * kmax, "rigid translation produced force {fmax}");
    }

    #[test]
    fn diagonal_positive() {
        let mesh = block_mesh(3);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        for (i, d) in k.diagonal().iter().enumerate() {
            assert!(*d > 0.0, "diag[{i}] = {d}");
        }
    }

    #[test]
    fn heterogeneous_assembly_changes_matrix() {
        let seg = Volume::from_fn(Dims::new(4, 4, 4), Spacing::iso(1.0), |x, _, _| {
            if x < 2 {
                labels::BRAIN
            } else {
                labels::FALX
            }
        });
        let mesh = mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable });
        let k_homo = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let k_het = assemble_stiffness(&mesh, &MaterialTable::heterogeneous());
        assert!(k_het.frobenius_norm() > k_homo.frobenius_norm() * 1.5);
    }

    #[test]
    fn per_rank_flops_sum_to_total() {
        let mesh = block_mesh(4);
        let offsets = even_offsets(mesh.num_nodes(), 4);
        let per = assembly_flops_per_rank(&mesh, &offsets);
        let total: f64 = per.iter().sum();
        assert!((total - assembly_flops_total(&mesh)).abs() < 1e-6);
    }

    #[test]
    fn per_rank_flops_are_imbalanced_on_even_node_split() {
        // The paper's observation: equal node counts ≠ equal work.
        let mesh = block_mesh(6);
        let offsets = even_offsets(mesh.num_nodes(), 4);
        let per = assembly_flops_per_rank(&mesh, &offsets);
        let max = per.iter().copied().fold(0.0, f64::max);
        let mean = per.iter().sum::<f64>() / per.len() as f64;
        assert!(max / mean > 1.001, "unexpectedly perfect balance: {per:?}");
    }

    #[test]
    fn weighted_partition_improves_balance() {
        let mesh = block_mesh(6);
        let weights = node_work_weights(&mesh);
        let p = 4;
        let even = even_offsets(mesh.num_nodes(), p);
        let balanced = brainshift_sparse::partition::weighted_offsets(&weights, p);
        let imb_even = brainshift_sparse::partition::imbalance(&weights, &even);
        let imb_bal = brainshift_sparse::partition::imbalance(&weights, &balanced);
        assert!(imb_bal <= imb_even + 1e-12, "{imb_bal} vs {imb_even}");
    }

    #[test]
    fn matrix_sparsity_reasonable() {
        // ~15 neighbors incl. self × 3 DOF → nnz per row well under 100.
        let mesh = block_mesh(5);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let nnz_per_row = k.nnz() as f64 / k.nrows() as f64;
        assert!(nnz_per_row > 10.0 && nnz_per_row < 100.0, "{nnz_per_row}");
    }
}
