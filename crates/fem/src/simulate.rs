//! Simulated-cluster execution of the parallel assembly and solve.
//!
//! This reproduces the paper's §3.2 measurement setup on modeled hardware
//! (DESIGN.md §2): the *numerics* run for real on the host (so iteration
//! counts, convergence and solutions are genuine), while per-rank flop
//! counts and message volumes — extracted from the actual partitioned
//! matrix and mesh — are priced by a [`MachineModel`]. Both of the paper's
//! load-imbalance mechanisms are present by construction:
//!
//! * assembly: equal node counts per CPU but unequal connectivity;
//! * solve: Dirichlet substitution removes unequal numbers of unknowns
//!   from each CPU's contiguous range.

use crate::assembly::{assembly_flops_per_rank, assemble_stiffness};
use crate::bc::{DirichletBcs, DirichletStructure};
use crate::material::MaterialTable;
use brainshift_cluster::{MachineModel, SimCluster};
use brainshift_imaging::Vec3;
use brainshift_mesh::TetMesh;
use brainshift_sparse::partition::{even_offsets, part_of};
use brainshift_sparse::{gmres, BlockJacobiPrecond, BlockSolve, CsrMatrix, SolverOptions};

/// Modeled timings of one assemble+solve on `cpus` CPUs of a machine.
#[derive(Debug, Clone)]
pub struct SimTimings {
    /// Machine model name.
    pub machine: &'static str,
    /// Simulated CPU count.
    pub cpus: usize,
    /// Mesh distribution / setup time (overlappable per the paper).
    pub init_s: f64,
    /// Modeled stiffness-assembly wall-clock, seconds.
    pub assemble_s: f64,
    /// Modeled Krylov-solve wall-clock, seconds.
    pub solve_s: f64,
    /// Resampling the deformed volume (the paper's ~0.5 s step).
    pub resample_s: f64,
    /// GMRES iterations of the (real) solve.
    pub iterations: usize,
    /// Whether the solve reached tolerance.
    pub converged: bool,
    /// max/mean per-rank compute in each phase (1.0 = perfectly balanced).
    pub assembly_imbalance: f64,
    /// max/mean per-rank compute in the solve phase.
    pub solve_imbalance: f64,
    /// Problem sizes for reporting.
    pub total_equations: usize,
    /// Unknowns remaining after Dirichlet substitution.
    pub reduced_equations: usize,
}

impl SimTimings {
    /// The paper's Figure 7 "sum of initialization, assembly and solve".
    pub fn total_s(&self) -> f64 {
        self.init_s + self.assemble_s + self.solve_s
    }
}

/// Options of the simulated run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Krylov solver settings for the real solve.
    pub solver: SolverOptions,
    /// Block-Jacobi sub-solver (ILU(0), as PETSc defaults).
    pub block_solve: BlockSolve,
    /// Voxels of the display volume for the resample-cost model.
    pub resample_voxels: usize,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            solver: SolverOptions { tolerance: 1e-5, max_iterations: 4000, restart: 30, ..Default::default() },
            block_solve: BlockSolve::Ilu0,
            // 256×256×60, the paper's intraoperative MRI.
            resample_voxels: 256 * 256 * 60,
        }
    }
}

/// The assembled-and-reduced elastic problem shared across simulated
/// runs: the full stiffness matrix plus the Dirichlet split (`K_ff`,
/// `K_fc`) for one constrained node set.
///
/// A CPU-count sweep re-prices the same numerics on different modeled
/// machines; assembling and reducing once per sweep (instead of once per
/// point) mirrors the per-surgery [`crate::SolverContext`] and keeps the
/// figure benchmarks fast.
pub struct SimProblem {
    k: CsrMatrix,
    structure: DirichletStructure,
}

impl SimProblem {
    /// Assemble `mesh`/`materials` and reduce along the node set of
    /// `bcs`. The prescribed *values* may change between runs; the node
    /// set may not.
    pub fn new(mesh: &TetMesh, materials: &MaterialTable, bcs: &DirichletBcs) -> Self {
        let k = assemble_stiffness(mesh, materials);
        let structure = DirichletStructure::new(&k, &bcs.nodes_sorted())
            .expect("BC node set out of range for the assembled mesh");
        SimProblem { k, structure }
    }

    /// The assembled global stiffness matrix.
    pub fn matrix(&self) -> &CsrMatrix {
        &self.k
    }

    /// The cached Dirichlet reduction structure.
    pub fn structure(&self) -> &DirichletStructure {
        &self.structure
    }
}

/// Run the biomechanical system on a simulated machine with `cpus` CPUs.
///
/// `bcs` are the active-surface displacements. The assembled + reduced
/// problem may be passed via `prebuilt` to keep sweeps over CPU counts
/// fast (the numerics don't depend on the partition; only the pricing
/// does). A prebuilt problem must have been built for the same mesh and
/// the same constrained node set; the prescribed values are re-read from
/// `bcs` on every call.
pub fn simulate_assemble_solve(
    mesh: &TetMesh,
    materials: &MaterialTable,
    bcs: &DirichletBcs,
    machine: MachineModel,
    cpus: usize,
    opts: &SimOptions,
    prebuilt: Option<&SimProblem>,
) -> (SimTimings, Vec<Vec3>) {
    let machine_name = machine.name;
    let sim = SimCluster::new(machine, cpus);
    let ndof = mesh.num_equations();
    let node_offsets = even_offsets(mesh.num_nodes(), cpus);
    let dof_offsets: Vec<usize> = node_offsets.iter().map(|&n| 3 * n).collect();

    // ---- Init phase: distribute mesh from rank 0 (broadcast). ----
    let mesh_bytes = (mesh.num_nodes() * 24 + mesh.num_tets() * 17) as f64;
    let init_comm = if cpus > 1 {
        (cpus as f64).log2().ceil() * sim.machine().interconnect.worst_link(cpus).message(mesh_bytes)
    } else {
        0.0
    };
    // Local setup: index maps etc., ~50 flops per owned node.
    let init_flops: Vec<f64> = node_offsets
        .windows(2)
        .map(|w| (w[1] - w[0]) as f64 * 50.0)
        .collect();
    let init_s = sim.record_phase("init", &init_flops, init_comm);

    // ---- Assembly phase. ----
    let asm_flops = assembly_flops_per_rank(mesh, &node_offsets);
    // Off-rank element contributions must be communicated (PETSc's stash):
    // count stiffness entries whose row and column live on different ranks.
    let mut cross_entries = 0usize;
    for tet in &mesh.tets {
        for &ni in tet {
            let ri = part_of(&node_offsets, ni);
            for &nj in tet {
                if part_of(&node_offsets, nj) != ri {
                    cross_entries += 9; // 3×3 block
                }
            }
        }
    }
    let asm_comm = if cpus > 1 {
        // Entries are 16 bytes (index + value); spread over pairwise
        // exchanges, bounded by the busiest link.
        sim.machine()
            .interconnect
            .worst_link(cpus)
            .message(cross_entries as f64 * 16.0 / cpus as f64)
            + sim.allreduce_cost(8.0) // final assembly barrier
    } else {
        0.0
    };
    let assemble_s = sim.record_phase("assemble", &asm_flops, asm_comm);
    let assembly_imbalance = sim.phases().last().expect("phase just recorded").imbalance();

    // ---- Real numerics: assemble + reduce + solve on the host. ----
    let owned_problem;
    let problem = match prebuilt {
        Some(p) => p,
        None => {
            owned_problem = SimProblem::new(mesh, materials, bcs);
            &owned_problem
        }
    };
    let structure = &problem.structure;
    assert_eq!(
        3 * bcs.len(),
        structure.num_constrained(),
        "prebuilt problem was reduced for a different constrained node set"
    );
    let nfree = structure.num_free();
    let mut u_c = vec![0.0; structure.num_constrained()];
    structure
        .gather_constrained(bcs, &mut u_c)
        .expect("prescribed values cover the constrained set");
    let mut rhs = vec![0.0; nfree];
    structure.reduced_rhs_zero_f(&u_c, &mut rhs);

    // Reduced-system block offsets = cumulative free-DOF counts per rank
    // (ranks keep their contiguous ranges; substitution shrinks them
    // unevenly — the paper's solve imbalance).
    let mut red_offsets = Vec::with_capacity(cpus + 1);
    red_offsets.push(0usize);
    {
        let counts = structure.rank_dof_counts(&dof_offsets);
        let mut acc = 0;
        for &(free, _) in &counts {
            acc += free;
            red_offsets.push(acc);
        }
        debug_assert_eq!(acc, nfree);
    }
    // Guard: a rank with zero free DOFs would make an empty block; merge
    // such boundaries (rare, only for tiny meshes).
    red_offsets.dedup();
    let eff_blocks = red_offsets.len() - 1;

    let precond = BlockJacobiPrecond::from_offsets(&structure.matrix, &red_offsets, opts.block_solve)
        .expect("singular diagonal block in simulated preconditioner");
    let mut x = vec![0.0; nfree];
    let stats = gmres(&structure.matrix, &precond, &rhs, &mut x, &opts.solver)
        .expect("reduced system dimensions agree by construction");
    let mut full = vec![0.0; ndof];
    structure.expand_solution_into(&x, &u_c, &mut full);
    let displacements: Vec<Vec3> = (0..mesh.num_nodes())
        .map(|n| Vec3::new(full[3 * n], full[3 * n + 1], full[3 * n + 2]))
        .collect();

    // ---- Price the solve phase. ----
    // Per-rank local sizes from the real reduced matrix.
    let mut rank_rows = vec![0usize; eff_blocks];
    let mut rank_nnz = vec![0usize; eff_blocks];
    let mut rank_ghost = vec![std::collections::HashSet::new(); eff_blocks];
    for r in 0..eff_blocks {
        for row in red_offsets[r]..red_offsets[r + 1] {
            rank_rows[r] += 1;
            let (cols, _) = structure.matrix.row(row);
            rank_nnz[r] += cols.len();
            for &c in cols {
                let owner = part_of(&red_offsets, c);
                if owner != r {
                    rank_ghost[r].insert(c);
                }
            }
        }
    }
    let iters = stats.iterations.max(1);
    let restart = opts.solver.restart.max(1);
    // Mean orthogonalization depth over a restart cycle.
    let depth = ((iters.min(restart) + 1) as f64) / 2.0;
    let per_rank_flops: Vec<f64> = (0..eff_blocks)
        .map(|r| {
            let nloc = rank_rows[r] as f64;
            let nnz = rank_nnz[r] as f64;
            let spmv = 2.0 * nnz;
            let precond_apply = 4.0 * nnz; // ILU fwd/bwd on the local block
            let orth = 4.0 * depth * nloc; // MGS dots + axpys
            let update = 6.0 * nloc;
            iters as f64 * (spmv + precond_apply + orth + update)
        })
        .collect();
    // Per-iteration comm: ghost exchange for SpMV + (depth + 2) allreduces.
    let max_ghost = rank_ghost.iter().map(|g| g.len()).max().unwrap_or(0);
    let max_neighbors = (eff_blocks - 1).min(2); // contiguous split → ~2 neighbors
    let per_iter_comm = sim.neighbor_exchange_cost(max_neighbors, max_ghost as f64 * 8.0)
        + (depth + 2.0) * sim.allreduce_cost(8.0);
    let solve_comm = iters as f64 * per_iter_comm;
    // Pad flops to the full rank count if blocks were merged.
    let mut flops_padded = per_rank_flops.clone();
    flops_padded.resize(cpus, 0.0);
    let solve_s = sim.record_phase("solve", &flops_padded, solve_comm);
    let solve_imbalance = sim.phases().last().expect("phase just recorded").imbalance();

    // ---- Resample cost (the ~0.5 s display step). ----
    // ~40 ops per voxel (trilinear + field lookup).
    let resample_flops = opts.resample_voxels as f64 * 40.0 / cpus as f64;
    let resample_s = sim.record_phase("resample", &vec![resample_flops; cpus], 0.0);

    (
        SimTimings {
            machine: machine_name,
            cpus,
            init_s,
            assemble_s,
            solve_s,
            resample_s,
            iterations: stats.iterations,
            converged: stats.converged(),
            assembly_imbalance,
            solve_imbalance,
            total_equations: ndof,
            reduced_equations: nfree,
        },
        displacements,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::labels;
    use brainshift_imaging::volume::{Dims, Spacing, Volume};
    use brainshift_mesh::{boundary_nodes, mesh_labeled_volume, MesherConfig};

    fn test_problem() -> (TetMesh, DirichletBcs) {
        let seg = Volume::from_fn(Dims::new(8, 8, 8), Spacing::iso(2.0), |_, _, _| labels::BRAIN);
        let mesh = mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable });
        let mut bcs = DirichletBcs::new();
        let (_, hi) = mesh.bounding_box();
        for &n in boundary_nodes(&mesh).iter() {
            let p = mesh.nodes[n];
            if (p.z - hi.z).abs() < 1e-9 {
                bcs.set(n, Vec3::new(0.0, 0.0, -1.0));
            } else {
                bcs.set(n, Vec3::ZERO);
            }
        }
        (mesh, bcs)
    }

    #[test]
    fn simulation_produces_converged_solve() {
        let (mesh, bcs) = test_problem();
        let (t, disp) = simulate_assemble_solve(
            &mesh,
            &MaterialTable::homogeneous(),
            &bcs,
            MachineModel::deep_flow(),
            4,
            &SimOptions::default(),
            None,
        );
        assert!(t.converged);
        assert!(t.iterations > 0);
        assert!(t.assemble_s > 0.0 && t.solve_s > 0.0);
        assert_eq!(disp.len(), mesh.num_nodes());
        // The pushed face moved.
        let max_u = disp.iter().map(|u| u.norm()).fold(0.0, f64::max);
        assert!(max_u >= 1.0 - 1e-6);
    }

    #[test]
    fn more_cpus_reduce_assembly_time() {
        let (mesh, bcs) = test_problem();
        let k = SimProblem::new(&mesh, &MaterialTable::homogeneous(), &bcs);
        let mut prev = f64::INFINITY;
        for cpus in [1usize, 2, 4, 8] {
            let (t, _) = simulate_assemble_solve(
                &mesh,
                &MaterialTable::homogeneous(),
                &bcs,
                MachineModel::deep_flow(),
                cpus,
                &SimOptions::default(),
                Some(&k),
            );
            assert!(t.assemble_s < prev, "assembly not scaling at {cpus} cpus");
            prev = t.assemble_s;
        }
    }

    #[test]
    fn speedup_is_sublinear_due_to_imbalance_and_comm() {
        // Needs a mesh big enough that compute outweighs Ethernet latency
        // (the same reason the paper measured a 77 511-equation system).
        let seg = Volume::from_fn(Dims::new(14, 14, 14), Spacing::iso(2.0), |_, _, _| labels::BRAIN);
        let mesh = mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable });
        let mut bcs = DirichletBcs::new();
        let (_, hi) = mesh.bounding_box();
        for &n in boundary_nodes(&mesh).iter() {
            let p = mesh.nodes[n];
            let u = if (p.z - hi.z).abs() < 1e-9 { Vec3::new(0.0, 0.0, -1.0) } else { Vec3::ZERO };
            bcs.set(n, u);
        }
        let k = SimProblem::new(&mesh, &MaterialTable::homogeneous(), &bcs);
        let run = |machine: MachineModel, cpus| {
            simulate_assemble_solve(
                &mesh,
                &MaterialTable::homogeneous(),
                &bcs,
                machine,
                cpus,
                &SimOptions::default(),
                Some(&k),
            )
            .0
        };
        let t1 = run(MachineModel::deep_flow(), 1);
        let t8 = run(MachineModel::deep_flow(), 8);
        // Assembly is compute-dominated: real but sub-linear speedup
        // (comm scales with the cut surface, compute with the volume).
        let asm_speedup = t1.assemble_s / t8.assemble_s;
        assert!(asm_speedup > 2.0, "assembly speedup {asm_speedup}");
        assert!(asm_speedup < 8.0, "implausibly ideal: {asm_speedup}");
        assert!(t8.assembly_imbalance > 1.0);
        // On the SMP (cheap collectives) the total time must also drop;
        // on Fast Ethernet a mesh this small is latency-bound, which the
        // full 77k-equation benchmark — not this unit test — exercises.
        let s1 = run(MachineModel::ultra_hpc_6000(), 1);
        let s8 = run(MachineModel::ultra_hpc_6000(), 8);
        let speedup = s1.total_s() / s8.total_s();
        assert!(speedup > 1.5, "no total speedup on SMP: {speedup}");
        assert!(speedup < 8.0);
    }

    #[test]
    fn smp_scales_at_least_as_well_as_ethernet() {
        let (mesh, bcs) = test_problem();
        let k = SimProblem::new(&mesh, &MaterialTable::homogeneous(), &bcs);
        let run = |machine: MachineModel, cpus| {
            simulate_assemble_solve(
                &mesh,
                &MaterialTable::homogeneous(),
                &bcs,
                machine,
                cpus,
                &SimOptions::default(),
                Some(&k),
            )
            .0
        };
        // Compare *scaling* (relative to its own 1-CPU run), isolating the
        // interconnect from CPU speed differences.
        let eth1 = run(MachineModel::deep_flow(), 1);
        let eth8 = run(MachineModel::deep_flow(), 8);
        let smp1 = run(MachineModel::ultra_hpc_6000(), 1);
        let smp8 = run(MachineModel::ultra_hpc_6000(), 8);
        let eth_speedup = eth1.solve_s / eth8.solve_s;
        let smp_speedup = smp1.solve_s / smp8.solve_s;
        assert!(
            smp_speedup >= eth_speedup,
            "SMP solve speedup {smp_speedup} < Ethernet {eth_speedup}"
        );
    }

    #[test]
    fn solution_independent_of_prebuilt_matrix() {
        let (mesh, bcs) = test_problem();
        let k = SimProblem::new(&mesh, &MaterialTable::homogeneous(), &bcs);
        let (_, d1) = simulate_assemble_solve(
            &mesh,
            &MaterialTable::homogeneous(),
            &bcs,
            MachineModel::deep_flow(),
            2,
            &SimOptions::default(),
            Some(&k),
        );
        let (_, d2) = simulate_assemble_solve(
            &mesh,
            &MaterialTable::homogeneous(),
            &bcs,
            MachineModel::deep_flow(),
            2,
            &SimOptions::default(),
            None,
        );
        for (a, b) in d1.iter().zip(&d2) {
            assert!((*a - *b).norm() < 1e-12);
        }
    }

    #[test]
    fn resample_cost_is_subsecond_scale() {
        let (mesh, bcs) = test_problem();
        let (t, _) = simulate_assemble_solve(
            &mesh,
            &MaterialTable::homogeneous(),
            &bcs,
            MachineModel::deep_flow(),
            8,
            &SimOptions::default(),
            None,
        );
        // The paper quotes ~0.5 s for the resample.
        assert!(t.resample_s < 5.0, "{}", t.resample_s);
        assert!(t.resample_s > 0.0);
    }
}
