//! Linear-elastic material models.
//!
//! The paper assumes "a linear elastic continuum with no initial stresses
//! or strains", with the brain treated as a homogeneous material; its
//! discussion attributes the ventricle misregistration to that homogeneity
//! and proposes falx/CSF-aware materials as future work — we provide both
//! the homogeneous table and a heterogeneous one for the ablation.

use brainshift_imaging::labels::{self, Label};

/// An isotropic linear-elastic material.
///
/// ```
/// use brainshift_fem::Material;
/// let brain = Material::brain();
/// // λ and μ recover E and ν: E = μ(3λ+2μ)/(λ+μ)
/// let (l, m) = (brain.lame_lambda(), brain.lame_mu());
/// let e = m * (3.0 * l + 2.0 * m) / (l + m);
/// assert!((e - brain.youngs_modulus).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Material {
    /// Young's modulus, Pa.
    pub youngs_modulus: f64,
    /// Poisson's ratio (dimensionless, < 0.5).
    pub poisson_ratio: f64,
}

impl Material {
    /// A material from Young's modulus (Pa) and Poisson's ratio.
    pub const fn new(youngs_modulus: f64, poisson_ratio: f64) -> Self {
        Material { youngs_modulus, poisson_ratio }
    }

    /// First Lamé parameter λ.
    pub fn lame_lambda(&self) -> f64 {
        let e = self.youngs_modulus;
        let nu = self.poisson_ratio;
        e * nu / ((1.0 + nu) * (1.0 - 2.0 * nu))
    }

    /// Second Lamé parameter μ (shear modulus).
    pub fn lame_mu(&self) -> f64 {
        let e = self.youngs_modulus;
        let nu = self.poisson_ratio;
        e / (2.0 * (1.0 + nu))
    }

    /// The 6×6 isotropic elasticity matrix `D` linking engineering strain
    /// `[εxx εyy εzz γxy γyz γzx]` to stress (the paper's `σ = D ε`,
    /// Zienkiewicz & Taylor).
    pub fn elasticity_matrix(&self) -> [[f64; 6]; 6] {
        let l = self.lame_lambda();
        let m = self.lame_mu();
        let d = l + 2.0 * m;
        [
            [d, l, l, 0.0, 0.0, 0.0],
            [l, d, l, 0.0, 0.0, 0.0],
            [l, l, d, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, m, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.0, m, 0.0],
            [0.0, 0.0, 0.0, 0.0, 0.0, m],
        ]
    }

    /// Brain parenchyma (the paper's homogeneous model): soft tissue,
    /// nearly incompressible. E = 3 kPa, ν = 0.45 (in the range used by
    /// the contemporaneous literature the paper cites, e.g. Miga/Paulsen).
    pub const fn brain() -> Material {
        Material::new(3000.0, 0.45)
    }

    /// Cerebral falx: stiff dura membrane (≈20× brain).
    pub const fn falx() -> Material {
        Material::new(60000.0, 0.45)
    }

    /// CSF-filled spaces (ventricles): much softer than parenchyma.
    pub const fn csf() -> Material {
        Material::new(300.0, 0.49)
    }

    /// Tumor: somewhat stiffer than normal parenchyma.
    pub const fn tumor() -> Material {
        Material::new(9000.0, 0.45)
    }
}

/// Maps tissue labels to materials.
#[derive(Debug, Clone)]
pub struct MaterialTable {
    per_label: [Material; labels::NUM_LABELS],
    /// Table name for reports ("homogeneous" / "heterogeneous").
    pub name: &'static str,
}

impl MaterialTable {
    /// The paper's model: every deformable tissue behaves as homogeneous
    /// brain.
    pub fn homogeneous() -> Self {
        MaterialTable { per_label: [Material::brain(); labels::NUM_LABELS], name: "homogeneous" }
    }

    /// The improved model the paper proposes as future work: distinct
    /// falx, ventricle (CSF) and tumor properties.
    pub fn heterogeneous() -> Self {
        let mut per_label = [Material::brain(); labels::NUM_LABELS];
        per_label[labels::FALX as usize] = Material::falx();
        per_label[labels::VENTRICLE as usize] = Material::csf();
        per_label[labels::CSF as usize] = Material::csf();
        per_label[labels::TUMOR as usize] = Material::tumor();
        per_label[labels::RESECTION as usize] = Material::csf();
        MaterialTable { per_label, name: "heterogeneous" }
    }

    /// Material of a tissue label.
    #[inline]
    pub fn of(&self, label: Label) -> Material {
        self.per_label[(label as usize).min(labels::NUM_LABELS - 1)]
    }

    /// Override one label's material.
    pub fn set(&mut self, label: Label, m: Material) {
        self.per_label[label as usize] = m;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lame_parameters_match_closed_form() {
        let m = Material::new(3000.0, 0.45);
        // λ = Eν/((1+ν)(1−2ν)), μ = E/(2(1+ν))
        assert!((m.lame_lambda() - 3000.0 * 0.45 / (1.45 * 0.1)).abs() < 1e-9);
        assert!((m.lame_mu() - 3000.0 / 2.9).abs() < 1e-9);
    }

    #[test]
    fn elasticity_matrix_symmetric_positive_diagonal() {
        let d = Material::brain().elasticity_matrix();
        for i in 0..6 {
            assert!(d[i][i] > 0.0);
            for j in 0..6 {
                assert_eq!(d[i][j], d[j][i]);
            }
        }
    }

    #[test]
    fn stiffer_material_has_larger_entries() {
        let brain = Material::brain().elasticity_matrix();
        let falx = Material::falx().elasticity_matrix();
        assert!(falx[0][0] > brain[0][0] * 10.0);
    }

    #[test]
    fn homogeneous_table_is_uniform() {
        let t = MaterialTable::homogeneous();
        for l in 0..labels::NUM_LABELS as u8 {
            assert_eq!(t.of(l), Material::brain());
        }
    }

    #[test]
    fn heterogeneous_table_differs_where_expected() {
        let t = MaterialTable::heterogeneous();
        assert_eq!(t.of(labels::BRAIN), Material::brain());
        assert_eq!(t.of(labels::FALX), Material::falx());
        assert_eq!(t.of(labels::VENTRICLE), Material::csf());
        assert!(t.of(labels::FALX).youngs_modulus > t.of(labels::BRAIN).youngs_modulus);
    }

    #[test]
    fn table_override() {
        let mut t = MaterialTable::homogeneous();
        t.set(labels::TUMOR, Material::new(1.0, 0.3));
        assert_eq!(t.of(labels::TUMOR).youngs_modulus, 1.0);
    }

    #[test]
    fn nearly_incompressible_lambda_dominates() {
        let m = Material::csf(); // ν = 0.49
        assert!(m.lame_lambda() > 10.0 * m.lame_mu());
    }
}
