//! Dirichlet boundary conditions by substitution.
//!
//! The paper: "the surface displacements are applied as boundary
//! conditions, substituting known values for equations in the original
//! system, reducing the number of unknowns that must be solved for. This
//! has the effect of creating some imbalance, as the distribution of
//! surface displacements is not equal across CPUs." This module performs
//! exactly that substitution and exposes the per-rank free/constrained
//! counts that drive the solve-phase imbalance in the simulated cluster.

use brainshift_imaging::Vec3;
use brainshift_sparse::{CsrMatrix, TripletBuilder};
use std::collections::HashMap;

/// A set of prescribed nodal displacements.
#[derive(Debug, Clone, Default)]
pub struct DirichletBcs {
    /// node index → prescribed displacement (mm).
    prescribed: HashMap<usize, Vec3>,
}

impl DirichletBcs {
    /// An empty set of boundary conditions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prescribe the displacement of a node (overwrites earlier values).
    pub fn set(&mut self, node: usize, u: Vec3) {
        self.prescribed.insert(node, u);
    }

    /// The prescribed displacement of `node`, if any.
    pub fn get(&self, node: usize) -> Option<Vec3> {
        self.prescribed.get(&node).copied()
    }

    /// Number of constrained nodes.
    pub fn len(&self) -> usize {
        self.prescribed.len()
    }

    /// True when no node is constrained.
    pub fn is_empty(&self) -> bool {
        self.prescribed.is_empty()
    }

    /// Iterate over `(node, displacement)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (usize, Vec3)> + '_ {
        self.prescribed.iter().map(|(&n, &u)| (n, u))
    }

    /// Expand to per-DOF prescribed values (`dof = 3*node + component`).
    pub fn dof_values(&self) -> HashMap<usize, f64> {
        let mut m = HashMap::with_capacity(self.prescribed.len() * 3);
        for (&node, &u) in &self.prescribed {
            m.insert(3 * node, u.x);
            m.insert(3 * node + 1, u.y);
            m.insert(3 * node + 2, u.z);
        }
        m
    }
}

/// The reduced system after Dirichlet substitution.
pub struct ReducedSystem {
    /// `K_ff`, the free-free block.
    pub matrix: CsrMatrix,
    /// `f_f − K_fc u_c`.
    pub rhs: Vec<f64>,
    /// Free DOF indices in original numbering (`free_dofs[i]` = original
    /// DOF of reduced row `i`).
    pub free_dofs: Vec<usize>,
    /// Original DOF → reduced index (`usize::MAX` for constrained DOFs).
    pub reduced_of_dof: Vec<usize>,
    /// Prescribed value of each original DOF (0.0 for free DOFs).
    pub prescribed_values: Vec<f64>,
}

impl ReducedSystem {
    /// Scatter a reduced solution back to full DOF vector (prescribed
    /// values filled in).
    pub fn expand_solution(&self, x_reduced: &[f64]) -> Vec<f64> {
        assert_eq!(x_reduced.len(), self.free_dofs.len());
        let mut full = self.prescribed_values.clone();
        for (i, &dof) in self.free_dofs.iter().enumerate() {
            full[dof] = x_reduced[i];
        }
        full
    }

    /// Per-rank counts of (free, constrained) DOFs under contiguous DOF
    /// offsets — the quantity the paper blames for solver imbalance.
    pub fn rank_dof_counts(&self, dof_offsets: &[usize]) -> Vec<(usize, usize)> {
        let p = dof_offsets.len() - 1;
        let mut counts = vec![(0usize, 0usize); p];
        for dof in 0..self.reduced_of_dof.len() {
            let rank = brainshift_sparse::partition::part_of(dof_offsets, dof);
            if self.reduced_of_dof[dof] != usize::MAX {
                counts[rank].0 += 1;
            } else {
                counts[rank].1 += 1;
            }
        }
        counts
    }
}

/// Apply Dirichlet substitution to `K u = f`.
pub fn apply_dirichlet(k: &CsrMatrix, f: &[f64], bcs: &DirichletBcs) -> ReducedSystem {
    let ndof = k.nrows();
    assert_eq!(f.len(), ndof);
    let dof_vals = bcs.dof_values();
    let mut prescribed_values = vec![0.0; ndof];
    let mut reduced_of_dof = vec![usize::MAX; ndof];
    let mut free_dofs = Vec::with_capacity(ndof - dof_vals.len());
    for dof in 0..ndof {
        if let Some(&v) = dof_vals.get(&dof) {
            prescribed_values[dof] = v;
        } else {
            reduced_of_dof[dof] = free_dofs.len();
            free_dofs.push(dof);
        }
    }
    let nfree = free_dofs.len();
    let mut builder = TripletBuilder::with_capacity(nfree, nfree, k.nnz());
    let mut rhs = vec![0.0; nfree];
    for (ri, &dof) in free_dofs.iter().enumerate() {
        let (cols, vals) = k.row(dof);
        let mut acc = f[dof];
        for (&c, &v) in cols.iter().zip(vals) {
            let rc = reduced_of_dof[c];
            if rc == usize::MAX {
                acc -= v * prescribed_values[c];
            } else {
                builder.add(ri, rc, v);
            }
        }
        rhs[ri] = acc;
    }
    ReducedSystem {
        matrix: builder.build(),
        rhs,
        free_dofs,
        reduced_of_dof,
        prescribed_values,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::assemble_stiffness;
    use crate::material::MaterialTable;
    use brainshift_imaging::labels;
    use brainshift_imaging::volume::{Dims, Spacing, Volume};
    use brainshift_mesh::{boundary_nodes, mesh_labeled_volume, MesherConfig, TetMesh};

    fn block_mesh(n: usize) -> TetMesh {
        let seg = Volume::from_fn(Dims::new(n, n, n), Spacing::iso(1.0), |_, _, _| labels::BRAIN);
        mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable })
    }

    #[test]
    fn reduction_removes_constrained_dofs() {
        let mesh = block_mesh(3);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let mut bcs = DirichletBcs::new();
        for &n in boundary_nodes(&mesh).iter() {
            bcs.set(n, Vec3::ZERO);
        }
        let f = vec![0.0; k.nrows()];
        let red = apply_dirichlet(&k, &f, &bcs);
        assert_eq!(red.matrix.nrows(), k.nrows() - 3 * bcs.len());
        assert_eq!(red.free_dofs.len(), red.matrix.nrows());
    }

    #[test]
    fn zero_bc_zero_rhs_solution_is_zero() {
        let mesh = block_mesh(3);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let mut bcs = DirichletBcs::new();
        for &n in boundary_nodes(&mesh).iter() {
            bcs.set(n, Vec3::ZERO);
        }
        let red = apply_dirichlet(&k, &vec![0.0; k.nrows()], &bcs);
        assert!(red.rhs.iter().all(|&v| v == 0.0));
        let full = red.expand_solution(&vec![0.0; red.free_dofs.len()]);
        assert!(full.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn expand_restores_prescribed_values() {
        let mesh = block_mesh(3);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let mut bcs = DirichletBcs::new();
        bcs.set(0, Vec3::new(1.0, 2.0, 3.0));
        let red = apply_dirichlet(&k, &vec![0.0; k.nrows()], &bcs);
        let x = vec![0.5; red.free_dofs.len()];
        let full = red.expand_solution(&x);
        assert_eq!(full[0], 1.0);
        assert_eq!(full[1], 2.0);
        assert_eq!(full[2], 3.0);
        assert_eq!(full[3], 0.5);
    }

    #[test]
    fn reduced_matrix_stays_symmetric() {
        let mesh = block_mesh(3);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let mut bcs = DirichletBcs::new();
        for (i, &n) in boundary_nodes(&mesh).iter().enumerate() {
            if i % 2 == 0 {
                bcs.set(n, Vec3::new(0.1, 0.0, 0.0));
            }
        }
        let red = apply_dirichlet(&k, &vec![0.0; k.nrows()], &bcs);
        assert!(red.matrix.asymmetry() < 1e-12);
    }

    #[test]
    fn nonzero_bc_contributes_to_rhs() {
        let mesh = block_mesh(3);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let mut bcs = DirichletBcs::new();
        bcs.set(0, Vec3::new(1.0, 0.0, 0.0));
        let red = apply_dirichlet(&k, &vec![0.0; k.nrows()], &bcs);
        let rhs_norm: f64 = red.rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(rhs_norm > 0.0, "coupling to prescribed DOF must load the rhs");
    }

    #[test]
    fn rank_counts_reflect_surface_concentration() {
        // In a contiguous node ordering from our mesher, surface nodes are
        // *not* evenly spread across ranks — the paper's solve imbalance.
        let mesh = block_mesh(5);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let mut bcs = DirichletBcs::new();
        for &n in boundary_nodes(&mesh).iter() {
            bcs.set(n, Vec3::ZERO);
        }
        let red = apply_dirichlet(&k, &vec![0.0; k.nrows()], &bcs);
        let offsets = brainshift_sparse::partition::even_offsets(k.nrows(), 4);
        let counts = red.rank_dof_counts(&offsets);
        let frees: Vec<usize> = counts.iter().map(|c| c.0).collect();
        let min = *frees.iter().min().unwrap();
        let max = *frees.iter().max().unwrap();
        assert!(max > min, "free DOFs unexpectedly uniform: {frees:?}");
        // Total conserved.
        let total: usize = counts.iter().map(|c| c.0 + c.1).sum();
        assert_eq!(total, k.nrows());
    }

    #[test]
    fn overwriting_bc_takes_last_value() {
        let mut bcs = DirichletBcs::new();
        bcs.set(3, Vec3::new(1.0, 1.0, 1.0));
        bcs.set(3, Vec3::new(2.0, 2.0, 2.0));
        assert_eq!(bcs.len(), 1);
        assert_eq!(bcs.get(3), Some(Vec3::new(2.0, 2.0, 2.0)));
    }
}
