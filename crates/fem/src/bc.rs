//! Dirichlet boundary conditions by substitution.
//!
//! The paper: "the surface displacements are applied as boundary
//! conditions, substituting known values for equations in the original
//! system, reducing the number of unknowns that must be solved for. This
//! has the effect of creating some imbalance, as the distribution of
//! surface displacements is not equal across CPUs." This module performs
//! exactly that substitution and exposes the per-rank free/constrained
//! counts that drive the solve-phase imbalance in the simulated cluster.

use crate::error::FemError;
use brainshift_imaging::Vec3;
use brainshift_sparse::{CsrMatrix, TripletBuilder};
use std::collections::HashMap;

/// A set of prescribed nodal displacements.
#[derive(Debug, Clone, Default)]
pub struct DirichletBcs {
    /// node index → prescribed displacement (mm).
    prescribed: HashMap<usize, Vec3>,
}

impl DirichletBcs {
    /// An empty set of boundary conditions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prescribe the displacement of a node (overwrites earlier values).
    pub fn set(&mut self, node: usize, u: Vec3) {
        self.prescribed.insert(node, u);
    }

    /// The prescribed displacement of `node`, if any.
    pub fn get(&self, node: usize) -> Option<Vec3> {
        self.prescribed.get(&node).copied()
    }

    /// Number of constrained nodes.
    pub fn len(&self) -> usize {
        self.prescribed.len()
    }

    /// True when no node is constrained.
    pub fn is_empty(&self) -> bool {
        self.prescribed.is_empty()
    }

    /// Iterate over `(node, displacement)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (usize, Vec3)> + '_ {
        self.prescribed.iter().map(|(&n, &u)| (n, u))
    }

    /// Expand to per-DOF prescribed values (`dof = 3*node + component`).
    pub fn dof_values(&self) -> HashMap<usize, f64> {
        let mut m = HashMap::with_capacity(self.prescribed.len() * 3);
        for (&node, &u) in &self.prescribed {
            m.insert(3 * node, u.x);
            m.insert(3 * node + 1, u.y);
            m.insert(3 * node + 2, u.z);
        }
        m
    }

    /// Constrained node indices, sorted ascending.
    pub fn nodes_sorted(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> = self.prescribed.keys().copied().collect();
        nodes.sort_unstable();
        nodes
    }
}

/// The *structure* of a Dirichlet substitution: which DOFs are free, the
/// free-free block `K_ff`, and the free-constrained coupling block
/// `K_fc`.
///
/// In the intraoperative sequence the constrained node set is fixed per
/// surgery (the brain's surface nodes) while the prescribed *values*
/// change on every scan. The structure — and therefore `K_ff` and any
/// preconditioner factored from it — can be built once and reused; each
/// scan only recomputes the load vector `f_f − K_fc·u_c`.
pub struct DirichletStructure {
    /// `K_ff`, the free-free block (the system actually solved).
    pub matrix: CsrMatrix,
    /// `K_fc`, free rows × compact constrained columns: couples
    /// prescribed values into the reduced right-hand side.
    pub coupling: CsrMatrix,
    /// Free DOF indices in original numbering.
    pub free_dofs: Vec<usize>,
    /// Original DOF → reduced index (`usize::MAX` for constrained DOFs).
    pub reduced_of_dof: Vec<usize>,
    /// Compact constrained index → original DOF.
    pub constrained_dofs: Vec<usize>,
}

impl DirichletStructure {
    /// Split `k` along the DOFs of `constrained_nodes` (deduplicated;
    /// order irrelevant). Returns
    /// [`FemError::ConstrainedNodeOutOfRange`] when a node index exceeds
    /// the matrix's DOF count.
    pub fn new(k: &CsrMatrix, constrained_nodes: &[usize]) -> Result<Self, FemError> {
        let ndof = k.nrows();
        let mut constrained = vec![false; ndof];
        for &node in constrained_nodes {
            for c in 0..3 {
                let dof = 3 * node + c;
                if dof >= ndof {
                    return Err(FemError::ConstrainedNodeOutOfRange { node, ndof });
                }
                constrained[dof] = true;
            }
        }
        let mut free_dofs = Vec::with_capacity(ndof);
        let mut constrained_dofs = Vec::with_capacity(constrained_nodes.len() * 3);
        let mut reduced_of_dof = vec![usize::MAX; ndof];
        let mut constrained_of_dof = vec![usize::MAX; ndof];
        for (dof, &is_c) in constrained.iter().enumerate() {
            if is_c {
                constrained_of_dof[dof] = constrained_dofs.len();
                constrained_dofs.push(dof);
            } else {
                reduced_of_dof[dof] = free_dofs.len();
                free_dofs.push(dof);
            }
        }
        let nfree = free_dofs.len();
        let nc = constrained_dofs.len();
        let mut bff = TripletBuilder::with_capacity(nfree, nfree, k.nnz());
        let mut bfc = TripletBuilder::new(nfree, nc.max(1));
        for (ri, &dof) in free_dofs.iter().enumerate() {
            let (cols, vals) = k.row(dof);
            for (&c, &v) in cols.iter().zip(vals) {
                let rc = reduced_of_dof[c];
                if rc == usize::MAX {
                    bfc.add(ri, constrained_of_dof[c], v);
                } else {
                    bff.add(ri, rc, v);
                }
            }
        }
        Ok(DirichletStructure {
            matrix: bff.build(),
            coupling: bfc.build(),
            free_dofs,
            reduced_of_dof,
            constrained_dofs,
        })
    }

    /// Number of free (solved-for) DOFs.
    pub fn num_free(&self) -> usize {
        self.free_dofs.len()
    }

    /// Heap footprint of the reduced blocks and DOF maps, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.matrix.memory_bytes()
            + self.coupling.memory_bytes()
            + std::mem::size_of_val(self.free_dofs.as_slice())
            + std::mem::size_of_val(self.reduced_of_dof.as_slice())
            + std::mem::size_of_val(self.constrained_dofs.as_slice())
    }

    /// Number of constrained DOFs.
    pub fn num_constrained(&self) -> usize {
        self.constrained_dofs.len()
    }

    /// Gather prescribed values from `bcs` into the compact constrained
    /// vector `u_c`. Returns [`FemError::BcSetMismatch`] when `u_c` has
    /// the wrong length and [`FemError::MissingBcValue`] when a
    /// constrained node carries no prescribed displacement.
    pub fn gather_constrained(&self, bcs: &DirichletBcs, u_c: &mut [f64]) -> Result<(), FemError> {
        if u_c.len() != self.constrained_dofs.len() {
            return Err(FemError::BcSetMismatch {
                expected: self.constrained_dofs.len(),
                got: u_c.len(),
            });
        }
        for (ci, &dof) in self.constrained_dofs.iter().enumerate() {
            let node = dof / 3;
            let u = bcs.get(node).ok_or(FemError::MissingBcValue { node })?;
            u_c[ci] = match dof % 3 {
                0 => u.x,
                1 => u.y,
                _ => u.z,
            };
        }
        Ok(())
    }

    /// Reduced load vector for zero body force: `rhs = −K_fc·u_c`.
    pub fn reduced_rhs_zero_f(&self, u_c: &[f64], rhs: &mut [f64]) {
        self.coupling.spmv(u_c, rhs);
        for v in rhs.iter_mut() {
            *v = -*v;
        }
    }

    /// Reduced load vector: `rhs = f_f − K_fc·u_c` (`f` in original DOF
    /// numbering).
    pub fn reduced_rhs(&self, f: &[f64], u_c: &[f64], rhs: &mut [f64]) {
        self.coupling.spmv(u_c, rhs);
        for (i, &dof) in self.free_dofs.iter().enumerate() {
            rhs[i] = f[dof] - rhs[i];
        }
    }

    /// Scatter a reduced solution plus the prescribed values into a full
    /// DOF vector.
    pub fn expand_solution_into(&self, x_reduced: &[f64], u_c: &[f64], full: &mut [f64]) {
        assert_eq!(x_reduced.len(), self.free_dofs.len());
        assert_eq!(full.len(), self.reduced_of_dof.len());
        for (i, &dof) in self.free_dofs.iter().enumerate() {
            full[dof] = x_reduced[i];
        }
        for (ci, &dof) in self.constrained_dofs.iter().enumerate() {
            full[dof] = u_c[ci];
        }
    }

    /// Per-rank counts of (free, constrained) DOFs under contiguous DOF
    /// offsets — the quantity the paper blames for solver imbalance.
    pub fn rank_dof_counts(&self, dof_offsets: &[usize]) -> Vec<(usize, usize)> {
        rank_dof_counts(&self.reduced_of_dof, dof_offsets)
    }
}

fn rank_dof_counts(reduced_of_dof: &[usize], dof_offsets: &[usize]) -> Vec<(usize, usize)> {
    let p = dof_offsets.len() - 1;
    let mut counts = vec![(0usize, 0usize); p];
    for (dof, &red) in reduced_of_dof.iter().enumerate() {
        let rank = brainshift_sparse::partition::part_of(dof_offsets, dof);
        if red != usize::MAX {
            counts[rank].0 += 1;
        } else {
            counts[rank].1 += 1;
        }
    }
    counts
}

/// The reduced system after Dirichlet substitution.
pub struct ReducedSystem {
    /// `K_ff`, the free-free block.
    pub matrix: CsrMatrix,
    /// `f_f − K_fc u_c`.
    pub rhs: Vec<f64>,
    /// Free DOF indices in original numbering (`free_dofs[i]` = original
    /// DOF of reduced row `i`).
    pub free_dofs: Vec<usize>,
    /// Original DOF → reduced index (`usize::MAX` for constrained DOFs).
    pub reduced_of_dof: Vec<usize>,
    /// Prescribed value of each original DOF (0.0 for free DOFs).
    pub prescribed_values: Vec<f64>,
}

impl ReducedSystem {
    /// Scatter a reduced solution back to full DOF vector (prescribed
    /// values filled in).
    pub fn expand_solution(&self, x_reduced: &[f64]) -> Vec<f64> {
        assert_eq!(x_reduced.len(), self.free_dofs.len());
        let mut full = self.prescribed_values.clone();
        for (i, &dof) in self.free_dofs.iter().enumerate() {
            full[dof] = x_reduced[i];
        }
        full
    }

    /// Per-rank counts of (free, constrained) DOFs under contiguous DOF
    /// offsets — the quantity the paper blames for solver imbalance.
    pub fn rank_dof_counts(&self, dof_offsets: &[usize]) -> Vec<(usize, usize)> {
        rank_dof_counts(&self.reduced_of_dof, dof_offsets)
    }
}

/// Apply Dirichlet substitution to `K u = f`.
///
/// One-shot form of [`DirichletStructure`]: builds the structure for this
/// BC set, computes the load vector, and discards the coupling block.
/// Repeat solves over a fixed constrained set should hold a
/// `DirichletStructure` (or a `SolverContext`) instead. Returns
/// [`FemError::MatrixShapeMismatch`] when `f` does not match the matrix
/// and propagates structural errors from [`DirichletStructure::new`].
pub fn apply_dirichlet(
    k: &CsrMatrix,
    f: &[f64],
    bcs: &DirichletBcs,
) -> Result<ReducedSystem, FemError> {
    let ndof = k.nrows();
    if f.len() != ndof {
        return Err(FemError::MatrixShapeMismatch { rows: f.len(), equations: ndof });
    }
    let structure = DirichletStructure::new(k, &bcs.nodes_sorted())?;
    let mut u_c = vec![0.0; structure.num_constrained()];
    structure.gather_constrained(bcs, &mut u_c)?;
    let mut rhs = vec![0.0; structure.num_free()];
    structure.reduced_rhs(f, &u_c, &mut rhs);
    let mut prescribed_values = vec![0.0; ndof];
    for (ci, &dof) in structure.constrained_dofs.iter().enumerate() {
        prescribed_values[dof] = u_c[ci];
    }
    Ok(ReducedSystem {
        matrix: structure.matrix,
        rhs,
        free_dofs: structure.free_dofs,
        reduced_of_dof: structure.reduced_of_dof,
        prescribed_values,
    })
}

impl brainshift_persist::Persist for DirichletStructure {
    fn encode(
        &self,
        enc: &mut brainshift_persist::Encoder,
    ) -> Result<(), brainshift_persist::PersistError> {
        self.matrix.encode(enc)?;
        self.coupling.encode(enc)?;
        self.free_dofs.encode(enc)?;
        // `reduced_of_dof` and `constrained_dofs` are derivable from
        // `free_dofs` + the total DOF count; persist only the count and
        // rebuild, so a corrupted snapshot cannot desynchronize the maps.
        enc.put_usize(self.reduced_of_dof.len());
        Ok(())
    }
    fn decode(
        dec: &mut brainshift_persist::Decoder<'_>,
    ) -> Result<Self, brainshift_persist::PersistError> {
        use brainshift_persist::PersistError;
        let matrix = CsrMatrix::decode(dec)?;
        let coupling = CsrMatrix::decode(dec)?;
        let free_dofs = Vec::<usize>::decode(dec)?;
        let ndof = dec.get_usize()?;
        let invalid = |reason: String| Err(PersistError::InvalidData { reason });
        if matrix.nrows() != matrix.ncols() || matrix.nrows() != free_dofs.len() {
            return invalid(format!(
                "reduced matrix is {}x{} for {} free DOFs",
                matrix.nrows(),
                matrix.ncols(),
                free_dofs.len()
            ));
        }
        if free_dofs.len() > ndof {
            return invalid(format!("{} free DOFs exceed {ndof} total", free_dofs.len()));
        }
        if coupling.nrows() != free_dofs.len() || coupling.ncols() != ndof - free_dofs.len() {
            return invalid(format!(
                "coupling block is {}x{}, expected {}x{}",
                coupling.nrows(),
                coupling.ncols(),
                free_dofs.len(),
                ndof - free_dofs.len()
            ));
        }
        if free_dofs.windows(2).any(|w| w[0] >= w[1]) || free_dofs.last().is_some_and(|&d| d >= ndof)
        {
            return invalid("free DOFs must be sorted, unique, and in range".to_string());
        }
        let mut reduced_of_dof = vec![usize::MAX; ndof];
        for (r, &dof) in free_dofs.iter().enumerate() {
            reduced_of_dof[dof] = r;
        }
        let constrained_dofs: Vec<usize> =
            (0..ndof).filter(|&d| reduced_of_dof[d] == usize::MAX).collect();
        Ok(DirichletStructure { matrix, coupling, free_dofs, reduced_of_dof, constrained_dofs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assembly::assemble_stiffness;
    use crate::material::MaterialTable;
    use brainshift_imaging::labels;
    use brainshift_imaging::volume::{Dims, Spacing, Volume};
    use brainshift_mesh::{boundary_nodes, mesh_labeled_volume, MesherConfig, TetMesh};

    fn block_mesh(n: usize) -> TetMesh {
        let seg = Volume::from_fn(Dims::new(n, n, n), Spacing::iso(1.0), |_, _, _| labels::BRAIN);
        mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable })
    }

    #[test]
    fn reduction_removes_constrained_dofs() {
        let mesh = block_mesh(3);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let mut bcs = DirichletBcs::new();
        for &n in boundary_nodes(&mesh).iter() {
            bcs.set(n, Vec3::ZERO);
        }
        let f = vec![0.0; k.nrows()];
        let red = apply_dirichlet(&k, &f, &bcs).expect("valid BC set");
        assert_eq!(red.matrix.nrows(), k.nrows() - 3 * bcs.len());
        assert_eq!(red.free_dofs.len(), red.matrix.nrows());
    }

    #[test]
    fn zero_bc_zero_rhs_solution_is_zero() {
        let mesh = block_mesh(3);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let mut bcs = DirichletBcs::new();
        for &n in boundary_nodes(&mesh).iter() {
            bcs.set(n, Vec3::ZERO);
        }
        let red = apply_dirichlet(&k, &vec![0.0; k.nrows()], &bcs).expect("valid BC set");
        assert!(red.rhs.iter().all(|&v| v == 0.0));
        let full = red.expand_solution(&vec![0.0; red.free_dofs.len()]);
        assert!(full.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn expand_restores_prescribed_values() {
        let mesh = block_mesh(3);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let mut bcs = DirichletBcs::new();
        bcs.set(0, Vec3::new(1.0, 2.0, 3.0));
        let red = apply_dirichlet(&k, &vec![0.0; k.nrows()], &bcs).expect("valid BC set");
        let x = vec![0.5; red.free_dofs.len()];
        let full = red.expand_solution(&x);
        assert_eq!(full[0], 1.0);
        assert_eq!(full[1], 2.0);
        assert_eq!(full[2], 3.0);
        assert_eq!(full[3], 0.5);
    }

    #[test]
    fn reduced_matrix_stays_symmetric() {
        let mesh = block_mesh(3);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let mut bcs = DirichletBcs::new();
        for (i, &n) in boundary_nodes(&mesh).iter().enumerate() {
            if i % 2 == 0 {
                bcs.set(n, Vec3::new(0.1, 0.0, 0.0));
            }
        }
        let red = apply_dirichlet(&k, &vec![0.0; k.nrows()], &bcs).expect("valid BC set");
        assert!(red.matrix.asymmetry() < 1e-12);
    }

    #[test]
    fn nonzero_bc_contributes_to_rhs() {
        let mesh = block_mesh(3);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let mut bcs = DirichletBcs::new();
        bcs.set(0, Vec3::new(1.0, 0.0, 0.0));
        let red = apply_dirichlet(&k, &vec![0.0; k.nrows()], &bcs).expect("valid BC set");
        let rhs_norm: f64 = red.rhs.iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(rhs_norm > 0.0, "coupling to prescribed DOF must load the rhs");
    }

    #[test]
    fn rank_counts_reflect_surface_concentration() {
        // In a contiguous node ordering from our mesher, surface nodes are
        // *not* evenly spread across ranks — the paper's solve imbalance.
        let mesh = block_mesh(5);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let mut bcs = DirichletBcs::new();
        for &n in boundary_nodes(&mesh).iter() {
            bcs.set(n, Vec3::ZERO);
        }
        let red = apply_dirichlet(&k, &vec![0.0; k.nrows()], &bcs).expect("valid BC set");
        let offsets = brainshift_sparse::partition::even_offsets(k.nrows(), 4);
        let counts = red.rank_dof_counts(&offsets);
        let frees: Vec<usize> = counts.iter().map(|c| c.0).collect();
        let min = *frees.iter().min().unwrap();
        let max = *frees.iter().max().unwrap();
        assert!(max > min, "free DOFs unexpectedly uniform: {frees:?}");
        // Total conserved.
        let total: usize = counts.iter().map(|c| c.0 + c.1).sum();
        assert_eq!(total, k.nrows());
    }

    #[test]
    fn structure_splits_k_exactly() {
        // K_ff x_f + K_fc u_c must reproduce K u on the free rows for any
        // assignment of free/constrained values.
        let mesh = block_mesh(3);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let ndof = k.nrows();
        let surface = boundary_nodes(&mesh);
        let s = DirichletStructure::new(&k, &surface).expect("valid constrained set");
        assert_eq!(s.num_free() + s.num_constrained(), ndof);

        let full: Vec<f64> = (0..ndof).map(|d| ((d as f64) * 0.37).sin()).collect();
        let x_f: Vec<f64> = s.free_dofs.iter().map(|&d| full[d]).collect();
        let u_c: Vec<f64> = s.constrained_dofs.iter().map(|&d| full[d]).collect();

        let mut k_full = vec![0.0; ndof];
        k.spmv(&full, &mut k_full);
        let mut kff_x = vec![0.0; s.num_free()];
        s.matrix.spmv(&x_f, &mut kff_x);
        let mut kfc_u = vec![0.0; s.num_free()];
        s.coupling.spmv(&u_c, &mut kfc_u);
        for (i, &dof) in s.free_dofs.iter().enumerate() {
            assert!(
                (kff_x[i] + kfc_u[i] - k_full[dof]).abs() < 1e-10,
                "row {i}: split product diverges from full product"
            );
        }
    }

    #[test]
    fn structure_rhs_matches_apply_dirichlet() {
        let mesh = block_mesh(3);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let mut bcs = DirichletBcs::new();
        for (i, &n) in boundary_nodes(&mesh).iter().enumerate() {
            bcs.set(n, Vec3::new(0.1 * i as f64, -0.05, 0.02 * i as f64));
        }
        let red = apply_dirichlet(&k, &vec![0.0; k.nrows()], &bcs).expect("valid BC set");

        let s = DirichletStructure::new(&k, &bcs.nodes_sorted()).expect("valid constrained set");
        let mut u_c = vec![0.0; s.num_constrained()];
        s.gather_constrained(&bcs, &mut u_c).expect("complete BC values");
        let mut rhs = vec![0.0; s.num_free()];
        s.reduced_rhs_zero_f(&u_c, &mut rhs);
        assert_eq!(rhs.len(), red.rhs.len());
        for (a, b) in rhs.iter().zip(&red.rhs) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn expand_into_round_trips() {
        let mesh = block_mesh(3);
        let k = assemble_stiffness(&mesh, &MaterialTable::homogeneous());
        let surface = boundary_nodes(&mesh);
        let s = DirichletStructure::new(&k, &surface).expect("valid constrained set");
        let x: Vec<f64> = (0..s.num_free()).map(|i| i as f64).collect();
        let u: Vec<f64> = (0..s.num_constrained()).map(|i| -(i as f64)).collect();
        let mut full = vec![f64::NAN; k.nrows()];
        s.expand_solution_into(&x, &u, &mut full);
        for (i, &dof) in s.free_dofs.iter().enumerate() {
            assert_eq!(full[dof], i as f64);
        }
        for (ci, &dof) in s.constrained_dofs.iter().enumerate() {
            assert_eq!(full[dof], -(ci as f64));
        }
    }

    #[test]
    fn overwriting_bc_takes_last_value() {
        let mut bcs = DirichletBcs::new();
        bcs.set(3, Vec3::new(1.0, 1.0, 1.0));
        bcs.set(3, Vec3::new(2.0, 2.0, 2.0));
        assert_eq!(bcs.len(), 1);
        assert_eq!(bcs.get(3), Some(Vec3::new(2.0, 2.0, 2.0)));
    }
}
