//! Property tests of the per-scan classification hot path.
//!
//! The contract under test is the one `PreparedSurgery` leans on: an
//! incremental pass with `threshold == 0` is *bitwise identical* to a
//! full re-classification, no matter what threshold schedule, feature
//! drift, or mid-sequence prototype reseed the cache survived — and the
//! parallel slab classifier is bit-identical to the serial oracle, so the
//! result never depends on the worker thread count.

use brainshift_imaging::volume::{Dims, Spacing, Volume};
use brainshift_segment::{
    classify_matrix, classify_matrix_serial, classify_volume, classify_volume_incremental,
    FeatureStack, IncrementalCache, KdTree, Prototype,
};
use proptest::prelude::*;

/// Fixed test grid: big enough to span several classifier slabs' worth of
/// rows on any thread count, small enough to keep case counts high.
const DIMS: (usize, usize, usize) = (6, 5, 4);
const N_VOX: usize = DIMS.0 * DIMS.1 * DIMS.2;

/// Two-channel feature stack: a generated intensity channel plus a fixed
/// synthetic "distance" channel (static across scans, like the real
/// preoperative distance maps).
fn stack(intensity: &[f32]) -> FeatureStack {
    let dims = Dims::new(DIMS.0, DIMS.1, DIMS.2);
    let sp = Spacing::iso(1.0);
    let mut fs =
        FeatureStack::from_intensity(Volume::from_vec(dims, sp, intensity[..N_VOX].to_vec()));
    let aux = Volume::from_fn(dims, sp, |x, y, z| (x + 2 * y + 3 * z) as f32 * 0.25);
    fs.push_channel(aux, 0.75);
    fs
}

fn prototypes(raw: &[(f32, f32, u8)]) -> Vec<Prototype> {
    raw.iter().map(|&(a, b, l)| Prototype { features: vec![a, b], label: l }).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Carry one cache through an arbitrary scan sequence — drifting
    /// features, a mix of exact and lossy thresholds, and occasional
    /// prototype reseeds that invalidate the kd-tree mid-sequence. Every
    /// exact-mode scan must be bitwise identical to a full pass, and a
    /// reseeded tree must never be served from a stale exact-mode cache.
    #[test]
    fn exact_mode_matches_full_under_any_schedule(
        base in prop::collection::vec(-5.0f32..5.0, N_VOX),
        protos_raw in prop::collection::vec((-8.0f32..8.0, -8.0f32..8.0, 1u8..6), 3..24),
        scans in prop::collection::vec(
            // (threshold index, reseed prototypes?, per-voxel drift)
            (0usize..3, 0usize..4, prop::collection::vec(-0.6f32..0.6, N_VOX)),
            1..6,
        ),
        k in 1usize..6,
    ) {
        let thresholds = [0.0f32, 0.3, 1.5];
        let mut protos = prototypes(&protos_raw);
        let mut intensity = base;
        let mut cache: Option<IncrementalCache> = None;
        for (t_idx, reseed, drift) in &scans {
            if *reseed == 0 {
                // A reseeded prototype model: same labels, moved samples.
                for p in &mut protos {
                    p.features[0] += 0.37;
                }
            }
            for (v, d) in intensity.iter_mut().zip(drift) {
                *v += d;
            }
            let tree = KdTree::build(protos.clone()).expect("generated prototypes are valid");
            let fs = stack(&intensity);
            let threshold = thresholds[*t_idx];
            let had_cache = cache.is_some();
            let stale_tree = cache
                .as_ref()
                .is_some_and(|c| c.tree_fingerprint != tree.fingerprint());
            let inc = classify_volume_incremental(&fs, &tree, k, threshold, cache.take());
            prop_assert!(inc.reclassified <= inc.total);
            prop_assert_eq!(inc.total, N_VOX);
            if threshold == 0.0 {
                let full = classify_volume(&fs, &tree, k);
                prop_assert_eq!(inc.labels.data(), full.data());
                if had_cache && stale_tree {
                    prop_assert!(
                        !inc.used_cache,
                        "exact mode accepted a cache from a different kd-tree"
                    );
                }
            }
            cache = Some(inc.cache);
        }
    }

    /// Re-presenting the identical scan in exact mode touches zero voxels
    /// and reproduces the labels bit-for-bit.
    #[test]
    fn identical_rescan_reclassifies_nothing(
        base in prop::collection::vec(-5.0f32..5.0, N_VOX),
        protos_raw in prop::collection::vec((-8.0f32..8.0, -8.0f32..8.0, 1u8..6), 3..24),
        k in 1usize..6,
    ) {
        let tree = KdTree::build(prototypes(&protos_raw)).expect("generated prototypes are valid");
        let fs = stack(&base);
        let first = classify_volume_incremental(&fs, &tree, k, 0.0, None);
        prop_assert_eq!(first.reclassified, N_VOX);
        let second = classify_volume_incremental(&fs, &tree, k, 0.0, Some(first.cache));
        prop_assert!(second.used_cache);
        prop_assert_eq!(second.reclassified, 0);
        prop_assert_eq!(second.labels.data(), first.labels.data());
    }

    /// The parallel slab classifier equals the serial oracle bit-for-bit.
    /// Slab decomposition depends on the worker count, so this equality —
    /// checked under different `RAYON_NUM_THREADS` by the verify script —
    /// is the thread-count determinism guarantee.
    #[test]
    fn parallel_classification_matches_serial_oracle(
        base in prop::collection::vec(-5.0f32..5.0, N_VOX),
        protos_raw in prop::collection::vec((-8.0f32..8.0, -8.0f32..8.0, 1u8..6), 3..24),
        k in 1usize..8,
    ) {
        let tree = KdTree::build(prototypes(&protos_raw)).expect("generated prototypes are valid");
        let matrix = stack(&base).to_matrix();
        let par = classify_matrix(&matrix, &tree, k);
        let ser = classify_matrix_serial(&matrix, &tree, k);
        prop_assert_eq!(par.data(), ser.data());
    }
}
