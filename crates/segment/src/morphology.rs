//! Binary morphology on voxel masks.
//!
//! Segmentation cleanup: erosion/dilation with a 6-connected structuring
//! element, opening (despeckle) and closing (hole-fill). Used alongside
//! [`crate::classify::largest_component`] to produce the solid brain mask
//! the active surface targets.

use brainshift_imaging::Volume;

/// One 6-connected dilation step: a voxel becomes true if it or any face
/// neighbor is true.
pub fn dilate(mask: &Volume<bool>) -> Volume<bool> {
    let d = mask.dims();
    Volume::from_fn(d, mask.spacing(), |x, y, z| {
        if *mask.get(x, y, z) {
            return true;
        }
        let probes = [
            (x as i64 - 1, y as i64, z as i64),
            (x as i64 + 1, y as i64, z as i64),
            (x as i64, y as i64 - 1, z as i64),
            (x as i64, y as i64 + 1, z as i64),
            (x as i64, y as i64, z as i64 - 1),
            (x as i64, y as i64, z as i64 + 1),
        ];
        probes.iter().any(|&(px, py, pz)| mask.try_get(px, py, pz).copied().unwrap_or(false))
    })
}

/// One 6-connected erosion step: a voxel stays true only if it and all
/// face neighbors are true (volume borders count as false).
pub fn erode(mask: &Volume<bool>) -> Volume<bool> {
    let d = mask.dims();
    Volume::from_fn(d, mask.spacing(), |x, y, z| {
        if !*mask.get(x, y, z) {
            return false;
        }
        let probes = [
            (x as i64 - 1, y as i64, z as i64),
            (x as i64 + 1, y as i64, z as i64),
            (x as i64, y as i64 - 1, z as i64),
            (x as i64, y as i64 + 1, z as i64),
            (x as i64, y as i64, z as i64 - 1),
            (x as i64, y as i64, z as i64 + 1),
        ];
        probes.iter().all(|&(px, py, pz)| mask.try_get(px, py, pz).copied().unwrap_or(false))
    })
}

/// Morphological opening (`erode` then `dilate`, `radius` steps each):
/// removes protrusions and speckles smaller than the radius.
pub fn open(mask: &Volume<bool>, radius: usize) -> Volume<bool> {
    let mut m = mask.clone();
    for _ in 0..radius {
        m = erode(&m);
    }
    for _ in 0..radius {
        m = dilate(&m);
    }
    m
}

/// Morphological closing (`dilate` then `erode`, `radius` steps each):
/// fills holes and gaps smaller than the radius.
pub fn close(mask: &Volume<bool>, radius: usize) -> Volume<bool> {
    let mut m = mask.clone();
    for _ in 0..radius {
        m = dilate(&m);
    }
    for _ in 0..radius {
        m = erode(&m);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::volume::{Dims, Spacing};

    fn count(m: &Volume<bool>) -> usize {
        m.data().iter().filter(|&&b| b).count()
    }

    fn block(lo: usize, hi: usize) -> Volume<bool> {
        Volume::from_fn(Dims::new(12, 12, 12), Spacing::iso(1.0), move |x, y, z| {
            (lo..hi).contains(&x) && (lo..hi).contains(&y) && (lo..hi).contains(&z)
        })
    }

    #[test]
    fn dilate_grows_erode_shrinks() {
        let m = block(4, 8); // 4³ cube
        assert_eq!(count(&m), 64);
        let grown = dilate(&m);
        assert!(count(&grown) > 64);
        let shrunk = erode(&m);
        // 4³ erodes to 2³.
        assert_eq!(count(&shrunk), 8);
    }

    #[test]
    fn opening_is_anti_extensive_and_keeps_interior() {
        // Opening never adds voxels (open(M) ⊆ M) and preserves regions
        // thicker than the structuring element; with a 6-connected cross,
        // cube corners are sacrificed — that's the definition, not a bug.
        let m = block(3, 9);
        let opened = dilate(&erode(&m));
        for (orig, op) in m.data().iter().zip(opened.data()) {
            assert!(!op || *orig, "opening added a voxel");
        }
        // Face centres and interior survive.
        assert!(*opened.get(5, 5, 5));
        assert!(*opened.get(3, 5, 5));
        // A corner of the cube is removed by the cross element.
        assert!(!*opened.get(3, 3, 3));
    }

    #[test]
    fn opening_removes_speckle() {
        let mut m = block(4, 8);
        m.set(0, 0, 0, true); // isolated speckle
        m.set(11, 11, 11, true);
        let cleaned = open(&m, 1);
        assert!(!*cleaned.get(0, 0, 0));
        assert!(!*cleaned.get(11, 11, 11));
        // The main block survives (shrunk corners are acceptable for a
        // 6-connected element; interior must remain).
        assert!(*cleaned.get(5, 5, 5));
    }

    #[test]
    fn closing_fills_hole() {
        let mut m = block(3, 9);
        m.set(5, 5, 5, false); // interior hole
        let closed = close(&m, 1);
        assert!(*closed.get(5, 5, 5));
        assert!(count(&closed) >= count(&m));
    }

    #[test]
    fn border_voxels_erode_away() {
        // A mask touching the border erodes there (outside counts false).
        let m = Volume::from_fn(Dims::new(6, 6, 6), Spacing::iso(1.0), |_, _, _| true);
        let e = erode(&m);
        assert!(!*e.get(0, 0, 0));
        assert!(*e.get(3, 3, 3));
        assert_eq!(count(&e), 4 * 4 * 4);
    }

    #[test]
    fn empty_and_full_are_fixed_points_of_open_close_interior() {
        let empty: Volume<bool> = Volume::filled(Dims::new(5, 5, 5), Spacing::iso(1.0), false);
        assert_eq!(count(&open(&empty, 2)), 0);
        assert_eq!(count(&close(&empty, 2)), 0);
    }
}
