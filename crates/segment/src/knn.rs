//! k-nearest-neighbour classification with a kd-tree.
//!
//! The paper segments intraoperative data "with k-NN classification, a
//! standard classification method which computes the type of tissue
//! present at each voxel by comparing the signal of the voxel to classify
//! with the signal of previously selected prototype voxels of known
//! tissue type". Feature vectors combine MR intensity with the saturated
//! distance transforms of the preoperative tissue models.
//!
//! # Layout
//!
//! The tree is stored structure-of-arrays: inner nodes are parallel
//! `split_axis`/`split_val`/`left`/`right` vectors, and prototypes live
//! in contiguous leaf blocks of up to [`LEAF_SIZE`] points. Each leaf
//! block is *transposed* (dimension-major), so the distance from a query
//! to every point in the leaf is accumulated one axis at a time over a
//! contiguous `f32` run — a branchless loop the compiler vectorizes.
//! Search is iterative over an explicit stack held in [`KnnScratch`];
//! a warm query performs no allocation.
//!
//! # Determinism
//!
//! Candidates are ordered by `(distance², original prototype index)` and
//! the far side of a split is descended whenever the splitting plane is
//! *no farther* than the current k-th candidate, so the returned
//! neighbour set is a pure function of the prototype multiset — it does
//! not depend on build order or traversal order. Votes break ties by
//! lowest label id (see [`KdTree::classify`]).

use crate::error::SegmentError;

/// A labeled training sample in feature space.
#[derive(Debug, Clone)]
pub struct Prototype {
    /// Feature-space coordinates.
    pub features: Vec<f32>,
    /// Tissue class of this prototype.
    pub label: u8,
}

/// Maximum number of prototypes per leaf block.
pub const LEAF_SIZE: usize = 32;

/// High bit of a node reference marks it as a leaf id.
const LEAF_FLAG: u32 = 1 << 31;

/// Reusable per-thread query state: traversal stack, candidate list and
/// leaf distance buffer. One scratch per worker thread turns the per-voxel
/// k-NN query into a zero-allocation operation.
#[derive(Debug, Default)]
pub struct KnnScratch {
    /// DFS stack of `(node ref, plane distance² at push time)`.
    stack: Vec<(u32, f32)>,
    /// Current best candidates, ascending by `(distance², prototype idx)`.
    best: Vec<(f32, u32)>,
    /// Per-slot accumulated distances for the leaf being scanned.
    dist: Vec<f32>,
    /// Leaf blocks scanned since construction (or the last reset);
    /// accumulates across queries so callers can report traversal cost.
    pub leaf_visits: u64,
}

impl KnnScratch {
    /// A fresh scratch with empty buffers.
    pub fn new() -> KnnScratch {
        KnnScratch::default()
    }

    /// The candidates found by the last `k_nearest_into` call, ascending
    /// by `(distance², prototype index)`.
    pub fn neighbors(&self) -> &[(f32, u32)] {
        &self.best
    }
}

/// A kd-tree over prototypes for fast k-NN queries.
pub struct KdTree {
    dim: usize,
    /// Labels in original prototype order.
    labels: Vec<u8>,
    /// Features in original prototype order, row-major `n × dim`.
    feats: Vec<f32>,
    /// Inner-node split axes (parallel to `split_val`/`left`/`right`).
    split_axis: Vec<u32>,
    /// Inner-node split values: left subtree ≤ value ≤ right subtree.
    split_val: Vec<f32>,
    /// Child refs; `LEAF_FLAG` bit set ⇒ index into the leaf arrays.
    left: Vec<u32>,
    right: Vec<u32>,
    /// Per-leaf start slot into `leaf_index` (slots are contiguous).
    leaf_start: Vec<u32>,
    /// Per-leaf point count (≤ `LEAF_SIZE`).
    leaf_len: Vec<u32>,
    /// Original prototype index per leaf slot.
    leaf_index: Vec<u32>,
    /// Transposed (dimension-major) feature blocks, one per leaf: the
    /// block for leaf `j` starts at `leaf_start[j] * dim` and holds
    /// `leaf_len[j]` values per axis.
    leaf_feats: Vec<f32>,
    root: u32,
    fingerprint: u64,
}

impl KdTree {
    /// Build from prototypes (all must share the same nonzero
    /// dimensionality and carry finite features).
    pub fn build(prototypes: Vec<Prototype>) -> Result<KdTree, SegmentError> {
        if prototypes.is_empty() {
            return Err(SegmentError::EmptyPrototypeSet);
        }
        let dim = prototypes[0].features.len();
        if dim == 0 {
            return Err(SegmentError::EmptyFeatureVector { index: 0 });
        }
        for (index, p) in prototypes.iter().enumerate() {
            if p.features.len() != dim {
                return Err(SegmentError::InconsistentFeatureDim {
                    expected: dim,
                    got: p.features.len(),
                    index,
                });
            }
            for (axis, &v) in p.features.iter().enumerate() {
                if !v.is_finite() {
                    return Err(SegmentError::NonFiniteFeature { index, axis });
                }
            }
        }
        let n = prototypes.len();
        let mut labels = Vec::with_capacity(n);
        let mut feats = Vec::with_capacity(n * dim);
        for p in &prototypes {
            labels.push(p.label);
            feats.extend_from_slice(&p.features);
        }
        let fingerprint = fingerprint_of(dim, &labels, &feats);
        let mut tree = KdTree {
            dim,
            labels,
            feats,
            split_axis: Vec::new(),
            split_val: Vec::new(),
            left: Vec::new(),
            right: Vec::new(),
            leaf_start: Vec::new(),
            leaf_len: Vec::new(),
            leaf_index: Vec::new(),
            leaf_feats: Vec::new(),
            root: 0,
            fingerprint,
        };
        let mut order: Vec<u32> = (0..n as u32).collect();
        tree.root = tree.build_node(&mut order);
        Ok(tree)
    }

    /// Recursive median build; returns the subtree's node ref. Splitting
    /// at the exact median halves the slice each level, so both children
    /// are always nonempty and depth is `O(log n)`.
    fn build_node(&mut self, order: &mut [u32]) -> u32 {
        if order.len() <= LEAF_SIZE {
            // Leaf slots keep ascending original order: the layout of a
            // tree is then fully determined by the prototype list.
            order.sort_unstable();
            let leaf = self.leaf_start.len() as u32;
            let start = self.leaf_index.len();
            self.leaf_start.push(start as u32);
            self.leaf_len.push(order.len() as u32);
            self.leaf_index.extend_from_slice(order);
            for axis in 0..self.dim {
                for &i in order.iter() {
                    self.leaf_feats.push(self.feats[i as usize * self.dim + axis]);
                }
            }
            return leaf | LEAF_FLAG;
        }
        // Split along the widest axis of this point set (ties → lowest
        // axis): splitting planes then separate where the data actually
        // spreads, which prunes far better than cycling axes by depth.
        // Min/max per axis are multiset properties, so the tree's search
        // behaviour stays a pure function of the prototype multiset.
        let mut axis = 0usize;
        let mut best_spread = f32::NEG_INFINITY;
        for a in 0..self.dim {
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for &i in order.iter() {
                let v = self.feats[i as usize * self.dim + a];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let spread = hi - lo;
            if spread > best_spread {
                best_spread = spread;
                axis = a;
            }
        }
        let mid = order.len() / 2;
        let feats = &self.feats;
        let dim = self.dim;
        order.select_nth_unstable_by(mid, |&a, &b| {
            feats[a as usize * dim + axis].total_cmp(&feats[b as usize * dim + axis])
        });
        let split_val = self.feats[order[mid] as usize * self.dim + axis];
        let node = self.split_axis.len();
        self.split_axis.push(axis as u32);
        self.split_val.push(split_val);
        self.left.push(0);
        self.right.push(0);
        let (lo, hi) = order.split_at_mut(mid);
        let l = self.build_node(lo);
        let r = self.build_node(hi);
        self.left[node] = l;
        self.right[node] = r;
        node as u32
    }

    /// Number of prototypes in the tree.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the tree holds no prototypes (unreachable after a
    /// successful [`KdTree::build`], kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature-space dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Label of the `i`-th prototype (original insertion order).
    pub fn label(&self, i: usize) -> u8 {
        self.labels[i]
    }

    /// Features of the `i`-th prototype (original insertion order).
    pub fn feature(&self, i: usize) -> &[f32] {
        &self.feats[i * self.dim..(i + 1) * self.dim]
    }

    /// FNV-1a hash of the training set (dimensionality, labels, feature
    /// bit patterns in original order). Two trees with equal fingerprints
    /// classify identically; the incremental re-classification cache uses
    /// this to detect prototype-model drift between scans.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The `k` nearest prototypes to `query` (squared Euclidean), as
    /// `(distance², prototype index)` sorted nearest-first, breaking
    /// distance ties by lowest prototype index.
    pub fn k_nearest(&self, query: &[f32], k: usize) -> Vec<(f32, usize)> {
        let mut scratch = KnnScratch::new();
        self.k_nearest_into(&mut scratch, query, k);
        scratch.best.iter().map(|&(d, i)| (d, i as usize)).collect()
    }

    /// Allocation-free k-NN: fills `scratch.neighbors()` with the `k`
    /// nearest prototypes, reusing the scratch's buffers.
    pub fn k_nearest_into(&self, scratch: &mut KnnScratch, query: &[f32], k: usize) {
        debug_assert_eq!(query.len(), self.dim);
        let k = k.min(self.len()).max(1);
        scratch.best.clear();
        scratch.stack.clear();
        scratch.stack.push((self.root, 0.0));
        while let Some((start, plane_d2)) = scratch.stack.pop() {
            // The k-th distance may have shrunk since this subtree was
            // deferred; re-check before descending. `>` (not `>=`) keeps
            // plane-distance ties visited so equal-distance candidates
            // with lower prototype indices are never pruned away.
            if scratch.best.len() == k && plane_d2 > kth_d2(&scratch.best) {
                continue;
            }
            let mut node = start;
            // Walk the near side iteratively, deferring far sides.
            loop {
                if node & LEAF_FLAG != 0 {
                    self.scan_leaf((node & !LEAF_FLAG) as usize, query, k, scratch);
                    break;
                }
                let i = node as usize;
                let axis = self.split_axis[i] as usize;
                let delta = query[axis] - self.split_val[i];
                let (near, far) = if delta < 0.0 {
                    (self.left[i], self.right[i])
                } else {
                    (self.right[i], self.left[i])
                };
                let far_d2 = delta * delta;
                if scratch.best.len() < k || far_d2 <= kth_d2(&scratch.best) {
                    scratch.stack.push((far, far_d2));
                }
                node = near;
            }
        }
    }

    /// Accumulate distances over one transposed leaf block and merge the
    /// slots into the candidate list.
    fn scan_leaf(&self, leaf: usize, query: &[f32], k: usize, scratch: &mut KnnScratch) {
        let start = self.leaf_start[leaf] as usize;
        let len = self.leaf_len[leaf] as usize;
        let block = &self.leaf_feats[start * self.dim..start * self.dim + len * self.dim];
        scratch.dist.clear();
        scratch.dist.resize(len, 0.0);
        // Dimension-major accumulation: each axis contributes a straight
        // contiguous fused multiply-add pass over the block row.
        for (axis, &q) in query.iter().enumerate() {
            let row = &block[axis * len..(axis + 1) * len];
            for (d, &v) in scratch.dist.iter_mut().zip(row) {
                let t = v - q;
                *d += t * t;
            }
        }
        scratch.leaf_visits += 1;
        for slot in 0..len {
            let d2 = scratch.dist[slot];
            let idx = self.leaf_index[start + slot];
            // Fast reject on the common path: once the list is full, a
            // candidate ordered after the current k-th — strictly farther,
            // or equal with a higher index — can never be inserted
            // (`push_candidate` would land it at position `k`).
            if scratch.best.len() == k {
                let (kd, ki) = scratch.best[k - 1];
                if d2 > kd || (d2 == kd && idx > ki) {
                    continue;
                }
            }
            push_candidate(&mut scratch.best, k, d2, idx);
        }
    }

    /// Classify by majority vote among the `k` nearest prototypes.
    ///
    /// Ties are broken deterministically: among the top-voted classes the
    /// **lowest label id wins**. The result is a pure function of the
    /// neighbour *set*, which itself is a pure function of the prototype
    /// multiset (see the module docs on determinism).
    pub fn classify(&self, query: &[f32], k: usize) -> u8 {
        let mut scratch = KnnScratch::new();
        self.classify_with(&mut scratch, query, k)
    }

    /// Allocation-free [`KdTree::classify`] reusing a scratch buffer.
    pub fn classify_with(&self, scratch: &mut KnnScratch, query: &[f32], k: usize) -> u8 {
        self.k_nearest_into(scratch, query, k);
        // Tally over the ≤ k distinct labels actually present — for the
        // usual small k this beats zeroing a 256-bin histogram per voxel.
        if scratch.best.len() <= 16 {
            let mut labs = [0u8; 16];
            let mut cnts = [0u32; 16];
            let mut n = 0usize;
            for &(_, idx) in &scratch.best {
                let l = self.labels[idx as usize];
                match labs[..n].iter().position(|&x| x == l) {
                    Some(p) => cnts[p] += 1,
                    None => {
                        labs[n] = l;
                        cnts[n] = 1;
                        n += 1;
                    }
                }
            }
            let mut best_label = labs[0];
            let mut best_count = cnts[0];
            for i in 1..n {
                // Lowest label id wins count ties, as in the histogram scan.
                if cnts[i] > best_count || (cnts[i] == best_count && labs[i] < best_label) {
                    best_count = cnts[i];
                    best_label = labs[i];
                }
            }
            return best_label;
        }
        let mut counts: [u32; 256] = [0; 256];
        for &(_, idx) in &scratch.best {
            counts[self.labels[idx as usize] as usize] += 1;
        }
        // Strict `>` keeps the first (lowest) label among tied counts.
        let mut best_label = 0u8;
        let mut best_count = 0u32;
        for (label, &count) in counts.iter().enumerate() {
            if count > best_count {
                best_count = count;
                best_label = label as u8;
            }
        }
        best_label
    }
}

/// Current k-th (worst kept) squared distance.
#[inline]
fn kth_d2(best: &[(f32, u32)]) -> f32 {
    match best.last() {
        Some(&(d, _)) => d,
        None => f32::INFINITY,
    }
}

/// Insert `(d2, idx)` into the ascending candidate list, keeping at most
/// `k` entries ordered by `(distance², prototype index)`.
#[inline]
fn push_candidate(best: &mut Vec<(f32, u32)>, k: usize, d2: f32, idx: u32) {
    let pos = best.partition_point(|&(d, i)| d < d2 || (d == d2 && i < idx));
    if pos < k {
        if best.len() == k {
            best.pop();
        }
        best.insert(pos, (d2, idx));
    }
}

/// FNV-1a over the training set's structure and bit patterns.
fn fingerprint_of(dim: usize, labels: &[u8], feats: &[f32]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(PRIME);
    };
    for b in (labels.len() as u64).to_le_bytes() {
        eat(b);
    }
    for b in (dim as u64).to_le_bytes() {
        eat(b);
    }
    for &l in labels {
        eat(l);
    }
    for &f in feats {
        for b in f.to_bits().to_le_bytes() {
            eat(b);
        }
    }
    h
}

/// Brute-force k-NN for testing, using the same `(distance², index)`
/// candidate order as the tree.
pub fn k_nearest_brute(protos: &[Prototype], query: &[f32], k: usize) -> Vec<(f32, usize)> {
    let mut d: Vec<(f32, usize)> = protos
        .iter()
        .enumerate()
        .map(|(i, p)| {
            (
                p.features.iter().zip(query).map(|(a, b)| (a - b) * (a - b)).sum(),
                i,
            )
        })
        .collect();
    d.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    d.truncate(k.min(protos.len()));
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_protos(n: usize, dim: usize, seed: u64) -> Vec<Prototype> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Prototype {
                features: (0..dim).map(|_| rng.gen_range(-10.0f32..10.0)).collect(),
                label: rng.gen_range(0..4),
            })
            .collect()
    }

    #[test]
    fn kdtree_matches_brute_force_including_indices() {
        let protos = random_protos(300, 4, 1);
        let tree = KdTree::build(protos.clone()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let q: Vec<f32> = (0..4).map(|_| rng.gen_range(-12.0f32..12.0)).collect();
            let fast = tree.k_nearest(&q, 5);
            let brute = k_nearest_brute(&protos, &q, 5);
            assert_eq!(fast.len(), brute.len());
            for (f, b) in fast.iter().zip(&brute) {
                assert!((f.0 - b.0).abs() < 1e-5, "distances differ: {} vs {}", f.0, b.0);
                assert_eq!(f.1, b.1, "indices differ");
            }
        }
    }

    #[test]
    fn duplicate_points_resolve_by_lowest_index() {
        // Many exact duplicates: the neighbour list must prefer lower
        // original indices, regardless of where the tree stored them.
        let protos: Vec<Prototype> = (0..100)
            .map(|i| Prototype { features: vec![1.0, 2.0, 3.0], label: (i % 5) as u8 })
            .collect();
        let tree = KdTree::build(protos).unwrap();
        let nn = tree.k_nearest(&[1.0, 2.0, 3.0], 7);
        let idx: Vec<usize> = nn.iter().map(|&(_, i)| i).collect();
        assert_eq!(idx, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn exact_match_is_nearest() {
        let protos = random_protos(100, 3, 3);
        let tree = KdTree::build(protos.clone()).unwrap();
        for i in [0usize, 17, 99] {
            let nn = tree.k_nearest(&protos[i].features, 1);
            assert_eq!(nn[0].0, 0.0);
            assert_eq!(tree.label(nn[0].1), protos[i].label);
        }
    }

    #[test]
    fn classify_separable_clusters() {
        // Two well-separated Gaussian-ish clusters.
        let mut protos = Vec::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..50 {
            protos.push(Prototype {
                features: vec![rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)],
                label: 0,
            });
            protos.push(Prototype {
                features: vec![10.0 + rng.gen_range(-1.0f32..1.0), 10.0 + rng.gen_range(-1.0f32..1.0)],
                label: 1,
            });
        }
        let tree = KdTree::build(protos).unwrap();
        assert_eq!(tree.classify(&[0.0, 0.0], 5), 0);
        assert_eq!(tree.classify(&[10.0, 10.0], 5), 1);
        assert_eq!(tree.classify(&[9.0, 11.0], 3), 1);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let protos = random_protos(3, 2, 5);
        let tree = KdTree::build(protos).unwrap();
        let nn = tree.k_nearest(&[0.0, 0.0], 10);
        assert_eq!(nn.len(), 3);
    }

    #[test]
    fn vote_tie_is_independent_of_insertion_order() {
        // Four prototypes all exactly distance 1 from the query: a 2-2
        // vote tie between labels 3 and 1. Whatever order the tree stores
        // them in, the lowest label id must win.
        let protos = vec![
            Prototype { features: vec![1.0, 0.0], label: 3 },
            Prototype { features: vec![-1.0, 0.0], label: 3 },
            Prototype { features: vec![0.0, 1.0], label: 1 },
            Prototype { features: vec![0.0, -1.0], label: 1 },
        ];
        let forward = KdTree::build(protos.clone()).unwrap();
        let mut reversed_protos = protos;
        reversed_protos.reverse();
        let reversed = KdTree::build(reversed_protos).unwrap();
        assert_eq!(forward.classify(&[0.0, 0.0], 4), 1);
        assert_eq!(reversed.classify(&[0.0, 0.0], 4), 1);
    }

    #[test]
    fn single_prototype() {
        let tree = KdTree::build(vec![Prototype { features: vec![1.0, 2.0], label: 7 }]).unwrap();
        assert_eq!(tree.classify(&[0.0, 0.0], 3), 7);
    }

    #[test]
    fn scratch_reuse_is_stateless_across_queries() {
        let protos = random_protos(400, 3, 6);
        let tree = KdTree::build(protos.clone()).unwrap();
        let mut scratch = KnnScratch::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let q: Vec<f32> = (0..3).map(|_| rng.gen_range(-12.0f32..12.0)).collect();
            tree.k_nearest_into(&mut scratch, &q, 5);
            let shared: Vec<(f32, usize)> =
                scratch.neighbors().iter().map(|&(d, i)| (d, i as usize)).collect();
            assert_eq!(shared, k_nearest_brute(&protos, &q, 5));
        }
        assert!(scratch.leaf_visits >= 100, "every query scans at least one leaf");
    }

    #[test]
    fn build_errors_are_typed() {
        assert_eq!(KdTree::build(Vec::new()).err(), Some(SegmentError::EmptyPrototypeSet));
        assert_eq!(
            KdTree::build(vec![Prototype { features: vec![], label: 0 }]).err(),
            Some(SegmentError::EmptyFeatureVector { index: 0 })
        );
        assert_eq!(
            KdTree::build(vec![
                Prototype { features: vec![1.0], label: 0 },
                Prototype { features: vec![1.0, 2.0], label: 1 },
            ])
            .err(),
            Some(SegmentError::InconsistentFeatureDim { expected: 1, got: 2, index: 1 })
        );
        assert_eq!(
            KdTree::build(vec![Prototype { features: vec![1.0, f32::NAN], label: 0 }]).err(),
            Some(SegmentError::NonFiniteFeature { index: 0, axis: 1 })
        );
    }

    #[test]
    fn fingerprint_tracks_training_set_changes() {
        let protos = random_protos(64, 3, 8);
        let a = KdTree::build(protos.clone()).unwrap();
        let b = KdTree::build(protos.clone()).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
        let mut perturbed = protos.clone();
        perturbed[10].features[1] += 1e-4;
        let c = KdTree::build(perturbed).unwrap();
        assert_ne!(a.fingerprint(), c.fingerprint());
        let mut relabeled = protos;
        relabeled[3].label ^= 1;
        let d = KdTree::build(relabeled).unwrap();
        assert_ne!(a.fingerprint(), d.fingerprint());
    }
}
