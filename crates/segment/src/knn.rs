//! k-nearest-neighbour classification with a kd-tree.
//!
//! The paper segments intraoperative data "with k-NN classification, a
//! standard classification method which computes the type of tissue
//! present at each voxel by comparing the signal of the voxel to classify
//! with the signal of previously selected prototype voxels of known
//! tissue type". Feature vectors combine MR intensity with the saturated
//! distance transforms of the preoperative tissue models.

/// A labeled training sample in feature space.
#[derive(Debug, Clone)]
pub struct Prototype {
    /// Feature-space coordinates.
    pub features: Vec<f32>,
    /// Tissue class of this prototype.
    pub label: u8,
}

/// A kd-tree over prototypes for fast k-NN queries.
pub struct KdTree {
    dim: usize,
    /// Flattened nodes: prototypes reordered during construction.
    prototypes: Vec<Prototype>,
    /// Tree topology: nodes[i] = (split_dim, left, right) with `usize::MAX`
    /// for leaves' children; node i splits at prototypes[i].
    nodes: Vec<(usize, usize, usize)>,
    root: usize,
}

impl KdTree {
    /// Build from prototypes (all must share the same dimensionality).
    pub fn build(mut prototypes: Vec<Prototype>) -> KdTree {
        assert!(!prototypes.is_empty(), "need at least one prototype");
        let dim = prototypes[0].features.len();
        assert!(dim > 0);
        assert!(prototypes.iter().all(|p| p.features.len() == dim), "inconsistent dims");
        let n = prototypes.len();
        let mut order: Vec<usize> = (0..n).collect();
        let mut nodes = vec![(0usize, usize::MAX, usize::MAX); n];
        // Recursive median build over an index slice; returns subtree root.
        fn build_rec(
            protos: &[Prototype],
            order: &mut [usize],
            nodes: &mut [(usize, usize, usize)],
            depth: usize,
            dim: usize,
        ) -> usize {
            let axis = depth % dim;
            let mid = order.len() / 2;
            order.select_nth_unstable_by(mid, |&a, &b| {
                protos[a].features[axis]
                    .partial_cmp(&protos[b].features[axis])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let root = order[mid];
            nodes[root].0 = axis;
            let (left, rest) = order.split_at_mut(mid);
            let right = &mut rest[1..];
            nodes[root].1 = if left.is_empty() {
                usize::MAX
            } else {
                build_rec(protos, left, nodes, depth + 1, dim)
            };
            nodes[root].2 = if right.is_empty() {
                usize::MAX
            } else {
                build_rec(protos, right, nodes, depth + 1, dim)
            };
            root
        }
        let root = build_rec(&prototypes, &mut order, &mut nodes, 0, dim);
        // Keep prototypes in original order; nodes index into them.
        let _ = &mut prototypes;
        KdTree { dim, prototypes, nodes, root }
    }

    /// Number of prototypes in the tree.
    pub fn len(&self) -> usize {
        self.prototypes.len()
    }

    /// True when the tree holds no prototypes.
    pub fn is_empty(&self) -> bool {
        self.prototypes.is_empty()
    }

    /// The `k` nearest prototypes to `query` (squared Euclidean), as
    /// `(distance², prototype index)` sorted nearest-first.
    pub fn k_nearest(&self, query: &[f32], k: usize) -> Vec<(f32, usize)> {
        assert_eq!(query.len(), self.dim);
        let k = k.min(self.len()).max(1);
        // Bounded max-heap as a sorted vec (k is small: the paper's k-NN
        // uses single-digit k).
        let mut best: Vec<(f32, usize)> = Vec::with_capacity(k + 1);
        self.search(self.root, query, k, &mut best);
        best
    }

    fn search(&self, node: usize, query: &[f32], k: usize, best: &mut Vec<(f32, usize)>) {
        if node == usize::MAX {
            return;
        }
        let (axis, left, right) = self.nodes[node];
        let p = &self.prototypes[node];
        let d2: f32 = p
            .features
            .iter()
            .zip(query)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let pos = best.partition_point(|&(d, _)| d < d2);
        if best.len() < k || pos < k {
            best.insert(pos, (d2, node));
            best.truncate(k);
        }
        let delta = query[axis] - p.features[axis];
        let (near, far) = if delta < 0.0 { (left, right) } else { (right, left) };
        self.search(near, query, k, best);
        // Prune: only descend the far side if the splitting plane is
        // closer than the current k-th distance.
        if best.len() < k || delta * delta < best.last().unwrap().0 {
            self.search(far, query, k, best);
        }
    }

    /// Classify by majority vote among the `k` nearest prototypes.
    ///
    /// Ties are broken deterministically: among the top-voted classes the
    /// **lowest label id wins**. The result is a pure function of the
    /// neighbour *set* — the previous "nearest-first" rule walked the
    /// candidate list in its stored order, and equal-distance prototypes
    /// land in that list in tree-traversal order, so the winning label
    /// could flip when the same prototypes were inserted in a different
    /// order.
    pub fn classify(&self, query: &[f32], k: usize) -> u8 {
        let nn = self.k_nearest(query, k);
        let mut counts: [u32; 256] = [0; 256];
        for &(_, idx) in &nn {
            counts[self.prototypes[idx].label as usize] += 1;
        }
        let top = counts.iter().copied().max().unwrap_or(0);
        counts
            .iter()
            .position(|&c| c > 0 && c == top)
            .map(|l| l as u8)
            .unwrap_or_else(|| self.prototypes[nn[0].1].label)
    }

    /// The `i`-th prototype (indices from [`KdTree::k_nearest`]).
    pub fn prototype(&self, i: usize) -> &Prototype {
        &self.prototypes[i]
    }
}

/// Brute-force k-NN for testing.
pub fn k_nearest_brute(protos: &[Prototype], query: &[f32], k: usize) -> Vec<(f32, usize)> {
    let mut d: Vec<(f32, usize)> = protos
        .iter()
        .enumerate()
        .map(|(i, p)| {
            (
                p.features.iter().zip(query).map(|(a, b)| (a - b) * (a - b)).sum(),
                i,
            )
        })
        .collect();
    d.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    d.truncate(k.min(protos.len()));
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn random_protos(n: usize, dim: usize, seed: u64) -> Vec<Prototype> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Prototype {
                features: (0..dim).map(|_| rng.gen_range(-10.0f32..10.0)).collect(),
                label: rng.gen_range(0..4),
            })
            .collect()
    }

    #[test]
    fn kdtree_matches_brute_force() {
        let protos = random_protos(300, 4, 1);
        let tree = KdTree::build(protos.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let q: Vec<f32> = (0..4).map(|_| rng.gen_range(-12.0f32..12.0)).collect();
            let fast = tree.k_nearest(&q, 5);
            let brute = k_nearest_brute(&protos, &q, 5);
            for (f, b) in fast.iter().zip(&brute) {
                assert!((f.0 - b.0).abs() < 1e-5, "distances differ: {} vs {}", f.0, b.0);
            }
        }
    }

    #[test]
    fn exact_match_is_nearest() {
        let protos = random_protos(100, 3, 3);
        let tree = KdTree::build(protos.clone());
        for i in [0usize, 17, 99] {
            let nn = tree.k_nearest(&protos[i].features, 1);
            assert_eq!(nn[0].0, 0.0);
            assert_eq!(tree.prototype(nn[0].1).label, protos[i].label);
        }
    }

    #[test]
    fn classify_separable_clusters() {
        // Two well-separated Gaussian-ish clusters.
        let mut protos = Vec::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..50 {
            protos.push(Prototype {
                features: vec![rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)],
                label: 0,
            });
            protos.push(Prototype {
                features: vec![10.0 + rng.gen_range(-1.0f32..1.0), 10.0 + rng.gen_range(-1.0f32..1.0)],
                label: 1,
            });
        }
        let tree = KdTree::build(protos);
        assert_eq!(tree.classify(&[0.0, 0.0], 5), 0);
        assert_eq!(tree.classify(&[10.0, 10.0], 5), 1);
        assert_eq!(tree.classify(&[9.0, 11.0], 3), 1);
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let protos = random_protos(3, 2, 5);
        let tree = KdTree::build(protos);
        let nn = tree.k_nearest(&[0.0, 0.0], 10);
        assert_eq!(nn.len(), 3);
    }

    #[test]
    fn vote_tie_is_independent_of_insertion_order() {
        // Four prototypes all exactly distance 1 from the query: a 2-2
        // vote tie between labels 3 and 1. Whatever order the tree stores
        // them in, the lowest label id must win.
        let protos = vec![
            Prototype { features: vec![1.0, 0.0], label: 3 },
            Prototype { features: vec![-1.0, 0.0], label: 3 },
            Prototype { features: vec![0.0, 1.0], label: 1 },
            Prototype { features: vec![0.0, -1.0], label: 1 },
        ];
        let forward = KdTree::build(protos.clone());
        let mut reversed_protos = protos;
        reversed_protos.reverse();
        let reversed = KdTree::build(reversed_protos);
        assert_eq!(forward.classify(&[0.0, 0.0], 4), 1);
        assert_eq!(reversed.classify(&[0.0, 0.0], 4), 1);
    }

    #[test]
    fn single_prototype() {
        let tree = KdTree::build(vec![Prototype { features: vec![1.0, 2.0], label: 7 }]);
        assert_eq!(tree.classify(&[0.0, 0.0], 3), 7);
    }

    #[test]
    #[should_panic]
    fn empty_build_panics() {
        KdTree::build(Vec::new());
    }

    #[test]
    #[should_panic]
    fn inconsistent_dims_panic() {
        KdTree::build(vec![
            Prototype { features: vec![1.0], label: 0 },
            Prototype { features: vec![1.0, 2.0], label: 1 },
        ]);
    }
}
