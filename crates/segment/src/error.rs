//! Typed errors for the segmentation layer.
//!
//! Classifier construction used to `assert!` on malformed training data,
//! which turns a bad prototype set (an empty model, a site list with
//! mixed dimensionality, a NaN feature picked up from a corrupted scan)
//! into an intraoperative panic. These are input-validation failures and
//! are reported as values, matching the errors-vs-panics policy of the
//! sparse/FEM/mesh layers.

use std::fmt;

/// A structural violation in classifier training data.
#[derive(Debug, Clone, PartialEq)]
pub enum SegmentError {
    /// A k-NN model was requested over zero prototypes.
    EmptyPrototypeSet,
    /// A prototype's feature vector has zero length.
    EmptyFeatureVector {
        /// Offending prototype index.
        index: usize,
    },
    /// A prototype's dimensionality disagrees with the first prototype's.
    InconsistentFeatureDim {
        /// Dimensionality of prototype 0.
        expected: usize,
        /// Dimensionality found.
        got: usize,
        /// Offending prototype index.
        index: usize,
    },
    /// A feature value is NaN or infinite, so it cannot be ordered along
    /// a kd-tree split axis (and would poison every distance it enters).
    NonFiniteFeature {
        /// Offending prototype index.
        index: usize,
        /// Offending feature axis.
        axis: usize,
    },
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::EmptyPrototypeSet => {
                write!(f, "k-NN model requires at least one prototype")
            }
            SegmentError::EmptyFeatureVector { index } => {
                write!(f, "prototype {index} has an empty feature vector")
            }
            SegmentError::InconsistentFeatureDim { expected, got, index } => write!(
                f,
                "prototype {index} has {got} feature(s), expected {expected}"
            ),
            SegmentError::NonFiniteFeature { index, axis } => {
                write!(f, "prototype {index} has a non-finite feature on axis {axis}")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_describe_the_violation() {
        assert!(SegmentError::EmptyPrototypeSet.to_string().contains("at least one"));
        let e = SegmentError::InconsistentFeatureDim { expected: 4, got: 2, index: 7 };
        assert!(e.to_string().contains("prototype 7"));
        assert!(e.to_string().contains("expected 4"));
        let e = SegmentError::NonFiniteFeature { index: 3, axis: 1 };
        assert!(e.to_string().contains("non-finite"));
    }
}
