//! # brainshift-segment
//!
//! Intraoperative tissue classification: the paper's k-NN segmentation
//! over a multichannel feature space (MR intensity + saturated distance
//! transforms of the registered preoperative tissue models), with
//! prototype-voxel statistical models that update automatically across
//! scans, plus morphological cleanup utilities.

#![warn(missing_docs)]

pub mod classify;
pub mod confusion;
pub mod features;
pub mod gaussian;
pub mod knn;
pub mod morphology;
pub mod prototypes;

pub use confusion::ConfusionMatrix;
pub use classify::{dice, largest_component, segment_intraop, segment_intraop_with_model, SegmentConfig};
pub use features::FeatureStack;
pub use gaussian::GaussianClassifier;
pub use knn::{KdTree, Prototype};
pub use morphology::{close, dilate, erode, open};
pub use prototypes::PrototypeModel;
