//! # brainshift-segment
//!
//! Intraoperative tissue classification: the paper's k-NN segmentation
//! over a multichannel feature space (MR intensity + saturated distance
//! transforms of the registered preoperative tissue models), with
//! prototype-voxel statistical models that update automatically across
//! scans, plus morphological cleanup utilities.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod classify;
pub mod confusion;
pub mod error;
pub mod features;
pub mod gaussian;
pub mod knn;
pub mod morphology;
pub mod prototypes;

pub use confusion::ConfusionMatrix;
pub use classify::{
    classify_matrix, classify_matrix_serial, classify_volume, classify_volume_incremental, dice,
    largest_component, segment_intraop, segment_intraop_with_model, IncrementalCache,
    IncrementalClassification, SegmentConfig,
};
pub use error::SegmentError;
pub use features::{FeatureMatrix, FeatureStack};
pub use gaussian::GaussianClassifier;
pub use knn::{k_nearest_brute, KdTree, KnnScratch, Prototype, LEAF_SIZE};
pub use morphology::{close, dilate, erode, open};
pub use prototypes::PrototypeModel;
