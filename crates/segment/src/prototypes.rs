//! Prototype selection and the automatically-updated statistical model.
//!
//! "The statistical model is encoded implicitly by selecting groups of
//! prototypical voxels which represent the tissue classes to be segmented
//! intraoperatively (less than five minutes of user interaction). The
//! spatial location of the prototype voxels is recorded and is used to
//! update the statistical model automatically when further intraoperative
//! images are acquired and registered."
//!
//! Our stand-in for the interactive step samples prototype locations from
//! a reference segmentation (the patient-specific preoperative atlas).

use crate::features::FeatureStack;
use crate::knn::Prototype;
use brainshift_imaging::Volume;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Recorded prototype voxel locations per tissue class.
#[derive(Debug, Clone)]
pub struct PrototypeModel {
    /// `(x, y, z, label)` of every prototype voxel.
    pub sites: Vec<(usize, usize, usize, u8)>,
}

impl PrototypeModel {
    /// Sample up to `per_class` prototype sites for each listed class from
    /// a reference segmentation, deterministically given `seed`.
    pub fn sample(reference_seg: &Volume<u8>, classes: &[u8], per_class: usize, seed: u64) -> Self {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut sites = Vec::new();
        for &class in classes {
            let mut candidates: Vec<(usize, usize, usize)> = reference_seg
                .iter_voxels()
                .filter(|&(_, _, _, &l)| l == class)
                .map(|(x, y, z, _)| (x, y, z))
                .collect();
            candidates.shuffle(&mut rng);
            for &(x, y, z) in candidates.iter().take(per_class) {
                sites.push((x, y, z, class));
            }
        }
        PrototypeModel { sites }
    }

    /// Number of recorded prototype sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// True when no sites are recorded.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// Classes actually represented in the model.
    pub fn classes(&self) -> Vec<u8> {
        let mut c: Vec<u8> = self.sites.iter().map(|s| s.3).collect();
        c.sort_unstable();
        c.dedup();
        c
    }

    /// Extract labeled feature vectors at the recorded sites from a (new,
    /// registered) feature stack — the paper's automatic model update for
    /// each subsequent intraoperative acquisition.
    pub fn extract(&self, features: &FeatureStack) -> Vec<Prototype> {
        self.sites
            .iter()
            .map(|&(x, y, z, label)| Prototype { features: features.vector(x, y, z), label })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::volume::{Dims, Spacing};

    fn seg() -> Volume<u8> {
        Volume::from_fn(Dims::new(10, 10, 10), Spacing::iso(1.0), |x, _, _| if x < 5 { 1u8 } else { 2 })
    }

    #[test]
    fn samples_requested_count_per_class() {
        let m = PrototypeModel::sample(&seg(), &[1, 2], 20, 7);
        assert_eq!(m.len(), 40);
        assert_eq!(m.classes(), vec![1, 2]);
        for &(x, _, _, l) in &m.sites {
            assert_eq!(l, if x < 5 { 1 } else { 2 });
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = PrototypeModel::sample(&seg(), &[1, 2], 10, 3);
        let b = PrototypeModel::sample(&seg(), &[1, 2], 10, 3);
        assert_eq!(a.sites, b.sites);
    }

    #[test]
    fn missing_class_yields_fewer_sites() {
        let m = PrototypeModel::sample(&seg(), &[1, 9], 10, 3);
        assert_eq!(m.len(), 10); // class 9 absent
        assert_eq!(m.classes(), vec![1]);
    }

    #[test]
    fn class_with_few_voxels_capped() {
        let mut s = seg();
        // make label 3 appear exactly twice
        s.set(0, 0, 0, 3);
        s.set(1, 0, 0, 3);
        let m = PrototypeModel::sample(&s, &[3], 10, 3);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn extract_reads_current_feature_stack() {
        let m = PrototypeModel::sample(&seg(), &[1, 2], 5, 3);
        let intensity = Volume::from_fn(Dims::new(10, 10, 10), Spacing::iso(1.0), |x, _, _| x as f32 * 10.0);
        let fs = FeatureStack::from_intensity(intensity);
        let protos = m.extract(&fs);
        assert_eq!(protos.len(), m.len());
        for (p, &(x, _, _, l)) in protos.iter().zip(&m.sites) {
            assert_eq!(p.label, l);
            assert_eq!(p.features[0], x as f32 * 10.0);
        }
    }
}
