//! Whole-volume intraoperative segmentation.
//!
//! Combines the feature stack, prototype model and k-NN classifier into
//! the paper's intraoperative segmentation step, with a morphological
//! cleanup of the brain mask (the active-surface target must be a single
//! solid region).

use crate::features::FeatureStack;
use crate::knn::KdTree;
use crate::prototypes::PrototypeModel;
use brainshift_imaging::{labels, Volume};
use rayon::prelude::*;

/// Segmentation configuration.
#[derive(Debug, Clone)]
pub struct SegmentConfig {
    /// Neighbours for the k-NN vote.
    pub k: usize,
    /// Saturation cap for distance channels (mm).
    pub distance_cap: f32,
    /// Weight of distance channels relative to intensity. Distances are
    /// in millimetres (resolution-independent): with intensity classes
    /// ~30–90 units apart, weight 0.75 lets a ~1 cm disagreement with the
    /// preoperative prior be overridden by clear intensity evidence while
    /// still regularizing ambiguous voxels.
    pub distance_weight: f32,
    /// Prototypes per class.
    pub per_class: usize,
    /// RNG seed for prototype sampling.
    pub seed: u64,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig { k: 5, distance_cap: 30.0, distance_weight: 0.75, per_class: 150, seed: 0x5E6 }
    }
}

/// Build the multichannel feature stack the paper describes: intensity +
/// one saturated distance channel per class present in the (registered)
/// preoperative segmentation.
pub fn build_feature_stack(
    intraop_intensity: &Volume<f32>,
    preop_seg: &Volume<u8>,
    classes: &[u8],
    cfg: &SegmentConfig,
) -> FeatureStack {
    let mut fs = FeatureStack::from_intensity(intraop_intensity.clone());
    for &c in classes {
        fs.push_distance_channel(preop_seg, c, cfg.distance_cap, cfg.distance_weight);
    }
    fs
}

/// Classify every voxel with k-NN over the feature stack.
pub fn classify_volume(features: &FeatureStack, tree: &KdTree, k: usize) -> Volume<u8> {
    let d = features.dims();
    let data: Vec<u8> = (0..d.len())
        .into_par_iter()
        .map(|idx| tree.classify(&features.vector_at(idx), k))
        .collect();
    // Reconstruct spacing from any channel by rebuilding a volume; the
    // feature stack keeps dims only, so reuse channel 0's spacing via a
    // dedicated accessor-free path: classification output shares dims.
    Volume::from_vec(d, brainshift_imaging::Spacing::iso(1.0), data)
}

/// End-to-end intraoperative segmentation: prototypes sampled from the
/// registered preoperative segmentation, model extracted from the current
/// scan, k-NN over all voxels. Returns the label volume (on the intraop
/// grid/spacing).
pub fn segment_intraop(
    intraop_intensity: &Volume<f32>,
    preop_seg: &Volume<u8>,
    cfg: &SegmentConfig,
) -> Volume<u8> {
    let mut classes = preop_seg.labels();
    classes.retain(|&c| c != labels::RESECTION);
    let model = PrototypeModel::sample(preop_seg, &classes, cfg.per_class, cfg.seed);
    segment_intraop_with_model(intraop_intensity, preop_seg, &model, cfg)
}

/// Segmentation with an existing prototype model — the paper's automatic
/// model update: "The spatial location of the prototype voxels is
/// recorded and is used to update the statistical model automatically
/// when further intraoperative images are acquired and registered." The
/// recorded sites are re-read from the *current* scan's feature stack, so
/// the interactive selection happens once per surgery.
pub fn segment_intraop_with_model(
    intraop_intensity: &Volume<f32>,
    preop_seg: &Volume<u8>,
    model: &PrototypeModel,
    cfg: &SegmentConfig,
) -> Volume<u8> {
    let classes = model.classes();
    let fs = build_feature_stack(intraop_intensity, preop_seg, &classes, cfg);
    let protos = model.extract(&fs);
    let tree = KdTree::build(protos);
    let out = classify_volume(&fs, &tree, cfg.k);
    Volume::from_vec(intraop_intensity.dims(), intraop_intensity.spacing(), out.into_data())
}

/// Largest 6-connected component of `mask`, as a new mask. Used to clean
/// up the brain segmentation before surface extraction.
pub fn largest_component(mask: &Volume<bool>) -> Volume<bool> {
    let d = mask.dims();
    let mut comp = vec![u32::MAX; d.len()];
    let mut sizes: Vec<usize> = Vec::new();
    let mut stack = Vec::new();
    for start in 0..d.len() {
        if !mask.data()[start] || comp[start] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        stack.push(start);
        comp[start] = id;
        while let Some(idx) = stack.pop() {
            size += 1;
            let (x, y, z) = d.coords(idx);
            let mut visit = |nx: i64, ny: i64, nz: i64| {
                if d.contains(nx, ny, nz) {
                    let ni = d.index(nx as usize, ny as usize, nz as usize);
                    if mask.data()[ni] && comp[ni] == u32::MAX {
                        comp[ni] = id;
                        stack.push(ni);
                    }
                }
            };
            visit(x as i64 - 1, y as i64, z as i64);
            visit(x as i64 + 1, y as i64, z as i64);
            visit(x as i64, y as i64 - 1, z as i64);
            visit(x as i64, y as i64 + 1, z as i64);
            visit(x as i64, y as i64, z as i64 - 1);
            visit(x as i64, y as i64, z as i64 + 1);
        }
        sizes.push(size);
    }
    if sizes.is_empty() {
        return mask.clone();
    }
    let biggest = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, &s)| s)
        .map(|(i, _)| i as u32)
        .unwrap();
    let data: Vec<bool> = comp.iter().map(|&c| c == biggest).collect();
    Volume::from_vec(d, mask.spacing(), data)
}

/// Dice overlap coefficient between two masks.
pub fn dice(a: &Volume<bool>, b: &Volume<bool>) -> f64 {
    assert_eq!(a.dims(), b.dims());
    let mut inter = 0usize;
    let mut na = 0usize;
    let mut nb = 0usize;
    for (&x, &y) in a.data().iter().zip(b.data()) {
        if x {
            na += 1;
        }
        if y {
            nb += 1;
        }
        if x && y {
            inter += 1;
        }
    }
    if na + nb == 0 {
        return 1.0;
    }
    2.0 * inter as f64 / (na + nb) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::phantom::{generate_case, BrainShiftConfig, PhantomConfig};
    use brainshift_imaging::volume::{Dims, Spacing};

    #[test]
    fn segments_phantom_intraop_scan_well() {
        let cfg = PhantomConfig {
            dims: Dims::new(32, 32, 24),
            spacing: Spacing::iso(4.0),
            ..Default::default()
        };
        let case = generate_case(&cfg, &BrainShiftConfig { resect_tumor: false, ..Default::default() });
        // Classify the intraop scan using the PREOP segmentation as the
        // spatial prior (the realistic setting: brain has shifted a bit).
        let seg = segment_intraop(&case.intraop.intensity, &case.preop.labels, &SegmentConfig::default());
        // Compare against the intraop ground truth.
        let gt = &case.intraop.labels;
        let agree = gt
            .data()
            .iter()
            .zip(seg.data())
            .filter(|(a, b)| a == b)
            .count() as f64
            / gt.data().len() as f64;
        assert!(agree > 0.85, "voxel agreement only {agree}");
        // Brain-specific Dice.
        let gt_brain = gt.map(|&l| labels::is_brain_tissue(l));
        let seg_brain = seg.map(|&l| labels::is_brain_tissue(l));
        let d = dice(&gt_brain, &seg_brain);
        assert!(d > 0.8, "brain dice {d}");
    }

    #[test]
    fn largest_component_removes_islands() {
        let d = Dims::new(10, 10, 10);
        let mask = Volume::from_fn(d, Spacing::iso(1.0), |x, y, z| {
            // Big blob + a far corner island.
            (x < 6 && y < 6 && z < 6) || (x == 9 && y == 9 && z == 9)
        });
        let lc = largest_component(&mask);
        assert!(!*lc.get(9, 9, 9));
        assert!(*lc.get(0, 0, 0));
        let count = lc.data().iter().filter(|&&b| b).count();
        assert_eq!(count, 216);
    }

    #[test]
    fn largest_component_empty_mask() {
        let mask: Volume<bool> = Volume::filled(Dims::new(4, 4, 4), Spacing::iso(1.0), false);
        let lc = largest_component(&mask);
        assert!(lc.data().iter().all(|&b| !b));
    }

    #[test]
    fn dice_of_identical_masks_is_one() {
        let mask = Volume::from_fn(Dims::new(6, 6, 6), Spacing::iso(1.0), |x, _, _| x < 3);
        assert_eq!(dice(&mask, &mask), 1.0);
        let empty: Volume<bool> = Volume::filled(Dims::new(6, 6, 6), Spacing::iso(1.0), false);
        assert_eq!(dice(&mask, &empty), 0.0);
        assert_eq!(dice(&empty, &empty), 1.0);
    }
}
