//! Whole-volume intraoperative segmentation.
//!
//! Combines the feature stack, prototype model and k-NN classifier into
//! the paper's intraoperative segmentation step, with a morphological
//! cleanup of the brain mask (the active-surface target must be a single
//! solid region).
//!
//! # Incremental re-classification
//!
//! Between consecutive intraoperative scans most of the head is static:
//! only tissue near the resection and the shifting brain surface changes
//! appreciably. [`classify_volume_incremental`] exploits this by keeping
//! the previous scan's flattened feature matrix and label volume, and
//! re-running k-NN only for voxels whose weighted feature vector moved by
//! more than a threshold since the cached scan. The invariant: at
//! threshold 0 (and an unchanged prototype model) the output is
//! **bitwise identical** to a full classification — a voxel is skipped
//! only when its feature row is exactly the cached row, and k-NN is a
//! deterministic pure function of (row, tree, k).

use crate::error::SegmentError;
use crate::features::{FeatureMatrix, FeatureStack, MATRIX_SLAB};
use crate::knn::{KdTree, KnnScratch};
use crate::prototypes::PrototypeModel;
use brainshift_imaging::{labels, Volume};
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Segmentation configuration.
#[derive(Debug, Clone)]
pub struct SegmentConfig {
    /// Neighbours for the k-NN vote.
    pub k: usize,
    /// Saturation cap for distance channels (mm).
    pub distance_cap: f32,
    /// Weight of distance channels relative to intensity. Distances are
    /// in millimetres (resolution-independent): with intensity classes
    /// ~30–90 units apart, weight 0.75 lets a ~1 cm disagreement with the
    /// preoperative prior be overridden by clear intensity evidence while
    /// still regularizing ambiguous voxels.
    pub distance_weight: f32,
    /// Prototypes per class.
    pub per_class: usize,
    /// RNG seed for prototype sampling.
    pub seed: u64,
    /// Incremental re-classification threshold in weighted feature units:
    /// a voxel is re-classified only when some channel moved more than
    /// this since the cached scan. `0.0` (the default) keeps the output
    /// bitwise identical to a full classification; small positive values
    /// (a few intensity units, i.e. well under the ~30-unit class gaps)
    /// trade exactness for skipping noise-only voxels.
    pub incremental_threshold: f32,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            k: 5,
            distance_cap: 30.0,
            distance_weight: 0.75,
            per_class: 150,
            seed: 0x5E6,
            incremental_threshold: 0.0,
        }
    }
}

/// Build the multichannel feature stack the paper describes: intensity +
/// one saturated distance channel per class present in the (registered)
/// preoperative segmentation.
pub fn build_feature_stack(
    intraop_intensity: &Volume<f32>,
    preop_seg: &Volume<u8>,
    classes: &[u8],
    cfg: &SegmentConfig,
) -> FeatureStack {
    let mut fs = FeatureStack::from_intensity(intraop_intensity.clone());
    for &c in classes {
        fs.push_distance_channel(preop_seg, c, cfg.distance_cap, cfg.distance_weight);
    }
    fs
}

/// Classify every voxel with k-NN over the feature stack. The label
/// volume is returned on the stack's own grid and spacing.
pub fn classify_volume(features: &FeatureStack, tree: &KdTree, k: usize) -> Volume<u8> {
    classify_matrix(&features.to_matrix(), tree, k)
}

/// Classify every voxel of a flattened feature matrix, in parallel over
/// voxel slabs with one reusable k-NN scratch per slab.
pub fn classify_matrix(matrix: &FeatureMatrix, tree: &KdTree, k: usize) -> Volume<u8> {
    let d = matrix.dims();
    let mut data = vec![0u8; d.len()];
    data.par_chunks_mut(MATRIX_SLAB).enumerate().for_each(|(s, chunk)| {
        let base = s * MATRIX_SLAB;
        let mut scratch = KnnScratch::new();
        for (i, out) in chunk.iter_mut().enumerate() {
            *out = tree.classify_with(&mut scratch, matrix.row(base + i), k);
        }
    });
    Volume::from_vec(d, matrix.spacing(), data)
}

/// Serial reference classifier: identical output to [`classify_matrix`]
/// by construction (per-voxel k-NN is a pure function, and slab order
/// never enters the result). Kept as the oracle for the thread-count
/// determinism tests.
pub fn classify_matrix_serial(matrix: &FeatureMatrix, tree: &KdTree, k: usize) -> Volume<u8> {
    let d = matrix.dims();
    let mut scratch = KnnScratch::new();
    let mut data = vec![0u8; d.len()];
    for (idx, out) in data.iter_mut().enumerate() {
        *out = tree.classify_with(&mut scratch, matrix.row(idx), k);
    }
    Volume::from_vec(d, matrix.spacing(), data)
}

/// The previous scan's classification state, kept by the caller (e.g.
/// `PreparedSurgery`) to make the next scan incremental.
#[derive(Debug, Clone)]
pub struct IncrementalCache {
    /// Flattened weighted features of the cached scan.
    pub matrix: FeatureMatrix,
    /// Labels produced for the cached scan (row-major, same grid).
    pub labels: Vec<u8>,
    /// Fingerprint of the kd-tree that produced `labels`.
    pub tree_fingerprint: u64,
    /// `k` used for `labels`.
    pub k: usize,
}

/// Outcome of an incremental classification pass.
#[derive(Debug)]
pub struct IncrementalClassification {
    /// The label volume (on the matrix's grid and spacing).
    pub labels: Volume<u8>,
    /// Voxels actually sent through k-NN this scan.
    pub reclassified: usize,
    /// Total voxels in the volume.
    pub total: usize,
    /// Whether the previous scan's cache was accepted.
    pub used_cache: bool,
    /// kd-tree leaf blocks scanned during this pass.
    pub leaf_visits: u64,
    /// State to hand to the next scan.
    pub cache: IncrementalCache,
}

/// Classify a feature matrix, reusing the previous scan's labels for
/// voxels whose features moved by at most `threshold` (weighted units).
///
/// The cache is accepted only when the grid/channel shape and `k` match,
/// and — in exact mode (`threshold == 0`) — when the kd-tree fingerprint
/// matches too: with a changed prototype model, an unchanged feature row
/// no longer implies an unchanged label. At `threshold > 0` the caller
/// has already accepted approximation, so model drift from re-extracted
/// prototypes is tolerated. A rejected cache falls back to a full pass.
pub fn classify_volume_incremental(
    features: &FeatureStack,
    tree: &KdTree,
    k: usize,
    threshold: f32,
    prev: Option<IncrementalCache>,
) -> IncrementalClassification {
    let matrix = features.to_matrix();
    let d = matrix.dims();
    let total = d.len();
    let usable = prev.as_ref().is_some_and(|c| {
        c.matrix.same_shape(&matrix)
            && c.k == k
            && (threshold > 0.0 || c.tree_fingerprint == tree.fingerprint())
    });
    let leaf_visits = AtomicU64::new(0);
    let reclassified = AtomicUsize::new(0);
    let mut data = vec![0u8; total];
    if let (true, Some(cache)) = (usable, prev.as_ref()) {
        data.par_chunks_mut(MATRIX_SLAB).enumerate().for_each(|(s, chunk)| {
            let base = s * MATRIX_SLAB;
            let mut scratch = KnnScratch::new();
            let mut changed = 0usize;
            for (i, out) in chunk.iter_mut().enumerate() {
                let idx = base + i;
                let delta = matrix.row_delta_max(&cache.matrix, idx);
                // `!(delta <= threshold)` so NaN deltas re-classify.
                #[allow(clippy::neg_cmp_op_on_partial_ord)]
                if !(delta <= threshold) {
                    *out = tree.classify_with(&mut scratch, matrix.row(idx), k);
                    changed += 1;
                } else {
                    *out = cache.labels[idx];
                }
            }
            leaf_visits.fetch_add(scratch.leaf_visits, Ordering::Relaxed);
            reclassified.fetch_add(changed, Ordering::Relaxed);
        });
    } else {
        data.par_chunks_mut(MATRIX_SLAB).enumerate().for_each(|(s, chunk)| {
            let base = s * MATRIX_SLAB;
            let mut scratch = KnnScratch::new();
            for (i, out) in chunk.iter_mut().enumerate() {
                *out = tree.classify_with(&mut scratch, matrix.row(base + i), k);
            }
            leaf_visits.fetch_add(scratch.leaf_visits, Ordering::Relaxed);
        });
        reclassified.store(total, Ordering::Relaxed);
    }
    let labels = Volume::from_vec(d, matrix.spacing(), data.clone());
    IncrementalClassification {
        labels,
        reclassified: reclassified.into_inner(),
        total,
        used_cache: usable,
        leaf_visits: leaf_visits.into_inner(),
        cache: IncrementalCache { matrix, labels: data, tree_fingerprint: tree.fingerprint(), k },
    }
}

/// End-to-end intraoperative segmentation: prototypes sampled from the
/// registered preoperative segmentation, model extracted from the current
/// scan, k-NN over all voxels. Returns the label volume (on the intraop
/// grid/spacing).
pub fn segment_intraop(
    intraop_intensity: &Volume<f32>,
    preop_seg: &Volume<u8>,
    cfg: &SegmentConfig,
) -> Result<Volume<u8>, SegmentError> {
    let mut classes = preop_seg.labels();
    classes.retain(|&c| c != labels::RESECTION);
    let model = PrototypeModel::sample(preop_seg, &classes, cfg.per_class, cfg.seed);
    segment_intraop_with_model(intraop_intensity, preop_seg, &model, cfg)
}

/// Segmentation with an existing prototype model — the paper's automatic
/// model update: "The spatial location of the prototype voxels is
/// recorded and is used to update the statistical model automatically
/// when further intraoperative images are acquired and registered." The
/// recorded sites are re-read from the *current* scan's feature stack, so
/// the interactive selection happens once per surgery.
pub fn segment_intraop_with_model(
    intraop_intensity: &Volume<f32>,
    preop_seg: &Volume<u8>,
    model: &PrototypeModel,
    cfg: &SegmentConfig,
) -> Result<Volume<u8>, SegmentError> {
    let classes = model.classes();
    let fs = build_feature_stack(intraop_intensity, preop_seg, &classes, cfg);
    let protos = model.extract(&fs);
    let tree = KdTree::build(protos)?;
    Ok(classify_volume(&fs, &tree, cfg.k))
}

/// Largest 6-connected component of `mask`, as a new mask. Used to clean
/// up the brain segmentation before surface extraction.
pub fn largest_component(mask: &Volume<bool>) -> Volume<bool> {
    let d = mask.dims();
    let mut comp = vec![u32::MAX; d.len()];
    let mut sizes: Vec<usize> = Vec::new();
    let mut stack = Vec::new();
    for start in 0..d.len() {
        if !mask.data()[start] || comp[start] != u32::MAX {
            continue;
        }
        let id = sizes.len() as u32;
        let mut size = 0usize;
        stack.push(start);
        comp[start] = id;
        while let Some(idx) = stack.pop() {
            size += 1;
            let (x, y, z) = d.coords(idx);
            let mut visit = |nx: i64, ny: i64, nz: i64| {
                if d.contains(nx, ny, nz) {
                    let ni = d.index(nx as usize, ny as usize, nz as usize);
                    if mask.data()[ni] && comp[ni] == u32::MAX {
                        comp[ni] = id;
                        stack.push(ni);
                    }
                }
            };
            visit(x as i64 - 1, y as i64, z as i64);
            visit(x as i64 + 1, y as i64, z as i64);
            visit(x as i64, y as i64 - 1, z as i64);
            visit(x as i64, y as i64 + 1, z as i64);
            visit(x as i64, y as i64, z as i64 - 1);
            visit(x as i64, y as i64, z as i64 + 1);
        }
        sizes.push(size);
    }
    if sizes.is_empty() {
        return mask.clone();
    }
    // `>=` keeps the last equally-large component, matching the previous
    // `max_by_key` tie behaviour.
    let mut biggest = 0u32;
    let mut best_size = 0usize;
    for (i, &s) in sizes.iter().enumerate() {
        if s >= best_size {
            best_size = s;
            biggest = i as u32;
        }
    }
    let data: Vec<bool> = comp.iter().map(|&c| c == biggest).collect();
    Volume::from_vec(d, mask.spacing(), data)
}

/// Dice overlap coefficient between two masks.
pub fn dice(a: &Volume<bool>, b: &Volume<bool>) -> f64 {
    assert_eq!(a.dims(), b.dims());
    let mut inter = 0usize;
    let mut na = 0usize;
    let mut nb = 0usize;
    for (&x, &y) in a.data().iter().zip(b.data()) {
        if x {
            na += 1;
        }
        if y {
            nb += 1;
        }
        if x && y {
            inter += 1;
        }
    }
    if na + nb == 0 {
        return 1.0;
    }
    2.0 * inter as f64 / (na + nb) as f64
}

impl brainshift_persist::Persist for IncrementalCache {
    fn encode(
        &self,
        enc: &mut brainshift_persist::Encoder,
    ) -> Result<(), brainshift_persist::PersistError> {
        self.matrix.encode(enc)?;
        self.labels.encode(enc)?;
        enc.put_u64(self.tree_fingerprint);
        enc.put_usize(self.k);
        Ok(())
    }
    fn decode(
        dec: &mut brainshift_persist::Decoder<'_>,
    ) -> Result<Self, brainshift_persist::PersistError> {
        let matrix = FeatureMatrix::decode(dec)?;
        let labels = Vec::<u8>::decode(dec)?;
        let tree_fingerprint = dec.get_u64()?;
        let k = dec.get_usize()?;
        if labels.len() != matrix.dims().len() {
            return Err(brainshift_persist::PersistError::InvalidData {
                reason: format!(
                    "cache has {} labels for {} voxels",
                    labels.len(),
                    matrix.dims().len()
                ),
            });
        }
        Ok(IncrementalCache { matrix, labels, tree_fingerprint, k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::phantom::{generate_case, BrainShiftConfig, PhantomConfig};
    use brainshift_imaging::volume::{Dims, Spacing};

    #[test]
    fn segments_phantom_intraop_scan_well() {
        let cfg = PhantomConfig {
            dims: Dims::new(32, 32, 24),
            spacing: Spacing::iso(4.0),
            ..Default::default()
        };
        let case = generate_case(&cfg, &BrainShiftConfig { resect_tumor: false, ..Default::default() });
        // Classify the intraop scan using the PREOP segmentation as the
        // spatial prior (the realistic setting: brain has shifted a bit).
        let seg = segment_intraop(&case.intraop.intensity, &case.preop.labels, &SegmentConfig::default())
            .expect("phantom prototypes are valid");
        // Compare against the intraop ground truth.
        let gt = &case.intraop.labels;
        let agree = gt
            .data()
            .iter()
            .zip(seg.data())
            .filter(|(a, b)| a == b)
            .count() as f64
            / gt.data().len() as f64;
        assert!(agree > 0.85, "voxel agreement only {agree}");
        // Brain-specific Dice.
        let gt_brain = gt.map(|&l| labels::is_brain_tissue(l));
        let seg_brain = seg.map(|&l| labels::is_brain_tissue(l));
        let d = dice(&gt_brain, &seg_brain);
        assert!(d > 0.8, "brain dice {d}");
    }

    #[test]
    fn classification_keeps_anisotropic_spacing() {
        // Regression: the label volume used to come back with
        // Spacing::iso(1.0) regardless of the input grid.
        let d = Dims::new(8, 8, 6);
        let sp = Spacing::new(0.9, 0.9, 3.0);
        let intensity = Volume::from_fn(d, sp, |x, _, _| if x < 4 { 10.0 } else { 90.0 });
        let seg = Volume::from_fn(d, sp, |x, _, _| if x < 4 { 1u8 } else { 2 });
        let cfg = SegmentConfig { per_class: 20, ..Default::default() };
        let fs = build_feature_stack(&intensity, &seg, &[1, 2], &cfg);
        let model = PrototypeModel::sample(&seg, &[1, 2], cfg.per_class, cfg.seed);
        let tree = KdTree::build(model.extract(&fs)).expect("valid prototypes");
        let out = classify_volume(&fs, &tree, cfg.k);
        assert_eq!(out.spacing(), sp, "classification must keep the intraop spacing");
        let end_to_end = segment_intraop(&intensity, &seg, &cfg).expect("valid prototypes");
        assert_eq!(end_to_end.spacing(), sp);
    }

    #[test]
    fn incremental_threshold_zero_is_bitwise_identical() {
        let d = Dims::new(10, 10, 8);
        let sp = Spacing::iso(2.0);
        let seg = Volume::from_fn(d, sp, |x, _, _| if x < 5 { 1u8 } else { 2 });
        let cfg = SegmentConfig { per_class: 30, ..Default::default() };
        let model = PrototypeModel::sample(&seg, &[1, 2], cfg.per_class, cfg.seed);
        let make_fs = |phase: f32| {
            let intensity = Volume::from_fn(d, sp, |x, y, z| {
                let base = if x < 5 { 20.0 } else { 80.0 };
                base + ((x + 2 * y + 3 * z) as f32 * phase).sin() * 5.0
            });
            build_feature_stack(&intensity, &seg, &[1, 2], &cfg)
        };
        let mut cache: Option<IncrementalCache> = None;
        for scan in 0..3 {
            let fs = make_fs(0.1 + scan as f32 * 0.05);
            let tree = KdTree::build(model.extract(&fs)).expect("valid prototypes");
            let full = classify_volume(&fs, &tree, cfg.k);
            let inc = classify_volume_incremental(&fs, &tree, cfg.k, 0.0, cache.take());
            assert_eq!(inc.labels.data(), full.data(), "scan {scan} diverged");
            assert_eq!(inc.total, d.len());
            cache = Some(inc.cache);
        }
    }

    #[test]
    fn incremental_skips_static_voxels_and_counts_changes() {
        let d = Dims::new(8, 8, 8);
        let sp = Spacing::iso(1.0);
        let seg = Volume::from_fn(d, sp, |x, _, _| if x < 4 { 1u8 } else { 2 });
        let cfg = SegmentConfig { per_class: 20, ..Default::default() };
        let model = PrototypeModel::sample(&seg, &[1, 2], cfg.per_class, cfg.seed);
        let intensity = Volume::from_fn(d, sp, |x, _, _| if x < 4 { 10.0 } else { 90.0 });
        let fs = build_feature_stack(&intensity, &seg, &[1, 2], &cfg);
        let tree = KdTree::build(model.extract(&fs)).expect("valid prototypes");
        let first = classify_volume_incremental(&fs, &tree, cfg.k, 0.0, None);
        assert!(!first.used_cache);
        assert_eq!(first.reclassified, d.len());
        // Identical scan: with the same tree, nothing should re-classify.
        let second = classify_volume_incremental(&fs, &tree, cfg.k, 0.0, Some(first.cache));
        assert!(second.used_cache);
        assert_eq!(second.reclassified, 0);
        assert_eq!(second.labels.data(), first.labels.data());
        // Perturb one voxel beyond any threshold: exactly one re-classify.
        let mut moved = intensity.clone();
        moved.set(2, 3, 4, 55.0);
        let fs2 = build_feature_stack(&moved, &seg, &[1, 2], &cfg);
        let third = classify_volume_incremental(&fs2, &tree, cfg.k, 0.0, Some(second.cache));
        assert!(third.used_cache);
        assert_eq!(third.reclassified, 1);
    }

    #[test]
    fn incremental_exact_mode_rejects_changed_tree() {
        let d = Dims::new(6, 6, 6);
        let sp = Spacing::iso(1.0);
        let seg = Volume::from_fn(d, sp, |x, _, _| if x < 3 { 1u8 } else { 2 });
        let cfg = SegmentConfig { per_class: 10, ..Default::default() };
        let model = PrototypeModel::sample(&seg, &[1, 2], cfg.per_class, cfg.seed);
        let intensity = Volume::from_fn(d, sp, |x, _, _| if x < 3 { 10.0 } else { 90.0 });
        let fs = build_feature_stack(&intensity, &seg, &[1, 2], &cfg);
        let tree = KdTree::build(model.extract(&fs)).expect("valid prototypes");
        let first = classify_volume_incremental(&fs, &tree, cfg.k, 0.0, None);
        // A different prototype model (reseeded) ⇒ different fingerprint ⇒
        // exact mode must fall back to a full pass.
        let model2 = PrototypeModel::sample(&seg, &[1, 2], cfg.per_class, cfg.seed + 1);
        let tree2 = KdTree::build(model2.extract(&fs)).expect("valid prototypes");
        let second = classify_volume_incremental(&fs, &tree2, cfg.k, 0.0, Some(first.cache.clone()));
        assert!(!second.used_cache, "fingerprint mismatch must invalidate exact mode");
        assert_eq!(second.reclassified, d.len());
        // Thresholded mode tolerates the drifted tree and reuses labels.
        let third = classify_volume_incremental(&fs, &tree2, cfg.k, 0.5, Some(first.cache));
        assert!(third.used_cache);
        assert_eq!(third.reclassified, 0);
    }

    #[test]
    fn largest_component_removes_islands() {
        let d = Dims::new(10, 10, 10);
        let mask = Volume::from_fn(d, Spacing::iso(1.0), |x, y, z| {
            // Big blob + a far corner island.
            (x < 6 && y < 6 && z < 6) || (x == 9 && y == 9 && z == 9)
        });
        let lc = largest_component(&mask);
        assert!(!*lc.get(9, 9, 9));
        assert!(*lc.get(0, 0, 0));
        let count = lc.data().iter().filter(|&&b| b).count();
        assert_eq!(count, 216);
    }

    #[test]
    fn largest_component_empty_mask() {
        let mask: Volume<bool> = Volume::filled(Dims::new(4, 4, 4), Spacing::iso(1.0), false);
        let lc = largest_component(&mask);
        assert!(lc.data().iter().all(|&b| !b));
    }

    #[test]
    fn dice_of_identical_masks_is_one() {
        let mask = Volume::from_fn(Dims::new(6, 6, 6), Spacing::iso(1.0), |x, _, _| x < 3);
        assert_eq!(dice(&mask, &mask), 1.0);
        let empty: Volume<bool> = Volume::filled(Dims::new(6, 6, 6), Spacing::iso(1.0), false);
        assert_eq!(dice(&mask, &empty), 0.0);
        assert_eq!(dice(&empty, &empty), 1.0);
    }
}
