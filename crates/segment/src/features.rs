//! Multichannel feature space for intraoperative classification.
//!
//! "The intraoperative image data then together with the spatial
//! localization model forms a multichannel 3D data set. Each voxel of the
//! combined data sets is then represented by a vector having components
//! from the intraoperative MR scan [and] the spatially varying tissue
//! location model..."

use brainshift_imaging::dtransform::label_distance_map;
use brainshift_imaging::{Dims, Volume};

/// A stack of aligned scalar channels: channel 0 is MR intensity, the rest
/// are saturated distance maps of preoperative tissue classes.
#[derive(Debug, Clone)]
pub struct FeatureStack {
    dims: Dims,
    channels: Vec<Volume<f32>>,
    /// Per-channel scale applied when extracting vectors (balances
    /// intensity units against millimetre distances).
    weights: Vec<f32>,
}

impl FeatureStack {
    /// Start a stack from the intensity channel with weight 1.
    pub fn from_intensity(intensity: Volume<f32>) -> Self {
        let dims = intensity.dims();
        FeatureStack { dims, channels: vec![intensity], weights: vec![1.0] }
    }

    /// Add an arbitrary channel.
    pub fn push_channel(&mut self, channel: Volume<f32>, weight: f32) {
        assert_eq!(channel.dims(), self.dims, "channel grid mismatch");
        self.channels.push(channel);
        self.weights.push(weight);
    }

    /// Add the saturated distance map of `label` in the (registered)
    /// preoperative segmentation — the paper's "spatial localization
    /// model" channel.
    pub fn push_distance_channel(&mut self, preop_seg: &Volume<u8>, label: u8, cap: f32, weight: f32) {
        assert_eq!(preop_seg.dims(), self.dims);
        self.push_channel(label_distance_map(preop_seg, label, cap), weight);
    }

    /// Number of channels in the stack.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Grid dimensions shared by all channels.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Feature vector of voxel `(x, y, z)` (weights applied).
    pub fn vector(&self, x: usize, y: usize, z: usize) -> Vec<f32> {
        self.channels
            .iter()
            .zip(&self.weights)
            .map(|(c, &w)| *c.get(x, y, z) * w)
            .collect()
    }

    /// Feature vector by linear voxel index.
    pub fn vector_at(&self, idx: usize) -> Vec<f32> {
        self.channels
            .iter()
            .zip(&self.weights)
            .map(|(c, &w)| c.data()[idx] * w)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::volume::Spacing;

    #[test]
    fn stack_builds_vectors_with_weights() {
        let d = Dims::new(4, 4, 4);
        let intensity = Volume::from_fn(d, Spacing::iso(1.0), |x, _, _| x as f32);
        let mut fs = FeatureStack::from_intensity(intensity);
        let extra = Volume::from_fn(d, Spacing::iso(1.0), |_, y, _| y as f32);
        fs.push_channel(extra, 0.5);
        assert_eq!(fs.num_channels(), 2);
        assert_eq!(fs.vector(2, 3, 0), vec![2.0, 1.5]);
        assert_eq!(fs.vector_at(d.index(2, 3, 0)), vec![2.0, 1.5]);
    }

    #[test]
    fn distance_channel_negative_inside_label() {
        let d = Dims::new(6, 6, 6);
        let intensity: Volume<f32> = Volume::zeros(d, Spacing::iso(1.0));
        let seg = Volume::from_fn(d, Spacing::iso(1.0), |x, _, _| if x < 3 { 4u8 } else { 0 });
        let mut fs = FeatureStack::from_intensity(intensity);
        fs.push_distance_channel(&seg, 4, 10.0, 1.0);
        assert!(fs.vector(0, 3, 3)[1] < 0.0, "inside should be negative");
        assert!(fs.vector(5, 3, 3)[1] > 0.0, "outside should be positive");
    }

    #[test]
    #[should_panic]
    fn mismatched_channel_rejected() {
        let a: Volume<f32> = Volume::zeros(Dims::new(4, 4, 4), Spacing::iso(1.0));
        let b: Volume<f32> = Volume::zeros(Dims::new(5, 5, 5), Spacing::iso(1.0));
        let mut fs = FeatureStack::from_intensity(a);
        fs.push_channel(b, 1.0);
    }
}
