//! Multichannel feature space for intraoperative classification.
//!
//! "The intraoperative image data then together with the spatial
//! localization model forms a multichannel 3D data set. Each voxel of the
//! combined data sets is then represented by a vector having components
//! from the intraoperative MR scan [and] the spatially varying tissue
//! location model..."
//!
//! Channels are reference-counted so the per-surgery constant channels
//! (the saturated distance maps of the *preoperative* segmentation) can
//! be computed once and shared across every scan's stack; only the
//! intensity channel changes per scan. For the classification hot loop
//! the stack is flattened into a [`FeatureMatrix`] — one contiguous
//! weighted row per voxel — so queries borrow a slice instead of
//! allocating a `Vec` per voxel.

use std::sync::Arc;

use brainshift_imaging::dtransform::label_distance_map;
use brainshift_imaging::volume::Spacing;
use brainshift_imaging::{Dims, Volume};
use rayon::prelude::*;

/// A stack of aligned scalar channels: channel 0 is MR intensity, the rest
/// are saturated distance maps of preoperative tissue classes.
#[derive(Debug, Clone)]
pub struct FeatureStack {
    dims: Dims,
    spacing: Spacing,
    channels: Vec<Arc<Volume<f32>>>,
    /// Per-channel scale applied when extracting vectors (balances
    /// intensity units against millimetre distances).
    weights: Vec<f32>,
}

impl FeatureStack {
    /// Start a stack from the intensity channel with weight 1. The
    /// intensity volume's grid spacing becomes the stack's spacing and is
    /// propagated onto classification outputs.
    pub fn from_intensity(intensity: Volume<f32>) -> Self {
        let dims = intensity.dims();
        let spacing = intensity.spacing();
        FeatureStack { dims, spacing, channels: vec![Arc::new(intensity)], weights: vec![1.0] }
    }

    /// Add an arbitrary channel.
    pub fn push_channel(&mut self, channel: Volume<f32>, weight: f32) {
        self.push_shared_channel(Arc::new(channel), weight);
    }

    /// Add a channel shared with other stacks (e.g. the per-surgery
    /// distance maps reused across scans) without copying its data.
    pub fn push_shared_channel(&mut self, channel: Arc<Volume<f32>>, weight: f32) {
        assert_eq!(channel.dims(), self.dims, "channel grid mismatch");
        self.channels.push(channel);
        self.weights.push(weight);
    }

    /// Add the saturated distance map of `label` in the (registered)
    /// preoperative segmentation — the paper's "spatial localization
    /// model" channel.
    pub fn push_distance_channel(&mut self, preop_seg: &Volume<u8>, label: u8, cap: f32, weight: f32) {
        assert_eq!(preop_seg.dims(), self.dims);
        self.push_channel(label_distance_map(preop_seg, label, cap), weight);
    }

    /// Number of channels in the stack.
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Grid dimensions shared by all channels.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Grid spacing (taken from the intensity channel).
    pub fn spacing(&self) -> Spacing {
        self.spacing
    }

    /// Feature vector of voxel `(x, y, z)` (weights applied).
    pub fn vector(&self, x: usize, y: usize, z: usize) -> Vec<f32> {
        self.channels
            .iter()
            .zip(&self.weights)
            .map(|(c, &w)| *c.get(x, y, z) * w)
            .collect()
    }

    /// Feature vector by linear voxel index.
    pub fn vector_at(&self, idx: usize) -> Vec<f32> {
        self.channels
            .iter()
            .zip(&self.weights)
            .map(|(c, &w)| c.data()[idx] * w)
            .collect()
    }

    /// Flatten into a contiguous weighted feature matrix (one row per
    /// voxel), filled in parallel over voxel slabs.
    pub fn to_matrix(&self) -> FeatureMatrix {
        let n = self.dims.len();
        let c = self.channels.len();
        let mut data = vec![0.0f32; n * c];
        // Row-slab parallelism: each chunk owns `MATRIX_SLAB` complete
        // rows, written channel-major for contiguous reads of the source.
        data.par_chunks_mut(MATRIX_SLAB * c).enumerate().for_each(|(s, chunk)| {
            let base = s * MATRIX_SLAB;
            let rows = chunk.len() / c;
            for (ci, (chan, &w)) in self.channels.iter().zip(&self.weights).enumerate() {
                let src = &chan.data()[base..base + rows];
                for (r, &v) in src.iter().enumerate() {
                    chunk[r * c + ci] = v * w;
                }
            }
        });
        FeatureMatrix { dims: self.dims, spacing: self.spacing, channels: c, data }
    }
}

/// Rows per parallel slab when flattening or classifying a volume.
pub(crate) const MATRIX_SLAB: usize = 4096;

/// A flattened feature stack: `dims.len() × channels` weighted feature
/// values, row-major per voxel. This is the classification hot loop's
/// working layout, and what the incremental re-classification cache keeps
/// from the previous scan to measure per-voxel feature drift.
#[derive(Debug, Clone)]
pub struct FeatureMatrix {
    dims: Dims,
    spacing: Spacing,
    channels: usize,
    data: Vec<f32>,
}

impl FeatureMatrix {
    /// Grid dimensions.
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Grid spacing propagated from the source stack.
    pub fn spacing(&self) -> Spacing {
        self.spacing
    }

    /// Features per voxel.
    pub fn num_channels(&self) -> usize {
        self.channels
    }

    /// The weighted feature row of voxel `idx`.
    pub fn row(&self, idx: usize) -> &[f32] {
        &self.data[idx * self.channels..(idx + 1) * self.channels]
    }

    /// Largest absolute per-channel difference between this matrix's and
    /// `prev`'s row for voxel `idx` (both in weighted feature units).
    /// Returns NaN if any compared value is NaN, which callers must treat
    /// as "changed".
    pub fn row_delta_max(&self, prev: &FeatureMatrix, idx: usize) -> f32 {
        let mut m = 0.0f32;
        for (a, b) in self.row(idx).iter().zip(prev.row(idx)) {
            let d = (a - b).abs();
            // Propagate NaN: `max` would silently drop it, and the
            // negated `<=` (unlike `>`) is true for NaN.
            #[allow(clippy::neg_cmp_op_on_partial_ord)]
            if !(d <= m) {
                m = d;
            }
        }
        m
    }

    /// True when `other` has the same grid and channel count, i.e. rows
    /// are comparable voxel-for-voxel.
    pub fn same_shape(&self, other: &FeatureMatrix) -> bool {
        self.dims == other.dims && self.channels == other.channels
    }
}

impl brainshift_persist::Persist for FeatureMatrix {
    fn encode(
        &self,
        enc: &mut brainshift_persist::Encoder,
    ) -> Result<(), brainshift_persist::PersistError> {
        self.dims.encode(enc)?;
        self.spacing.encode(enc)?;
        enc.put_usize(self.channels);
        self.data.encode(enc)
    }
    fn decode(
        dec: &mut brainshift_persist::Decoder<'_>,
    ) -> Result<Self, brainshift_persist::PersistError> {
        let dims = Dims::decode(dec)?;
        let spacing = Spacing::decode(dec)?;
        let channels = dec.get_usize()?;
        let data = Vec::<f32>::decode(dec)?;
        if data.len() != dims.len() * channels {
            return Err(brainshift_persist::PersistError::InvalidData {
                reason: format!(
                    "feature matrix has {} values for {} voxels x {channels} channels",
                    data.len(),
                    dims.len()
                ),
            });
        }
        Ok(FeatureMatrix { dims, spacing, channels, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::volume::Spacing;

    #[test]
    fn stack_builds_vectors_with_weights() {
        let d = Dims::new(4, 4, 4);
        let intensity = Volume::from_fn(d, Spacing::iso(1.0), |x, _, _| x as f32);
        let mut fs = FeatureStack::from_intensity(intensity);
        let extra = Volume::from_fn(d, Spacing::iso(1.0), |_, y, _| y as f32);
        fs.push_channel(extra, 0.5);
        assert_eq!(fs.num_channels(), 2);
        assert_eq!(fs.vector(2, 3, 0), vec![2.0, 1.5]);
        assert_eq!(fs.vector_at(d.index(2, 3, 0)), vec![2.0, 1.5]);
    }

    #[test]
    fn matrix_rows_match_vector_at() {
        let d = Dims::new(5, 4, 3);
        let intensity = Volume::from_fn(d, Spacing::new(1.0, 2.0, 3.0), |x, y, z| {
            (x + 10 * y + 100 * z) as f32
        });
        let mut fs = FeatureStack::from_intensity(intensity);
        let extra = Volume::from_fn(d, Spacing::new(1.0, 2.0, 3.0), |_, y, _| y as f32);
        fs.push_channel(extra, 0.25);
        let m = fs.to_matrix();
        assert_eq!(m.num_channels(), 2);
        assert_eq!(m.spacing(), fs.spacing());
        for idx in 0..d.len() {
            assert_eq!(m.row(idx), fs.vector_at(idx).as_slice());
        }
    }

    #[test]
    fn stack_keeps_intensity_spacing() {
        let sp = Spacing::new(0.9, 1.1, 2.5);
        let intensity = Volume::from_fn(Dims::new(3, 3, 3), sp, |_, _, _| 0.0f32);
        let fs = FeatureStack::from_intensity(intensity);
        assert_eq!(fs.spacing(), sp);
    }

    #[test]
    fn shared_channels_are_not_copied() {
        let d = Dims::new(4, 4, 4);
        let chan = Arc::new(Volume::from_fn(d, Spacing::iso(1.0), |x, _, _| x as f32));
        let mut a = FeatureStack::from_intensity(Volume::zeros(d, Spacing::iso(1.0)));
        let mut b = FeatureStack::from_intensity(Volume::zeros(d, Spacing::iso(1.0)));
        a.push_shared_channel(chan.clone(), 1.0);
        b.push_shared_channel(chan.clone(), 1.0);
        assert_eq!(Arc::strong_count(&chan), 3);
        assert_eq!(a.vector(2, 0, 0)[1], 2.0);
    }

    #[test]
    fn row_delta_detects_single_channel_drift() {
        let d = Dims::new(4, 1, 1);
        let base = FeatureStack::from_intensity(Volume::from_fn(d, Spacing::iso(1.0), |x, _, _| x as f32))
            .to_matrix();
        let moved =
            FeatureStack::from_intensity(Volume::from_fn(d, Spacing::iso(1.0), |x, _, _| {
                x as f32 + if x == 2 { 0.5 } else { 0.0 }
            }))
            .to_matrix();
        assert_eq!(moved.row_delta_max(&base, 0), 0.0);
        assert_eq!(moved.row_delta_max(&base, 2), 0.5);
    }

    #[test]
    fn distance_channel_negative_inside_label() {
        let d = Dims::new(6, 6, 6);
        let intensity: Volume<f32> = Volume::zeros(d, Spacing::iso(1.0));
        let seg = Volume::from_fn(d, Spacing::iso(1.0), |x, _, _| if x < 3 { 4u8 } else { 0 });
        let mut fs = FeatureStack::from_intensity(intensity);
        fs.push_distance_channel(&seg, 4, 10.0, 1.0);
        assert!(fs.vector(0, 3, 3)[1] < 0.0, "inside should be negative");
        assert!(fs.vector(5, 3, 3)[1] > 0.0, "outside should be positive");
    }

    #[test]
    #[should_panic]
    fn mismatched_channel_rejected() {
        let a: Volume<f32> = Volume::zeros(Dims::new(4, 4, 4), Spacing::iso(1.0));
        let b: Volume<f32> = Volume::zeros(Dims::new(5, 5, 5), Spacing::iso(1.0));
        let mut fs = FeatureStack::from_intensity(a);
        fs.push_channel(b, 1.0);
    }
}
