//! Gaussian maximum-likelihood classification.
//!
//! The era's standard parametric alternative to the paper's k-NN choice
//! (both appear throughout the Warfield/Kikinis segmentation lineage):
//! fit a Gaussian with diagonal covariance to each tissue class in feature
//! space and classify by maximum likelihood. Included as the baseline for
//! the classifier ablation — k-NN is non-parametric and handles skewed,
//! multi-modal class distributions (e.g. partial-volume boundaries) that
//! a single Gaussian per class cannot.

use crate::features::FeatureStack;
use crate::knn::Prototype;
use brainshift_imaging::Volume;
use rayon::prelude::*;

/// A per-class Gaussian model with diagonal covariance.
#[derive(Debug, Clone)]
pub struct GaussianClassifier {
    classes: Vec<u8>,
    /// Per class: mean vector.
    means: Vec<Vec<f64>>,
    /// Per class: diagonal variances (floored for stability).
    variances: Vec<Vec<f64>>,
    /// Per class: log prior (from training frequencies).
    log_priors: Vec<f64>,
    dim: usize,
}

impl GaussianClassifier {
    /// Fit from labeled prototypes (the same training data the k-NN
    /// classifier uses).
    pub fn fit(prototypes: &[Prototype]) -> GaussianClassifier {
        assert!(!prototypes.is_empty(), "need training data");
        let dim = prototypes[0].features.len();
        let mut classes: Vec<u8> = prototypes.iter().map(|p| p.label).collect();
        classes.sort_unstable();
        classes.dedup();
        let mut means = vec![vec![0.0; dim]; classes.len()];
        let mut variances = vec![vec![0.0; dim]; classes.len()];
        let mut counts = vec![0usize; classes.len()];
        // Every prototype label is in `classes` by construction; the
        // fallback index is unreachable.
        let idx_of = |l: u8| classes.binary_search(&l).unwrap_or(0);
        for p in prototypes {
            let c = idx_of(p.label);
            counts[c] += 1;
            for (m, &f) in means[c].iter_mut().zip(&p.features) {
                *m += f as f64;
            }
        }
        for (c, count) in counts.iter().enumerate() {
            for m in &mut means[c] {
                *m /= (*count).max(1) as f64;
            }
        }
        for p in prototypes {
            let c = idx_of(p.label);
            for ((v, m), &f) in variances[c].iter_mut().zip(&means[c]).zip(&p.features) {
                let d = f as f64 - m;
                *v += d * d;
            }
        }
        // Variance floor: classes with a single prototype (or constant
        // features) must not produce infinite likelihoods.
        let global_scale: f64 = prototypes
            .iter()
            .flat_map(|p| p.features.iter())
            .map(|&f| (f as f64).abs())
            .sum::<f64>()
            / (prototypes.len() * dim) as f64;
        let floor = (global_scale * 0.01).max(1e-6).powi(2);
        for (c, count) in counts.iter().enumerate() {
            for v in &mut variances[c] {
                *v = (*v / (*count).max(1) as f64).max(floor);
            }
        }
        let total = prototypes.len() as f64;
        let log_priors = counts.iter().map(|&c| ((c as f64) / total).max(1e-12).ln()).collect();
        GaussianClassifier { classes, means, variances, log_priors, dim }
    }

    /// Number of distinct classes fitted.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Log-likelihood (up to a constant) of `x` under class index `c`.
    fn log_likelihood(&self, c: usize, x: &[f32]) -> f64 {
        let mut ll = self.log_priors[c];
        for i in 0..self.dim {
            let d = x[i] as f64 - self.means[c][i];
            let v = self.variances[c][i];
            ll -= 0.5 * (d * d / v + v.ln());
        }
        ll
    }

    /// Classify one feature vector.
    pub fn classify(&self, x: &[f32]) -> u8 {
        assert_eq!(x.len(), self.dim);
        let mut best = 0usize;
        let mut best_ll = f64::NEG_INFINITY;
        for c in 0..self.classes.len() {
            let ll = self.log_likelihood(c, x);
            if ll > best_ll {
                best_ll = ll;
                best = c;
            }
        }
        self.classes[best]
    }

    /// Classify a whole feature stack, keeping the stack's grid spacing.
    pub fn classify_volume(&self, features: &FeatureStack) -> Volume<u8> {
        let d = features.dims();
        let data: Vec<u8> = (0..d.len())
            .into_par_iter()
            .map(|idx| self.classify(&features.vector_at(idx)))
            .collect();
        Volume::from_vec(d, features.spacing(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn two_cluster_data(n: usize, seed: u64) -> Vec<Prototype> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut protos = Vec::new();
        for _ in 0..n {
            protos.push(Prototype {
                features: vec![rng.gen_range(-1.0f32..1.0), rng.gen_range(-1.0f32..1.0)],
                label: 0,
            });
            protos.push(Prototype {
                features: vec![8.0 + rng.gen_range(-1.0f32..1.0), 8.0 + rng.gen_range(-1.0f32..1.0)],
                label: 1,
            });
        }
        protos
    }

    #[test]
    fn separable_clusters_classified() {
        let g = GaussianClassifier::fit(&two_cluster_data(60, 1));
        assert_eq!(g.num_classes(), 2);
        assert_eq!(g.classify(&[0.0, 0.0]), 0);
        assert_eq!(g.classify(&[8.0, 8.0]), 1);
        assert_eq!(g.classify(&[7.0, 9.0]), 1);
    }

    #[test]
    fn variance_matters_for_overlapping_means() {
        // Class 0 tight around 0; class 1 wide around 0: a point at 3 is
        // implausible under the tight class but fine under the wide one.
        let mut protos = Vec::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..200 {
            protos.push(Prototype { features: vec![rng.gen_range(-0.2f32..0.2)], label: 0 });
            protos.push(Prototype { features: vec![rng.gen_range(-6.0f32..6.0)], label: 1 });
        }
        let g = GaussianClassifier::fit(&protos);
        assert_eq!(g.classify(&[0.0]), 0);
        assert_eq!(g.classify(&[3.0]), 1);
    }

    #[test]
    fn single_prototype_class_does_not_blow_up() {
        let mut protos = two_cluster_data(20, 3);
        protos.push(Prototype { features: vec![20.0, 20.0], label: 9 });
        let g = GaussianClassifier::fit(&protos);
        assert_eq!(g.classify(&[20.0, 20.0]), 9);
        // A far point is still classified without NaN/∞ issues.
        let l = g.classify(&[100.0, -50.0]);
        assert!(l == 0 || l == 1 || l == 9);
    }

    #[test]
    fn priors_break_ties() {
        // Identical distributions, unbalanced priors: midpoint goes to the
        // majority class.
        let mut protos = Vec::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for _ in 0..90 {
            protos.push(Prototype { features: vec![rng.gen_range(-1.0f32..1.0)], label: 0 });
        }
        for _ in 0..10 {
            protos.push(Prototype { features: vec![rng.gen_range(-1.0f32..1.0)], label: 1 });
        }
        let g = GaussianClassifier::fit(&protos);
        assert_eq!(g.classify(&[0.0]), 0);
    }

    #[test]
    fn knn_beats_gaussian_on_bimodal_class() {
        // Class 0 is bimodal (two lumps at ±6); class 1 sits between them
        // at 0. A single Gaussian for class 0 averages to mean 0 and
        // swallows class 1; k-NN keeps the lumps separate.
        use crate::knn::KdTree;
        let mut protos = Vec::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let side = if rng.gen_bool(0.5) { -6.0 } else { 6.0 };
            protos.push(Prototype { features: vec![side + rng.gen_range(-0.5f32..0.5)], label: 0 });
            protos.push(Prototype { features: vec![rng.gen_range(-0.5f32..0.5)], label: 1 });
        }
        let gauss = GaussianClassifier::fit(&protos);
        let tree = KdTree::build(protos).unwrap();
        // At the centre, k-NN is right and the Gaussian (whose class-0
        // model is a huge blob centred at 0 with enormous variance) is
        // plausible-but-wrong more often.
        assert_eq!(tree.classify(&[0.0], 5), 1);
        assert_eq!(tree.classify(&[6.0], 5), 0);
        assert_eq!(gauss.classify(&[6.0]), 0);
        // The k-NN answer at ±6 and 0 is always correct; this documents
        // the failure mode motivating the paper's non-parametric choice.
    }
}
