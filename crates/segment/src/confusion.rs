//! Segmentation scoring: confusion matrices and per-class metrics.
//!
//! The paper evaluates its intraoperative segmentation qualitatively; this
//! module provides the quantitative counterpart used by the classifier
//! ablation and the tests — per-class precision/recall/Dice from a full
//! confusion matrix against a reference labeling.

use brainshift_imaging::Volume;

/// A confusion matrix over `u8` labels (truth rows × predicted columns),
/// stored sparsely for the handful of classes in play.
#[derive(Debug, Clone)]
pub struct ConfusionMatrix {
    /// Sorted list of labels observed in either volume.
    labels: Vec<u8>,
    /// counts[t * n + p] = voxels with truth `labels[t]` predicted as
    /// `labels[p]`.
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Tally predictions against truth (same-grid volumes).
    pub fn from_volumes(truth: &Volume<u8>, predicted: &Volume<u8>) -> ConfusionMatrix {
        assert_eq!(truth.dims(), predicted.dims(), "grids must match");
        let mut labels: Vec<u8> = truth
            .labels()
            .into_iter()
            .chain(predicted.labels())
            .collect();
        labels.sort_unstable();
        labels.dedup();
        let n = labels.len();
        // Every label in either volume is in `labels` by construction;
        // the fallback index is unreachable.
        let idx = |l: u8| labels.binary_search(&l).unwrap_or(0);
        let mut counts = vec![0u64; n * n];
        for (&t, &p) in truth.data().iter().zip(predicted.data()) {
            counts[idx(t) * n + idx(p)] += 1;
        }
        ConfusionMatrix { labels, counts }
    }

    /// Labels covered by the matrix.
    pub fn labels(&self) -> &[u8] {
        &self.labels
    }

    /// Count of voxels with `truth` label predicted as `predicted`.
    pub fn count(&self, truth: u8, predicted: u8) -> u64 {
        let n = self.labels.len();
        match (
            self.labels.binary_search(&truth),
            self.labels.binary_search(&predicted),
        ) {
            (Ok(t), Ok(p)) => self.counts[t * n + p],
            _ => 0,
        }
    }

    /// Overall voxel accuracy.
    pub fn accuracy(&self) -> f64 {
        let n = self.labels.len();
        let correct: u64 = (0..n).map(|i| self.counts[i * n + i]).sum();
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 1.0;
        }
        correct as f64 / total as f64
    }

    /// Precision of one class: correct / all predicted as the class.
    pub fn precision(&self, label: u8) -> f64 {
        let n = self.labels.len();
        let Ok(p) = self.labels.binary_search(&label) else { return 0.0 };
        let tp = self.counts[p * n + p];
        let pred: u64 = (0..n).map(|t| self.counts[t * n + p]).sum();
        if pred == 0 {
            return 0.0;
        }
        tp as f64 / pred as f64
    }

    /// Recall (sensitivity) of one class: correct / all truly the class.
    pub fn recall(&self, label: u8) -> f64 {
        let n = self.labels.len();
        let Ok(t) = self.labels.binary_search(&label) else { return 0.0 };
        let tp = self.counts[t * n + t];
        let truth: u64 = (0..n).map(|p| self.counts[t * n + p]).sum();
        if truth == 0 {
            return 0.0;
        }
        tp as f64 / truth as f64
    }

    /// Dice coefficient of one class (harmonic mean of precision/recall).
    pub fn dice(&self, label: u8) -> f64 {
        let p = self.precision(label);
        let r = self.recall(label);
        if p + r == 0.0 {
            return 0.0;
        }
        2.0 * p * r / (p + r)
    }

    /// Render a compact table with per-class precision/recall/Dice.
    pub fn render(&self, name_of: impl Fn(u8) -> &'static str) -> String {
        let mut out = format!("overall accuracy: {:.3}\n", self.accuracy());
        out.push_str(&format!(
            "{:<18} {:>10} {:>10} {:>10}\n",
            "class", "precision", "recall", "dice"
        ));
        for &l in &self.labels {
            out.push_str(&format!(
                "{:<18} {:>10.3} {:>10.3} {:>10.3}\n",
                name_of(l),
                self.precision(l),
                self.recall(l),
                self.dice(l)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use brainshift_imaging::volume::{Dims, Spacing};

    fn vol(f: impl FnMut(usize, usize, usize) -> u8) -> Volume<u8> {
        Volume::from_fn(Dims::new(4, 4, 4), Spacing::iso(1.0), f)
    }

    #[test]
    fn perfect_prediction() {
        let t = vol(|x, _, _| if x < 2 { 1 } else { 2 });
        let cm = ConfusionMatrix::from_volumes(&t, &t);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.precision(1), 1.0);
        assert_eq!(cm.recall(2), 1.0);
        assert_eq!(cm.dice(1), 1.0);
    }

    #[test]
    fn known_confusion_counts() {
        // Truth: x<2 → 1 (32 voxels), else 2 (32). Prediction flips the
        // x==1 plane (16 voxels of class 1 predicted as 2).
        let t = vol(|x, _, _| if x < 2 { 1 } else { 2 });
        let p = vol(|x, _, _| if x < 1 { 1 } else { 2 });
        let cm = ConfusionMatrix::from_volumes(&t, &p);
        assert_eq!(cm.count(1, 1), 16);
        assert_eq!(cm.count(1, 2), 16);
        assert_eq!(cm.count(2, 2), 32);
        assert_eq!(cm.count(2, 1), 0);
        assert!((cm.accuracy() - 48.0 / 64.0).abs() < 1e-12);
        assert!((cm.recall(1) - 0.5).abs() < 1e-12);
        assert!((cm.precision(1) - 1.0).abs() < 1e-12);
        // Dice(1) = 2·0.5·1/(1.5) = 2/3
        assert!((cm.dice(1) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn absent_label_scores_zero() {
        let t = vol(|_, _, _| 1);
        let cm = ConfusionMatrix::from_volumes(&t, &t);
        assert_eq!(cm.precision(9), 0.0);
        assert_eq!(cm.recall(9), 0.0);
        assert_eq!(cm.dice(9), 0.0);
    }

    #[test]
    fn render_contains_classes() {
        let t = vol(|x, _, _| if x < 2 { 4 } else { 5 });
        let cm = ConfusionMatrix::from_volumes(&t, &t);
        let s = cm.render(brainshift_imaging::labels::label_name);
        assert!(s.contains("brain"));
        assert!(s.contains("ventricle"));
        assert!(s.contains("accuracy: 1.000"));
    }
}
