//! Analytic elasticity oracles: constant-strain patch tests.
//!
//! For a homogeneous linear-elastic body, *any* displacement field with a
//! constant gradient `u(p) = A·p` produces a constant stress, whose
//! divergence vanishes — it is an exact equilibrium solution for zero
//! body force, whatever `A` is. A conforming finite element with linear
//! shape functions represents such a field exactly, so imposing it on
//! the boundary must reproduce it at every interior node to solver
//! precision. This is the classical patch test (Miller et al. use it as
//! the admission gate for surgical simulation codes): failure here means
//! the element, the assembly, or the Dirichlet reduction is wrong — not
//! the mesh resolution.

use brainshift_fem::{solve_deformation, DirichletBcs, FemSolveConfig, MaterialTable};
use brainshift_imaging::volume::{Dims, Spacing, Volume};
use brainshift_imaging::{labels, Mat3, Vec3};
use brainshift_mesh::{boundary_nodes, mesh_labeled_volume, MesherConfig, TetMesh};
use brainshift_sparse::SolverOptions;

/// The linear field `u(p) = A·p`.
pub fn linear_field(a: Mat3) -> impl Fn(Vec3) -> Vec3 {
    move |p| a * p
}

/// Displacement gradient of a uniaxial stretch along `x` with lateral
/// Poisson contraction: `u = (ε x, −ν ε y, −ν ε z)`. This is the exact
/// displacement of a bar under uniaxial *stress*; as a linear field it is
/// also an equilibrium state when imposed on the whole boundary.
pub fn uniaxial_stretch_gradient(strain: f64, poisson: f64) -> Mat3 {
    Mat3::from_rows(
        [strain, 0.0, 0.0],
        [0.0, -poisson * strain, 0.0],
        [0.0, 0.0, -poisson * strain],
    )
}

/// Displacement gradient of a pure (symmetric) shear in the x–z plane:
/// `u = (γ/2 · z, 0, γ/2 · x)`, engineering shear strain `γ`.
pub fn pure_shear_gradient(gamma: f64) -> Mat3 {
    Mat3::from_rows([0.0, 0.0, gamma / 2.0], [0.0, 0.0, 0.0], [gamma / 2.0, 0.0, 0.0])
}

/// Result of one patch test.
#[derive(Debug, Clone)]
pub struct PatchResult {
    /// Test label for reports.
    pub name: String,
    /// Whether the Krylov solve converged.
    pub converged: bool,
    /// max‖u_h − u*‖ / max‖u*‖ over all nodes.
    pub max_rel_err: f64,
    /// RMS nodal error over RMS of the exact field.
    pub l2_rel_err: f64,
    /// Equations in the solved system (before reduction).
    pub equations: usize,
}

/// A unit-cube brain-tissue block mesh with `n` cells per edge, generated
/// through the production mesher (so the patch test exercises the same
/// element/assembly path as the intraoperative pipeline).
pub fn unit_cube_mesh(n: usize) -> TetMesh {
    let seg = Volume::from_fn(Dims::new(n, n, n), Spacing::iso(1.0 / n as f64), |_, _, _| {
        labels::BRAIN
    });
    mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable })
}

/// Impose `u(p) = grad·p` on the boundary of `mesh`, solve with the
/// production FEM driver, and measure the nodal error against the exact
/// field. A healthy discretization reports `max_rel_err` at the Krylov
/// tolerance, orders of magnitude below any mesh-resolution effect.
pub fn run_patch_test(
    name: &str,
    mesh: &TetMesh,
    materials: &MaterialTable,
    grad: Mat3,
    tolerance: f64,
) -> PatchResult {
    let field = linear_field(grad);
    let mut bcs = DirichletBcs::new();
    for &n in boundary_nodes(mesh).iter() {
        bcs.set(n, field(mesh.nodes[n]));
    }
    let cfg = FemSolveConfig {
        options: SolverOptions { tolerance, max_iterations: 20_000, ..Default::default() },
        ..Default::default()
    };
    let sol = match solve_deformation(mesh, materials, &bcs, &cfg) {
        Ok(s) => s,
        Err(_) => {
            return PatchResult {
                name: name.to_string(),
                converged: false,
                max_rel_err: f64::INFINITY,
                l2_rel_err: f64::INFINITY,
                equations: mesh.num_equations(),
            }
        }
    };
    let mut max_err = 0.0f64;
    let mut max_exact = 0.0f64;
    let mut sq_err = 0.0f64;
    let mut sq_exact = 0.0f64;
    for (n, &u) in sol.displacements.iter().enumerate() {
        let exact = field(mesh.nodes[n]);
        let e = (u - exact).norm();
        max_err = max_err.max(e);
        max_exact = max_exact.max(exact.norm());
        sq_err += e * e;
        sq_exact += exact.norm_sq();
    }
    let scale = max_exact.max(1e-300);
    PatchResult {
        name: name.to_string(),
        converged: sol.stats.converged(),
        max_rel_err: max_err / scale,
        l2_rel_err: (sq_err / sq_exact.max(1e-300)).sqrt(),
        equations: mesh.num_equations(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniaxial_stretch_reproduced_to_solver_precision() {
        let mesh = unit_cube_mesh(4);
        let grad = uniaxial_stretch_gradient(0.02, 0.45);
        let r = run_patch_test("uniaxial", &mesh, &MaterialTable::homogeneous(), grad, 1e-12);
        assert!(r.converged, "{r:?}");
        assert!(r.max_rel_err <= 1e-8, "uniaxial patch error {:.3e}", r.max_rel_err);
    }

    #[test]
    fn pure_shear_reproduced_to_solver_precision() {
        let mesh = unit_cube_mesh(4);
        let grad = pure_shear_gradient(0.03);
        let r = run_patch_test("shear", &mesh, &MaterialTable::homogeneous(), grad, 1e-12);
        assert!(r.converged, "{r:?}");
        assert!(r.max_rel_err <= 1e-8, "shear patch error {:.3e}", r.max_rel_err);
    }

    #[test]
    fn arbitrary_linear_field_including_rotation_part() {
        // A general A (symmetric + antisymmetric parts): still equilibrium.
        let mesh = unit_cube_mesh(3);
        let a = Mat3::from_rows([0.011, 0.004, -0.002], [-0.003, -0.006, 0.005], [0.002, -0.001, 0.009]);
        let r = run_patch_test("general-linear", &mesh, &MaterialTable::homogeneous(), a, 1e-12);
        assert!(r.converged);
        assert!(r.max_rel_err <= 1e-8, "{:.3e}", r.max_rel_err);
    }

    #[test]
    fn heterogeneous_material_fails_gracefully_not_silently() {
        // With *heterogeneous* materials a linear field is no longer an
        // equilibrium state (stress jumps at material interfaces), so the
        // patch error must be far above solver precision — guarding
        // against an oracle that vacuously passes everything.
        let seg = Volume::from_fn(Dims::new(4, 4, 4), Spacing::iso(0.25), |x, _, _| {
            if x < 2 {
                labels::BRAIN
            } else {
                labels::FALX
            }
        });
        let mesh = mesh_labeled_volume(&seg, &MesherConfig { step: 1, include: labels::is_deformable });
        let grad = uniaxial_stretch_gradient(0.02, 0.45);
        let r = run_patch_test("hetero", &mesh, &MaterialTable::heterogeneous(), grad, 1e-12);
        assert!(r.converged);
        assert!(r.max_rel_err > 1e-6, "oracle cannot distinguish: {:.3e}", r.max_rel_err);
    }
}
