//! # brainshift-conformance
//!
//! The correctness gate of the solver stack. The paper's claim is "fast
//! *and* faithful": the FEM solve must reproduce the volumetric
//! deformation the surface displacements imply, across every solve path
//! the repo has grown — cold GMRES, BiCGStab, the escalation ladder, the
//! warm per-surgery [`brainshift_fem::SolverContext`], and the
//! thread-message-passing distributed solver. This crate provides the
//! oracle hierarchy (DESIGN.md §10) that says the fields are *right*,
//! not merely self-consistent:
//!
//! 1. **Patch tests** ([`analytic`]) — any linear displacement field is
//!    an exact equilibrium state of a constant-strain element, so linear
//!    tets must reproduce it to solver precision (≤ 1e-8 relative).
//! 2. **Manufactured solutions** ([`mms`]) — a smooth equilibrium field
//!    imposed as Dirichlet data on refined meshes; the observed L2 error
//!    must shrink at order ≈ 2, the discretization's design order.
//! 3. **Differential harness** ([`differential`]) — one problem pushed
//!    through every solve path; all fields must agree pairwise to the
//!    Krylov tolerance (≤ 1e-6 relative).
//! 4. **Golden fields** ([`golden`]) — deterministic phantom cases whose
//!    solved displacement fields are quantized and hashed against
//!    checked-in goldens, catching silent numerical drift between PRs.
//!
//! The `conformance_report` binary runs all four and writes
//! `bench_out/conformance.json` next to the perf trajectories.

#![warn(missing_docs)]

pub mod analytic;
pub mod differential;
pub mod golden;
pub mod mms;
pub mod report;

pub use analytic::{
    linear_field, pure_shear_gradient, run_patch_test, uniaxial_stretch_gradient, PatchResult,
};
pub use differential::{
    run_differential, run_keypoint_recovery, DifferentialOptions, DifferentialResult,
    KeypointRecoveryResult, PathField,
};
pub use golden::{
    default_golden_cases, evaluate_goldens, evaluate_scenario_goldens, golden_field,
    parse_goldens, quantized_field_hash, scenario_golden_cases, scenario_golden_field, GoldenCase,
    GoldenOutcome, CHECKED_IN_GOLDENS, GOLDEN_QUANTUM_MM,
};
pub use mms::{run_mms, MmsLevel, MmsResult};
pub use report::{write_json_report, ConformanceReport};
