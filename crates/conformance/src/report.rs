//! Aggregate conformance report written to `bench_out/conformance.json`.
//!
//! The document is a `brainshift.obs.v1` bench report — the same schema
//! the perf trajectory writers emit — with the four oracle levels under
//! `extra`, so one reader handles every file in `bench_out/`.

use crate::differential::{DifferentialResult, KeypointRecoveryResult};
use crate::golden::GoldenOutcome;
use crate::mms::MmsResult;
use crate::PatchResult;
use brainshift_obs::{BenchReport, JsonValue};
use std::path::Path;

/// Everything the four oracle levels produced in one run.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Patch-test results (level 1).
    pub patch: Vec<PatchResult>,
    /// MMS convergence study (level 2).
    pub mms: MmsResult,
    /// Differential harness outcome (level 3).
    pub differential: DifferentialResult,
    /// Golden-field outcomes (level 4), phantom and scenario cases alike.
    pub goldens: Vec<GoldenOutcome>,
    /// Sparse-keypoint recovery differential (level 5): monotone in K,
    /// exact at full coverage.
    pub keypoints: KeypointRecoveryResult,
}

impl ConformanceReport {
    /// True when every level passes its acceptance threshold: patch
    /// ≤ 1e-8 relative, every MMS order ≥ 1.9, all solve paths pairwise
    /// within 1e-6, every golden hash matching, and keypoint recovery
    /// monotone with ≤ 1e-6 relative error at full coverage.
    pub fn all_pass(&self) -> bool {
        self.patch.iter().all(|p| p.converged && p.max_rel_err <= 1e-8)
            && self.mms.passes(1.9)
            && self.differential.agrees_within(1e-6)
            && !self.goldens.is_empty()
            && self.goldens.iter().all(|g| g.matches)
            && self.keypoints.monotone
            && self.keypoints.full_coverage_rel <= 1e-6
    }

    /// The report as a `brainshift.obs.v1` bench document, the shared
    /// schema of every file in `bench_out/`. The oracle payload lives
    /// under `extra`; `params` carries the problem sizes.
    pub fn to_report(&self) -> BenchReport {
        let patch_tests: JsonValue = self
            .patch
            .iter()
            .map(|p| {
                JsonValue::obj()
                    .with("name", p.name.as_str().into())
                    .with("converged", p.converged.into())
                    .with("max_rel_err", p.max_rel_err.into())
                    .with("l2_rel_err", p.l2_rel_err.into())
                    .with("equations", p.equations.into())
            })
            .collect();

        let levels: JsonValue = self
            .mms
            .levels
            .iter()
            .map(|l| {
                JsonValue::obj()
                    .with("n", l.n.into())
                    .with("h", l.h.into())
                    .with("l2_rel_err", l.l2_rel_err.into())
                    .with("equations", l.equations.into())
                    .with("converged", l.converged.into())
            })
            .collect();
        let mms = JsonValue::obj()
            .with("levels", levels)
            .with("observed_orders", self.mms.orders.iter().map(|&o| JsonValue::Num(o)).collect())
            .with("asymptotic_order", self.mms.observed_order().into());

        let paths: JsonValue = self
            .differential
            .paths
            .iter()
            .map(|p| {
                JsonValue::obj()
                    .with("name", p.name.as_str().into())
                    .with("converged", p.converged.into())
                    .with("iterations", p.iterations.into())
                    .with("relative_residual", p.relative_residual.into())
            })
            .collect();
        let pairwise: JsonValue = self
            .differential
            .pairwise
            .iter()
            .map(|(a, b, d)| {
                JsonValue::obj()
                    .with("a", a.as_str().into())
                    .with("b", b.as_str().into())
                    .with("max_rel_dev", (*d).into())
            })
            .collect();
        let differential = JsonValue::obj()
            .with("paths", paths)
            .with("pairwise", pairwise)
            .with("max_pairwise_rel", self.differential.max_pairwise_rel.into());

        let goldens: JsonValue = self
            .goldens
            .iter()
            .map(|g| {
                JsonValue::obj()
                    .with("name", g.name.as_str().into())
                    .with("hash", format!("{:016x}", g.hash).into())
                    .with(
                        "expected",
                        match g.expected {
                            Some(h) => format!("{h:016x}").into(),
                            None => JsonValue::Null,
                        },
                    )
                    .with("matches", g.matches.into())
                    .with("nodes", g.nodes.into())
                    .with("max_shift_mm", g.max_shift_mm.into())
            })
            .collect();

        let curve: JsonValue = self
            .keypoints
            .curve
            .iter()
            .map(|p| {
                JsonValue::obj()
                    .with("k", p.k.into())
                    .with("rms_mm", p.rms_mm.into())
                    .with("max_mm", p.max_mm.into())
                    .with("rel_max", p.rel_max.into())
            })
            .collect();
        let keypoints = JsonValue::obj()
            .with("seed", self.keypoints.seed.into())
            .with("total_keypoints", self.keypoints.total_keypoints.into())
            .with("curve", curve)
            .with("monotone", self.keypoints.monotone.into())
            .with("full_coverage_rel", self.keypoints.full_coverage_rel.into());

        let mut report = BenchReport::new("conformance");
        report.params = JsonValue::obj()
            .with("patch_cases", self.patch.len().into())
            .with("mms_levels", self.mms.levels.len().into())
            .with("solver_paths", self.differential.paths.len().into())
            .with("golden_cases", self.goldens.len().into())
            .with("keypoint_curve_points", self.keypoints.curve.len().into());
        report.extra = JsonValue::obj()
            .with("all_pass", self.all_pass().into())
            .with("patch_tests", patch_tests)
            .with("mms", mms)
            .with("differential", differential)
            .with("goldens", goldens)
            .with("keypoints", keypoints);
        report
    }

    /// Render the report as JSON (the rendered [`Self::to_report`]).
    pub fn to_json(&self) -> String {
        self.to_report().render()
    }
}

/// Write the report to `path`, creating parent directories as needed.
pub fn write_json_report(report: &ConformanceReport, path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, report.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::PathField;
    use crate::mms::{MmsLevel, MmsResult};

    fn tiny_report(pass: bool) -> ConformanceReport {
        let err = if pass { 1e-10 } else { 1e-3 };
        ConformanceReport {
            patch: vec![PatchResult {
                name: "uniaxial".into(),
                converged: true,
                max_rel_err: err,
                l2_rel_err: err,
                equations: 81,
            }],
            mms: MmsResult {
                levels: vec![
                    MmsLevel { n: 4, h: 0.25, l2_rel_err: 4e-3, equations: 1, converged: true },
                    MmsLevel { n: 8, h: 0.125, l2_rel_err: 1e-3, equations: 2, converged: true },
                ],
                orders: vec![2.0],
            },
            differential: DifferentialResult {
                paths: vec![PathField {
                    name: "gmres".into(),
                    field: vec![],
                    converged: true,
                    iterations: 10,
                    relative_residual: 1e-11,
                }],
                pairwise: vec![],
                max_pairwise_rel: 1e-9,
            },
            goldens: vec![GoldenOutcome {
                name: "baseline".into(),
                hash: 0xabc,
                expected: Some(0xabc),
                matches: true,
                nodes: 100,
                max_shift_mm: 7.5,
            }],
            keypoints: KeypointRecoveryResult {
                seed: 2,
                total_keypoints: 120,
                curve: vec![crate::differential::RecoveryPoint {
                    k: 120,
                    rms_mm: 0.0,
                    max_mm: 0.0,
                    rel_max: 1e-9,
                }],
                monotone: true,
                full_coverage_rel: 1e-9,
            },
        }
    }

    #[test]
    fn json_is_structurally_balanced_and_complete() {
        let j = tiny_report(true).to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for key in [
            "patch_tests",
            "mms",
            "differential",
            "goldens",
            "keypoints",
            "full_coverage_rel",
            "all_pass",
            "asymptotic_order",
        ] {
            assert!(j.contains(key), "missing {key}");
        }
        assert!(j.contains("\"all_pass\": true"));
        // The document is a shared-schema bench report: it must parse
        // back through the obs reader like every other bench_out file.
        let parsed = brainshift_obs::parse_json(&j).expect("valid JSON");
        let back = BenchReport::from_json(&parsed).expect("brainshift.obs.v1 schema");
        assert_eq!(back.name, "conformance");
    }

    #[test]
    fn all_pass_reflects_thresholds() {
        assert!(tiny_report(true).all_pass());
        assert!(!tiny_report(false).all_pass());
    }

    #[test]
    fn report_round_trips_to_disk() {
        let dir = std::env::temp_dir().join("conformance_report_test");
        let path = dir.join("nested").join("conformance.json");
        write_json_report(&tiny_report(true), &path).expect("write");
        let back = std::fs::read_to_string(&path).expect("read");
        assert_eq!(back, tiny_report(true).to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
