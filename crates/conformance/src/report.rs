//! Aggregate conformance report written to `bench_out/conformance.json`.
//!
//! JSON is hand-rolled (no serde in the build environment, matching the
//! bench crate's trajectory writers).

use crate::differential::DifferentialResult;
use crate::golden::GoldenOutcome;
use crate::mms::MmsResult;
use crate::PatchResult;
use std::fmt::Write as _;
use std::path::Path;

/// Everything the four oracle levels produced in one run.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Patch-test results (level 1).
    pub patch: Vec<PatchResult>,
    /// MMS convergence study (level 2).
    pub mms: MmsResult,
    /// Differential harness outcome (level 3).
    pub differential: DifferentialResult,
    /// Golden-field outcomes (level 4).
    pub goldens: Vec<GoldenOutcome>,
}

impl ConformanceReport {
    /// True when every level passes its acceptance threshold: patch
    /// ≤ 1e-8 relative, every MMS order ≥ 1.9, all solve paths pairwise
    /// within 1e-6, and every golden hash matching.
    pub fn all_pass(&self) -> bool {
        self.patch.iter().all(|p| p.converged && p.max_rel_err <= 1e-8)
            && self.mms.passes(1.9)
            && self.differential.agrees_within(1e-6)
            && !self.goldens.is_empty()
            && self.goldens.iter().all(|g| g.matches)
    }

    /// Render the report as JSON.
    pub fn to_json(&self) -> String {
        let mut j = String::new();
        let _ = writeln!(j, "{{");
        let _ = writeln!(j, "  \"all_pass\": {},", self.all_pass());

        let _ = writeln!(j, "  \"patch_tests\": [");
        for (i, p) in self.patch.iter().enumerate() {
            let comma = if i + 1 < self.patch.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "    {{\"name\": \"{}\", \"converged\": {}, \"max_rel_err\": {:.6e}, \"l2_rel_err\": {:.6e}, \"equations\": {}}}{comma}",
                p.name, p.converged, p.max_rel_err, p.l2_rel_err, p.equations
            );
        }
        let _ = writeln!(j, "  ],");

        let _ = writeln!(j, "  \"mms\": {{");
        let _ = writeln!(j, "    \"levels\": [");
        for (i, l) in self.mms.levels.iter().enumerate() {
            let comma = if i + 1 < self.mms.levels.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "      {{\"n\": {}, \"h\": {:.6}, \"l2_rel_err\": {:.6e}, \"equations\": {}, \"converged\": {}}}{comma}",
                l.n, l.h, l.l2_rel_err, l.equations, l.converged
            );
        }
        let _ = writeln!(j, "    ],");
        let orders: Vec<String> = self.mms.orders.iter().map(|o| format!("{o:.4}")).collect();
        let _ = writeln!(j, "    \"observed_orders\": [{}],", orders.join(", "));
        let _ = writeln!(j, "    \"asymptotic_order\": {:.4}", self.mms.observed_order());
        let _ = writeln!(j, "  }},");

        let _ = writeln!(j, "  \"differential\": {{");
        let _ = writeln!(j, "    \"paths\": [");
        for (i, p) in self.differential.paths.iter().enumerate() {
            let comma = if i + 1 < self.differential.paths.len() { "," } else { "" };
            let _ = writeln!(
                j,
                "      {{\"name\": \"{}\", \"converged\": {}, \"iterations\": {}, \"relative_residual\": {:.6e}}}{comma}",
                p.name, p.converged, p.iterations, p.relative_residual
            );
        }
        let _ = writeln!(j, "    ],");
        let _ = writeln!(j, "    \"pairwise\": [");
        for (i, (a, b, d)) in self.differential.pairwise.iter().enumerate() {
            let comma = if i + 1 < self.differential.pairwise.len() { "," } else { "" };
            let _ = writeln!(j, "      {{\"a\": \"{a}\", \"b\": \"{b}\", \"max_rel_dev\": {d:.6e}}}{comma}");
        }
        let _ = writeln!(j, "    ],");
        let _ = writeln!(
            j,
            "    \"max_pairwise_rel\": {:.6e}",
            self.differential.max_pairwise_rel
        );
        let _ = writeln!(j, "  }},");

        let _ = writeln!(j, "  \"goldens\": [");
        for (i, g) in self.goldens.iter().enumerate() {
            let comma = if i + 1 < self.goldens.len() { "," } else { "" };
            let expected = match g.expected {
                Some(h) => format!("\"{h:016x}\""),
                None => "null".to_string(),
            };
            let _ = writeln!(
                j,
                "    {{\"name\": \"{}\", \"hash\": \"{:016x}\", \"expected\": {expected}, \"matches\": {}, \"nodes\": {}, \"max_shift_mm\": {:.4}}}{comma}",
                g.name, g.hash, g.matches, g.nodes, g.max_shift_mm
            );
        }
        let _ = writeln!(j, "  ]");
        let _ = writeln!(j, "}}");
        j
    }
}

/// Write the report to `path`, creating parent directories as needed.
pub fn write_json_report(report: &ConformanceReport, path: &Path) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, report.to_json())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::differential::PathField;
    use crate::mms::{MmsLevel, MmsResult};

    fn tiny_report(pass: bool) -> ConformanceReport {
        let err = if pass { 1e-10 } else { 1e-3 };
        ConformanceReport {
            patch: vec![PatchResult {
                name: "uniaxial".into(),
                converged: true,
                max_rel_err: err,
                l2_rel_err: err,
                equations: 81,
            }],
            mms: MmsResult {
                levels: vec![
                    MmsLevel { n: 4, h: 0.25, l2_rel_err: 4e-3, equations: 1, converged: true },
                    MmsLevel { n: 8, h: 0.125, l2_rel_err: 1e-3, equations: 2, converged: true },
                ],
                orders: vec![2.0],
            },
            differential: DifferentialResult {
                paths: vec![PathField {
                    name: "gmres".into(),
                    field: vec![],
                    converged: true,
                    iterations: 10,
                    relative_residual: 1e-11,
                }],
                pairwise: vec![],
                max_pairwise_rel: 1e-9,
            },
            goldens: vec![GoldenOutcome {
                name: "baseline".into(),
                hash: 0xabc,
                expected: Some(0xabc),
                matches: true,
                nodes: 100,
                max_shift_mm: 7.5,
            }],
        }
    }

    #[test]
    fn json_is_structurally_balanced_and_complete() {
        let j = tiny_report(true).to_json();
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        for key in ["patch_tests", "mms", "differential", "goldens", "all_pass", "asymptotic_order"] {
            assert!(j.contains(key), "missing {key}");
        }
        assert!(j.contains("\"all_pass\": true"));
    }

    #[test]
    fn all_pass_reflects_thresholds() {
        assert!(tiny_report(true).all_pass());
        assert!(!tiny_report(false).all_pass());
    }

    #[test]
    fn report_round_trips_to_disk() {
        let dir = std::env::temp_dir().join("conformance_report_test");
        let path = dir.join("nested").join("conformance.json");
        write_json_report(&tiny_report(true), &path).expect("write");
        let back = std::fs::read_to_string(&path).expect("read");
        assert_eq!(back, tiny_report(true).to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
