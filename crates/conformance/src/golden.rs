//! Golden-field regression: catch silent numerical drift between PRs.
//!
//! The first three oracle levels check the solver against *mathematics*;
//! this one checks it against *itself over time*. A deterministic phantom
//! case ([`brainshift_imaging::phantom::generate_case`] under a fixed
//! seed) is meshed, driven by its analytic ground-truth shift, and
//! solved; the resulting nodal displacement field is quantized to a
//! tolerance-aware quantum and hashed. The hashes are checked in — any
//! PR that changes assembly order, preconditioning, or arithmetic enough
//! to move a node by more than the quantum flips the hash and fails the
//! gate, forcing the change to be acknowledged by regenerating the
//! goldens (`conformance_report --update-goldens`).

use brainshift_fem::{solve_deformation, DirichletBcs, FemSolveConfig, MaterialTable};
use brainshift_imaging::phantom::{generate_case, BrainShiftConfig, PhantomConfig};
use brainshift_imaging::volume::{Dims, Spacing};
use brainshift_imaging::{labels, Vec3};
use brainshift_mesh::{boundary_nodes, mesh_labeled_volume, MesherConfig, TetMesh};
use brainshift_scenario::{generate_scenario, ScenarioKind};
use brainshift_sparse::SolverOptions;

/// Quantization step (mm) applied to every displacement component before
/// hashing. Set three orders of magnitude above the Krylov solve
/// tolerance's field effect so legitimate run-to-run libm/reduction
/// variance cannot flip a hash, yet five orders below any clinically
/// visible change.
pub const GOLDEN_QUANTUM_MM: f64 = 1e-6;

/// The checked-in golden hashes (`name<TAB>fnv1a_hex` per line; `#`
/// comments). Regenerate with `conformance_report --update-goldens`.
pub const CHECKED_IN_GOLDENS: &str = include_str!("../goldens/golden_fields.tsv");

/// One deterministic regression case.
#[derive(Debug, Clone)]
pub struct GoldenCase {
    /// Stable name used as the golden key.
    pub name: &'static str,
    /// Phantom generation parameters (seed included).
    pub phantom: PhantomConfig,
    /// Ground-truth brain-shift parameters.
    pub shift: BrainShiftConfig,
    /// Mesher step over the preop label volume.
    pub mesh_step: usize,
    /// Krylov tolerance of the golden solve.
    pub tolerance: f64,
}

/// Outcome of checking one case against the goldens.
#[derive(Debug, Clone)]
pub struct GoldenOutcome {
    /// Case name.
    pub name: String,
    /// Hash computed in this run.
    pub hash: u64,
    /// The checked-in hash, if the case has one.
    pub expected: Option<u64>,
    /// `expected == Some(hash)`.
    pub matches: bool,
    /// Nodes in the solved mesh (context for drift triage).
    pub nodes: usize,
    /// Peak displacement magnitude of the solved field, mm.
    pub max_shift_mm: f64,
}

/// The fixed regression suite. Small volumes — the point is determinism
/// coverage of the phantom → mesh → assemble → solve chain, not scale.
pub fn default_golden_cases() -> Vec<GoldenCase> {
    let small = |seed: u64| PhantomConfig {
        dims: Dims::new(28, 28, 22),
        spacing: Spacing::iso(5.0),
        seed,
        ..Default::default()
    };
    vec![
        GoldenCase {
            name: "baseline-top-shift",
            phantom: small(0xB12A_0001),
            shift: BrainShiftConfig::default(),
            mesh_step: 2,
            tolerance: 1e-10,
        },
        GoldenCase {
            name: "lateral-craniotomy",
            phantom: small(0xB12A_0002),
            shift: BrainShiftConfig {
                craniotomy_dir: Vec3::new(1.0, 0.0, 0.3),
                peak_shift_mm: 11.0,
                surface_sigma_mm: 28.0,
                resect_tumor: true,
            },
            mesh_step: 2,
            tolerance: 1e-10,
        },
        GoldenCase {
            name: "shallow-no-resection",
            phantom: PhantomConfig {
                tumor_center_frac: Vec3::new(-0.35, 0.2, 0.4),
                tumor_radius: 7.0,
                ..small(0xB12A_0003)
            },
            shift: BrainShiftConfig {
                peak_shift_mm: 5.0,
                surface_sigma_mm: 45.0,
                resect_tumor: false,
                ..Default::default()
            },
            mesh_step: 2,
            tolerance: 1e-10,
        },
    ]
}

/// Generate the case, mesh its preoperative brain tissue, impose the
/// analytic ground-truth shift on the mesh boundary, and solve — the
/// same chain the registration pipeline runs. Returns the mesh and the
/// solved per-node displacement field.
pub fn golden_field(case: &GoldenCase) -> (TetMesh, Vec<Vec3>) {
    let synth = generate_case(&case.phantom, &case.shift);
    let mesh = mesh_labeled_volume(
        &synth.preop.labels,
        &MesherConfig { step: case.mesh_step, include: labels::is_brain_tissue },
    );
    let sp = case.phantom.spacing;
    let mut bcs = DirichletBcs::new();
    for &n in boundary_nodes(&mesh).iter() {
        let p = mesh.nodes[n];
        let p_vox = Vec3::new(p.x / sp.dx, p.y / sp.dy, p.z / sp.dz);
        bcs.set(n, synth.gt_forward.sample(p_vox));
    }
    let cfg = FemSolveConfig {
        options: SolverOptions {
            tolerance: case.tolerance,
            max_iterations: 20_000,
            ..Default::default()
        },
        ..Default::default()
    };
    let sol = solve_deformation(&mesh, &MaterialTable::homogeneous(), &bcs, &cfg)
        .expect("golden case must be solvable");
    assert!(sol.stats.converged(), "golden solve did not converge: {:?}", sol.stats.reason);
    (mesh, sol.displacements)
}

/// The scenario-factory golden suite: one canonical seed per workload
/// class. The hashed field is the class's solved ground-truth nodal
/// displacement — so drift anywhere in the generator chain (phantom,
/// carve, snap, contact active set, body-force assembly, solver) flips
/// the hash, not just drift in the solver.
pub fn scenario_golden_cases() -> Vec<(&'static str, ScenarioKind, u64)> {
    vec![
        ("scenario-gravity-sag", ScenarioKind::GravitySag, 3),
        ("scenario-resection-collapse", ScenarioKind::ResectionCollapse, 0),
        ("scenario-skull-contact", ScenarioKind::SkullContact, 1),
        ("scenario-sparse-keypoints", ScenarioKind::SparseKeypoints, 2),
    ]
}

/// Generate one scenario golden case and return its ground-truth nodal
/// displacement field (the quantity hashed into the goldens file).
pub fn scenario_golden_field(kind: ScenarioKind, seed: u64) -> Vec<Vec3> {
    let case = generate_scenario(kind, seed)
        .unwrap_or_else(|e| panic!("scenario golden {}-{seed} must generate: {e}", kind.name()));
    case.gt_displacements
}

/// Evaluate the scenario golden suite against `checked_in`, with the
/// same missing-golden-is-a-failure semantics as [`evaluate_goldens`].
pub fn evaluate_scenario_goldens(checked_in: &str) -> Vec<GoldenOutcome> {
    let golden = parse_goldens(checked_in);
    scenario_golden_cases()
        .into_iter()
        .map(|(name, kind, seed)| {
            let field = scenario_golden_field(kind, seed);
            let hash = quantized_field_hash(&field, GOLDEN_QUANTUM_MM);
            let expected = golden.iter().find(|(n, _)| n == name).map(|&(_, h)| h);
            GoldenOutcome {
                name: name.to_string(),
                hash,
                expected,
                matches: expected == Some(hash),
                nodes: field.len(),
                max_shift_mm: field.iter().fold(0.0f64, |m, u| m.max(u.norm())),
            }
        })
        .collect()
}

/// Quantize each component to `quantum` and FNV-1a-hash the resulting
/// integer stream. Fields that differ by less than half a quantum at
/// every component hash identically (away from rounding boundaries, which
/// the quantum's margin over solver noise keeps us from straddling).
pub fn quantized_field_hash(field: &[Vec3], quantum: f64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |v: f64| {
        let q = (v / quantum).round() as i64;
        for b in q.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    for u in field {
        eat(u.x);
        eat(u.y);
        eat(u.z);
    }
    h
}

/// Parse a goldens file: `name<TAB>hex_hash` lines, `#` comments.
/// Malformed lines are skipped (a truncated goldens file then reads as
/// "missing golden", which `evaluate_goldens` reports as a mismatch).
pub fn parse_goldens(text: &str) -> Vec<(String, u64)> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return None;
            }
            let (name, hex) = line.split_once('\t')?;
            let hash = u64::from_str_radix(hex.trim(), 16).ok()?;
            Some((name.trim().to_string(), hash))
        })
        .collect()
}

/// Solve every case and compare against `checked_in` (the contents of the
/// goldens file). A case without a checked-in hash reports
/// `expected: None, matches: false` — absence is a failure, so forgetting
/// to regenerate after adding a case cannot pass silently.
pub fn evaluate_goldens(cases: &[GoldenCase], checked_in: &str) -> Vec<GoldenOutcome> {
    let golden = parse_goldens(checked_in);
    cases
        .iter()
        .map(|case| {
            let (mesh, field) = golden_field(case);
            let hash = quantized_field_hash(&field, GOLDEN_QUANTUM_MM);
            let expected = golden.iter().find(|(n, _)| n == case.name).map(|&(_, h)| h);
            GoldenOutcome {
                name: case.name.to_string(),
                hash,
                expected,
                matches: expected == Some(hash),
                nodes: mesh.num_nodes(),
                max_shift_mm: field.iter().fold(0.0f64, |m, u| m.max(u.norm())),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable_across_two_full_regenerations() {
        let case = &default_golden_cases()[0];
        let (_, f1) = golden_field(case);
        let (_, f2) = golden_field(case);
        assert_eq!(
            quantized_field_hash(&f1, GOLDEN_QUANTUM_MM),
            quantized_field_hash(&f2, GOLDEN_QUANTUM_MM),
            "same case, same process, different hash — hidden nondeterminism"
        );
    }

    #[test]
    fn hash_reacts_to_super_quantum_motion() {
        let field = vec![Vec3::new(1.0, 2.0, 3.0); 10];
        let h0 = quantized_field_hash(&field, GOLDEN_QUANTUM_MM);
        let mut moved = field.clone();
        moved[7].y += 10.0 * GOLDEN_QUANTUM_MM;
        assert_ne!(h0, quantized_field_hash(&moved, GOLDEN_QUANTUM_MM));
    }

    #[test]
    fn parse_goldens_skips_comments_and_garbage() {
        let text = "# header\nfoo\tdeadbeef\n\nbar\tnot_hex\nbaz 1234\nqux\t001a\n";
        let g = parse_goldens(text);
        assert_eq!(g, vec![("foo".to_string(), 0xdead_beef), ("qux".to_string(), 0x1a)]);
    }

    #[test]
    fn checked_in_goldens_reproduce() {
        // The headline regression gate: every default case must hash to
        // its checked-in value. If this fails after an intentional
        // numerical change, regenerate with
        // `cargo run --bin conformance_report -- --update-goldens`.
        let outcomes = evaluate_goldens(&default_golden_cases(), CHECKED_IN_GOLDENS);
        assert!(!outcomes.is_empty());
        for o in &outcomes {
            assert!(
                o.matches,
                "golden drift in '{}': computed {:016x}, checked in {:?} (nodes {}, peak {:.3} mm)",
                o.name, o.hash, o.expected.map(|h| format!("{h:016x}")), o.nodes, o.max_shift_mm
            );
        }
    }

    #[test]
    fn scenario_goldens_reproduce() {
        for o in evaluate_scenario_goldens(CHECKED_IN_GOLDENS) {
            assert!(
                o.matches,
                "scenario golden drift in '{}': computed {:016x}, checked in {:?}",
                o.name,
                o.hash,
                o.expected.map(|h| format!("{h:016x}"))
            );
        }
    }

    #[test]
    fn golden_field_has_physically_sane_magnitude() {
        let case = &default_golden_cases()[0];
        let (_, field) = golden_field(case);
        let peak = field.iter().fold(0.0f64, |m, u| m.max(u.norm()));
        assert!(peak > 1.0 && peak < 30.0, "peak shift {peak:.2} mm out of range");
    }
}
