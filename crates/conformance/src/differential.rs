//! Differential solver harness: one problem, every solve path.
//!
//! The repo has grown several routes to the same reduced system — cold
//! GMRES, BiCGStab, the escalation ladder, the warm per-surgery
//! [`SolverContext`], and the thread-message-passing distributed GMRES at
//! 1/2/4/8 ranks. They share the assembly and Dirichlet reduction but
//! nothing else; a bug in any one of them shows up as a field that
//! silently disagrees with its siblings. This harness solves one
//! [`SimProblem`] through all of them and asserts pairwise agreement of
//! the *expanded nodal displacement fields*, which is the quantity the
//! registration pipeline actually consumes.

use brainshift_cluster::{distributed_gmres_ghosted, run_ranks, GhostedSystem, LocalSystem};
use brainshift_fem::{
    DirichletBcs, ElementOperator, FemSolveConfig, MaterialTable, SimProblem, SolverContext,
};
use brainshift_imaging::Vec3;
use brainshift_mesh::TetMesh;
use brainshift_scenario::{generate_scenario, keypoint_recovery_curve, ScenarioKind};
pub use brainshift_scenario::RecoveryPoint;
use brainshift_sparse::{
    bicgstab, gmres, partition::even_offsets, permute_symmetric, permute_vec, refine,
    reverse_cuthill_mckee_blocks, solve_escalated, unpermute_vec, BlockCsr, BlockJacobiPrecond,
    BlockSolve, EscalationPolicy, KrylovWorkspace, Preconditioner, RefineOptions, SolverOptions,
};

/// Knobs for the harness.
#[derive(Debug, Clone)]
pub struct DifferentialOptions {
    /// Krylov relative-residual tolerance used by every path. Pairwise
    /// field agreement is bounded by roughly `tolerance × κ`, so this
    /// sits well below the 1e-6 acceptance threshold.
    pub tolerance: f64,
    /// Iteration cap for every path.
    pub max_iterations: usize,
    /// Block count of the block-Jacobi/ILU(0) preconditioner for the
    /// shared-memory paths.
    pub blocks: usize,
    /// Rank counts for the distributed path.
    pub ranks: Vec<usize>,
}

impl Default for DifferentialOptions {
    fn default() -> Self {
        DifferentialOptions {
            tolerance: 1e-10,
            max_iterations: 20_000,
            blocks: 4,
            ranks: vec![1, 2, 4, 8],
        }
    }
}

/// One solve path's expanded nodal field plus its solve diagnostics.
#[derive(Debug, Clone)]
pub struct PathField {
    /// Path label (`"gmres"`, `"bicgstab"`, `"escalated"`,
    /// `"context-warm"`, `"distributed-p4"`, …).
    pub name: String,
    /// Per-node displacement after expansion through the Dirichlet
    /// structure (constrained nodes carry the imposed values).
    pub field: Vec<Vec3>,
    /// Whether this path's solver reported convergence.
    pub converged: bool,
    /// Iterations the path spent.
    pub iterations: usize,
    /// Final relative residual the path reported.
    pub relative_residual: f64,
}

/// Outcome of the harness: all fields plus the pairwise deviations.
#[derive(Debug, Clone)]
pub struct DifferentialResult {
    /// Every solve path, in a fixed order.
    pub paths: Vec<PathField>,
    /// `(name_a, name_b, max-node deviation / field scale)` for every
    /// unordered pair.
    pub pairwise: Vec<(String, String, f64)>,
    /// Largest entry of `pairwise` — the headline number.
    pub max_pairwise_rel: f64,
}

impl DifferentialResult {
    /// True when every path converged and every pair agrees to `tol`.
    pub fn agrees_within(&self, tol: f64) -> bool {
        self.paths.iter().all(|p| p.converged) && self.max_pairwise_rel <= tol
    }
}

fn expand_to_nodes(
    problem: &SimProblem,
    x_reduced: &[f64],
    u_c: &[f64],
    num_nodes: usize,
) -> Vec<Vec3> {
    let mut full = vec![0.0; 3 * num_nodes];
    problem.structure().expand_solution_into(x_reduced, u_c, &mut full);
    (0..num_nodes)
        .map(|n| Vec3::new(full[3 * n], full[3 * n + 1], full[3 * n + 2]))
        .collect()
}

/// Solve `mesh`/`materials`/`bcs` through every path and compare the
/// resulting fields pairwise. Panics only on structurally invalid input
/// (empty BCs, broken mesh) — solver non-convergence is *reported*, not
/// panicked, so the caller's assertion message can show which path and
/// by how much.
pub fn run_differential(
    mesh: &TetMesh,
    materials: &MaterialTable,
    bcs: &DirichletBcs,
    opts: &DifferentialOptions,
) -> DifferentialResult {
    let problem = SimProblem::new(mesh, materials, bcs);
    let structure = problem.structure();
    let nfree = structure.num_free();
    let num_nodes = mesh.num_nodes();

    let mut u_c = vec![0.0; structure.num_constrained()];
    structure
        .gather_constrained(bcs, &mut u_c)
        .expect("BCs were used to build the structure");
    let mut rhs = vec![0.0; nfree];
    structure.reduced_rhs_zero_f(&u_c, &mut rhs);

    let a = &structure.matrix;
    let pc = BlockJacobiPrecond::new(a, opts.blocks.min(nfree).max(1), BlockSolve::Ilu0)
        .expect("reduced stiffness blocks are non-singular");
    let sopts = SolverOptions {
        tolerance: opts.tolerance,
        max_iterations: opts.max_iterations,
        ..Default::default()
    };

    let mut paths: Vec<PathField> = Vec::new();

    // 1. Cold restarted GMRES — the paper's configuration.
    {
        let mut x = vec![0.0; nfree];
        let stats = gmres(a, &pc, &rhs, &mut x, &sopts).expect("reduced system dims agree");
        paths.push(PathField {
            name: "gmres".into(),
            field: expand_to_nodes(&problem, &x, &u_c, num_nodes),
            converged: stats.converged(),
            iterations: stats.iterations,
            relative_residual: stats.relative_residual,
        });
    }

    // 2. BiCGStab on the identical reduced system.
    {
        let mut x = vec![0.0; nfree];
        let stats = bicgstab(a, &pc, &rhs, &mut x, &sopts).expect("reduced system dims agree");
        paths.push(PathField {
            name: "bicgstab".into(),
            field: expand_to_nodes(&problem, &x, &u_c, num_nodes),
            converged: stats.converged(),
            iterations: stats.iterations,
            relative_residual: stats.relative_residual,
        });
    }

    // 3. The escalation ladder (should converge on its first rung here;
    //    the point is that the ladder machinery does not perturb a
    //    healthy solve).
    {
        let mut x = vec![0.0; nfree];
        let mut ws = KrylovWorkspace::new(nfree, sopts.restart);
        let out =
            solve_escalated(a, &pc, &rhs, &mut x, &sopts, &EscalationPolicy::default(), &mut ws)
                .expect("reduced system dims agree");
        paths.push(PathField {
            name: "escalated".into(),
            field: expand_to_nodes(&problem, &x, &u_c, num_nodes),
            converged: out.stats.converged(),
            iterations: out.stats.iterations,
            relative_residual: out.stats.relative_residual,
        });
    }

    // 4. RCM-reordered GMRES: permute the system with node-level reverse
    //    Cuthill–McKee, solve in the permuted order with a freshly
    //    factored preconditioner, and unpermute the solution.
    {
        let perm = reverse_cuthill_mckee_blocks(a, 3).expect("reduced matrix is square");
        let ap = permute_symmetric(a, &perm).expect("RCM permutation is valid");
        let pcp = BlockJacobiPrecond::new(&ap, opts.blocks.min(nfree).max(1), BlockSolve::Ilu0)
            .expect("permuted blocks stay non-singular");
        let rhs_p = permute_vec(&rhs, &perm);
        let mut y = vec![0.0; nfree];
        let stats = gmres(&ap, &pcp, &rhs_p, &mut y, &sopts).expect("permuted dims agree");
        let x = unpermute_vec(&y, &perm);
        paths.push(PathField {
            name: "rcm".into(),
            field: expand_to_nodes(&problem, &x, &u_c, num_nodes),
            converged: stats.converged(),
            iterations: stats.iterations,
            relative_residual: stats.relative_residual,
        });
    }

    // 5. Mixed-precision iterative refinement: f32 inner GMRES with an
    //    f32 copy of the shared preconditioner, f64 outer corrections.
    {
        let mirror = pc
            .mixed_mirror(a)
            .expect("block-jacobi always has an f32 companion");
        let mut x = vec![0.0; nfree];
        let stats = refine(a, &mirror, &rhs, &mut x, &sopts, &RefineOptions::default())
            .expect("mirror dims agree");
        paths.push(PathField {
            name: "mixed".into(),
            field: expand_to_nodes(&problem, &x, &u_c, num_nodes),
            converged: stats.converged(),
            iterations: stats.iterations,
            relative_residual: stats.relative_residual,
        });
    }

    // 6. Register-blocked 3×3 SpMV: same GMRES, same preconditioner,
    //    different matrix kernel.
    {
        let block = BlockCsr::from_csr(a).expect("elasticity DOFs come in node triples");
        let mut x = vec![0.0; nfree];
        let stats = gmres(&block, &pc, &rhs, &mut x, &sopts).expect("blocked dims agree");
        paths.push(PathField {
            name: "block-spmv".into(),
            field: expand_to_nodes(&problem, &x, &u_c, num_nodes),
            converged: stats.converged(),
            iterations: stats.iterations,
            relative_residual: stats.relative_residual,
        });
    }

    // 7. Matrix-free element operator: no assembled reduced matrix in
    //    the Krylov loop at all (the preconditioner is shared, which is
    //    legal — it only needs to approximate the operator).
    {
        let op = ElementOperator::new(mesh, materials, &structure.reduced_of_dof)
            .expect("mesh and structure agree");
        let mut x = vec![0.0; nfree];
        let stats = gmres(&op, &pc, &rhs, &mut x, &sopts).expect("element operator dims agree");
        paths.push(PathField {
            name: "matfree".into(),
            field: expand_to_nodes(&problem, &x, &u_c, num_nodes),
            converged: stats.converged(),
            iterations: stats.iterations,
            relative_residual: stats.relative_residual,
        });
    }

    // 8. Warm SolverContext: solve twice, keep the warm-started second
    //    solve — the intraoperative steady state.
    {
        let cfg = FemSolveConfig { options: sopts.clone(), ..Default::default() };
        let mut ctx = SolverContext::new(mesh, materials, &bcs.nodes_sorted(), cfg)
            .expect("context setup must succeed on a valid mesh");
        let _cold = ctx.solve(bcs).expect("cold context solve");
        let warm = ctx.solve(bcs).expect("warm context solve");
        paths.push(PathField {
            name: "context-warm".into(),
            field: warm.displacements.clone(),
            converged: warm.stats.converged(),
            iterations: warm.stats.iterations,
            relative_residual: warm.stats.relative_residual,
        });
    }

    // 9. Distributed ghosted GMRES over the reduced system at each rank
    //    count (rank-0's stats are representative — all ranks return the
    //    same stats by construction).
    for &p in &opts.ranks {
        let offsets = even_offsets(nfree, p);
        let eff_ranks = offsets.len() - 1;
        let per_rank = run_ranks(eff_ranks, |comm| {
            let r = comm.rank();
            let (lo, hi) = (offsets[r], offsets[r + 1]);
            let sys = LocalSystem::from_global(a, lo, hi).expect("offsets are in range");
            let ghosted = GhostedSystem::new(comm, sys, &offsets);
            distributed_gmres_ghosted(comm, &ghosted, &rhs[lo..hi], &sopts)
        });
        let stats = per_rank[0].1.clone();
        let x: Vec<f64> = per_rank.into_iter().flat_map(|(xl, _)| xl).collect();
        paths.push(PathField {
            name: format!("distributed-p{p}"),
            field: expand_to_nodes(&problem, &x, &u_c, num_nodes),
            converged: stats.converged(),
            iterations: stats.iterations,
            relative_residual: stats.relative_residual,
        });
    }

    // Pairwise max-node deviation, normalized by the largest displacement
    // magnitude any path produced (the clinically meaningful scale).
    let scale = paths
        .iter()
        .flat_map(|p| p.field.iter())
        .fold(0.0f64, |m, u| m.max(u.norm()))
        .max(1e-300);
    let mut pairwise = Vec::new();
    let mut max_pairwise_rel = 0.0f64;
    for i in 0..paths.len() {
        for j in i + 1..paths.len() {
            let dev = paths[i]
                .field
                .iter()
                .zip(paths[j].field.iter())
                .fold(0.0f64, |m, (a, b)| m.max((*a - *b).norm()))
                / scale;
            max_pairwise_rel = max_pairwise_rel.max(dev);
            pairwise.push((paths[i].name.clone(), paths[j].name.clone(), dev));
        }
    }
    DifferentialResult { paths, pairwise, max_pairwise_rel }
}

/// Outcome of the sparse-keypoint differential: the dense ground truth
/// re-solved from nested K-keypoint subsets.
#[derive(Debug, Clone)]
pub struct KeypointRecoveryResult {
    /// Seed of the generated sparse-keypoint scenario.
    pub seed: u64,
    /// Boundary nodes available as keypoints.
    pub total_keypoints: usize,
    /// Recovery error at each requested K, ascending.
    pub curve: Vec<RecoveryPoint>,
    /// RMS error non-increasing along the curve (the nested-subset
    /// guarantee), with a 1e-9 mm slack for solver noise.
    pub monotone: bool,
    /// Relative max-node error at K = all boundary nodes, where the
    /// constrained system *is* the dense system — must sit at solver
    /// precision (≤ 1e-6).
    pub full_coverage_rel: f64,
}

/// Run the keypoint-recovery differential on one seeded scenario:
/// generate the dense ground truth, re-solve from nested keypoint
/// prefixes at each fraction of the boundary (plus full coverage), and
/// score the curve. `fractions` are clamped per
/// [`brainshift_scenario::keypoint_recovery_curve`].
pub fn run_keypoint_recovery(seed: u64, fractions: &[f64]) -> KeypointRecoveryResult {
    let case = generate_scenario(ScenarioKind::SparseKeypoints, seed)
        .unwrap_or_else(|e| panic!("sparse-keypoint scenario {seed} must generate: {e}"));
    let total = case.keypoint_order.len();
    let mut ks: Vec<usize> = fractions
        .iter()
        .map(|f| ((total as f64) * f.clamp(0.0, 1.0)).round() as usize)
        .collect();
    ks.push(total);
    ks.sort_unstable();
    ks.dedup();
    let curve = keypoint_recovery_curve(&case, &ks)
        .unwrap_or_else(|e| panic!("keypoint recovery solve failed: {e}"));
    let monotone = curve.windows(2).all(|w| w[1].rms_mm <= w[0].rms_mm + 1e-9);
    let full_coverage_rel = curve.last().map(|p| p.rel_max).unwrap_or(f64::INFINITY);
    KeypointRecoveryResult { seed, total_keypoints: total, curve, monotone, full_coverage_rel }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic::unit_cube_mesh;
    use crate::mms::manufactured_field;
    use brainshift_mesh::boundary_nodes;

    #[test]
    fn all_solver_paths_agree_on_one_problem() {
        let mesh = unit_cube_mesh(4);
        let mut bcs = DirichletBcs::new();
        for &n in boundary_nodes(&mesh).iter() {
            bcs.set(n, manufactured_field(mesh.nodes[n]));
        }
        let r = run_differential(&mesh, &MaterialTable::homogeneous(), &bcs, &Default::default());
        assert_eq!(r.paths.len(), 8 + 4, "8 shared-memory paths + 4 rank counts");
        for p in &r.paths {
            assert!(p.converged, "{} did not converge: {:?}", p.name, p.relative_residual);
        }
        assert!(
            r.agrees_within(1e-6),
            "worst pair {:?}",
            r.pairwise
                .iter()
                .max_by(|a, b| a.2.total_cmp(&b.2))
        );
    }

    #[test]
    fn constrained_nodes_carry_imposed_values_in_every_path() {
        let mesh = unit_cube_mesh(3);
        let surface = boundary_nodes(&mesh);
        let mut bcs = DirichletBcs::new();
        for &n in surface.iter() {
            bcs.set(n, manufactured_field(mesh.nodes[n]));
        }
        let opts = DifferentialOptions { ranks: vec![2], ..Default::default() };
        let r = run_differential(&mesh, &MaterialTable::homogeneous(), &bcs, &opts);
        for p in &r.paths {
            for &n in surface.iter() {
                let imposed = manufactured_field(mesh.nodes[n]);
                assert!(
                    (p.field[n] - imposed).norm() < 1e-14,
                    "{}: node {n} drifted off its BC",
                    p.name
                );
            }
        }
    }
}
