//! Method of manufactured solutions: observed convergence order.
//!
//! The patch test certifies exactness on linear fields; it says nothing
//! about how fast the error of a *curved* field shrinks under mesh
//! refinement. We manufacture a smooth equilibrium displacement field,
//! impose it as Dirichlet data on a sequence of refined meshes from
//! `mesh::generator`, and measure the observed L2 convergence order —
//! linear tetrahedra are designed to deliver order ≈ 2.
//!
//! The manufactured field is chosen so that **no body-force term is
//! needed**: for homogeneous isotropic elasticity, Navier's equation
//! reads `(λ+μ)∇(∇·u) + μ∇²u = 0`, and any gradient of a harmonic
//! potential `u = ∇φ, ∇²φ = 0` satisfies it identically (`∇·u = ∇²φ = 0`
//! kills the first term, `∇²u = ∇(∇²φ) = 0` the second). We use
//! `φ = a(x³ − 3xz²) + b·xyz`, giving a genuinely 3-D quadratic
//! displacement with nonzero strain gradients everywhere.

use crate::analytic::unit_cube_mesh;
use brainshift_fem::{solve_deformation, DirichletBcs, FemSolveConfig, MaterialTable};
use brainshift_imaging::Vec3;
use brainshift_mesh::boundary_nodes;
use brainshift_sparse::SolverOptions;
use std::collections::HashSet;

/// Amplitude of the cubic-potential part (keeps peak |u| at a few % of
/// the unit-cube edge, the linear-elastic regime of the paper's shifts).
const AMPLITUDE_A: f64 = 0.01;
/// Amplitude of the `xyz` potential part.
const AMPLITUDE_B: f64 = 0.007;

/// The manufactured equilibrium displacement `u*(p) = ∇φ(p)` for
/// `φ = a(x³ − 3xz²) + b·xyz`.
pub fn manufactured_field(p: Vec3) -> Vec3 {
    Vec3::new(
        AMPLITUDE_A * (3.0 * p.x * p.x - 3.0 * p.z * p.z) + AMPLITUDE_B * p.y * p.z,
        AMPLITUDE_B * p.x * p.z,
        AMPLITUDE_A * (-6.0 * p.x * p.z) + AMPLITUDE_B * p.x * p.y,
    )
}

/// One refinement level of the MMS study.
#[derive(Debug, Clone)]
pub struct MmsLevel {
    /// Cells per cube edge.
    pub n: usize,
    /// Mesh size h = 1/n on the unit cube.
    pub h: f64,
    /// RMS error over interior (free) nodes, relative to the RMS of the
    /// exact field over the same nodes.
    pub l2_rel_err: f64,
    /// Equations solved.
    pub equations: usize,
    /// Whether the solve converged.
    pub converged: bool,
}

/// Result of the convergence study.
#[derive(Debug, Clone)]
pub struct MmsResult {
    /// Per-level errors, coarse → fine.
    pub levels: Vec<MmsLevel>,
    /// Observed orders between consecutive levels:
    /// `log2(e_{2h} / e_h)` (same length as `levels` − 1).
    pub orders: Vec<f64>,
}

impl MmsResult {
    /// The asymptotic estimate: the order observed between the two
    /// finest levels.
    pub fn observed_order(&self) -> f64 {
        self.orders.last().copied().unwrap_or(f64::NAN)
    }

    /// True when every solve converged and every pairwise order reaches
    /// `min_order`.
    pub fn passes(&self, min_order: f64) -> bool {
        self.levels.iter().all(|l| l.converged)
            && !self.orders.is_empty()
            && self.orders.iter().all(|&o| o >= min_order)
    }
}

/// Run the MMS study on unit-cube meshes with `cells_per_edge` cells per
/// level (coarse → fine; each entry should double the previous one for
/// the order formula to read as written).
pub fn run_mms(cells_per_edge: &[usize], tolerance: f64) -> MmsResult {
    let materials = MaterialTable::homogeneous();
    let mut levels = Vec::with_capacity(cells_per_edge.len());
    for &n in cells_per_edge {
        let mesh = unit_cube_mesh(n);
        let surface: HashSet<usize> = boundary_nodes(&mesh).into_iter().collect();
        let mut bcs = DirichletBcs::new();
        for &node in &surface {
            bcs.set(node, manufactured_field(mesh.nodes[node]));
        }
        let cfg = FemSolveConfig {
            options: SolverOptions { tolerance, max_iterations: 50_000, ..Default::default() },
            ..Default::default()
        };
        let sol = solve_deformation(&mesh, &materials, &bcs, &cfg)
            .expect("MMS problem must be well-posed");
        let mut sq_err = 0.0f64;
        let mut sq_exact = 0.0f64;
        for (node, &u) in sol.displacements.iter().enumerate() {
            if surface.contains(&node) {
                continue; // imposed exactly; only free nodes carry error
            }
            let exact = manufactured_field(mesh.nodes[node]);
            sq_err += (u - exact).norm_sq();
            sq_exact += exact.norm_sq();
        }
        levels.push(MmsLevel {
            n,
            h: 1.0 / n as f64,
            l2_rel_err: (sq_err / sq_exact.max(1e-300)).sqrt(),
            equations: mesh.num_equations(),
            converged: sol.stats.converged(),
        });
    }
    let orders = levels
        .windows(2)
        .map(|w| {
            let ratio = w[0].l2_rel_err / w[1].l2_rel_err.max(1e-300);
            ratio.log2() / (w[1].n as f64 / w[0].n as f64).log2()
        })
        .collect();
    MmsResult { levels, orders }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manufactured_field_is_divergence_free() {
        // ∇·u = ∇²φ must vanish — checked by central differences.
        let h = 1e-5;
        for &(x, y, z) in &[(0.3, 0.4, 0.5), (0.9, 0.1, 0.7), (0.5, 0.5, 0.5)] {
            let p = Vec3::new(x, y, z);
            let div = (manufactured_field(p + Vec3::new(h, 0.0, 0.0)).x
                - manufactured_field(p - Vec3::new(h, 0.0, 0.0)).x
                + manufactured_field(p + Vec3::new(0.0, h, 0.0)).y
                - manufactured_field(p - Vec3::new(0.0, h, 0.0)).y
                + manufactured_field(p + Vec3::new(0.0, 0.0, h)).z
                - manufactured_field(p - Vec3::new(0.0, 0.0, h)).z)
                / (2.0 * h);
            assert!(div.abs() < 1e-8, "div u = {div} at {p:?}");
        }
    }

    #[test]
    fn manufactured_field_components_are_harmonic() {
        // ∇²u_c = 0 for each component (7-point Laplacian stencil).
        let h = 1e-3;
        let p = Vec3::new(0.4, 0.6, 0.3);
        for c in 0..3 {
            let mut lap = -6.0 * manufactured_field(p).axis(c);
            for (dx, dy, dz) in
                [(h, 0.0, 0.0), (-h, 0.0, 0.0), (0.0, h, 0.0), (0.0, -h, 0.0), (0.0, 0.0, h), (0.0, 0.0, -h)]
            {
                lap += manufactured_field(p + Vec3::new(dx, dy, dz)).axis(c);
            }
            lap /= h * h;
            assert!(lap.abs() < 1e-6, "∇²u[{c}] = {lap}");
        }
    }

    #[test]
    fn l2_error_converges_at_second_order() {
        let r = run_mms(&[3, 6, 12], 1e-12);
        assert!(
            r.passes(1.9),
            "orders {:?} errors {:?}",
            r.orders,
            r.levels.iter().map(|l| l.l2_rel_err).collect::<Vec<_>>()
        );
        // Sanity: the error actually decreases and is not already at
        // machine noise (which would make the order meaningless).
        for w in r.levels.windows(2) {
            assert!(w[1].l2_rel_err < w[0].l2_rel_err);
        }
        assert!(r.levels.last().unwrap().l2_rel_err > 1e-10);
    }
}
