//! Run the full conformance oracle hierarchy and write
//! `bench_out/conformance.json` next to the perf trajectories.
//!
//! ```bash
//! cargo run --release --bin conformance_report            # check + report
//! cargo run --release --bin conformance_report -- --update-goldens
//! ```
//!
//! `--update-goldens` prints the regenerated goldens file to stdout *and*
//! rewrites `crates/conformance/goldens/golden_fields.tsv` (when run from
//! the workspace root), so intentional numerical changes are a one-command
//! acknowledgement followed by a rebuild.

use brainshift_conformance::{
    default_golden_cases, evaluate_goldens, evaluate_scenario_goldens, golden_field,
    pure_shear_gradient, quantized_field_hash, run_differential, run_keypoint_recovery, run_mms,
    run_patch_test, scenario_golden_cases, scenario_golden_field, uniaxial_stretch_gradient,
    write_json_report, ConformanceReport, CHECKED_IN_GOLDENS, GOLDEN_QUANTUM_MM,
};
use brainshift_conformance::analytic::unit_cube_mesh;
use brainshift_conformance::mms::manufactured_field;
use brainshift_fem::{DirichletBcs, MaterialTable};
use brainshift_imaging::Mat3;
use brainshift_mesh::boundary_nodes;
use std::path::Path;

fn update_goldens() {
    let mut out = String::from(
        "# Golden displacement-field hashes (FNV-1a over components quantized to\n\
         # GOLDEN_QUANTUM_MM). Regenerate with:\n\
         #   cargo run --release --bin conformance_report -- --update-goldens\n",
    );
    for case in default_golden_cases() {
        let (mesh, field) = golden_field(&case);
        let hash = quantized_field_hash(&field, GOLDEN_QUANTUM_MM);
        eprintln!("{}: {} nodes, hash {hash:016x}", case.name, mesh.num_nodes());
        out.push_str(&format!("{}\t{hash:016x}\n", case.name));
    }
    for (name, kind, seed) in scenario_golden_cases() {
        let field = scenario_golden_field(kind, seed);
        let hash = quantized_field_hash(&field, GOLDEN_QUANTUM_MM);
        eprintln!("{name}: {} nodes, hash {hash:016x}", field.len());
        out.push_str(&format!("{name}\t{hash:016x}\n"));
    }
    print!("{out}");
    let path = Path::new("crates/conformance/goldens/golden_fields.tsv");
    if path.parent().is_some_and(Path::exists) {
        std::fs::write(path, &out).expect("write goldens file");
        eprintln!("wrote {}", path.display());
        eprintln!("rebuild to bake the new goldens into the crate (include_str!)");
    } else {
        eprintln!("not at the workspace root; goldens printed to stdout only");
    }
}

fn main() {
    if std::env::args().any(|a| a == "--update-goldens") {
        update_goldens();
        return;
    }

    let materials = MaterialTable::homogeneous();

    eprintln!("level 1: patch tests");
    let mesh = unit_cube_mesh(4);
    let general = Mat3::from_rows(
        [0.011, 0.004, -0.002],
        [-0.003, -0.006, 0.005],
        [0.002, -0.001, 0.009],
    );
    let patch = vec![
        run_patch_test("uniaxial", &mesh, &materials, uniaxial_stretch_gradient(0.02, 0.45), 1e-12),
        run_patch_test("pure-shear", &mesh, &materials, pure_shear_gradient(0.03), 1e-12),
        run_patch_test("general-linear", &mesh, &materials, general, 1e-12),
    ];
    for p in &patch {
        eprintln!("  {:<16} max_rel_err {:.3e} ({} eqs)", p.name, p.max_rel_err, p.equations);
    }

    eprintln!("level 2: manufactured-solution convergence");
    let mms = run_mms(&[4, 8, 16], 1e-12);
    for l in &mms.levels {
        eprintln!("  n={:<3} h={:.4} l2_rel_err {:.4e}", l.n, l.h, l.l2_rel_err);
    }
    eprintln!("  observed orders {:?}", mms.orders);

    eprintln!("level 3: differential solver harness");
    let dmesh = unit_cube_mesh(4);
    let mut bcs = DirichletBcs::new();
    for &n in boundary_nodes(&dmesh).iter() {
        bcs.set(n, manufactured_field(dmesh.nodes[n]));
    }
    let differential = run_differential(&dmesh, &materials, &bcs, &Default::default());
    for p in &differential.paths {
        eprintln!(
            "  {:<16} converged={} iters={:<5} rel_res {:.3e}",
            p.name, p.converged, p.iterations, p.relative_residual
        );
    }
    eprintln!("  max pairwise deviation {:.3e}", differential.max_pairwise_rel);

    eprintln!("level 4: golden fields");
    let mut goldens = evaluate_goldens(&default_golden_cases(), CHECKED_IN_GOLDENS);
    goldens.extend(evaluate_scenario_goldens(CHECKED_IN_GOLDENS));
    for g in &goldens {
        eprintln!(
            "  {:<28} {:016x} {} ({} nodes, peak {:.2} mm)",
            g.name,
            g.hash,
            if g.matches { "ok" } else { "MISMATCH" },
            g.nodes,
            g.max_shift_mm
        );
    }

    eprintln!("level 5: sparse-keypoint recovery");
    let keypoints = run_keypoint_recovery(2, &[0.1, 0.25, 0.5]);
    for p in &keypoints.curve {
        eprintln!("  k={:<4} rms {:.4} mm  max {:.4} mm  rel {:.3e}", p.k, p.rms_mm, p.max_mm, p.rel_max);
    }
    eprintln!(
        "  monotone: {}, full-coverage rel {:.3e}",
        keypoints.monotone, keypoints.full_coverage_rel
    );

    let report = ConformanceReport { patch, mms, differential, goldens, keypoints };
    let path = Path::new("bench_out/conformance.json");
    write_json_report(&report, path).expect("write conformance.json");
    eprintln!("wrote {} (all_pass: {})", path.display(), report.all_pass());
    if !report.all_pass() {
        std::process::exit(1);
    }
}
