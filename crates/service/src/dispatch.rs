//! Placement and stealing policy shared by the threaded service, the
//! deterministic simulator, and the fleet router.
//!
//! The negative-scaling bug this module exists to fix: with one shared
//! run queue, a session's consecutive scans land on whichever worker
//! wins the race, so its warm [`SolverContext`](brainshift_fem::SolverContext)
//! ping-pongs between cores (cold caches, contended locks) and adding a
//! second worker made p95 latency *worse*. The fix is **session
//! affinity**: every session gets a sticky preferred worker at open time
//! and all of its jobs are enqueued on that worker's run queue, so the
//! warm context stays hot on one core. Stealing is the escape hatch for
//! imbalance, and it is deliberately reluctant: a worker may take a job
//! from another worker's queue only when that queue's backlog exceeds a
//! threshold — below it, stickiness wins over instantaneous latency.
//!
//! All three decisions here are pure functions of their inputs, which is
//! what lets the logical-clock simulator drive the *same* policy the
//! threaded service runs and makes its event scripts bit-deterministic.

/// When a non-preferred worker may take a job from another worker's
/// run queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealPolicy {
    /// A queue must hold **more than** this many jobs before another
    /// worker is allowed to steal from it. `0` steals eagerly from any
    /// non-empty queue; large values approach strict affinity.
    pub backlog_threshold: usize,
}

impl Default for StealPolicy {
    fn default() -> Self {
        // One job queued behind the one in flight is the normal cadence
        // of a session; a second queued job means the owner is falling
        // behind and help is cheaper than stickiness.
        StealPolicy { backlog_threshold: 2 }
    }
}

impl StealPolicy {
    /// May a worker steal from a queue currently holding `owner_backlog`
    /// jobs?
    pub fn may_steal(&self, owner_backlog: usize) -> bool {
        owner_backlog > self.backlog_threshold
    }
}

/// The sticky worker a session's jobs are enqueued on: round-robin by
/// session id, so sequentially opened sessions spread evenly across the
/// pool. Identical in the threaded service and the simulator — affinity
/// assertions made on one hold for the other.
pub fn preferred_worker(session: u64, workers: usize) -> usize {
    (session % workers.max(1) as u64) as usize
}

/// The shard a session key routes to. SplitMix64-style avalanche so
/// adjacent keys (sequential session ids, OR numbers) spread instead of
/// striping, then a modulo onto the shard count. Shared by the threaded
/// [`Fleet`](crate::fleet::Fleet) and the fleet simulator.
pub fn route_shard(key: u64, shards: usize) -> usize {
    let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_threshold_is_strict() {
        let p = StealPolicy { backlog_threshold: 2 };
        assert!(!p.may_steal(0));
        assert!(!p.may_steal(2));
        assert!(p.may_steal(3));
        let eager = StealPolicy { backlog_threshold: 0 };
        assert!(eager.may_steal(1));
        assert!(!eager.may_steal(0));
    }

    #[test]
    fn preferred_worker_round_robins_and_tolerates_zero_workers() {
        assert_eq!(preferred_worker(1, 4), 1);
        assert_eq!(preferred_worker(5, 4), 1, "sticky across reopen of same id");
        assert_eq!(preferred_worker(4, 4), 0);
        assert_eq!(preferred_worker(7, 1), 0);
        assert_eq!(preferred_worker(7, 0), 0, "clamped, not a division by zero");
    }

    #[test]
    fn route_shard_spreads_sequential_keys() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for key in 0u64..1000 {
            counts[route_shard(key, shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (150..=350).contains(&c),
                "shard {s} got {c}/1000 sequential keys — router striping or hotspot"
            );
        }
        // Deterministic: same key, same shard, every time.
        assert_eq!(route_shard(42, shards), route_shard(42, shards));
        assert_eq!(route_shard(42, 0), 0, "clamped shard count");
    }
}
