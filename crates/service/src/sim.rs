//! Deterministic discrete-event simulator of the serving layer.
//!
//! The threaded [`Service`](crate::service::Service) is nondeterministic
//! by nature (OS scheduling decides which worker wins a wake token), so
//! its contracts — deadline ordering, starvation bounds, cache-budget
//! safety, event-log shape — are verified here instead, on a logical
//! clock driving the *same* [`DeadlineQueue`] and [`ContextCache`] code
//! the real service runs. For a fixed submission script the simulation is
//! bit-deterministic: same admissions, same scheduling order, same
//! evictions, same [`EventLog::script`]. Property tests fuzz submission
//! scripts through this simulator; what they prove holds for the
//! production policy code because it *is* the production policy code.
//!
//! Modeling choices (all deterministic): workers are slots, job cost is
//! given per job in logical µs, and when a completion and a submission
//! coincide the completion is processed first (capacity frees before the
//! admission check, matching the real service's admission-under-lock).

use crate::cache::{CacheStats, ContextCache};
use crate::dispatch::{preferred_worker, route_shard, StealPolicy};
use crate::error::Rejected;
use crate::events::{EventKind, EventLog};
use crate::scheduler::{DeadlineQueue, SchedulerPolicy};
use brainshift_obs::{Clock, Registry, Snapshot};

/// One scripted submission.
#[derive(Debug, Clone, PartialEq)]
pub struct SimJob {
    /// Session the job belongs to.
    pub session: u64,
    /// Submission time, logical µs.
    pub submit_us: u64,
    /// Absolute deadline, logical µs.
    pub deadline_us: u64,
    /// Priority (higher = more urgent).
    pub priority: u8,
    /// Service time on a worker, logical µs.
    pub cost_us: u64,
    /// Bytes the session's solver context charges against the cache
    /// budget when checked back in.
    pub ctx_bytes: usize,
}

/// Simulator parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Worker slots.
    pub workers: usize,
    /// Queue policy (capacity, aging, admission floor).
    pub policy: SchedulerPolicy,
    /// Warm-context cache budget in bytes.
    pub budget_bytes: usize,
}

/// Per-job outcome of a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimOutcome {
    /// Index of the job in the submission script.
    pub script_index: usize,
    /// Session it belonged to.
    pub session: u64,
    /// When it started on a worker (µs), or `None` if rejected.
    pub started_us: Option<u64>,
    /// When it completed (µs), or `None` if rejected.
    pub completed_us: Option<u64>,
    /// Whether it completed after its deadline.
    pub missed_deadline: bool,
    /// Whether its context came warm from the cache.
    pub warm: bool,
    /// Worker (slot) that executed it, or `None` if rejected.
    pub worker: Option<usize>,
    /// Whether it ran on a worker other than its session's preferred one
    /// (always `false` in the shared-queue [`simulate`], which has no
    /// affinity to violate).
    pub stolen: bool,
}

/// One work-stealing decision taken by [`simulate_affinity`] — the raw
/// material for the steal-only-under-pressure property test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealRecord {
    /// Index of the stolen job in the submission script.
    pub script_index: usize,
    /// Session the job belonged to.
    pub session: u64,
    /// The preferred worker whose queue it was stolen from.
    pub owner: usize,
    /// The worker that took it.
    pub thief: usize,
    /// The owner queue's backlog at the moment of the steal (including
    /// the stolen job) — must exceed the policy threshold.
    pub owner_backlog: usize,
}

/// Everything a property test wants to assert on.
pub struct SimReport {
    /// Outcomes indexed like the submission script.
    pub outcomes: Vec<SimOutcome>,
    /// Completion order as script indices.
    pub completion_order: Vec<usize>,
    /// The full event log.
    pub log: EventLog,
    /// Cache counters at the end.
    pub cache: CacheStats,
    /// Largest resident-byte total ever observed (must stay ≤ budget).
    pub peak_resident_bytes: usize,
    /// Largest queue depth ever observed (must stay ≤ capacity).
    pub peak_queue_depth: usize,
    /// Every steal taken, in order (empty for the shared-queue
    /// [`simulate`], which has no affinity).
    pub steals: Vec<StealRecord>,
    /// Metric snapshot taken on the simulator's logical clock with the
    /// same names the threaded service records
    /// (`service.jobs.*` / `service.cache.*` / `service.queue.*`), so
    /// the same assertions and dashboards read both. Bit-deterministic
    /// for a fixed script.
    pub metrics: Snapshot,
}

#[derive(Clone, Copy)]
struct Running {
    script_index: usize,
    session: u64,
    deadline_us: u64,
    done_us: u64,
}

/// Run the script to completion and report.
///
/// Jobs are submitted in script order; the scheduler's own ordering and
/// admission rules decide everything else. All queued work is drained
/// even past the last submission (the real service's shutdown drain).
pub fn simulate(cfg: &SimConfig, jobs: &[SimJob]) -> SimReport {
    let mut queue = DeadlineQueue::new(cfg.policy.clone());
    // The sim stores the script index as the "context"; bytes drive the
    // eviction policy exactly as real contexts would.
    let mut cache: ContextCache<u64> = ContextCache::new(cfg.budget_bytes);
    let log = EventLog::new();
    // Logical-clock registry: advanced to each event instant below, so
    // span/metric timing is a pure function of the script.
    let clock = Clock::logical();
    let metrics = Registry::new(clock.clone());
    let mut outcomes: Vec<SimOutcome> = (0..jobs.len())
        .map(|i| SimOutcome {
            script_index: i,
            session: jobs[i].session,
            started_us: None,
            completed_us: None,
            missed_deadline: false,
            warm: false,
            worker: None,
            stolen: false,
        })
        .collect();
    let mut completion_order = Vec::new();
    let mut workers: Vec<Option<Running>> = vec![None; cfg.workers.max(1)];
    let mut next_submit = 0usize;
    let mut peak_resident = 0usize;
    let mut peak_depth = 0usize;

    loop {
        let busy_min = workers.iter().flatten().map(|r| r.done_us).min();
        let submit_t = jobs.get(next_submit).map(|j| j.submit_us);
        // Next instant: earliest completion or submission; completions at
        // a tied instant are processed first.
        let now = match (busy_min, submit_t) {
            (None, None) => break,
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (Some(a), Some(b)) => a.min(b),
        };
        clock.advance_to_us(now);

        // 1. Completions at `now`.
        for slot in workers.iter_mut() {
            let Some(r) = *slot else { continue };
            if r.done_us != now {
                continue;
            }
            *slot = None;
            cache.insert(r.session, r.script_index as u64, jobs[r.script_index].ctx_bytes);
            peak_resident = peak_resident.max(cache.resident_bytes());
            for (sess, freed) in cache.drain_evicted() {
                metrics.counter_add("service.cache.evictions", 1);
                log.record(now, queue.len(), EventKind::Evict { session: sess, freed_bytes: freed });
            }
            let missed = now > r.deadline_us;
            outcomes[r.script_index].completed_us = Some(now);
            outcomes[r.script_index].missed_deadline = missed;
            completion_order.push(r.script_index);
            metrics.counter_add("service.jobs.completed", 1);
            if missed {
                metrics.counter_add("service.jobs.missed_deadline", 1);
            }
            metrics.gauge_set("service.queue.depth", queue.len() as f64);
            metrics.observe(
                "service.job.latency_us",
                now.saturating_sub(jobs[r.script_index].submit_us) as f64,
            );
            log.record(
                now,
                queue.len(),
                EventKind::Complete {
                    session: r.session,
                    job: r.script_index as u64,
                    missed_deadline: missed,
                },
            );
        }

        // 2. Submissions at `now` (script order).
        while next_submit < jobs.len() && jobs[next_submit].submit_us == now {
            let j = &jobs[next_submit];
            let id = next_submit as u64;
            match queue.push(id, j.session, j.deadline_us, j.priority, now) {
                Ok(()) => {
                    peak_depth = peak_depth.max(queue.len());
                    metrics.counter_add("service.jobs.submitted", 1);
                    metrics.gauge_set("service.queue.depth", queue.len() as f64);
                    metrics.gauge_max("service.queue.peak_depth", queue.len() as f64);
                    log.record(
                        now,
                        queue.len(),
                        EventKind::Enqueue {
                            session: j.session,
                            job: id,
                            deadline_us: j.deadline_us,
                            priority: j.priority,
                        },
                    );
                }
                Err(reason) => {
                    metrics.counter_add("service.jobs.rejected", 1);
                    log.record(now, queue.len(), EventKind::Reject { session: j.session, reason });
                }
            }
            next_submit += 1;
        }

        // 3. Dispatch: fill free workers with eligible jobs, lowest key
        // first, skipping sessions already running.
        while let Some(free) = workers.iter().position(Option::is_none) {
            let running: Vec<u64> = workers.iter().flatten().map(|r| r.session).collect();
            let Some(q) = queue.pop_next(|j| !running.contains(&j.session)) else { break };
            let idx = q.job as usize;
            let warm = cache.take(q.session).is_some();
            metrics.counter_add(if warm { "service.cache.hit" } else { "service.cache.miss" }, 1);
            metrics
                .observe("service.deadline.slack_at_start_us", q.deadline_us.saturating_sub(now) as f64);
            metrics.gauge_set("service.queue.depth", queue.len() as f64);
            outcomes[idx].started_us = Some(now);
            outcomes[idx].warm = warm;
            outcomes[idx].worker = Some(free);
            workers[free] = Some(Running {
                script_index: idx,
                session: q.session,
                deadline_us: q.deadline_us,
                done_us: now + jobs[idx].cost_us.max(1),
            });
            log.record(
                now,
                queue.len(),
                // The shared queue has no affinity: the slot index is
                // the worker, and nothing is ever "stolen".
                EventKind::Start { session: q.session, job: q.job, warm, worker: free, stolen: false },
            );
        }
    }

    log.record(
        outcomes.iter().filter_map(|o| o.completed_us).max().unwrap_or(0),
        queue.len(),
        EventKind::Shutdown,
    );
    SimReport {
        outcomes,
        completion_order,
        cache: cache.stats(),
        peak_resident_bytes: peak_resident,
        peak_queue_depth: peak_depth,
        steals: Vec::new(),
        metrics: metrics.snapshot(),
        log,
    }
}

/// Parameters of the affinity simulator — the shared-queue [`SimConfig`]
/// plus the steal policy.
#[derive(Debug, Clone)]
pub struct AffinityConfig {
    /// Worker slots, each with its own run queue.
    pub workers: usize,
    /// Queue policy. `queue_capacity` is the **global** bound across all
    /// per-worker queues, enforced at admission exactly like the threaded
    /// service's depth check.
    pub policy: SchedulerPolicy,
    /// Warm-context cache budget in bytes (one cache shared by the
    /// workers, as in the threaded service).
    pub budget_bytes: usize,
    /// When a worker may steal from another worker's queue.
    pub steal: StealPolicy,
}

/// Run the script through the **affinity** dispatch model: per-worker
/// run queues, each session pinned to [`preferred_worker`], stealing
/// only from queues whose backlog exceeds the [`StealPolicy`] threshold.
///
/// This is the deterministic twin of the threaded [`Service`]'s
/// dispatch — same `DeadlineQueue` per worker, same shared
/// `ContextCache`, same placement and steal policy functions — so the
/// affinity and scaling properties proved here hold for the production
/// policy code. Jobs must be scripted in non-decreasing `submit_us`
/// order (as in [`simulate`]).
pub fn simulate_affinity(cfg: &AffinityConfig, jobs: &[SimJob]) -> SimReport {
    let n = cfg.workers.max(1);
    let mut queues: Vec<DeadlineQueue> = (0..n)
        .map(|_| {
            // Per-queue capacity = the global capacity: the global
            // admission check below always binds first, mirroring the
            // threaded service's depth atomic.
            DeadlineQueue::new(cfg.policy.clone())
        })
        .collect();
    let mut cache: ContextCache<u64> = ContextCache::new(cfg.budget_bytes);
    let log = EventLog::new();
    let clock = Clock::logical();
    let metrics = Registry::new(clock.clone());
    let mut outcomes: Vec<SimOutcome> = (0..jobs.len())
        .map(|i| SimOutcome {
            script_index: i,
            session: jobs[i].session,
            started_us: None,
            completed_us: None,
            missed_deadline: false,
            warm: false,
            worker: None,
            stolen: false,
        })
        .collect();
    let mut completion_order = Vec::new();
    let mut steals = Vec::new();
    let mut workers: Vec<Option<Running>> = vec![None; n];
    let mut next_submit = 0usize;
    let mut peak_resident = 0usize;
    let mut peak_depth = 0usize;
    let depth_of = |queues: &[DeadlineQueue]| queues.iter().map(DeadlineQueue::len).sum::<usize>();

    loop {
        let busy_min = workers.iter().flatten().map(|r| r.done_us).min();
        let submit_t = jobs.get(next_submit).map(|j| j.submit_us);
        let now = match (busy_min, submit_t) {
            (None, None) => break,
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (Some(a), Some(b)) => a.min(b),
        };
        clock.advance_to_us(now);

        // 1. Completions at `now` (capacity frees before admission, as in
        // the threaded service).
        for slot in workers.iter_mut() {
            let Some(r) = *slot else { continue };
            if r.done_us != now {
                continue;
            }
            *slot = None;
            cache.insert(r.session, r.script_index as u64, jobs[r.script_index].ctx_bytes);
            peak_resident = peak_resident.max(cache.resident_bytes());
            let depth = depth_of(&queues);
            for (sess, freed) in cache.drain_evicted() {
                metrics.counter_add("service.cache.evictions", 1);
                log.record(now, depth, EventKind::Evict { session: sess, freed_bytes: freed });
            }
            let missed = now > r.deadline_us;
            outcomes[r.script_index].completed_us = Some(now);
            outcomes[r.script_index].missed_deadline = missed;
            completion_order.push(r.script_index);
            metrics.counter_add("service.jobs.completed", 1);
            if missed {
                metrics.counter_add("service.jobs.missed_deadline", 1);
            }
            metrics.gauge_set("service.queue.depth", depth as f64);
            metrics.observe(
                "service.job.latency_us",
                now.saturating_sub(jobs[r.script_index].submit_us) as f64,
            );
            log.record(
                now,
                depth,
                EventKind::Complete {
                    session: r.session,
                    job: r.script_index as u64,
                    missed_deadline: missed,
                },
            );
        }

        // 2. Submissions at `now`: global capacity first, then the
        // session's preferred queue (affinity placement).
        while next_submit < jobs.len() && jobs[next_submit].submit_us == now {
            let j = &jobs[next_submit];
            let id = next_submit as u64;
            let pref = preferred_worker(j.session, n);
            let verdict = if depth_of(&queues) >= cfg.policy.queue_capacity {
                Err(Rejected::QueueFull { capacity: cfg.policy.queue_capacity })
            } else {
                queues[pref].push(id, j.session, j.deadline_us, j.priority, now)
            };
            let depth = depth_of(&queues);
            match verdict {
                Ok(()) => {
                    peak_depth = peak_depth.max(depth);
                    metrics.counter_add("service.jobs.submitted", 1);
                    metrics.gauge_set("service.queue.depth", depth as f64);
                    metrics.gauge_max("service.queue.peak_depth", depth as f64);
                    log.record(
                        now,
                        depth,
                        EventKind::Enqueue {
                            session: j.session,
                            job: id,
                            deadline_us: j.deadline_us,
                            priority: j.priority,
                        },
                    );
                }
                Err(reason) => {
                    metrics.counter_add("service.jobs.rejected", 1);
                    log.record(now, depth, EventKind::Reject { session: j.session, reason });
                }
            }
            next_submit += 1;
        }

        // 3. Dispatch pass, workers in ascending order (deterministic):
        // own queue first, then a ring steal scan gated on the owner's
        // backlog exceeding the threshold. One claim per free worker —
        // a claim never makes another worker's claim possible, so a
        // single pass reaches the fixpoint.
        for w in 0..n {
            if workers[w].is_some() {
                continue;
            }
            let running: Vec<u64> = workers.iter().flatten().map(|r| r.session).collect();
            let mut claim: Option<(crate::scheduler::QueuedJob, bool, usize, usize)> = None;
            if let Some(q) = queues[w].pop_next(|j| !running.contains(&j.session)) {
                claim = Some((q, false, w, 0));
            } else {
                for d in 1..n {
                    let owner = (w + d) % n;
                    let backlog = queues[owner].len();
                    if !cfg.steal.may_steal(backlog) {
                        continue;
                    }
                    if let Some(q) = queues[owner].pop_next(|j| !running.contains(&j.session)) {
                        claim = Some((q, true, owner, backlog));
                        break;
                    }
                }
            }
            let Some((q, stolen, owner, owner_backlog)) = claim else { continue };
            let idx = q.job as usize;
            if stolen {
                steals.push(StealRecord {
                    script_index: idx,
                    session: q.session,
                    owner,
                    thief: w,
                    owner_backlog,
                });
            }
            let warm = cache.take(q.session).is_some();
            let depth = depth_of(&queues);
            metrics.counter_add(if warm { "service.cache.hit" } else { "service.cache.miss" }, 1);
            metrics.counter_add(
                if stolen { "service.jobs.stolen" } else { "service.jobs.preferred" },
                1,
            );
            metrics
                .observe("service.deadline.slack_at_start_us", q.deadline_us.saturating_sub(now) as f64);
            metrics.gauge_set("service.queue.depth", depth as f64);
            outcomes[idx].started_us = Some(now);
            outcomes[idx].warm = warm;
            outcomes[idx].worker = Some(w);
            outcomes[idx].stolen = stolen;
            workers[w] = Some(Running {
                script_index: idx,
                session: q.session,
                deadline_us: q.deadline_us,
                done_us: now + jobs[idx].cost_us.max(1),
            });
            log.record(
                now,
                depth,
                EventKind::Start { session: q.session, job: q.job, warm, worker: w, stolen },
            );
        }
    }

    log.record(
        outcomes.iter().filter_map(|o| o.completed_us).max().unwrap_or(0),
        depth_of(&queues),
        EventKind::Shutdown,
    );
    SimReport {
        outcomes,
        completion_order,
        cache: cache.stats(),
        peak_resident_bytes: peak_resident,
        peak_queue_depth: peak_depth,
        steals,
        metrics: metrics.snapshot(),
        log,
    }
}

/// Parameters of the fleet simulator: N identically configured affinity
/// shards behind the [`route_shard`] router.
#[derive(Debug, Clone)]
pub struct FleetSimConfig {
    /// Number of shards (each an independent [`simulate_affinity`] run).
    pub shards: usize,
    /// Per-shard configuration.
    pub shard: AffinityConfig,
}

/// Aggregate view of a fleet simulation.
pub struct FleetSimReport {
    /// One full report per shard, indexed by shard id.
    pub shards: Vec<SimReport>,
    /// Jobs that passed admission, fleet-wide.
    pub submitted: u64,
    /// Jobs that completed, fleet-wide.
    pub completed: u64,
    /// Jobs refused at admission (shed), fleet-wide.
    pub shed: u64,
    /// `shed / (shed + submitted)` — the fleet's load-shedding fraction.
    pub shed_rate: f64,
    /// Completions past their deadline, fleet-wide.
    pub missed_deadlines: u64,
    /// Median completion latency (submit → complete), logical µs.
    pub p50_latency_us: u64,
    /// 99th-percentile completion latency, logical µs (nearest-rank).
    pub p99_latency_us: u64,
    /// Warm-cache hit rate per shard, indexed by shard id.
    pub per_shard_hit_rate: Vec<f64>,
    /// All shard registries merged into one snapshot, each shard's
    /// metrics under a `shard{i}.` prefix plus unprefixed fleet totals
    /// (`fleet.jobs.completed`, …).
    pub metrics: Snapshot,
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile_us(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Route the script across `shards` affinity shards by session key and
/// simulate each shard independently (shards share nothing — separate
/// queues, caches, and worker pools — exactly like the threaded
/// [`Fleet`](crate::fleet::Fleet)).
///
/// Deterministic end to end: the router is a pure hash, each shard's
/// simulation is bit-deterministic, and the merged metrics snapshot is
/// assembled in shard order.
pub fn simulate_fleet(cfg: &FleetSimConfig, jobs: &[SimJob]) -> FleetSimReport {
    let s = cfg.shards.max(1);
    let mut per_shard: Vec<Vec<SimJob>> = vec![Vec::new(); s];
    for j in jobs {
        per_shard[route_shard(j.session, s)].push(j.clone());
    }
    let shards: Vec<SimReport> =
        per_shard.iter().map(|script| simulate_affinity(&cfg.shard, script)).collect();

    let mut submitted = 0u64;
    let mut completed = 0u64;
    let mut shed = 0u64;
    let mut missed = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for (i, r) in shards.iter().enumerate() {
        for o in &r.outcomes {
            match o.completed_us {
                Some(done) => {
                    submitted += 1;
                    completed += 1;
                    if o.missed_deadline {
                        missed += 1;
                    }
                    latencies.push(done.saturating_sub(per_shard[i][o.script_index].submit_us));
                }
                None if o.started_us.is_some() => submitted += 1,
                None => shed += 1,
            }
        }
    }
    latencies.sort_unstable();
    let admitted_or_shed = (submitted + shed).max(1);

    let mut parts: Vec<Snapshot> =
        shards.iter().enumerate().map(|(i, r)| r.metrics.prefixed(&format!("shard{i}"))).collect();
    parts.push(Snapshot {
        counters: vec![
            ("fleet.jobs.completed".to_string(), completed),
            ("fleet.jobs.missed_deadline".to_string(), missed),
            ("fleet.jobs.shed".to_string(), shed),
            ("fleet.jobs.submitted".to_string(), submitted),
        ],
        gauges: vec![
            ("fleet.latency.p50_us".to_string(), percentile_us(&latencies, 50.0) as f64),
            ("fleet.latency.p99_us".to_string(), percentile_us(&latencies, 99.0) as f64),
            ("fleet.shed_rate".to_string(), shed as f64 / admitted_or_shed as f64),
        ],
        ..Snapshot::default()
    });
    let metrics = Snapshot::merged(parts.iter());

    FleetSimReport {
        per_shard_hit_rate: shards.iter().map(|r| r.cache.hit_rate()).collect(),
        submitted,
        completed,
        shed,
        shed_rate: shed as f64 / admitted_or_shed as f64,
        missed_deadlines: missed,
        p50_latency_us: percentile_us(&latencies, 50.0),
        p99_latency_us: percentile_us(&latencies, 99.0),
        metrics,
        shards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(workers: usize, capacity: usize, aging: f64, budget: usize) -> SimConfig {
        SimConfig {
            workers,
            policy: SchedulerPolicy {
                queue_capacity: capacity,
                aging_weight: aging,
                min_service_us: 0,
                priority_boost_us: 0,
            },
            budget_bytes: budget,
        }
    }

    fn job(session: u64, submit: u64, deadline: u64) -> SimJob {
        SimJob {
            session,
            submit_us: submit,
            deadline_us: deadline,
            priority: 0,
            cost_us: 10,
            ctx_bytes: 100,
        }
    }

    #[test]
    fn single_worker_serves_in_deadline_order() {
        // All submitted at t=0; one worker → strict EDF order.
        let jobs = vec![job(1, 0, 300), job(2, 0, 100), job(3, 0, 200)];
        let r = simulate(&cfg(1, 8, 0.0, 10_000), &jobs);
        assert_eq!(r.completion_order, vec![1, 2, 0]);
        assert!(r.outcomes.iter().all(|o| !o.missed_deadline));
    }

    #[test]
    fn same_session_jobs_never_overlap() {
        // Two jobs of session 1, two workers: the second must wait.
        let jobs = vec![job(1, 0, 100), job(1, 0, 200)];
        let r = simulate(&cfg(2, 8, 0.0, 10_000), &jobs);
        let first_done = r.outcomes[0].completed_us.expect("ran");
        let second_start = r.outcomes[1].started_us.expect("ran");
        assert!(second_start >= first_done, "session serialized");
        assert!(r.outcomes[1].warm, "second scan reuses the warm context");
    }

    #[test]
    fn identical_scripts_produce_identical_logs() {
        let jobs: Vec<SimJob> = (0u64..12)
            .map(|i| job(1 + i % 3, i * 7, i * 7 + 120))
            .collect();
        let a = simulate(&cfg(2, 6, 1.0, 250), &jobs);
        let b = simulate(&cfg(2, 6, 1.0, 250), &jobs);
        assert_eq!(a.log.script(), b.log.script());
        assert_eq!(a.completion_order, b.completion_order);
        // Metric snapshots on the logical clock are bit-identical too —
        // down to the rendered JSON bytes.
        assert_eq!(a.metrics, b.metrics);
        assert_eq!(a.metrics.to_json().render(), b.metrics.to_json().render());
    }

    #[test]
    fn metrics_agree_with_outcomes_and_cache_counters() {
        let jobs: Vec<SimJob> = (0u64..9).map(|i| job(1 + i % 3, i * 5, i * 5 + 200)).collect();
        let r = simulate(&cfg(2, 8, 0.5, 10_000), &jobs);
        let m = &r.metrics;
        let completed = r.outcomes.iter().filter(|o| o.completed_us.is_some()).count() as u64;
        assert_eq!(m.counter("service.jobs.submitted"), Some(9));
        assert_eq!(m.counter("service.jobs.completed"), Some(completed));
        assert_eq!(m.counter("service.cache.hit").unwrap_or(0), r.cache.hits);
        assert_eq!(m.counter("service.cache.miss").unwrap_or(0), r.cache.misses);
        assert_eq!(m.gauge("service.queue.peak_depth"), Some(r.peak_queue_depth as f64));
        let slack = m.histogram("service.deadline.slack_at_start_us").expect("slack histogram");
        assert_eq!(slack.count, completed);
        let lat = m.histogram("service.job.latency_us").expect("latency histogram");
        assert_eq!(lat.count, completed);
    }

    #[test]
    fn queue_overflow_is_rejected_not_lost() {
        // Capacity 2, 4 simultaneous submissions: admission happens at
        // submit time (before any worker claims), so two fill the queue
        // and two bounce off the full queue.
        let jobs = vec![job(1, 0, 900), job(2, 0, 900), job(3, 0, 900), job(4, 0, 900)];
        let r = simulate(&cfg(1, 2, 0.0, 10_000), &jobs);
        let rejected = r.outcomes.iter().filter(|o| o.completed_us.is_none()).count();
        assert_eq!(rejected, 2);
        assert!(r.log.script().contains("reject s3 queue-full"));
        assert!(r.log.script().contains("reject s4 queue-full"));
        assert_eq!(r.peak_queue_depth, 2);
    }
}
