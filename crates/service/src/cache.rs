//! Memory-budgeted LRU cache for warm solver contexts.
//!
//! Each surgery session's [`SolverContext`](brainshift_fem::SolverContext)
//! holds the assembled stiffness matrix, the Dirichlet-reduced system, a
//! factored preconditioner, and the warm-start seed — hundreds of
//! megabytes for a clinical mesh. A service running many concurrent
//! surgeries cannot keep them all resident, so contexts live in this
//! cache charged against a byte budget: inserting past the budget evicts
//! the least-recently-used entries first. An evicted session is *not*
//! failed — its next job simply rebuilds the context (a cold solve
//! instead of a warm one). The degradation mode is latency, never OOM and
//! never an error.
//!
//! Checked-out entries ([`ContextCache::take`]) are the ones a worker is
//! actively solving with; they are excluded from the resident set and the
//! budget until returned, so a busy context can never be evicted from
//! under a solve.
//!
//! The cache is generic over the stored value with the byte size supplied
//! at insert, which keeps the eviction policy property-testable without
//! assembling FEM systems.

use std::collections::HashMap;

/// Running counters for cache effectiveness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `take` calls that found a warm entry.
    pub hits: u64,
    /// `take` calls that found nothing (cold build required).
    pub misses: u64,
    /// Entries dropped to stay inside the budget.
    pub evictions: u64,
}

impl CacheStats {
    /// Warm-hit rate in [0, 1]; 0 when nothing was ever requested.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Entry<T> {
    value: T,
    bytes: usize,
    /// Logical use time — larger = more recently used.
    touched: u64,
}

/// The LRU cache itself. Not internally synchronized: the service wraps
/// it in the scheduler mutex alongside the queue.
pub struct ContextCache<T> {
    budget_bytes: usize,
    resident_bytes: usize,
    clock: u64,
    entries: HashMap<u64, Entry<T>>,
    stats: CacheStats,
    evicted: Vec<(u64, usize)>,
}

impl<T> ContextCache<T> {
    /// An empty cache with `budget_bytes` of room for resident contexts.
    pub fn new(budget_bytes: usize) -> Self {
        ContextCache {
            budget_bytes,
            resident_bytes: 0,
            clock: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
            evicted: Vec::new(),
        }
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Bytes currently charged by resident (checked-in) entries.
    pub fn resident_bytes(&self) -> usize {
        self.resident_bytes
    }

    /// Number of resident entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Check out the context for `key`, recording a hit or miss. The
    /// entry leaves the cache (and the budget) until re-inserted.
    pub fn take(&mut self, key: u64) -> Option<T> {
        match self.entries.remove(&key) {
            Some(e) => {
                self.resident_bytes -= e.bytes;
                self.stats.hits += 1;
                Some(e.value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Drop `key` without touching hit/miss counters (session closed).
    /// Returns the freed bytes.
    pub fn discard(&mut self, key: u64) -> Option<usize> {
        self.entries.remove(&key).map(|e| {
            self.resident_bytes -= e.bytes;
            e.bytes
        })
    }

    /// Check a context (back) in, charging `bytes` against the budget and
    /// evicting least-recently-used entries until it fits. A value larger
    /// than the whole budget is itself refused residency (immediately
    /// counted evicted) — the caller keeps working, just always cold.
    pub fn insert(&mut self, key: u64, value: T, bytes: usize) {
        if let Some(old) = self.entries.remove(&key) {
            self.resident_bytes -= old.bytes;
        }
        if bytes > self.budget_bytes {
            self.stats.evictions += 1;
            self.evicted.push((key, bytes));
            return;
        }
        while self.resident_bytes + bytes > self.budget_bytes {
            let lru = self
                .entries
                .iter()
                .min_by_key(|(k, e)| (e.touched, **k))
                .map(|(k, _)| *k);
            match lru {
                Some(k) => {
                    if let Some(e) = self.entries.remove(&k) {
                        self.resident_bytes -= e.bytes;
                        self.stats.evictions += 1;
                        self.evicted.push((k, e.bytes));
                    }
                }
                None => break,
            }
        }
        self.clock += 1;
        self.resident_bytes += bytes;
        self.entries.insert(key, Entry { value, bytes, touched: self.clock });
    }

    /// Drain the list of evictions since the last call — (key, bytes)
    /// pairs, in eviction order. The service turns these into
    /// [`Evict`](crate::events::EventKind::Evict) events.
    pub fn drain_evicted(&mut self) -> Vec<(u64, usize)> {
        std::mem::take(&mut self.evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_miss_counting() {
        let mut c: ContextCache<&str> = ContextCache::new(100);
        assert!(c.take(1).is_none());
        c.insert(1, "ctx", 10);
        assert_eq!(c.take(1), Some("ctx"));
        assert!(c.is_empty(), "take checks the entry out");
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let mut c: ContextCache<u32> = ContextCache::new(100);
        c.insert(1, 10, 40);
        c.insert(2, 20, 40);
        // Touch 1 so 2 becomes the LRU.
        let v = c.take(1).expect("warm");
        c.insert(1, v, 40);
        c.insert(3, 30, 40); // forces one eviction: entry 2
        assert!(c.resident_bytes() <= c.budget_bytes());
        assert_eq!(c.drain_evicted(), vec![(2, 40)]);
        assert!(c.take(2).is_none(), "evicted entry is a miss");
        assert_eq!(c.take(1), Some(10), "recently used entry survived");
    }

    #[test]
    fn oversized_value_never_becomes_resident() {
        let mut c: ContextCache<u8> = ContextCache::new(10);
        c.insert(1, 0, 11);
        assert!(c.is_empty());
        assert_eq!(c.resident_bytes(), 0);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_replaces_charge_not_doubles_it() {
        let mut c: ContextCache<u8> = ContextCache::new(100);
        c.insert(1, 0, 60);
        c.insert(1, 0, 70); // grew after a reassembly
        assert_eq!(c.resident_bytes(), 70);
        assert_eq!(c.len(), 1);
    }
}
