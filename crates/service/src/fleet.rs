//! A sharded fleet of [`Service`]s behind a session-affinity router.
//!
//! One [`Service`] scales to the cores of one worker pool, but its
//! admission lock, event log, and context cache are still single
//! instances — and a deployment serving many operating rooms wants
//! blast-radius isolation as much as throughput. The [`Fleet`] runs N
//! independent shards (separate worker pools, queues, caches, logs) and
//! routes every session to exactly one shard for its whole life:
//!
//! * [`Fleet::open_session`] picks the **least-loaded** shard (fewest
//!   live sessions, ties to the lowest index) — closing a session
//!   releases its slot, so the fleet rebalances on close without ever
//!   migrating a live session (its warm context must stay put).
//! * [`Fleet::open_session_keyed`] instead routes by a caller-provided
//!   stable key (OR number, scanner id) through [`route_shard`], so the
//!   same key always lands on the same shard across fleet restarts.
//!
//! Fleet-wide ids encode the shard so every handle is self-routing:
//! `fleet_id = local_id * shards + shard`. Metrics merge each shard's
//! registry under a `shard{i}.` prefix ([`Snapshot::prefixed`]), so one
//! `brainshift.obs.v1` document carries per-shard cache hit rates next
//! to fleet totals.

use crate::dispatch::route_shard;
use crate::error::{Rejected, ServiceError};
use crate::events::Event;
use crate::service::{JobOutcome, JobTicket, ScanJob, Service, ServiceConfig};
use crate::session::SessionStats;
use crate::CacheStats;
use brainshift_core::PreparedSurgery;
use brainshift_obs::Snapshot;
use brainshift_persist::PersistError;
use parking_lot::Mutex;
use std::sync::Arc;

/// Fleet-level knobs.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of independent service shards.
    pub shards: usize,
    /// Configuration applied to every shard (worker pool, queue, cache
    /// budget — each shard gets its own full allotment).
    pub shard: ServiceConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig { shards: 2, shard: ServiceConfig::default() }
    }
}

/// Encode a shard-local id as a fleet-wide self-routing id.
fn encode(local: u64, shard: usize, shards: usize) -> u64 {
    local * shards as u64 + shard as u64
}

/// Decode a fleet-wide id back to `(local, shard)`.
fn decode(fleet_id: u64, shards: usize) -> (u64, usize) {
    (fleet_id / shards as u64, (fleet_id % shards as u64) as usize)
}

/// The least-loaded shard: fewest live sessions, ties to the lowest
/// index (deterministic).
fn least_loaded(live: &[usize]) -> usize {
    let mut best = 0usize;
    for (i, &n) in live.iter().enumerate().skip(1) {
        if n < live[best] {
            best = i;
        }
    }
    best
}

/// Handle to one job admitted through the fleet; resolves with
/// fleet-wide session/job ids (the shard-local ids are remapped).
pub struct FleetTicket {
    inner: JobTicket,
    shard: usize,
    shards: usize,
}

impl FleetTicket {
    /// The fleet-wide job id.
    pub fn id(&self) -> u64 {
        encode(self.inner.id(), self.shard, self.shards)
    }

    /// The shard executing the job.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Block until the job resolves (see [`JobTicket::wait`]).
    pub fn wait(self) -> Result<JobOutcome, ServiceError> {
        let FleetTicket { inner, shard, shards } = self;
        remap(inner.wait(), shard, shards)
    }

    /// Non-blocking poll (see [`JobTicket::try_wait`]).
    pub fn try_wait(&self) -> Option<Result<JobOutcome, ServiceError>> {
        self.inner.try_wait().map(|r| remap(r, self.shard, self.shards))
    }
}

/// Rewrite a shard-local result's ids as fleet-wide ids.
fn remap(
    r: Result<JobOutcome, ServiceError>,
    shard: usize,
    shards: usize,
) -> Result<JobOutcome, ServiceError> {
    match r {
        Ok(mut o) => {
            o.session = encode(o.session, shard, shards);
            o.job = encode(o.job, shard, shards);
            Ok(o)
        }
        Err(ServiceError::Cancelled { job }) => {
            Err(ServiceError::Cancelled { job: encode(job, shard, shards) })
        }
        Err(e) => Err(e),
    }
}

/// N independent [`Service`] shards behind a session-affinity router.
pub struct Fleet {
    shards: Vec<Service>,
    /// Live (open) sessions per shard — the least-loaded placement
    /// signal, released on close so the fleet rebalances without moving
    /// live sessions.
    live: Mutex<Vec<usize>>,
    /// Per-shard configuration, kept so a drained shard can be rebuilt
    /// identically by [`Fleet::restore_shard`].
    shard_cfg: ServiceConfig,
}

impl Fleet {
    /// Start every shard's worker pool.
    pub fn start(cfg: FleetConfig) -> Self {
        let n = cfg.shards.max(1);
        Fleet {
            shards: (0..n).map(|_| Service::start(cfg.shard.clone())).collect(),
            live: Mutex::new(vec![0; n]),
            shard_cfg: cfg.shard,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Open a session on the least-loaded shard; returns a fleet-wide
    /// session id that routes all subsequent calls.
    pub fn open_session(&self, prepared: Arc<PreparedSurgery>) -> u64 {
        let shard = {
            let mut live = self.live.lock();
            let s = least_loaded(&live);
            live[s] += 1;
            s
        };
        encode(self.shards[shard].open_session(prepared), shard, self.shards.len())
    }

    /// Open a session on the shard a stable caller key hashes to
    /// ([`route_shard`]) — same key, same shard, across fleet restarts.
    pub fn open_session_keyed(&self, prepared: Arc<PreparedSurgery>, key: u64) -> u64 {
        let shard = route_shard(key, self.shards.len());
        self.live.lock()[shard] += 1;
        encode(self.shards[shard].open_session(prepared), shard, self.shards.len())
    }

    /// Close a fleet session, releasing its shard slot for future opens.
    pub fn close_session(&self, fleet_session: u64) -> bool {
        let (local, shard) = decode(fleet_session, self.shards.len());
        let closed = self.shards[shard].close_session(local);
        if closed {
            let mut live = self.live.lock();
            live[shard] = live[shard].saturating_sub(1);
        }
        closed
    }

    /// Submit a scan job; `job.session` must be a fleet-wide session id.
    /// Rejections carry fleet-wide ids too.
    pub fn submit(&self, mut job: ScanJob) -> Result<FleetTicket, Rejected> {
        let shards = self.shards.len();
        let (local, shard) = decode(job.session, shards);
        job.session = local;
        match self.shards[shard].submit(job) {
            Ok(inner) => Ok(FleetTicket { inner, shard, shards }),
            Err(Rejected::UnknownSession { session }) => {
                Err(Rejected::UnknownSession { session: encode(session, shard, shards) })
            }
            Err(Rejected::SessionBacklogFull { session }) => {
                Err(Rejected::SessionBacklogFull { session: encode(session, shard, shards) })
            }
            Err(e) => Err(e),
        }
    }

    /// Jobs queued across the whole fleet.
    pub fn queue_depth(&self) -> usize {
        self.shards.iter().map(Service::queue_depth).sum()
    }

    /// Counters of one fleet session, if it exists.
    pub fn session_stats(&self, fleet_session: u64) -> Option<SessionStats> {
        let (local, shard) = decode(fleet_session, self.shards.len());
        self.shards[shard].session_stats(local)
    }

    /// Cache counters per shard, indexed by shard id.
    pub fn cache_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(Service::cache_stats).collect()
    }

    /// All shard registries merged into one snapshot, each under a
    /// `shard{i}.` prefix — one `brainshift.obs.v1` document for the
    /// whole fleet.
    pub fn metrics_snapshot(&self) -> Snapshot {
        let parts: Vec<Snapshot> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| s.metrics_snapshot().prefixed(&format!("shard{i}")))
            .collect();
        Snapshot::merged(parts.iter())
    }

    /// Each shard's deterministic event script, indexed by shard id.
    /// Sessions of one shard never appear in another's script — the
    /// isolation the router promises.
    pub fn scripts(&self) -> Vec<String> {
        self.shards.iter().map(Service::script).collect()
    }

    /// Quiesce one shard (stop its admission, finish its in-flight jobs)
    /// and serialize its sessions, warm contexts, id counters, and event
    /// log (see [`Service::snapshot_shard`]). Terminal for the shard:
    /// follow with [`Fleet::restore_shard`] to bring a replacement up in
    /// its slot. Sessions of other shards are untouched — the blast
    /// radius the router promises.
    pub fn snapshot_shard(&self, shard: usize) -> Result<Vec<u8>, PersistError> {
        let Some(s) = self.shards.get(shard) else {
            return Err(PersistError::InvalidData {
                reason: format!("fleet has {} shards, no shard {shard}", self.shards.len()),
            });
        };
        s.snapshot_shard()
    }

    /// Replace a drained shard with one restored from snapshot bytes.
    /// `prepared` is keyed by **fleet-wide** session ids (what
    /// [`Fleet::open_session`] handed out); each id must route to
    /// `shard`, and each preparation is verified against the snapshot's
    /// mesh fingerprints. The fresh shard takes the old one's slot, so
    /// every pre-snapshot fleet id keeps routing correctly — the
    /// migrated sessions come back warm under their old handles. The
    /// displaced shard is shut down (its queues were already drained by
    /// the snapshot's quiesce). Returns the number of restored sessions.
    pub fn restore_shard(
        &mut self,
        shard: usize,
        bytes: &[u8],
        prepared: &std::collections::HashMap<u64, Arc<PreparedSurgery>>,
    ) -> Result<usize, PersistError> {
        let shards = self.shards.len();
        if shard >= shards {
            return Err(PersistError::InvalidData {
                reason: format!("fleet has {shards} shards, no shard {shard}"),
            });
        }
        let mut local = std::collections::HashMap::with_capacity(prepared.len());
        for (&fleet_id, prep) in prepared {
            let (id, s) = decode(fleet_id, shards);
            if s != shard {
                return Err(PersistError::InvalidData {
                    reason: format!("fleet session {fleet_id} routes to shard {s}, not {shard}"),
                });
            }
            local.insert(id, Arc::clone(prep));
        }
        let fresh = Service::restore_shard(self.shard_cfg.clone(), bytes, &local)?;
        let count = fresh.session_count();
        let old = std::mem::replace(&mut self.shards[shard], fresh);
        old.shutdown();
        self.live.lock()[shard] = count;
        Ok(count)
    }

    /// Shut every shard down (in shard order); queued jobs resolve as
    /// [`ServiceError::Cancelled`] exactly as on a single service.
    /// Returns each shard's final event log.
    pub fn shutdown(self) -> Vec<Vec<Event>> {
        self.shards.into_iter().map(Service::shutdown).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_ids_round_trip_and_are_disjoint_across_shards() {
        let shards = 4;
        let mut seen = std::collections::HashSet::new();
        for shard in 0..shards {
            for local in 1u64..50 {
                let id = encode(local, shard, shards);
                assert_eq!(decode(id, shards), (local, shard));
                assert!(seen.insert(id), "fleet id {id} collided");
            }
        }
    }

    #[test]
    fn least_loaded_prefers_fewest_sessions_then_lowest_index() {
        assert_eq!(least_loaded(&[0, 0, 0]), 0);
        assert_eq!(least_loaded(&[2, 1, 1]), 1);
        assert_eq!(least_loaded(&[3, 2, 0, 2]), 2);
        assert_eq!(least_loaded(&[5]), 0);
    }
}
