//! brainshift-service: the intraoperative serving layer.
//!
//! The paper's pipeline registers one scan for one surgery; a deployed
//! guidance system serves *several operating rooms at once* from shared
//! compute, under each scanner's cadence. This crate is that layer:
//!
//! * [`SurgerySession`] — one surgery's case state: the immutable
//!   once-per-surgery preparation ([`brainshift_core::PreparedSurgery`]),
//!   a mesh fingerprint, and the carry-forward field between scans.
//! * [`DeadlineQueue`] — bounded admission with explicit backpressure
//!   ([`Rejected::QueueFull`], [`Rejected::DeadlineInfeasible`]) and
//!   earliest-deadline-first ordering with an aging term that bounds
//!   starvation.
//! * [`ContextCache`] — warm [`SolverContext`](brainshift_fem::SolverContext)s
//!   under a byte budget; memory pressure evicts LRU sessions to *cold*
//!   (reassemble on next touch), never to OOM and never to an error.
//! * [`Service`] — a fixed worker pool executing jobs, deriving each
//!   solve's escalation `time_budget` from the job's remaining deadline:
//!   a late job returns [`ScanStatus::Degraded`](brainshift_core::ScanStatus)
//!   with the carry-forward field instead of blocking the queue.
//! * [`EventLog`] — every enqueue/start/escalate/degrade/evict/complete
//!   with monotonic timestamps and queue depths; its timestamp-free
//!   [`script`](EventLog::script) is the determinism oracle.
//! * [`simulate`] — a logical-clock discrete-event simulator over the
//!   *same* queue and cache code, for property tests of the scheduling
//!   contracts that the threaded service cannot check deterministically.

#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::panic))]

pub mod cache;
pub mod dispatch;
pub mod error;
pub mod events;
pub mod fleet;
pub mod persist;
pub mod replay;
pub mod scheduler;
pub mod service;
pub mod session;
pub mod sim;

pub use cache::{CacheStats, ContextCache};
pub use dispatch::{preferred_worker, route_shard, StealPolicy};
pub use error::{Rejected, ServiceError};
pub use events::{Event, EventKind, EventLog};
pub use fleet::{Fleet, FleetConfig};
pub use persist::SessionSnapshot;
pub use replay::{RecordedRun, ReplayOutcome};
pub use scheduler::{DeadlineQueue, QueuedJob, SchedulerPolicy};
pub use service::{JobOutcome, JobTicket, ScanJob, Service, ServiceConfig};
pub use session::{MeshFingerprint, SessionStats, SurgerySession};
pub use sim::{
    simulate, simulate_affinity, simulate_fleet, AffinityConfig, FleetSimConfig, FleetSimReport,
    SimConfig, SimJob, SimOutcome, SimReport, StealRecord,
};
