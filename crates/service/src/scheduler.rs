//! Deadline-aware admission and ordering policy.
//!
//! The queue implements **earliest-deadline-first with aging**: each
//! admitted job gets a static effective key
//!
//! ```text
//! key = deadline + aging_weight × enqueue_time
//! ```
//!
//! and workers always pick the eligible job with the smallest key (ties
//! broken by admission order, which makes the policy a total order and
//! the event log deterministic). With `aging_weight = 0` this is pure
//! EDF. With `aging_weight = w > 0` it is EDF with a starvation bound: a
//! waiting job `i` is preferred over any job `j` submitted more than
//! `(deadline_i − deadline_j) / w` after it, so even a job with a far
//! deadline is scheduled after bounded waiting no matter how many
//! urgent-deadline jobs keep arriving. (Because the key is static, the
//! queue never needs re-sorting — aging is encoded at admission time,
//! not recomputed per poll.)
//!
//! Admission control is explicit and happens *before* enqueueing:
//! a full queue rejects with [`Rejected::QueueFull`], and a deadline
//! closer than the configured minimum service estimate rejects with
//! [`Rejected::DeadlineInfeasible`]. Nothing is admitted that the
//! service already knows it cannot serve.
//!
//! The queue is a pure data structure over logical microseconds — no
//! threads, no clocks — which is what makes the scheduler's contracts
//! property-testable and the simulated event log bit-deterministic. The
//! threaded [`Service`](crate::service::Service) drives the *same* queue
//! under a real clock.

use crate::error::Rejected;

/// Scheduling policy knobs.
#[derive(Debug, Clone)]
pub struct SchedulerPolicy {
    /// Bounded queue capacity; submissions beyond it are rejected
    /// ([`Rejected::QueueFull`]) — explicit backpressure, not OOM.
    pub queue_capacity: usize,
    /// Aging weight `w` in `key = deadline + w × enqueue_time`.
    /// 0 = pure EDF (starvation possible under sustained urgent load);
    /// 1 ≈ deadline and waiting time weighted equally. A waiting job is
    /// guaranteed to be preferred over any job submitted more than
    /// `Δdeadline / w` later.
    pub aging_weight: f64,
    /// Admission floor: a job whose deadline is closer than this (in µs
    /// of queue time) is rejected as infeasible — it could not complete
    /// even if it started immediately.
    pub min_service_us: u64,
    /// Effective-deadline boost per priority level, µs. A job of
    /// priority `p` is keyed as if its deadline were
    /// `deadline − p × priority_boost_us`.
    pub priority_boost_us: u64,
}

impl Default for SchedulerPolicy {
    fn default() -> Self {
        SchedulerPolicy {
            queue_capacity: 64,
            aging_weight: 1.0,
            min_service_us: 0,
            priority_boost_us: 1_000_000,
        }
    }
}

impl brainshift_persist::Persist for SchedulerPolicy {
    fn encode(
        &self,
        enc: &mut brainshift_persist::Encoder,
    ) -> Result<(), brainshift_persist::PersistError> {
        enc.put_usize(self.queue_capacity);
        enc.put_f64(self.aging_weight);
        enc.put_u64(self.min_service_us);
        enc.put_u64(self.priority_boost_us);
        Ok(())
    }

    fn decode(
        dec: &mut brainshift_persist::Decoder<'_>,
    ) -> Result<Self, brainshift_persist::PersistError> {
        Ok(SchedulerPolicy {
            queue_capacity: dec.get_usize()?,
            aging_weight: dec.get_f64()?,
            min_service_us: dec.get_u64()?,
            priority_boost_us: dec.get_u64()?,
        })
    }
}

/// One queued job, as the scheduler sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueuedJob {
    /// Service-wide job id.
    pub job: u64,
    /// Session the job belongs to (jobs of one session never run
    /// concurrently — the session owns one mutable solver context).
    pub session: u64,
    /// Absolute deadline, µs on the service clock.
    pub deadline_us: u64,
    /// Priority (higher = more urgent).
    pub priority: u8,
    /// Admission time, µs.
    pub enqueued_us: u64,
    /// Static effective key (computed at admission).
    key: f64,
}

/// The bounded, deadline-ordered ready queue.
#[derive(Debug, Default)]
pub struct DeadlineQueue {
    policy: SchedulerPolicy,
    jobs: Vec<QueuedJob>,
}

impl DeadlineQueue {
    /// An empty queue under `policy`.
    pub fn new(policy: SchedulerPolicy) -> Self {
        DeadlineQueue { policy, jobs: Vec::new() }
    }

    /// The policy this queue runs.
    pub fn policy(&self) -> &SchedulerPolicy {
        &self.policy
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Admission check without enqueueing — lets a caller (the service's
    /// submit path) reject before paying for the job's payload.
    pub fn admission(&self, now_us: u64, deadline_us: u64) -> Result<(), Rejected> {
        if self.jobs.len() >= self.policy.queue_capacity {
            return Err(Rejected::QueueFull { capacity: self.policy.queue_capacity });
        }
        if deadline_us < now_us.saturating_add(self.policy.min_service_us) {
            return Err(Rejected::DeadlineInfeasible);
        }
        Ok(())
    }

    /// Admit a job. Fails with [`Rejected::QueueFull`] /
    /// [`Rejected::DeadlineInfeasible`] per the policy.
    pub fn push(
        &mut self,
        job: u64,
        session: u64,
        deadline_us: u64,
        priority: u8,
        now_us: u64,
    ) -> Result<(), Rejected> {
        self.admission(now_us, deadline_us)?;
        let boosted = deadline_us
            .saturating_sub(u64::from(priority).saturating_mul(self.policy.priority_boost_us));
        let key = boosted as f64 + self.policy.aging_weight * now_us as f64;
        self.jobs.push(QueuedJob {
            job,
            session,
            deadline_us,
            priority,
            enqueued_us: now_us,
            key,
        });
        Ok(())
    }

    /// Pop the eligible job with the smallest effective key; `eligible`
    /// filters out jobs whose session is currently busy on a worker.
    /// Ties break by admission order (smaller job id first), making the
    /// pick deterministic.
    pub fn pop_next(&mut self, eligible: impl Fn(&QueuedJob) -> bool) -> Option<QueuedJob> {
        let mut best: Option<usize> = None;
        for (i, j) in self.jobs.iter().enumerate() {
            if !eligible(j) {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    let jb = &self.jobs[b];
                    if (j.key, j.job) < (jb.key, jb.job) {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        best.map(|i| self.jobs.remove(i))
    }

    /// Pop ignoring session-eligibility (single-consumer callers).
    pub fn pop_any(&mut self) -> Option<QueuedJob> {
        self.pop_next(|_| true)
    }

    /// Iterate the queued jobs (diagnostics; unordered).
    pub fn iter(&self) -> impl Iterator<Item = &QueuedJob> {
        self.jobs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(capacity: usize, aging: f64) -> DeadlineQueue {
        DeadlineQueue::new(SchedulerPolicy {
            queue_capacity: capacity,
            aging_weight: aging,
            min_service_us: 0,
            priority_boost_us: 0,
        })
    }

    #[test]
    fn pure_edf_pops_earliest_deadline() {
        let mut dq = q(8, 0.0);
        dq.push(0, 1, 300, 0, 0).expect("admit");
        dq.push(1, 2, 100, 0, 0).expect("admit");
        dq.push(2, 3, 200, 0, 0).expect("admit");
        let order: Vec<u64> = std::iter::from_fn(|| dq.pop_any().map(|j| j.job)).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn capacity_rejects_with_queue_full() {
        let mut dq = q(2, 0.0);
        dq.push(0, 1, 100, 0, 0).expect("admit");
        dq.push(1, 1, 100, 0, 0).expect("admit");
        assert_eq!(
            dq.push(2, 1, 100, 0, 0),
            Err(Rejected::QueueFull { capacity: 2 })
        );
        // Draining frees capacity again.
        dq.pop_any();
        dq.push(2, 1, 100, 0, 0).expect("admit after drain");
    }

    #[test]
    fn infeasible_deadline_rejected() {
        let mut dq = DeadlineQueue::new(SchedulerPolicy {
            queue_capacity: 8,
            aging_weight: 0.0,
            min_service_us: 50,
            priority_boost_us: 0,
        });
        assert_eq!(dq.push(0, 1, 100, 0, 60), Err(Rejected::DeadlineInfeasible));
        dq.push(0, 1, 111, 0, 60).expect("feasible deadline admitted");
    }

    #[test]
    fn aging_overtakes_later_submissions() {
        // Job 0: far deadline, submitted early. Jobs 1..: near deadlines,
        // submitted later. With w = 1, job 0 must be picked over any job
        // submitted more than (d0 − dj) after it.
        let mut dq = q(16, 1.0);
        dq.push(0, 1, 10_000, 0, 0).expect("admit");
        // Submitted 20 000 µs later with a 1 000 µs-away deadline:
        // key0 = 10 000, key1 = 21 000 → the old far-deadline job wins.
        dq.push(1, 2, 21_000, 0, 20_000).expect("admit");
        assert_eq!(dq.pop_any().map(|j| j.job), Some(0));
    }

    #[test]
    fn priority_boost_jumps_the_line() {
        let mut dq = DeadlineQueue::new(SchedulerPolicy {
            queue_capacity: 8,
            aging_weight: 0.0,
            min_service_us: 0,
            priority_boost_us: 500,
        });
        dq.push(0, 1, 1000, 0, 0).expect("admit");
        dq.push(1, 2, 1200, 1, 0).expect("admit"); // boosted to 700
        assert_eq!(dq.pop_any().map(|j| j.job), Some(1));
    }

    #[test]
    fn busy_sessions_are_skipped_deterministically() {
        let mut dq = q(8, 0.0);
        dq.push(0, 1, 100, 0, 0).expect("admit");
        dq.push(1, 1, 150, 0, 0).expect("admit");
        dq.push(2, 2, 200, 0, 0).expect("admit");
        // Session 1 busy → the earliest eligible job is session 2's.
        assert_eq!(dq.pop_next(|j| j.session != 1).map(|j| j.job), Some(2));
        // Session 1 freed → its jobs drain in deadline order.
        assert_eq!(dq.pop_any().map(|j| j.job), Some(0));
        assert_eq!(dq.pop_any().map(|j| j.job), Some(1));
    }
}
