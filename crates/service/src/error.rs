//! Typed failures of the serving layer.
//!
//! Admission control is explicit: a job the service cannot serve within
//! its contract is *rejected at submission* ([`Rejected`]) rather than
//! accepted and silently dropped or served arbitrarily late. Execution
//! failures of an admitted job surface as [`ServiceError`].

use brainshift_core::Error as CoreError;
use std::fmt;

/// Why a submission was refused at the admission gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded queue is at capacity — explicit backpressure; the
    /// caller decides whether to retry, shed, or escalate.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The deadline cannot be met even if the job started immediately
    /// (it lies within the configured minimum service estimate, or has
    /// already passed). Admitting it would only waste a worker slot.
    DeadlineInfeasible,
    /// The service is shutting down and no longer admits work.
    ShuttingDown,
    /// The job names a session this service does not hold.
    UnknownSession {
        /// The offending session id.
        session: u64,
    },
    /// The session already has a job queued or running *and* the service
    /// was configured with per-session serialization at capacity 1 queue
    /// depth per session.
    SessionBacklogFull {
        /// The offending session id.
        session: u64,
    },
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rejected::QueueFull { capacity } => {
                write!(f, "queue full (capacity {capacity}); resubmit later or shed")
            }
            Rejected::DeadlineInfeasible => {
                write!(f, "deadline infeasible: cannot complete before it even if started now")
            }
            Rejected::ShuttingDown => write!(f, "service is shutting down"),
            Rejected::UnknownSession { session } => {
                write!(f, "unknown session {session}")
            }
            Rejected::SessionBacklogFull { session } => {
                write!(f, "session {session} backlog full")
            }
        }
    }
}

impl std::error::Error for Rejected {}

impl brainshift_persist::Persist for Rejected {
    fn encode(
        &self,
        enc: &mut brainshift_persist::Encoder,
    ) -> Result<(), brainshift_persist::PersistError> {
        match self {
            Rejected::QueueFull { capacity } => {
                enc.put_u8(0);
                enc.put_usize(*capacity);
            }
            Rejected::DeadlineInfeasible => enc.put_u8(1),
            Rejected::ShuttingDown => enc.put_u8(2),
            Rejected::UnknownSession { session } => {
                enc.put_u8(3);
                enc.put_u64(*session);
            }
            Rejected::SessionBacklogFull { session } => {
                enc.put_u8(4);
                enc.put_u64(*session);
            }
        }
        Ok(())
    }

    fn decode(
        dec: &mut brainshift_persist::Decoder<'_>,
    ) -> Result<Self, brainshift_persist::PersistError> {
        Ok(match dec.get_u8()? {
            0 => Rejected::QueueFull { capacity: dec.get_usize()? },
            1 => Rejected::DeadlineInfeasible,
            2 => Rejected::ShuttingDown,
            3 => Rejected::UnknownSession { session: dec.get_u64()? },
            4 => Rejected::SessionBacklogFull { session: dec.get_u64()? },
            t => {
                return Err(brainshift_persist::PersistError::InvalidData {
                    reason: format!("invalid Rejected tag {t}"),
                })
            }
        })
    }
}

/// A hard failure while executing an admitted job.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The pipeline layer returned a typed error (malformed mesh,
    /// singular preconditioner, …). The session's slot survives; only
    /// this job failed.
    Pipeline(CoreError),
    /// The job's result channel was dropped before a result arrived —
    /// the worker executing it panicked or the service was torn down.
    JobLost,
    /// The job was still queued (admitted, never claimed by a worker)
    /// when the service shut down and drained its queues. The ticket
    /// resolves with this instead of hanging; the caller may resubmit the
    /// scan to another service.
    Cancelled {
        /// The cancelled job's id.
        job: u64,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Pipeline(e) => write!(f, "job execution failed: {e}"),
            ServiceError::JobLost => write!(f, "job result lost (worker died or service torn down)"),
            ServiceError::Cancelled { job } => {
                write!(f, "job {job} cancelled: still queued when the service shut down")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Pipeline(e) => Some(e),
            ServiceError::JobLost | ServiceError::Cancelled { .. } => None,
        }
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Pipeline(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_actionable() {
        assert!(Rejected::QueueFull { capacity: 8 }.to_string().contains("capacity 8"));
        assert!(Rejected::UnknownSession { session: 3 }.to_string().contains('3'));
        let e = ServiceError::from(CoreError::Pipeline("empty mesh".into()));
        assert!(e.to_string().contains("empty mesh"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
